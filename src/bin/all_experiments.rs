//! Root-package forwarder so `cargo run --release --bin all_experiments`
//! works from the repository root (the per-figure binaries live in the
//! `oslay-bench` package; this digest is the one most people want).

fn main() {
    oslay_bench::digest::run();
}
