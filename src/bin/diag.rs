//! Root-package forwarder so `cargo run --release --bin diag` works from
//! the repository root (the implementation lives in `oslay-bench`).

fn main() {
    oslay_bench::diag::run();
}
