//! Workspace-spanning test/example shim for the `oslay` reproduction.
//!
//! The real public API lives in the [`oslay`] umbrella crate and the
//! per-subsystem crates (`oslay-model`, `oslay-trace`, `oslay-profile`,
//! `oslay-cache`, `oslay-layout`, `oslay-analysis`, `oslay-perf`). This
//! root package exists so that the repository-level `tests/` and
//! `examples/` directories can exercise all of them together.

pub use oslay;
