//! A parallel-compute scenario: an interrupt-bound scientific workload
//! (the paper's `TRFD_4`) where the kernel's scheduling, cross-processor
//! interrupt and synchronization code interleaves with a tight-loop
//! application — and where co-optimizing both images (`OptA`) matters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example parallel_compute
//! ```

use oslay::analysis::report::TextTable;
use oslay::cache::{Cache, CacheConfig, MissKind};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};

fn main() {
    let study = Study::generate(&StudyConfig::small());
    let case = &study.cases()[0]; // TRFD_4
    let cfg = CacheConfig::paper_default();

    println!(
        "Parallel scientific workload {}: {:.0}% of references are OS code",
        case.name(),
        case.trace.os_blocks() as f64 / case.trace.total_blocks() as f64 * 100.0
    );
    println!();

    // Three pairings: unoptimized everything; optimized OS with
    // unoptimized app; both optimized (OptA).
    let pairings: Vec<(&str, OsLayoutKind, bool)> = vec![
        ("Base OS + Base app", OsLayoutKind::Base, false),
        ("OptS OS + Base app", OsLayoutKind::OptS, false),
        ("OptS OS + OptA app", OsLayoutKind::OptS, true),
    ];

    let mut table = TextTable::new([
        "configuration",
        "total misses",
        "OS self",
        "OS<-app",
        "app self",
        "app<-OS",
    ]);
    for (label, os_kind, opt_app) in pairings {
        let os = study.os_layout(os_kind, cfg.size());
        let app = if opt_app {
            study.app_opt_layout(case, cfg.size())
        } else {
            study.app_base_layout(case)
        };
        let mut cache = Cache::new(cfg);
        let r = study.simulate(
            case,
            &os.layout,
            app.as_ref(),
            &mut cache,
            &SimConfig::fast(),
        );
        table.row([
            label.to_owned(),
            r.stats.total_misses().to_string(),
            r.stats.misses(MissKind::OsSelf).to_string(),
            r.stats.misses(MissKind::OsByApp).to_string(),
            r.stats.misses(MissKind::AppSelf).to_string(),
            r.stats.misses(MissKind::AppByOs).to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "The paper's conclusion holds here: the optimized operating system combines well \
         with optimized or unoptimized applications — optimizing one never hurts the other."
    );
}
