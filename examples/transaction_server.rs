//! A transaction-server-like scenario: a system-call-bound workload (the
//! paper notes its `Shell` workload "has some similarity with database
//! loads in that both loads have heavy system call activity"), evaluated
//! across cache sizes with the execution-time model.
//!
//! This is the case the paper's optimization helps most: a large, flat
//! syscall footprint in a small direct-mapped instruction cache.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example transaction_server
//! ```

use oslay::analysis::report::{pct, TextTable};
use oslay::cache::{Cache, CacheConfig};
use oslay::perf::ExecTimeModel;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};

fn main() {
    let study = Study::generate(&StudyConfig::small());
    let case = &study.cases()[3]; // Shell: syscall-heavy, OS-only
    println!(
        "Syscall-bound workload: {} OS invocations, {} OS block events",
        case.trace.total_invocations(),
        case.trace.os_blocks()
    );
    println!(
        "Invocation mix (Int/PF/SC/Other): {:?}",
        case.trace
            .invocation_mix()
            .map(|x| format!("{:.0}%", x * 100.0))
    );
    println!();

    let model = ExecTimeModel::paper(30.0);
    let mut table = TextTable::new([
        "Cache",
        "Base miss rate",
        "OptS miss rate",
        "est. speedup",
        "est. time saved",
    ]);
    for size in [4096u32, 8192, 16384, 32768] {
        let cfg = CacheConfig::new(size, 32, 1);
        let rate = |kind: OsLayoutKind| {
            let os = study.os_layout(kind, size);
            let mut cache = Cache::new(cfg);
            study
                .simulate(case, &os.layout, None, &mut cache, &SimConfig::fast())
                .miss_rate()
        };
        let base = rate(OsLayoutKind::Base);
        let opt = rate(OsLayoutKind::OptS);
        table.row([
            format!("{}KB", size / 1024),
            pct(base),
            pct(opt),
            format!("{:.2}x", model.speedup(base, opt)),
            format!("{:.1}%", model.time_reduction_percent(base, opt)),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "(30-cycle miss penalty; data side fixed at 30% references, 5% miss rate — the \
         paper's Section 5.2 model)"
    );
}
