//! Quickstart: generate a kernel + workload, profile it, build the
//! paper's optimized layout, and compare miss rates against the
//! unoptimized image.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oslay::analysis::report::pct;
use oslay::cache::{Cache, CacheConfig, InstructionCache};
use oslay::trace::{TraceBuffer, TraceRecord};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};

fn main() {
    // A small study: synthetic kernel, the four standard workloads,
    // traces, and profiles — all deterministic.
    let study = Study::generate(&StudyConfig::small());
    println!(
        "Kernel: {} routines, {} basic blocks, {:.0} KB of code",
        study.kernel().program.num_routines(),
        study.kernel().program.num_blocks(),
        study.kernel().program.total_size() as f64 / 1024.0,
    );

    // The hardware-performance-monitor substrate the original study relied
    // on: a fixed-capacity trace buffer that halts the machine and drains
    // when nearly full. Here we push one synthetic burst through it just
    // to show the capture path.
    let mut captured = 0usize;
    let mut buffer = TraceBuffer::new(1 << 16, |chunk: &[TraceRecord]| captured += chunk.len());
    for t in 0..100_000u32 {
        buffer.capture(TraceRecord::new(0x1000 + 4 * t, t, false));
    }
    buffer.flush();
    println!("Trace buffer drained {captured} records in bursts (monitor substrate).\n");

    // Compare Base vs OptS on the Shell workload (OS-only references).
    let cache_cfg = CacheConfig::paper_default();
    let case = &study.cases()[3];
    println!(
        "Workload {}: {} OS block events traced",
        case.name(),
        case.trace.os_blocks()
    );
    for kind in [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
    ] {
        let os = study.os_layout(kind, cache_cfg.size());
        let mut cache = Cache::new(cache_cfg);
        let r = study.simulate(case, &os.layout, None, &mut cache, &SimConfig::fast());
        println!(
            "  {:<5} miss rate {} ({} misses / {} fetches)",
            kind.name(),
            pct(r.miss_rate()),
            r.stats.total_misses(),
            r.stats.total_accesses(),
        );
        cache.reset();
    }
    println!();
    println!(
        "OptS = the paper's layout: interprocedural sequences grown from the four kernel \
         seeds, plus a SelfConfFree area replicated across logical caches."
    );
}
