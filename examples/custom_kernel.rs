//! Using the library on *your own* code model: build a miniature kernel
//! by hand with [`ProgramBuilder`], trace it, profile it, lay it out, and
//! measure the improvement. This is the workflow a downstream user would
//! follow to apply the paper's algorithm to a real system (with the
//! builder fed from their compiler's CFG dump instead of handwritten
//! blocks).
//!
//! The miniature kernel deliberately reproduces the paper's headline
//! pathology: two routines on the same hot path (a timer handler and the
//! software-multiply helper it calls) placed exactly one cache-size apart,
//! so they evict each other on every single invocation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use oslay::cache::{Cache, CacheConfig, InstructionCache};
use oslay::layout::{base_layout, fetch_stream, optimize_os, OptParams};
use oslay::model::{
    BranchTarget, Domain, Program, ProgramBuilder, RoutineId, SeedKind, Terminator,
};
use oslay::profile::{LoopAnalysis, Profile};
use oslay::trace::{Engine, EngineConfig, WorkloadSpec};

/// One straight-line routine of `n` blocks of `size` bytes each.
fn straight(b: &mut ProgramBuilder, name: &str, n: usize, size: u32) -> RoutineId {
    let r = b.begin_routine(name);
    let blocks: Vec<_> = (0..n).map(|_| b.add_block(size)).collect();
    for pair in blocks.windows(2) {
        b.terminate(pair[0], Terminator::Jump(pair[1]));
    }
    b.terminate(*blocks.last().unwrap(), Terminator::Return);
    b.end_routine();
    r
}

fn build_kernel(cache_size: u32) -> Program {
    let mut b = ProgramBuilder::new(Domain::Os);

    // The callee: a software-multiply helper.
    let soft_mul = straight(&mut b, "soft_mul", 8, 24);

    // Padding so that `timer` lands exactly one cache size after
    // `soft_mul`: guaranteed conflict in a direct-mapped cache.
    let pad_blocks = (cache_size / 64) as usize;
    let _pad = straight(&mut b, "cold_padding", pad_blocks, 64 - 24 / 3);

    // The caller: a timer handler that calls soft_mul, with a rare error
    // path it normally branches around.
    let timer = b.begin_routine("timer");
    let entry = b.add_block(24);
    let hot = b.add_block(24);
    let rare = b.add_block(32);
    let call = b.add_block(16);
    let done = b.add_block(16);
    b.terminate(
        entry,
        Terminator::branch([
            BranchTarget::new(hot, 0.995),
            BranchTarget::new(rare, 0.005),
        ]),
    );
    b.terminate(hot, Terminator::Jump(call));
    b.terminate(rare, Terminator::Jump(call));
    b.terminate(
        call,
        Terminator::Call {
            callee: soft_mul,
            ret_to: done,
        },
    );
    b.terminate(done, Terminator::Return);
    b.end_routine();

    for kind in SeedKind::ALL {
        b.set_seed(kind, timer);
    }
    b.build().expect("custom kernel validates")
}

fn main() {
    let cache_cfg = CacheConfig::new(1024, 32, 1); // tiny cache, big effect
    let program = build_kernel(cache_cfg.size());
    println!(
        "Custom kernel: {} routines, {} blocks, {} bytes",
        program.num_routines(),
        program.num_blocks(),
        program.total_size()
    );

    // Trace it: every invocation is a timer interrupt.
    let spec = WorkloadSpec {
        name: "timer-storm".into(),
        invocation_mix: [1.0, 0.0, 0.0, 0.0],
        dispatch_weights: Default::default(),
        app_burst_mean: 0.0,
    };
    let trace = Engine::new(&program, None, &spec, EngineConfig::new(42)).run(50_000);
    let profile = Profile::collect(&program, &trace);
    let loops = LoopAnalysis::analyze(&program, &profile);
    println!(
        "Traced {} invocations; {} of {} blocks executed",
        trace.total_invocations(),
        profile.num_executed_blocks(),
        program.num_blocks()
    );

    // Replay against Base and against the paper's optimized layout.
    let mut results = Vec::new();
    for (label, layout) in [
        ("Base", base_layout(&program, 0)),
        (
            "OptS",
            optimize_os(
                &program,
                &profile,
                &loops,
                &OptParams::opt_s(cache_cfg.size()),
            )
            .layout,
        ),
    ] {
        let mut cache = Cache::new(cache_cfg);
        let mut misses = 0u64;
        let mut fetches = 0u64;
        for (addr, domain) in fetch_stream(trace.events(), &layout, None) {
            fetches += 1;
            if cache.access(addr, domain).is_miss() {
                misses += 1;
            }
        }
        println!("  {label:<5} {misses:>7} misses / {fetches} fetches");
        results.push(misses);
    }
    let reduction = 100.0 * (1.0 - results[1] as f64 / results[0] as f64);
    println!();
    println!(
        "OptS removed {reduction:.0}% of the misses by placing the timer handler, the \
         multiply helper, and the rare error path so the hot call chain no longer aliases."
    );
    assert!(results[1] < results[0]);
}
