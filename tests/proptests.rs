//! Randomized-property tests on the core data structures: random programs
//! must always produce valid layouts, and the cache simulator must agree
//! with a simple reference LRU model on arbitrary address streams.
//!
//! The random cases are drawn from the workspace's own deterministic
//! [`Rng`] under fixed seeds — same coverage as a property-testing
//! framework, no external crate, and any failure reproduces exactly from
//! the seed embedded in the test.

use oslay::cache::{Cache, CacheConfig, InstructionCache};
use oslay::layout::{base_layout, chang_hwu_layout, optimize_os, OptParams};
use oslay::model::{
    BranchTarget, Domain, Program, ProgramBuilder, RoutineId, SeedKind, Terminator,
};
use oslay::profile::{LoopAnalysis, Profile};
use oslay::trace::{Engine, EngineConfig, WorkloadSpec};
use oslay_model::rng::Rng;

// ---------- random program generation ------------------------------------

#[derive(Clone, Debug)]
struct RoutineSpec {
    sizes: Vec<u32>,
    /// Per non-final block: 0 = jump to next; 1 = branch next/skip;
    /// 2 = call a previous routine (if any) then continue.
    shapes: Vec<u8>,
    /// Back-edge: if true, the second-to-last block branches back to 0.
    back_edge: bool,
}

fn routine_spec(rng: &mut Rng) -> RoutineSpec {
    let num_blocks = rng.gen_range(2usize..9);
    RoutineSpec {
        sizes: (0..num_blocks).map(|_| rng.gen_range(4u32..64)).collect(),
        shapes: (0..8).map(|_| rng.gen_range(0u32..3) as u8).collect(),
        back_edge: rng.gen_bool(0.5),
    }
}

fn random_specs(rng: &mut Rng, routines: std::ops::Range<usize>) -> Vec<RoutineSpec> {
    let n = rng.gen_range(routines);
    (0..n).map(|_| routine_spec(rng)).collect()
}

fn build_program(specs: &[RoutineSpec]) -> Program {
    let mut b = ProgramBuilder::new(Domain::Os);
    let mut routines: Vec<RoutineId> = Vec::new();
    for (ri, spec) in specs.iter().enumerate() {
        let r = b.begin_routine(format!("r{ri}"));
        let blocks: Vec<_> = spec.sizes.iter().map(|&s| b.add_block(s)).collect();
        let n = blocks.len();
        for i in 0..n - 1 {
            let this = blocks[i];
            let next = blocks[i + 1];
            let shape = spec.shapes.get(i).copied().unwrap_or(0);
            if spec.back_edge && i == n - 2 && i > 0 {
                b.terminate(
                    this,
                    Terminator::branch([
                        BranchTarget::new(blocks[0], 0.6),
                        BranchTarget::new(next, 0.4),
                    ]),
                );
            } else if shape == 1 && i + 2 < n {
                b.terminate(
                    this,
                    Terminator::branch([
                        BranchTarget::new(next, 0.8),
                        BranchTarget::new(blocks[i + 2], 0.2),
                    ]),
                );
            } else if shape == 2 && !routines.is_empty() {
                let callee = routines[i % routines.len()];
                b.terminate(
                    this,
                    Terminator::Call {
                        callee,
                        ret_to: next,
                    },
                );
            } else {
                b.terminate(this, Terminator::Jump(next));
            }
        }
        b.terminate(blocks[n - 1], Terminator::Return);
        b.end_routine();
        routines.push(r);
    }
    // Seeds: the four last routines (or repeats for tiny programs).
    for (i, kind) in SeedKind::ALL.into_iter().enumerate() {
        let r = routines[routines.len().saturating_sub(1 + i).min(routines.len() - 1)];
        b.set_seed(kind, r);
    }
    b.build().expect("generated random program validates")
}

fn assert_layout_valid(program: &Program, layout: &oslay::layout::Layout) {
    // Complete.
    assert_eq!(layout.num_blocks(), program.num_blocks());
    // Non-overlapping.
    let mut spans: Vec<(u64, u64)> = (0..program.num_blocks())
        .map(oslay::model::BlockId::new)
        .map(|b| {
            (
                layout.addr(b),
                layout.addr(b) + u64::from(layout.effective_size(b)),
            )
        })
        .collect();
    spans.sort_unstable();
    for pair in spans.windows(2) {
        assert!(pair[0].1 <= pair[1].0, "overlap {pair:?}");
    }
    // Stretch only ever adds one word.
    for i in 0..program.num_blocks() {
        let b = oslay::model::BlockId::new(i);
        assert!(layout.stretch(b) <= 4);
        assert!(layout.effective_size(b) >= program.block(b).size());
    }
}

#[test]
fn random_programs_produce_valid_layouts() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x1a70_0000 + case);
        let specs = random_specs(&mut rng, 4..14);
        let seed = rng.gen_range(0u64..1000);
        let program = build_program(&specs);
        // Base layout needs no profile.
        assert_layout_valid(&program, &base_layout(&program, 0));

        // Trace it briefly, then build the profile-guided layouts.
        let spec = WorkloadSpec {
            name: "prop".into(),
            invocation_mix: [0.4, 0.3, 0.2, 0.1],
            dispatch_weights: Default::default(),
            app_burst_mean: 0.0,
        };
        let trace = Engine::new(&program, None, &spec, EngineConfig::new(seed)).run(3_000);
        let profile = Profile::collect(&program, &trace);
        let loops = LoopAnalysis::analyze(&program, &profile);

        assert_layout_valid(&program, &chang_hwu_layout(&program, &profile, 0));
        let opt = optimize_os(&program, &profile, &loops, &OptParams::opt_s(1024));
        assert_layout_valid(&program, &opt.layout);
        let optl = optimize_os(&program, &profile, &loops, &OptParams::opt_l(1024));
        assert_layout_valid(&program, &optl.layout);
    }
}

#[test]
fn profile_conservation_on_random_programs() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x9207_0000 + case);
        let specs = random_specs(&mut rng, 3..10);
        let seed = rng.gen_range(0u64..1000);
        let program = build_program(&specs);
        let spec = WorkloadSpec {
            name: "prop".into(),
            invocation_mix: [0.25, 0.25, 0.25, 0.25],
            dispatch_weights: Default::default(),
            app_burst_mean: 0.0,
        };
        let trace = Engine::new(&program, None, &spec, EngineConfig::new(seed)).run(2_000);
        let profile = Profile::collect(&program, &trace);
        // Node weights sum to traced blocks.
        assert_eq!(profile.total_node_weight(), trace.os_blocks());
        // Out-arc weights never exceed the node weight.
        for b in profile.executed_blocks() {
            let out: u64 = profile.out_arcs(b).iter().map(|&(_, w)| w).sum();
            assert!(out <= profile.node_weight(b));
        }
    }
}

#[test]
fn sequence_invariants_on_random_programs() {
    use oslay::layout::{build_sequences, ThresholdSchedule};
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x5e90_0000 + case);
        let specs = random_specs(&mut rng, 4..12);
        let seed = rng.gen_range(0u64..1000);
        let program = build_program(&specs);
        let spec = WorkloadSpec {
            name: "prop".into(),
            invocation_mix: [0.4, 0.3, 0.2, 0.1],
            dispatch_weights: Default::default(),
            app_burst_mean: 0.0,
        };
        let trace = Engine::new(&program, None, &spec, EngineConfig::new(seed)).run(3_000);
        let profile = Profile::collect(&program, &trace);
        let seqs = build_sequences(&program, &profile, &ThresholdSchedule::paper());

        // 1. Every executed block is captured by the final (0,0) pass.
        for b in profile.executed_blocks() {
            assert!(seqs.contains(b), "executed block {b} missed");
        }
        // 2. No unexecuted block is ever captured.
        for i in 0..program.num_blocks() {
            let b = oslay::model::BlockId::new(i);
            if profile.node_weight(b) == 0 {
                assert!(!seqs.contains(b), "cold block {b} captured");
            }
        }
        // 3. No block appears in two sequences.
        let mut seen = vec![false; program.num_blocks()];
        for (_, b) in seqs.blocks_in_order() {
            assert!(!seen[b.index()], "block {b} captured twice");
            seen[b.index()] = true;
        }
        // 4. Per-pass exec thresholds are respected.
        for s in seqs.sequences() {
            for &b in &s.blocks {
                assert!(profile.exec_ratio(b) >= s.exec_thresh);
            }
        }
    }
}

#[test]
fn scf_protection_on_random_programs() {
    use oslay::layout::BlockClass;
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x5cf0_0000 + case);
        let specs = random_specs(&mut rng, 4..12);
        let seed = rng.gen_range(0u64..1000);
        let program = build_program(&specs);
        let spec = WorkloadSpec {
            name: "prop".into(),
            invocation_mix: [0.25, 0.25, 0.25, 0.25],
            dispatch_weights: Default::default(),
            app_burst_mean: 0.0,
        };
        let trace = Engine::new(&program, None, &spec, EngineConfig::new(seed)).run(4_000);
        let profile = Profile::collect(&program, &trace);
        let loops = LoopAnalysis::analyze(&program, &profile);
        let cache_size = 512u32;
        let opt = optimize_os(&program, &profile, &loops, &OptParams::opt_s(cache_size));
        // SelfConfFree protection: no executed non-SCF block may occupy an
        // SCF cache offset.
        for b in profile.executed_blocks() {
            let offset = opt.layout.addr(b) % u64::from(cache_size);
            if opt.class(b) == BlockClass::SelfConfFree {
                assert!(opt.layout.addr(b) < opt.scf_bytes);
            } else if opt.scf_bytes > 0 {
                assert!(
                    offset >= opt.scf_bytes,
                    "executed block {b} at protected offset {offset}"
                );
            }
            // Executed blocks are never classified Cold.
            assert!(opt.class(b) != BlockClass::Cold);
        }
    }
}

#[test]
fn traces_are_well_formed_on_random_programs() {
    use oslay::trace::TraceEvent;
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x7ace_0000 + case);
        let specs = random_specs(&mut rng, 3..10);
        let seed = rng.gen_range(0u64..1000);
        let program = build_program(&specs);
        let spec = WorkloadSpec {
            name: "prop".into(),
            invocation_mix: [1.0, 0.0, 0.0, 0.0],
            dispatch_weights: Default::default(),
            app_burst_mean: 0.0,
        };
        let trace = Engine::new(&program, None, &spec, EngineConfig::new(seed)).run(1_000);
        let mut in_os = false;
        for e in trace.events() {
            match e {
                TraceEvent::OsEnter(_) => {
                    assert!(!in_os);
                    in_os = true;
                }
                TraceEvent::OsExit => {
                    assert!(in_os);
                    in_os = false;
                }
                TraceEvent::Block { id, .. } => {
                    assert!(in_os);
                    assert!(id.index() < program.num_blocks());
                }
                TraceEvent::Mark(_) => {}
            }
        }
        assert!(!in_os);
    }
}

// ---------- cache vs reference model -------------------------------------

/// Straightforward reference LRU implementation (vectors of lines, most
/// recently used last).
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        Self {
            sets: vec![Vec::new(); cfg.num_sets() as usize],
            ways: cfg.ways() as usize,
            line: u64::from(cfg.line()),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line * self.line;
        let set = ((addr / self.line) as usize) % self.sets.len();
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&l| l == line) {
            s.remove(pos);
            s.push(line);
            true
        } else {
            if s.len() == self.ways {
                s.remove(0);
            }
            s.push(line);
            false
        }
    }
}

#[test]
fn cache_agrees_with_reference_lru() {
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xca5e_0000 + case);
        let num_addrs = rng.gen_range(1usize..600);
        let addrs: Vec<u64> = (0..num_addrs).map(|_| rng.gen_range(0u64..4096)).collect();
        let ways_pow = rng.gen_range(0u32..3);
        let line_pow = rng.gen_range(4u32..7);
        let cfg = CacheConfig::new(1024, 1 << line_pow, 1 << ways_pow);
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for &addr in &addrs {
            let hit = !cache.access(addr, Domain::Os).is_miss();
            let ref_hit = reference.access(addr);
            assert_eq!(hit, ref_hit, "divergence at {addr:#x}");
        }
        // Accounting invariant.
        let s = cache.stats();
        assert_eq!(s.hits(Domain::Os) + s.total_misses(), addrs.len() as u64);
    }
}
