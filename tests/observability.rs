//! End-to-end observability: a real study run must produce a run report
//! that survives the JSON round trip, and `kobserve::compare` must catch
//! an injected miss-rate regression between two such reports.

use std::sync::Arc;

use oslay::cache::{Cache, CacheConfig};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_observe::{compare, global_recorder, MetricRegistry, Probe, RunReport};

/// Runs the first workload (OS + application) under Base and OptS with a
/// probed cache and reports both miss rates.
fn probed_report(study: &Study, name: &str) -> RunReport {
    let registry = Arc::new(MetricRegistry::new());
    let case = &study.cases()[0]; // traces an application too
    let app = study.app_base_layout(case);
    let mut fields = Vec::new();
    for kind in [OsLayoutKind::Base, OsLayoutKind::OptS] {
        let os = study.os_layout(kind, 8192);
        let probe: Arc<dyn Probe + Send + Sync> = Arc::clone(&registry) as _;
        let mut cache = Cache::with_probe(CacheConfig::paper_default(), probe);
        let r = study.simulate(
            case,
            &os.layout,
            app.as_ref(),
            &mut cache,
            &SimConfig::fast(),
        );
        cache.record_occupancy();
        fields.push((kind.name().to_owned(), r.miss_rate()));
    }
    let mut report = RunReport::new(name);
    report.add_spans(global_recorder());
    report.add_metrics(&registry);
    report.add_section("fig12.case0", fields);
    report
}

#[test]
fn study_report_round_trips_through_json() {
    let study = Study::generate(&StudyConfig::tiny());
    let report = probed_report(&study, "itest");

    // The real pipeline populated every report section.
    assert!(
        report.spans().iter().any(|s| s.name == "study.sim"),
        "missing simulation span"
    );
    assert!(
        report.metric_count() >= 8,
        "only {} metrics",
        report.metric_count()
    );
    assert!(
        report
            .counters()
            .iter()
            .any(|(name, n)| name == "cache.miss.os-self" && *n > 0),
        "probe saw no OS self-interference misses"
    );
    let base = report.section_field("fig12.case0", "Base").unwrap();
    let opts = report.section_field("fig12.case0", "OptS").unwrap();
    assert!(opts < base, "OptS ({opts}) must beat Base ({base})");

    // MissStats -> report -> JSON -> parse-back preserves everything.
    let parsed = RunReport::from_json(&report.to_json().to_json_pretty()).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn compare_detects_injected_miss_rate_regression() {
    let study = Study::generate(&StudyConfig::tiny());
    let baseline = probed_report(&study, "baseline");

    // An identical rerun is regression-free.
    let rerun = probed_report(&study, "rerun");
    assert!(compare(&baseline, &rerun, 0.01).is_empty());

    // Inject a 10% OptS miss-rate regression; a 5% tolerance must flag
    // it, and only it.
    let mut current = RunReport::new("current");
    let base = baseline.section_field("fig12.case0", "Base").unwrap();
    let opts = baseline.section_field("fig12.case0", "OptS").unwrap();
    current.add_section("fig12.case0", [("Base", base), ("OptS", opts * 1.10)]);
    let regressions = compare(&baseline, &current, 0.05);
    assert_eq!(regressions.len(), 1, "regressions: {regressions:?}");
    assert_eq!(regressions[0].path, "fig12.case0.OptS");
    assert!((regressions[0].relative_increase() - 0.10).abs() < 1e-9);
}
