//! End-to-end miss attribution: on a real (seeded, synthetic) study the
//! three-way classification must exactly partition the misses, the
//! conflict matrix must be internally consistent, and the base-vs-opt
//! layout diff must expose the conflicts the optimization removed.

use std::sync::Arc;

use oslay::cache::{diff_attribution, AttributionReport, CacheConfig, MissKind};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{run_case_attributed, AppSide};
use oslay_observe::{compare, AttrClass, MetricRegistry, RunReport};

fn study() -> Study {
    Study::generate(&StudyConfig::tiny())
}

fn attribute(study: &Study, kind: OsLayoutKind) -> AttributionReport {
    let case = &study.cases()[3]; // Shell: OS-only
    let (_, attr) = run_case_attributed(
        study,
        case,
        kind,
        AppSide::Base,
        CacheConfig::paper_default(),
        &SimConfig::fast(),
        None,
    );
    attr
}

#[test]
fn classification_partitions_all_misses() {
    let s = study();
    for kind in [OsLayoutKind::Base, OsLayoutKind::OptS] {
        let attr = attribute(&s, kind);
        assert!(attr.total_misses > 0);
        assert_eq!(
            attr.class_misses.iter().sum::<u64>(),
            attr.total_misses,
            "compulsory + capacity + conflict must equal total misses ({})",
            kind.name()
        );
        assert_eq!(
            attr.set_misses.iter().sum::<u64>(),
            attr.total_misses,
            "per-set misses must sum to the total"
        );
        assert_eq!(
            attr.set_accesses.iter().sum::<u64>(),
            attr.total_accesses,
            "per-set accesses must sum to the total"
        );
        assert_eq!(
            attr.census_refs.iter().sum::<u64>(),
            attr.total_accesses,
            "census slots must account for every fetch"
        );
        assert_eq!(attr.census_misses.iter().sum::<u64>(), attr.total_misses);
        assert_eq!(attr.entry_misses.iter().sum::<u64>(), attr.total_misses);
    }
}

#[test]
fn compulsory_equals_cold_and_layouts_cover_all_code() {
    let s = study();
    let case = &s.cases()[3];
    let (r, attr) = run_case_attributed(
        &s,
        case,
        OsLayoutKind::Base,
        AppSide::Base,
        CacheConfig::paper_default(),
        &SimConfig::fast(),
        None,
    );
    assert_eq!(
        attr.misses_of(AttrClass::Compulsory),
        r.stats.misses(MissKind::Cold),
        "compulsory must be exactly the simulator's cold-miss count"
    );
    // The layout spans cover every fetch address: nothing is unmapped.
    let unmapped = oslay::cache::CENSUS_SLOTS - 1;
    assert_eq!(attr.census_refs[unmapped], 0);
    assert_eq!(attr.census_misses[unmapped], 0);
    // Shell is OS-only: every miss happens inside an OS invocation.
    assert_eq!(attr.entry_misses[4], 0, "no misses outside the OS");
}

#[test]
fn conflict_matrix_is_consistent_with_the_classification() {
    let s = study();
    let attr = attribute(&s, OsLayoutKind::Base);
    let conflicts = attr.misses_of(AttrClass::Conflict);
    assert!(conflicts > 0, "base layout must show conflicts");
    // Pairs and matrix only count conflicts whose evictor is known, so
    // they are bounded by (and in a steady-state trace close to) the
    // conflict-miss count.
    let pair_total: u64 = attr.pairs.iter().map(|p| p.count).sum();
    assert!(pair_total <= conflicts);
    assert_eq!(attr.matrix.total(), pair_total);
    assert!(
        pair_total * 10 >= conflicts * 5,
        "most conflicts should know their evictor ({pair_total} of {conflicts})"
    );
    // Row sums partition the matrix total, from both sides.
    let victims: std::collections::BTreeSet<_> = attr.matrix.entries().map(|(_, v, _)| v).collect();
    let by_victims: u64 = victims.iter().map(|&v| attr.matrix.victim_row_sum(v)).sum();
    assert_eq!(by_victims, attr.matrix.total());
    let evictors: std::collections::BTreeSet<_> =
        attr.matrix.entries().map(|(e, _, _)| e).collect();
    let by_evictors: u64 = evictors
        .iter()
        .map(|&e| attr.matrix.evictor_row_sum(e))
        .sum();
    assert_eq!(by_evictors, attr.matrix.total());
    // Direct-mapped thrash is two-sided: the matrix must not be wholly
    // one-directional.
    assert!(attr.matrix.asymmetry() < 0.9);
    // The measured ranking feeds the Call optimization's candidate list.
    let ranked = oslay_layout::measured_conflict_ranking(&attr.matrix, oslay::model::Domain::Os);
    assert!(!ranked.is_empty());
    assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
}

#[test]
fn opt_layout_resolves_base_conflict_pairs() {
    let s = study();
    let base = attribute(&s, OsLayoutKind::Base);
    let opts = attribute(&s, OsLayoutKind::OptS);
    let diff = diff_attribution(&base, &opts);
    assert!(
        diff.conflict_delta() < 0,
        "OptS must remove conflict misses (delta {})",
        diff.conflict_delta()
    );
    assert!(!diff.resolved.is_empty(), "some pairs must be resolved");
    let resolved: u64 = diff.resolved.iter().map(|p| p.base - p.current).sum();
    let introduced: u64 = diff.introduced.iter().map(|p| p.current - p.base).sum();
    assert!(
        resolved > introduced,
        "OptS must resolve more conflict volume than it introduces"
    );
    // Diffs are ranked heaviest-first.
    assert!(diff
        .resolved
        .windows(2)
        .all(|w| w[0].base - w[0].current >= w[1].base - w[1].current));
}

#[test]
fn probe_stream_matches_the_report() {
    let s = study();
    let case = &s.cases()[0]; // OS + application
    let registry = Arc::new(MetricRegistry::new());
    let (_, attr) = run_case_attributed(
        &s,
        case,
        OsLayoutKind::Base,
        AppSide::Base,
        CacheConfig::paper_default(),
        &SimConfig::fast(),
        Some(&registry),
    );
    for class in AttrClass::ALL {
        assert_eq!(
            registry.counter(class.metric_name()),
            attr.misses_of(class),
            "probe must see every {} miss",
            class.label()
        );
    }
    let sets = registry.histogram("cache.attr.set").expect("set histogram");
    assert_eq!(sets.count(), attr.total_misses);
}

#[test]
fn compare_catches_conflict_matrix_regressions() {
    let s = study();
    let good = attribute(&s, OsLayoutKind::OptS);
    let bad = attribute(&s, OsLayoutKind::Base);
    let mut baseline = RunReport::new("attr_baseline");
    baseline.add_section("attr.os", good.section_fields());
    let mut current = RunReport::new("attr_current");
    current.add_section("attr.os", bad.section_fields());
    let regressions = compare(&baseline, &current, 0.05);
    assert!(
        regressions
            .iter()
            .any(|r| r.path.contains("conflict") || r.path.contains("matrix")),
        "swapping OptS attribution for Base must flag a conflict regression: {regressions:?}"
    );
    // And the good direction stays quiet on the conflict surface.
    let reverse = compare(&current, &baseline, 0.05);
    assert!(reverse
        .iter()
        .all(|r| !r.path.contains("conflict") && !r.path.contains("matrix")));
}
