//! Structural validity of every layout algorithm on the full synthetic
//! kernel: completeness, non-overlap, SelfConfFree protection, and the
//! documented geometric invariants.

use std::sync::OnceLock;

use oslay::layout::BlockClass;
use oslay::model::BlockId;
use oslay::{OsLayoutKind, Study, StudyConfig};

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(&StudyConfig::tiny().with_os_blocks(60_000)))
}

/// Layout validity (completeness + non-overlap) is enforced by
/// `LayoutBuilder::finish`; constructing each kind at several cache sizes
/// exercises that check on the real kernel.
#[test]
fn every_layout_kind_builds_at_every_cache_size() {
    let s = study();
    for kind in OsLayoutKind::ALL {
        for size in [4096u32, 8192, 16384, 32768] {
            let os = s.os_layout(kind, size);
            assert_eq!(os.layout.num_blocks(), s.kernel().program.num_blocks());
            assert!(os.layout.span_end() > 0);
        }
    }
}

#[test]
fn no_two_blocks_overlap_in_opt_s() {
    let s = study();
    let os = s.os_layout(OsLayoutKind::OptS, 8192);
    let program = &s.kernel().program;
    let mut spans: Vec<(u64, u64)> = (0..program.num_blocks())
        .map(BlockId::new)
        .map(|b| {
            (
                os.layout.addr(b),
                os.layout.addr(b) + u64::from(os.layout.effective_size(b)),
            )
        })
        .collect();
    spans.sort_unstable();
    for pair in spans.windows(2) {
        assert!(
            pair[0].1 <= pair[1].0,
            "overlap: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn scf_area_is_protected_in_opt_s_and_opt_l() {
    let s = study();
    let profile = s.averaged_os_profile();
    for kind in [OsLayoutKind::OptS, OsLayoutKind::OptL] {
        let os = s.os_layout(kind, 8192);
        if os.scf_bytes == 0 {
            continue;
        }
        let classes = os.classes.as_ref().expect("optimized layouts have classes");
        for b in profile.executed_blocks() {
            let offset = os.layout.addr(b) % 8192;
            if classes[b.index()] == BlockClass::SelfConfFree {
                assert!(os.layout.addr(b) < os.scf_bytes);
            } else {
                assert!(
                    offset >= os.scf_bytes,
                    "{kind:?}: executed block {b} at protected offset {offset}"
                );
            }
        }
    }
}

#[test]
fn scf_blocks_are_the_globally_hottest() {
    let s = study();
    let os = s.os_layout(OsLayoutKind::OptS, 8192);
    let classes = os.classes.as_ref().unwrap();
    let profile = s.averaged_os_profile();
    let loops = s.os_loops();
    let min_scf = (0..s.kernel().program.num_blocks())
        .map(BlockId::new)
        .filter(|&b| classes[b.index()] == BlockClass::SelfConfFree)
        .map(|b| loops.flattened_weight(b, profile))
        .fold(f64::INFINITY, f64::min);
    // No non-SCF block may be more than twice as hot (flattened) as the
    // coolest SCF resident (allowing slack for the size-fitting rule).
    let hottest_outside = (0..s.kernel().program.num_blocks())
        .map(BlockId::new)
        .filter(|&b| classes[b.index()] != BlockClass::SelfConfFree)
        .map(|b| loops.flattened_weight(b, profile))
        .fold(0.0f64, f64::max);
    assert!(
        hottest_outside <= min_scf * 2.0 + 1.0,
        "block outside SCF with weight {hottest_outside} vs SCF minimum {min_scf}"
    );
}

#[test]
fn executed_code_precedes_cold_code_in_opt_s() {
    // Sequences (hot) occupy the low addresses; cold code follows (plus
    // the SCF windows). The *maximum* sequence address must be below the
    // maximum cold address.
    let s = study();
    let os = s.os_layout(OsLayoutKind::OptS, 8192);
    let classes = os.classes.as_ref().unwrap();
    let max_hot = (0..s.kernel().program.num_blocks())
        .map(BlockId::new)
        .filter(|&b| {
            matches!(
                classes[b.index()],
                BlockClass::MainSeq | BlockClass::OtherSeq
            )
        })
        .map(|b| os.layout.addr(b))
        .max()
        .unwrap();
    let max_cold = (0..s.kernel().program.num_blocks())
        .map(BlockId::new)
        .filter(|&b| classes[b.index()] == BlockClass::Cold)
        .map(|b| os.layout.addr(b))
        .max()
        .unwrap();
    assert!(max_hot < max_cold);
}

#[test]
fn app_layouts_are_disjoint_from_kernel_address_space() {
    let s = study();
    let os = s.os_layout(OsLayoutKind::OptS, 8192);
    for case in s.cases().iter().filter(|c| c.app.is_some()) {
        for app_layout in [
            s.app_base_layout(case).unwrap(),
            s.app_opt_layout(case, 8192).unwrap(),
            s.app_ch_layout(case).unwrap(),
        ] {
            let app = case.app.as_ref().unwrap();
            let min_app = (0..app.num_blocks())
                .map(BlockId::new)
                .map(|b| app_layout.addr(b))
                .min()
                .unwrap();
            assert!(
                min_app >= os.layout.span_end(),
                "{}: app at {min_app:#x} overlaps kernel image",
                case.name()
            );
        }
    }
}

#[test]
fn base_layout_matches_source_order_exactly() {
    let s = study();
    let os = s.os_layout(OsLayoutKind::Base, 8192);
    let program = &s.kernel().program;
    let mut cursor = 0u64;
    for b in program.source_order() {
        assert_eq!(os.layout.addr(b), cursor);
        cursor += u64::from(program.block(b).size());
    }
}

#[test]
fn chang_hwu_keeps_routines_contiguous() {
    let s = study();
    let os = s.os_layout(OsLayoutKind::ChangHwu, 8192);
    let program = &s.kernel().program;
    for routine in program.routines() {
        let addrs: Vec<u64> = routine
            .blocks()
            .iter()
            .map(|&b| os.layout.addr(b))
            .collect();
        let lo = *addrs.iter().min().unwrap();
        let hi = *addrs.iter().max().unwrap();
        let bytes: u64 = routine
            .blocks()
            .iter()
            .map(|&b| u64::from(os.layout.effective_size(b)))
            .sum();
        assert!(
            hi - lo < bytes,
            "routine {} scattered under C-H",
            routine.name()
        );
    }
}

#[test]
fn optimized_layout_compacts_the_hot_region() {
    // The whole point: in Base, the executed code is spread over the full
    // image; in OptS it is packed at the bottom. A short trace keeps the
    // executed footprint well under half the image (the paper's regime;
    // the shared 60k-block study covers most of the tiny kernel, where
    // packing cannot halve the spread no matter how good the layout).
    let s = Study::generate(&StudyConfig::tiny().with_os_blocks(8_000));
    let profile = s.averaged_os_profile();
    let spread = |kind: OsLayoutKind| {
        let os = s.os_layout(kind, 8192);
        profile
            .executed_blocks()
            .map(|b| os.layout.addr(b))
            .max()
            .unwrap()
    };
    let base_spread = spread(OsLayoutKind::Base);
    let opt_spread = spread(OsLayoutKind::OptS);
    assert!(
        opt_spread * 2 < base_spread,
        "OptS hot region {opt_spread} not much tighter than Base {base_spread}"
    );
}
