//! Characterization tests: the synthetic kernel + workloads must exhibit
//! the statistical structure the paper measures in Section 3 (these are
//! the properties the substitution argument in DESIGN.md rests on).

use std::sync::OnceLock;

use oslay::analysis::arcs::ArcDeterminism;
use oslay::analysis::loops::{loop_fractions, loop_shape};
use oslay::analysis::refchar::{ref_characteristics, union_footprint};
use oslay::analysis::temporal::{BlockSkew, InvocationSkew, ReuseDistance};
use oslay::model::SeedKind;
use oslay::profile::LoopAnalysis;
use oslay::{Study, StudyConfig};

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(&StudyConfig::tiny().with_os_blocks(80_000)))
}

#[test]
fn arc_probabilities_are_bimodal() {
    // Paper Figure 3: 73.6% of arcs at probability >= 0.99, 6.9% <= 0.01.
    let d = ArcDeterminism::measure(study().averaged_os_profile());
    assert!(d.total > 500, "too few arcs: {}", d.total);
    assert!(
        d.fraction_ge_99() > 0.45,
        "only {} of arcs >= 0.99",
        d.fraction_ge_99()
    );
    assert!(
        d.fraction_le_01() > 0.005,
        "only {} of arcs <= 0.01",
        d.fraction_le_01()
    );
}

#[test]
fn each_workload_executes_a_small_fraction_of_the_kernel() {
    // Paper Table 1: 3.4-13.1% of the code per workload.
    let s = study();
    for case in s.cases() {
        let rc = ref_characteristics(&s.kernel().program, &case.os_profile, &case.trace);
        assert!(
            rc.executed_code_fraction < 0.55,
            "{} executes {} of the kernel",
            case.name(),
            rc.executed_code_fraction
        );
        assert!(rc.executed_bytes > 1_000);
    }
}

#[test]
fn footprints_order_like_the_paper() {
    // TRFD_4 (no syscalls) touches the least code; the syscall-rich
    // workloads touch the most.
    let s = study();
    let frac: Vec<f64> = s
        .cases()
        .iter()
        .map(|c| {
            ref_characteristics(&s.kernel().program, &c.os_profile, &c.trace).executed_code_fraction
        })
        .collect();
    let trfd4 = frac[0];
    for (i, &f) in frac.iter().enumerate().skip(1) {
        assert!(
            f > trfd4,
            "workload {i} footprint {f} not larger than TRFD_4 {trfd4}"
        );
    }
}

#[test]
fn union_footprint_exceeds_every_single_workload() {
    let s = study();
    let profiles: Vec<_> = s.cases().iter().map(|c| c.os_profile.clone()).collect();
    let union = union_footprint(&s.kernel().program, &profiles);
    for case in s.cases() {
        let rc = ref_characteristics(&s.kernel().program, &case.os_profile, &case.trace);
        assert!(union.code_fraction >= rc.executed_code_fraction - 1e-12);
    }
}

#[test]
fn invocation_mixes_match_table_1() {
    let s = study();
    for case in s.cases() {
        let measured = case.trace.invocation_mix();
        let n = case.trace.total_invocations() as f64;
        for kind in SeedKind::ALL {
            let want = case.spec.invocation_mix[kind.index()];
            let got = measured[kind.index()];
            // Binomial sampling bound: tiny-scale traces hold only ~100
            // invocations for the app-heavy workloads.
            let tolerance = 4.0 * (want * (1.0 - want) / n.max(1.0)).sqrt() + 0.01;
            assert!(
                (got - want).abs() < tolerance,
                "{} {kind}: measured {got} vs spec {want} (n={n}, tol={tolerance:.3})",
                case.name()
            );
        }
    }
}

#[test]
fn call_free_loops_are_small_and_shallow() {
    // Paper Figure 4: largest call-free loop spans 300 bytes; half iterate
    // <= 6 times.
    let s = study();
    let shape = loop_shape(s.os_loops().executed_loops().filter(|l| !l.has_calls));
    assert!(shape.count >= 5, "too few call-free loops: {}", shape.count);
    assert!(
        shape.sizes.cumulative_fraction(512.0) > 0.9,
        "call-free loops too large"
    );
    assert!(
        shape.iterations.cumulative_fraction(10.0) > 0.4,
        "call-free loops iterate too much"
    );
}

#[test]
fn call_loops_span_much_more_than_their_bodies() {
    // Paper Figure 5: shallow iteration counts but kilobyte spans.
    let s = study();
    let call = loop_shape(s.os_loops().executed_loops().filter(|l| l.has_calls));
    let free = loop_shape(s.os_loops().executed_loops().filter(|l| !l.has_calls));
    if call.count >= 3 && free.count >= 3 {
        assert!(
            call.median_size > 2.0 * free.median_size,
            "call-loop span {} vs call-free {}",
            call.median_size,
            free.median_size
        );
    }
}

#[test]
fn dynamic_loop_fraction_is_moderate() {
    // Paper Table 3: call-free loops hold 29-39% of dynamic instructions —
    // loops do NOT dominate the OS, unlike scientific code.
    let s = study();
    let la = LoopAnalysis::analyze(&s.kernel().program, s.averaged_os_profile());
    let fr = loop_fractions(&s.kernel().program, s.averaged_os_profile(), &la);
    assert!(
        (0.03..0.75).contains(&fr.dynamic_fraction),
        "dynamic loop fraction {}",
        fr.dynamic_fraction
    );
    assert!(fr.static_executed_fraction < 0.4);
}

#[test]
fn few_routines_absorb_most_invocations() {
    // Paper Figure 6.
    let s = study();
    let skew = InvocationSkew::measure(&s.kernel().program, s.averaged_os_profile());
    assert!(
        skew.top_share(10) > 40.0,
        "top-10 share {}",
        skew.top_share(10)
    );
}

#[test]
fn lock_handling_is_among_the_hottest_routines() {
    // Paper: "routines that perform lock handling, timer management, state
    // save and restore..." top the invocation ranking.
    let s = study();
    let skew = InvocationSkew::measure(&s.kernel().program, s.averaged_os_profile());
    let top5: Vec<&str> = skew
        .ranked
        .iter()
        .take(5)
        .map(|&(r, _)| s.kernel().program.routine(r).name())
        .collect();
    assert!(
        top5.iter().any(|n| n.contains("lock")),
        "no lock routine in top 5: {top5:?}"
    );
}

#[test]
fn block_skew_is_extreme() {
    // Paper Figure 8: a few blocks absorb a large share; most blocks are
    // nearly never executed.
    let s = study();
    let la = LoopAnalysis::analyze(&s.kernel().program, s.averaged_os_profile());
    let skew = BlockSkew::measure(s.averaged_os_profile(), &la);
    let n = skew.ranked.len();
    assert!(n > 200);
    let top20: f64 = skew.ranked.iter().take(20).map(|&(_, p)| p).sum();
    assert!(top20 > 10.0, "top-20 blocks hold only {top20}%");
}

#[test]
fn temporal_reuse_is_high_within_invocations() {
    // Paper Figure 7: ~70% of reinvocations within 1000 instruction words.
    let s = study();
    let case = &s.cases()[3];
    let rd = ReuseDistance::measure(&s.kernel().program, &case.os_profile, &case.trace, 10);
    assert!(rd.total_calls > 500);
    assert!(
        rd.reuse_within(1000.0) > 0.25,
        "reuse within 1000 words only {}",
        rd.reuse_within(1000.0)
    );
}
