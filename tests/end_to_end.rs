//! End-to-end pipeline tests: the paper's headline claims must hold on
//! the full model → trace → profile → layout → simulate chain.

use std::sync::OnceLock;

use oslay::cache::{Cache, CacheConfig, MissKind, ReservedCache, SplitCache};
use oslay::model::Domain;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(&StudyConfig::tiny().with_os_blocks(80_000)))
}

fn misses(case_idx: usize, kind: OsLayoutKind, cfg: CacheConfig) -> u64 {
    let s = study();
    let case = &s.cases()[case_idx];
    let os = s.os_layout(kind, cfg.size());
    let app = s.app_base_layout(case);
    let mut cache = Cache::new(cfg);
    s.simulate(
        case,
        &os.layout,
        app.as_ref(),
        &mut cache,
        &SimConfig::fast(),
    )
    .stats
    .total_misses()
}

#[test]
fn optimized_layouts_beat_base_on_every_workload() {
    let cfg = CacheConfig::paper_default();
    for i in 0..4 {
        let base = misses(i, OsLayoutKind::Base, cfg);
        let ch = misses(i, OsLayoutKind::ChangHwu, cfg);
        let opt = misses(i, OsLayoutKind::OptS, cfg);
        assert!(ch < base, "workload {i}: C-H {ch} !< Base {base}");
        assert!(opt < base, "workload {i}: OptS {opt} !< Base {base}");
    }
}

#[test]
fn opts_is_competitive_with_chang_hwu_everywhere_and_wins_overall() {
    // The paper: OptS reduces C-H's misses by ~25% on average. At the tiny
    // test scale we assert OptS wins in aggregate and never loses badly.
    let cfg = CacheConfig::paper_default();
    let mut total_ch = 0;
    let mut total_opt = 0;
    for i in 0..4 {
        let ch = misses(i, OsLayoutKind::ChangHwu, cfg);
        let opt = misses(i, OsLayoutKind::OptS, cfg);
        assert!(
            (opt as f64) < ch as f64 * 1.25,
            "workload {i}: OptS {opt} much worse than C-H {ch}"
        );
        total_ch += ch;
        total_opt += opt;
    }
    assert!(
        total_opt < total_ch,
        "aggregate: OptS {total_opt} !< C-H {total_ch}"
    );
}

#[test]
fn self_interference_dominates_base_os_misses() {
    // Paper: "self-interference misses account for over 90% of the
    // operating system misses in all the workloads studied."
    let s = study();
    let case = &s.cases()[3]; // Shell: OS-only, cleanest comparison
    let os = s.os_layout(OsLayoutKind::Base, 8192);
    let mut cache = Cache::new(CacheConfig::paper_default());
    let r = s.simulate(case, &os.layout, None, &mut cache, &SimConfig::fast());
    let os_misses = r.stats.domain_misses(Domain::Os);
    let self_misses = r.stats.misses(MissKind::OsSelf);
    // At the tiny test scale cold misses are a larger share than at paper
    // scale (where self-interference exceeds 90% and cold is under 1%;
    // see EXPERIMENTS.md) — assert dominance with headroom for that.
    assert!(
        self_misses as f64 > 0.75 * os_misses as f64,
        "self {self_misses} of {os_misses}"
    );
}

#[test]
fn cold_misses_are_negligible() {
    let s = study();
    let case = &s.cases()[3];
    let os = s.os_layout(OsLayoutKind::Base, 8192);
    let mut cache = Cache::new(CacheConfig::paper_default());
    let r = s.simulate(case, &os.layout, None, &mut cache, &SimConfig::fast());
    let cold = r.stats.misses(MissKind::Cold);
    // Short tiny-scale traces leave cold misses a visible share; at paper
    // scale they are under 1% (the paper calls them negligible).
    assert!(
        (cold as f64) < 0.25 * r.stats.total_misses() as f64,
        "cold misses {cold} of {}",
        r.stats.total_misses()
    );
}

#[test]
fn opta_eliminates_app_self_interference() {
    let s = study();
    let cfg = CacheConfig::paper_default();
    for case in s.cases().iter().filter(|c| c.app.is_some()) {
        let os = s.os_layout(OsLayoutKind::OptS, cfg.size());
        let app_opt = s.app_opt_layout(case, cfg.size());
        let mut cache = Cache::new(cfg);
        let r = s.simulate(
            case,
            &os.layout,
            app_opt.as_ref(),
            &mut cache,
            &SimConfig::fast(),
        );
        let app_self = r.stats.misses(MissKind::AppSelf);
        let app_total = r.stats.accesses(Domain::App);
        assert!(
            (app_self as f64) < 0.002 * app_total as f64,
            "{}: app self misses {app_self} of {app_total} accesses",
            case.name()
        );
    }
}

#[test]
fn miss_count_decreases_with_cache_size() {
    for kind in [OsLayoutKind::Base, OsLayoutKind::OptS] {
        let mut prev = u64::MAX;
        for size in [4096u32, 8192, 16384, 32768] {
            let m = misses(3, kind, CacheConfig::new(size, 32, 1));
            assert!(
                m <= prev,
                "{}: misses grew from {prev} to {m} at {size}B",
                kind.name()
            );
            prev = m;
        }
    }
}

#[test]
fn direct_mapped_opts_beats_8way_base() {
    // Paper: "the miss rate for direct-mapped OptS is lower than for 8-way
    // set-associative Base."
    let opt_dm = misses(3, OsLayoutKind::OptS, CacheConfig::new(8192, 32, 1));
    let base_8w = misses(3, OsLayoutKind::Base, CacheConfig::new(8192, 32, 8));
    assert!(
        opt_dm < base_8w,
        "OptS direct-mapped {opt_dm} !< Base 8-way {base_8w}"
    );
}

#[test]
fn associativity_narrows_the_software_gain() {
    // Paper: increased associativity removes in hardware some of the
    // misses the layout removes in software.
    let gain = |ways: u32| {
        let cfg = CacheConfig::new(8192, 32, ways);
        let base = misses(3, OsLayoutKind::Base, cfg) as f64;
        let opt = misses(3, OsLayoutKind::OptS, cfg) as f64;
        1.0 - opt / base
    };
    let g1 = gain(1);
    let g8 = gain(8);
    assert!(
        g8 < g1 + 0.02,
        "relative gain should not grow with associativity: 1-way {g1:.2}, 8-way {g8:.2}"
    );
}

#[test]
fn split_cache_is_not_better_than_unified_opta() {
    let s = study();
    let cfg = CacheConfig::paper_default();
    let os = s.os_layout(OsLayoutKind::OptS, cfg.size());
    for case in s.cases() {
        let app = s.app_opt_layout(case, cfg.size());
        let unified = {
            let mut cache = Cache::new(cfg);
            s.simulate(
                case,
                &os.layout,
                app.as_ref(),
                &mut cache,
                &SimConfig::fast(),
            )
            .stats
            .total_misses()
        };
        let split = {
            let mut cache = SplitCache::halves_of(cfg);
            s.simulate(
                case,
                &os.layout,
                app.as_ref(),
                &mut cache,
                &SimConfig::fast(),
            )
            .stats
            .total_misses()
        };
        assert!(
            split as f64 > 0.95 * unified as f64,
            "{}: Sep {split} unexpectedly much better than unified {unified}",
            case.name()
        );
    }
}

#[test]
fn reserved_cache_offers_no_clear_win() {
    // Paper: "setting up a small reserved cache is not as good as cleverly
    // laying out a SelfConfFree area in software."
    let s = study();
    let cfg = CacheConfig::paper_default();
    let os_scf = s.os_layout(OsLayoutKind::OptS, cfg.size());
    let os_noscf = s.os_opt_s_with_scf(cfg.size(), None);
    let case = &s.cases()[3];
    let software = {
        let mut cache = Cache::new(cfg);
        s.simulate(case, &os_scf.layout, None, &mut cache, &SimConfig::fast())
            .stats
            .total_misses()
    };
    let hardware = {
        let mut cache = ReservedCache::paired_with(cfg, 0..1024);
        s.simulate(case, &os_noscf.layout, None, &mut cache, &SimConfig::fast())
            .stats
            .total_misses()
    };
    assert!(
        hardware as f64 > 0.8 * software as f64,
        "Resv {hardware} unexpectedly beats software SCF {software}"
    );
}

#[test]
fn call_optimization_reproduces_the_negative_result() {
    // Paper: the Section 4.4 optimization increases OS misses over the
    // plain sequence layout.
    let cfg = CacheConfig::paper_default();
    let opt = misses(3, OsLayoutKind::OptS, cfg);
    let call = misses(3, OsLayoutKind::Call, cfg);
    assert!(
        call as f64 > 0.9 * opt as f64,
        "Call {call} unexpectedly much better than OptS {opt}"
    );
}

#[test]
fn dynamic_code_growth_is_small() {
    // Paper: "the increase in dynamic size is, on average, as low as 2.0%."
    let s = study();
    let os = s.os_layout(OsLayoutKind::OptS, 8192);
    let overhead = os
        .layout
        .dynamic_overhead(&s.kernel().program, s.averaged_os_profile());
    assert!(
        overhead < 0.10,
        "dynamic stretch overhead {overhead} exceeds 10%"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = Study::generate(&StudyConfig::tiny());
    let b = Study::generate(&StudyConfig::tiny());
    let la = a.os_layout(OsLayoutKind::OptS, 8192);
    let lb = b.os_layout(OsLayoutKind::OptS, 8192);
    assert_eq!(la.layout, lb.layout);
    let ca = &a.cases()[3];
    let cb = &b.cases()[3];
    let mut cache_a = Cache::new(CacheConfig::paper_default());
    let mut cache_b = Cache::new(CacheConfig::paper_default());
    let ra = a.simulate(ca, &la.layout, None, &mut cache_a, &SimConfig::fast());
    let rb = b.simulate(cb, &lb.layout, None, &mut cache_b, &SimConfig::fast());
    assert_eq!(ra.stats, rb.stats);
}
