//! Property, differential, determinism, and materialization tests for
//! the layout search, against the real synthetic kernel.

use std::sync::OnceLock;

use oslay::{OsLayoutKind, Study, StudyConfig};
use oslay_cache::CacheConfig;
use oslay_model::rng::Rng;
use oslay_model::Domain;
use oslay_search::{distance_cost, run_search, ObjectiveWeights, SearchParams, SearchState};
use oslay_verify::{predict_from_spans, verify_structural, weighted_spans, LayoutView};

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::generate(&StudyConfig::tiny()))
}

fn seed_view() -> LayoutView {
    let s = study();
    LayoutView::from_layout(&s.os_layout(OsLayoutKind::OptS, 8192).layout)
}

fn new_state() -> SearchState {
    let s = study();
    SearchState::new(
        &s.kernel().program,
        s.averaged_os_profile(),
        &seed_view(),
        &CacheConfig::paper_default(),
        ObjectiveWeights::default(),
        2,
    )
}

/// Every block belongs to exactly one atom, offsets reconstruct the
/// seed addresses, and atom lengths tile their spans.
#[test]
fn atom_decomposition_covers_the_seed_exactly() {
    let state = new_state();
    let view = seed_view();
    let atoms = state.atoms();
    let mut seen = vec![false; view.num_blocks()];
    for a in 0..atoms.count() {
        let mut expected_rel = 0u64;
        for &b in atoms.blocks(a) {
            let b = b as usize;
            assert!(!seen[b], "block {b} in two atoms");
            seen[b] = true;
            assert_eq!(atoms.atom_of[b] as usize, a);
            assert_eq!(atoms.rel[b], expected_rel, "block {b} offset");
            assert_eq!(atoms.start[a] + atoms.rel[b], view.addr[b]);
            expected_rel += u64::from(view.size[b]);
        }
        assert_eq!(atoms.len[a], expected_rel, "atom {a} length");
    }
    assert!(seen.iter().all(|&s| s), "every block is in an atom");
    assert!(atoms.count() > 1, "a real kernel has many atoms");
}

/// The ISSUE property: every proposal either yields a layout that
/// lints clean under KV001–KV008 or is rejected by the admission gate
/// before scoring — and both branches actually occur.
#[test]
fn proposals_lint_clean_or_are_gate_rejected() {
    let s = study();
    let program = &s.kernel().program;
    let mut state = new_state();
    let mut rng = Rng::seed_from_u64(0xF00D);
    let (mut rejected, mut applied) = (0u32, 0u32);
    for i in 0..300 {
        let p = state.propose(&mut rng);
        if !state.admissible(&p) {
            rejected += 1;
            continue;
        }
        state.apply(&p);
        applied += 1;
        if i % 10 == 0 {
            let report = verify_structural(program, &state.current_view("cand"));
            assert!(
                report.is_clean(),
                "admitted candidate lints dirty: {:?}",
                report.diagnostics().first()
            );
        }
    }
    assert!(rejected > 0, "the gate never fired in 300 proposals");
    assert!(applied > 0, "no proposal was admissible in 300 tries");
    // The final layout (an arbitrary walk endpoint) is also clean.
    assert!(verify_structural(program, &state.current_view("end")).is_clean());
}

/// Differential: the incremental score equals a full re-evaluation of
/// both objective halves at every probed step of a seeded walk.
#[test]
fn incremental_score_matches_full_recompute_on_walks() {
    let s = study();
    let program = &s.kernel().program;
    let profile = s.averaged_os_profile();
    let config = CacheConfig::paper_default();
    let mut state = new_state();
    let mut rng = Rng::seed_from_u64(0xBEEF);
    for step in 0..250 {
        state.step(&mut rng, if step % 2 == 0 { 0.0 } else { 50_000.0 });
        if step % 25 != 0 {
            continue;
        }
        let view = state.current_view("probe");
        let spans = weighted_spans(program, profile, &view, Domain::Os);
        let full = predict_from_spans(&spans, &config);
        let full_excess: f64 = full.sets.iter().map(|p| p.excess).sum();
        assert_eq!(
            full_excess,
            state.scorer().conflict_excess() as f64,
            "conflict half diverged at step {step}"
        );
        assert_eq!(
            distance_cost(profile, &view),
            state.scorer().distance_total(),
            "distance half diverged at step {step}"
        );
    }
    let stats = state.stats();
    assert!(stats.scored > 0 && stats.rejected_worse > 0, "{stats:?}");
}

/// The determinism contract: identical winner, curves, stats, and best
/// layout bytes at one and four threads.
#[test]
fn search_is_byte_identical_across_thread_counts() {
    let s = study();
    let params = SearchParams {
        budget: 1500,
        restarts: 3,
        ..SearchParams::default()
    };
    let run = |threads| {
        run_search(
            &s.kernel().program,
            s.averaged_os_profile(),
            &seed_view(),
            &CacheConfig::paper_default(),
            &params,
            threads,
        )
    };
    let (one, four) = (run(1), run(4));
    assert_eq!(one.winner, four.winner);
    assert_eq!(one.initial, four.initial);
    assert_eq!(one.best_view.addr, four.best_view.addr);
    assert_eq!(one.best_view.size, four.best_view.size);
    for (a, b) in one.restarts.iter().zip(&four.restarts) {
        assert_eq!(a.best, b.best);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.view.addr, b.view.addr);
    }
}

/// The search never loses to its seed, and a materialized winner
/// re-assembles into a real `Layout` that lints clean.
#[test]
fn winner_improves_on_the_seed_and_materializes() {
    let s = study();
    let program = &s.kernel().program;
    let outcome = run_search(
        program,
        s.averaged_os_profile(),
        &seed_view(),
        &CacheConfig::paper_default(),
        &SearchParams {
            budget: 4000,
            restarts: 2,
            ..SearchParams::default()
        },
        2,
    );
    let best = outcome.restarts[outcome.winner as usize].best;
    assert!(best <= outcome.initial, "search lost to its seed");
    assert!(
        best < outcome.initial,
        "no improvement in 8000 candidates over OptS"
    );
    let layout = oslay_layout::Layout::assemble(
        program,
        "Search",
        &outcome.best_view.addr,
        &outcome.best_view.size,
    )
    .expect("searched view re-assembles");
    let view = LayoutView::from_layout(&layout);
    assert_eq!(view.addr, outcome.best_view.addr);
    assert!(verify_structural(program, &view).is_clean());
}
