//! The mutable search state: one candidate layout, its atom geometry,
//! and the incrementally scored objective.
//!
//! A step proposes an atom mutation, admission-gates it (would the
//! result lint clean under KV001–KV008?), trial-applies it, and either
//! keeps it or applies the exact inverse. Because every score update is
//! integer arithmetic, revert restores the objective bit-for-bit — no
//! drift over millions of candidates.
//!
//! The admission gate is the search-side image of the static checker:
//! atom sizes never change (so KV008 zero-size and the stretch honesty
//! rule hold by construction) and the gate rejects any placement that
//! would overlap another atom or escape the address limit (KV001). The
//! property test in `tests/search.rs` closes the loop by running
//! `verify_structural` on accepted candidates.

use crate::atoms::Atoms;
use crate::objective::{Objective, ObjectiveWeights};
use oslay_cache::CacheConfig;
use oslay_model::rng::Rng;
use oslay_model::Program;
use oslay_profile::Profile;
use oslay_verify::LayoutView;

/// One candidate mutation over atoms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proposal {
    /// Exchange the start addresses of two atoms.
    Swap {
        /// First atom.
        a: u32,
        /// Second atom.
        b: u32,
    },
    /// Move one atom to an explicit (line-aligned) start address.
    Rehome {
        /// The atom to move.
        atom: u32,
        /// Its new start address.
        addr: u64,
    },
}

/// What one search step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The proposal failed the admission gate; it was never scored.
    GateRejected,
    /// Scored no worse than the current layout and kept.
    Accepted,
    /// Scored worse but kept by the annealing acceptance rule.
    AcceptedWorse,
    /// Scored worse and reverted.
    RejectedWorse,
}

/// Counters over one walk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Proposals drawn.
    pub proposed: u64,
    /// Proposals rejected by the admission gate before scoring.
    pub gate_rejected: u64,
    /// Candidates actually scored (applied at least trially).
    pub scored: u64,
    /// Candidates kept with objective ≤ the incumbent.
    pub accepted: u64,
    /// Worse candidates kept by annealing.
    pub accepted_worse: u64,
    /// Worse candidates reverted.
    pub rejected_worse: u64,
}

/// One walk's layout, geometry, and objective.
pub struct SearchState {
    config: CacheConfig,
    limit: u64,
    name: String,
    /// Current per-block addresses.
    addr: Vec<u64>,
    /// Per-block effective sizes (constant).
    size: Vec<u32>,
    atoms: Atoms,
    /// Cumulative atom weights (inclusive) for hot-atom sampling.
    weight_prefix: Vec<u64>,
    total_weight: u64,
    /// Atom indices sorted by current start address.
    order: Vec<u32>,
    /// Inverse of `order`: each atom's rank.
    pos: Vec<usize>,
    obj: Objective,
    stats: WalkStats,
    best: u64,
    best_addr: Vec<u64>,
}

impl std::fmt::Debug for SearchState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchState")
            .field("name", &self.name)
            .field("atoms", &self.atoms.count())
            .field("limit", &self.limit)
            .field("objective", &self.obj.value())
            .field("best", &self.best)
            .finish()
    }
}

impl SearchState {
    /// Builds a walk starting from `seed` (typically the OptS view).
    ///
    /// The address space is the seed's span rounded up to a whole cache,
    /// plus `headroom_caches` empty caches of slack so atoms have room
    /// to move.
    #[must_use]
    pub fn new(
        program: &Program,
        profile: &Profile,
        seed: &LayoutView,
        config: &CacheConfig,
        weights: ObjectiveWeights,
        headroom_caches: u32,
    ) -> Self {
        let atoms = Atoms::decompose(program, profile, seed);
        let span_end = (0..seed.num_blocks())
            .map(|b| seed.end(b))
            .max()
            .unwrap_or(0);
        let cache = u64::from(config.size());
        let limit = span_end.div_ceil(cache) * cache + u64::from(headroom_caches) * cache;
        let mut order: Vec<u32> = (0..atoms.count() as u32).collect();
        order.sort_by_key(|&a| atoms.start[a as usize]);
        let mut pos = vec![0; atoms.count()];
        for (rank, &a) in order.iter().enumerate() {
            pos[a as usize] = rank;
        }
        let mut total = 0u64;
        let weight_prefix = atoms
            .weight
            .iter()
            .map(|w| {
                total += w;
                total
            })
            .collect();
        let obj = Objective::new(profile, seed, config, weights, limit);
        let best = obj.value();
        Self {
            config: *config,
            limit,
            name: seed.name.clone(),
            addr: seed.addr.clone(),
            size: seed.size.clone(),
            atoms,
            weight_prefix,
            total_weight: total,
            order,
            pos,
            obj,
            stats: WalkStats::default(),
            best,
            best_addr: seed.addr.clone(),
        }
    }

    /// The exclusive address bound placements must stay under.
    #[must_use]
    pub fn addr_limit(&self) -> u64 {
        self.limit
    }

    /// The atom decomposition (starts reflect the current layout).
    #[must_use]
    pub fn atoms(&self) -> &Atoms {
        &self.atoms
    }

    /// Current objective value.
    #[must_use]
    pub fn objective(&self) -> u64 {
        self.obj.value()
    }

    /// The scorer (conflict/distance halves, per-set pressure).
    #[must_use]
    pub fn scorer(&self) -> &Objective {
        &self.obj
    }

    /// Best objective seen on this walk.
    #[must_use]
    pub fn best_objective(&self) -> u64 {
        self.best
    }

    /// Walk counters so far.
    #[must_use]
    pub fn stats(&self) -> WalkStats {
        self.stats
    }

    /// The current layout as a view.
    #[must_use]
    pub fn current_view(&self, name: &str) -> LayoutView {
        LayoutView {
            name: name.to_owned(),
            addr: self.addr.clone(),
            size: self.size.clone(),
        }
    }

    /// The best layout seen on this walk as a view.
    #[must_use]
    pub fn best_view(&self, name: &str) -> LayoutView {
        LayoutView {
            name: name.to_owned(),
            addr: self.best_addr.clone(),
            size: self.size.clone(),
        }
    }

    fn line(&self) -> u64 {
        1u64 << self.config.line_shift()
    }

    /// A random line-aligned start at which an atom of `len` bytes still
    /// fits under the limit.
    fn random_slot(&self, rng: &mut Rng, len: u64) -> u64 {
        let lines = (self.limit - len.min(self.limit)) / self.line() + 1;
        rng.gen_range(0..lines) * self.line()
    }

    /// Draws the next proposal. Roughly 40% atom swaps, 40% uniform
    /// re-homes, 20% predictor-guided re-homes (a weight-proportional
    /// hot atom aimed at the coolest of a few candidate slots).
    pub fn propose(&self, rng: &mut Rng) -> Proposal {
        let n = self.atoms.count() as u32;
        match rng.gen_range(0u32..10) {
            0..=3 => Proposal::Swap {
                a: rng.gen_range(0..n),
                b: rng.gen_range(0..n),
            },
            4..=7 => {
                let atom = rng.gen_range(0..n);
                let addr = self.random_slot(rng, self.atoms.len[atom as usize]);
                Proposal::Rehome { atom, addr }
            }
            _ => {
                let atom = if self.total_weight == 0 {
                    rng.gen_range(0..n)
                } else {
                    let t = rng.gen_range(0..self.total_weight);
                    self.weight_prefix.partition_point(|&p| p <= t) as u32
                };
                let len = self.atoms.len[atom as usize];
                // Aim at the coolest of a few slots: the first line's
                // set pressure is the predictor's verdict on landing
                // there.
                let mut best_addr = self.random_slot(rng, len);
                let mut best_heat = self
                    .obj
                    .pressure()
                    .set_weight(self.config.set_of(best_addr) as usize);
                for _ in 0..3 {
                    let cand = self.random_slot(rng, len);
                    let set = self.config.set_of(cand) as usize;
                    let heat = self.obj.pressure().set_weight(set);
                    if heat < best_heat {
                        best_heat = heat;
                        best_addr = cand;
                    }
                }
                Proposal::Rehome {
                    atom,
                    addr: best_addr,
                }
            }
        }
    }

    /// Would placing `atom` at `new_start` overlap any atom other than
    /// the excluded pair, or escape the limit?
    fn fits(&self, atom: u32, new_start: u64, excl: [u32; 2]) -> bool {
        let len = self.atoms.len[atom as usize];
        if new_start
            .checked_add(len)
            .is_none_or(|end| end > self.limit)
        {
            return false;
        }
        let i = self
            .order
            .partition_point(|&o| self.atoms.start[o as usize] < new_start);
        // Nearest unexcluded predecessor must end at or before new_start.
        let mut j = i;
        while j > 0 {
            let o = self.order[j - 1];
            if o == excl[0] || o == excl[1] {
                j -= 1;
                continue;
            }
            if self.atoms.start[o as usize] + self.atoms.len[o as usize] > new_start {
                return false;
            }
            break;
        }
        // Nearest unexcluded successor must start at or after the end.
        let mut k = i;
        while k < self.order.len() {
            let o = self.order[k];
            if o == excl[0] || o == excl[1] {
                k += 1;
                continue;
            }
            if new_start + len > self.atoms.start[o as usize] {
                return false;
            }
            break;
        }
        true
    }

    /// The admission gate: `true` iff applying the proposal yields a
    /// layout the static checker would pass (no overlaps, in bounds).
    /// Sizes never change, so this is the whole KV001–KV008 surface a
    /// mutation can touch.
    #[must_use]
    pub fn admissible(&self, p: &Proposal) -> bool {
        match *p {
            Proposal::Swap { a, b } => {
                if a == b {
                    return false;
                }
                let (sa, sb) = (self.atoms.start[a as usize], self.atoms.start[b as usize]);
                let (la, lb) = (self.atoms.len[a as usize], self.atoms.len[b as usize]);
                // The two relocated atoms must not overlap each other…
                let disjoint = sb + la <= sa || sa + lb <= sb;
                // …or anyone else.
                disjoint && self.fits(a, sb, [a, b]) && self.fits(b, sa, [a, b])
            }
            Proposal::Rehome { atom, addr } => {
                addr != self.atoms.start[atom as usize] && self.fits(atom, addr, [atom, atom])
            }
        }
    }

    /// The proposal that exactly undoes `p` from the current state.
    /// Capture it *before* applying `p`.
    #[must_use]
    pub fn inverse_of(&self, p: &Proposal) -> Proposal {
        match *p {
            Proposal::Swap { a, b } => Proposal::Swap { a, b },
            Proposal::Rehome { atom, .. } => Proposal::Rehome {
                atom,
                addr: self.atoms.start[atom as usize],
            },
        }
    }

    /// Applies an **admissible** proposal, updating geometry and score.
    ///
    /// Callers must gate with [`SearchState::admissible`] first:
    /// applying an inadmissible proposal corrupts the overlap order.
    pub fn apply(&mut self, p: &Proposal) {
        self.obj.begin_mutation();
        match *p {
            Proposal::Swap { a, b } => {
                let (sa, sb) = (self.atoms.start[a as usize], self.atoms.start[b as usize]);
                self.relocate(a, sb);
                self.relocate(b, sa);
                self.rescore_atom_arcs(a);
                self.rescore_atom_arcs(b);
            }
            Proposal::Rehome { atom, addr } => {
                self.relocate(atom, addr);
                self.rescore_atom_arcs(atom);
            }
        }
    }

    /// Phase 1 of a move: new start, per-block addresses, pressure, and
    /// the atom's rank in the overlap order.
    fn relocate(&mut self, atom: u32, new_start: u64) {
        self.atoms.start[atom as usize] = new_start;
        let (lo, hi) = (
            self.atoms.first[atom as usize] as usize,
            self.atoms.first[atom as usize + 1] as usize,
        );
        for k in lo..hi {
            let b = self.atoms.members[k] as usize;
            let new = new_start + self.atoms.rel[b];
            self.obj.move_block(b, self.addr[b], new);
            self.addr[b] = new;
        }
        // Re-rank in the address order (remove + insert shifts only the
        // span between the old and new rank).
        let old = self.pos[atom as usize];
        self.order.remove(old);
        let new = self
            .order
            .partition_point(|&o| self.atoms.start[o as usize] < new_start);
        self.order.insert(new, atom);
        for rank in old.min(new)..=old.max(new) {
            self.pos[self.order[rank] as usize] = rank;
        }
    }

    /// Phase 2: re-price arcs against the final addresses.
    fn rescore_atom_arcs(&mut self, atom: u32) {
        let (lo, hi) = (
            self.atoms.first[atom as usize] as usize,
            self.atoms.first[atom as usize + 1] as usize,
        );
        for k in lo..hi {
            let b = self.atoms.members[k] as usize;
            self.obj.rescore_block_arcs(b, &self.addr);
        }
    }

    /// One search step: propose, gate, trial-apply, accept or revert.
    ///
    /// `temperature == 0` is pure hill-climbing (never accepts a worse
    /// candidate); positive temperatures accept a worse candidate with
    /// probability `exp(-Δ/T)`.
    pub fn step(&mut self, rng: &mut Rng, temperature: f64) -> StepOutcome {
        let p = self.propose(rng);
        self.stats.proposed += 1;
        if !self.admissible(&p) {
            self.stats.gate_rejected += 1;
            return StepOutcome::GateRejected;
        }
        let inverse = self.inverse_of(&p);
        let before = self.obj.value();
        self.apply(&p);
        self.stats.scored += 1;
        let after = self.obj.value();
        if after <= before {
            self.stats.accepted += 1;
            if after < self.best {
                self.best = after;
                self.best_addr.copy_from_slice(&self.addr);
            }
            StepOutcome::Accepted
        } else if temperature > 0.0
            && rng.gen_f64() < (-((after - before) as f64) / temperature).exp()
        {
            self.stats.accepted_worse += 1;
            StepOutcome::AcceptedWorse
        } else {
            self.apply(&inverse);
            self.stats.rejected_worse += 1;
            StepOutcome::RejectedWorse
        }
    }
}
