//! Restart fan-out and the annealing schedule.
//!
//! Restart 0 is pure hill-climbing from the seed; every later restart
//! runs simulated annealing with a geometrically cooled temperature
//! (`T(step) = T0 · α^step`, with `α` chosen so the final temperature
//! is `T0 / 1000`) and a restart-specific starting temperature, so the
//! fan explores at several aggressiveness levels at once.
//!
//! **Determinism contract.** Each restart draws from its own
//! `Rng::seed_from_u64(master ^ (0x5EA7_C000 + restart))`, restarts fan
//! out over [`oslay::exec::parallel_map`] (which returns results in job
//! order regardless of thread count), and the winner is the minimum of
//! `(best objective, restart index)` — so the chosen layout, the
//! report, and every per-restart curve are byte-identical at any
//! `--threads N`.

use crate::objective::ObjectiveWeights;
use crate::state::{SearchState, WalkStats};
use oslay_cache::CacheConfig;
use oslay_model::rng::Rng;
use oslay_model::Program;
use oslay_observe::flight;
use oslay_profile::Profile;
use oslay_verify::LayoutView;

/// Search configuration.
#[derive(Clone, Copy, Debug)]
pub struct SearchParams {
    /// Candidate proposals per restart (default `100_000` — about a
    /// second of wall clock at the small scale).
    pub budget: u64,
    /// Number of independent restarts (restart 0 is pure hill-climbing).
    pub restarts: u32,
    /// Master seed; each restart derives its own stream.
    pub seed: u64,
    /// Objective weights.
    pub weights: ObjectiveWeights,
    /// Empty caches of address slack beyond the seed's span.
    pub headroom_caches: u32,
    /// Approximate number of best-so-far curve samples kept per restart.
    pub curve_points: u64,
    /// Weight of the abstract-interpretation re-ranking term. When
    /// non-zero, each restart's best layout is classified statically
    /// (`oslay_verify::absint`) and the winner minimizes
    /// `best + w_absint x unguaranteed-weight` — the execution-weighted
    /// accesses the analysis could not prove always-hit or persistent.
    /// `0` (the default) keeps the pure conflict objective.
    pub w_absint: u64,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            budget: 100_000,
            restarts: 6,
            seed: 0x05_1995,
            weights: ObjectiveWeights::default(),
            headroom_caches: 2,
            curve_points: 32,
            w_absint: 0,
        }
    }
}

/// One restart's result.
#[derive(Clone, Debug)]
pub struct RestartOutcome {
    /// Restart index.
    pub restart: u32,
    /// Objective of the seed layout.
    pub initial: u64,
    /// Best objective reached.
    pub best: u64,
    /// Walk counters.
    pub stats: WalkStats,
    /// `(step, best objective so far)` samples, ending at the budget.
    pub curve: Vec<(u64, u64)>,
    /// The best layout this restart found.
    pub view: LayoutView,
}

/// The full fan-out's result.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Objective of the seed layout.
    pub initial: u64,
    /// Index of the winning restart.
    pub winner: u32,
    /// Every restart, in index order.
    pub restarts: Vec<RestartOutcome>,
    /// The winning layout, named `Search`.
    pub best_view: LayoutView,
}

fn run_restart(
    program: &Program,
    profile: &Profile,
    seed_view: &LayoutView,
    config: &CacheConfig,
    params: &SearchParams,
    restart: u32,
) -> RestartOutcome {
    let _g = flight::span_with_args(
        "search.restart",
        &[
            ("restart", f64::from(restart)),
            ("budget", params.budget as f64),
        ],
    );
    let mut state = SearchState::new(
        program,
        profile,
        seed_view,
        config,
        params.weights,
        params.headroom_caches,
    );
    let mut rng = Rng::seed_from_u64(params.seed ^ (0x5EA7_C000 + u64::from(restart)));
    let initial = state.objective();
    let budget = params.budget.max(1);
    // Restart 0 climbs; later restarts anneal, hotter fans first.
    let t0 = if restart == 0 {
        0.0
    } else {
        initial as f64 / (100.0 * f64::from(restart))
    };
    let alpha = if t0 > 0.0 {
        (1e-3f64).powf(1.0 / budget as f64)
    } else {
        0.0
    };
    let stride = (budget / params.curve_points.max(1)).max(1);
    let mut temperature = t0;
    let mut curve = Vec::new();
    for step in 0..budget {
        if step % stride == 0 {
            curve.push((step, state.best_objective()));
        }
        state.step(&mut rng, temperature);
        temperature *= alpha;
    }
    curve.push((budget, state.best_objective()));
    let stats = state.stats();
    flight::counter("search.proposed", stats.proposed as f64);
    flight::counter("search.scored", stats.scored as f64);
    flight::counter("search.accepted", stats.accepted as f64);
    flight::counter("search.gate_rejected", stats.gate_rejected as f64);
    RestartOutcome {
        restart,
        initial,
        best: state.best_objective(),
        stats,
        curve,
        view: state.best_view("Search"),
    }
}

/// Runs the full multi-restart search, fanning restarts over
/// `threads` workers.
///
/// The result — winner, views, curves — is byte-identical at any
/// thread count (see the module docs for the contract).
#[must_use]
pub fn run_search(
    program: &Program,
    profile: &Profile,
    seed_view: &LayoutView,
    config: &CacheConfig,
    params: &SearchParams,
    threads: usize,
) -> SearchOutcome {
    let _g = flight::span_with_args(
        "search.run",
        &[
            ("restarts", f64::from(params.restarts.max(1))),
            ("budget", params.budget as f64),
        ],
    );
    let jobs: Vec<u32> = (0..params.restarts.max(1)).collect();
    let restarts = oslay::exec::parallel_map(threads, jobs, |_, r| {
        run_restart(program, profile, seed_view, config, params, r)
    });
    let winner = if params.w_absint == 0 {
        restarts
            .iter()
            .min_by_key(|r| (r.best, r.restart))
            .expect("at least one restart")
            .restart
    } else {
        // Re-rank each restart's best layout by the conflict objective
        // plus the statically unguaranteed weight. Classification is per
        // candidate (restarts.len() of them, not per proposal), so the
        // cost stays negligible next to the walk itself.
        let absint = oslay_verify::AbsintParams::new(*config);
        restarts
            .iter()
            .map(|r| {
                let c = oslay_verify::classify_layout(program, profile, &r.view, &absint);
                let unguaranteed = c
                    .weighted
                    .iter()
                    .sum::<u64>()
                    .saturating_sub(c.weighted[oslay_verify::LineClass::AlwaysHit.index()])
                    .saturating_sub(c.weighted[oslay_verify::LineClass::Persistent.index()]);
                let score = r
                    .best
                    .saturating_add(params.w_absint.saturating_mul(unguaranteed));
                (score, r.restart)
            })
            .min()
            .expect("at least one restart")
            .1
    };
    let best_view = restarts[winner as usize].view.clone();
    SearchOutcome {
        initial: restarts[0].initial,
        winner,
        restarts,
        best_view,
    }
}
