//! Atom decomposition: the search's unit of motion.
//!
//! An *atom* is a maximal run of blocks glued by placed fall-through
//! adjacency: block `p` is glued to the next block `b` when `b` is
//! `p`'s fall-through target, `p` carries no escape-branch stretch, and
//! `b` sits exactly at `p`'s end. The layout builder's stretch honesty
//! rule (a block either pays one escape-branch word or has its
//! fall-through adjacent) means moving whole atoms — never splitting
//! them — preserves that accounting: a searched view re-materializes
//! into a real `Layout` with the same per-block effective sizes. Atoms
//! are this codebase's equivalent of ext-TSP *chains*: the units basic
//! block reordering permutes without paying new branch bytes.

use oslay_model::Program;
use oslay_profile::Profile;
use oslay_verify::LayoutView;

/// The atom decomposition of a seed view (CSR over block indices, in
/// placement order inside each atom).
#[derive(Clone, Debug)]
pub struct Atoms {
    /// Offsets into [`Atoms::members`] per atom (length `count + 1`).
    pub first: Vec<u32>,
    /// Block indices, grouped by atom in placement order.
    pub members: Vec<u32>,
    /// Current start address per atom (mutated by the search).
    pub start: Vec<u64>,
    /// Total effective byte length per atom (constant).
    pub len: Vec<u64>,
    /// Total profile node weight per atom (constant).
    pub weight: Vec<u64>,
    /// Per-block offset from its atom's start (constant).
    pub rel: Vec<u64>,
    /// Per-block owning atom (constant).
    pub atom_of: Vec<u32>,
}

impl Atoms {
    /// Number of atoms.
    #[must_use]
    pub fn count(&self) -> usize {
        self.start.len()
    }

    /// Block indices of one atom, in placement order.
    #[must_use]
    pub fn blocks(&self, atom: usize) -> &[u32] {
        &self.members[self.first[atom] as usize..self.first[atom + 1] as usize]
    }

    /// Decomposes a seed view into maximal glued runs.
    ///
    /// # Panics
    ///
    /// Panics if the seed view violates the builder's stretch honesty
    /// rule (a zero-stretch block whose fall-through is not adjacent, or
    /// a stretch other than zero or one word) — such a view could not
    /// have come from `LayoutBuilder` and could not be re-assembled.
    #[must_use]
    pub fn decompose(program: &Program, profile: &Profile, view: &LayoutView) -> Self {
        use oslay_model::{BlockId, WORD_BYTES};

        let n = view.num_blocks();
        assert_eq!(
            n,
            program.num_blocks(),
            "view and program disagree on block count"
        );
        let order = view.by_addr();
        let mut this = Self {
            first: vec![0],
            members: Vec::with_capacity(n),
            start: Vec::new(),
            len: Vec::new(),
            weight: Vec::new(),
            rel: vec![0; n],
            atom_of: vec![0; n],
        };
        let mut i = 0;
        while i < order.len() {
            let atom = this.start.len() as u32;
            let start = view.addr[order[i]];
            let (mut len, mut weight) = (0u64, 0u64);
            loop {
                let b = order[i];
                this.atom_of[b] = atom;
                this.rel[b] = view.addr[b] - start;
                this.members.push(b as u32);
                len += u64::from(view.size[b]);
                weight += profile.node_weight(BlockId::new(b));
                let block = program.block(BlockId::new(b));
                let stretch = view.size[b] - block.size();
                assert!(
                    stretch == 0 || stretch == WORD_BYTES,
                    "seed block {b} has stretch {stretch}"
                );
                let glued_next = match block.fallthrough() {
                    Some(ft) if stretch == 0 => {
                        let next = order.get(i + 1).copied();
                        assert_eq!(
                            next.filter(|&x| {
                                view.addr[x] == view.addr[b] + u64::from(block.size())
                            }),
                            Some(ft.index()),
                            "seed block {b} has no escape branch but its fall-through \
                             is not adjacent"
                        );
                        true
                    }
                    _ => false,
                };
                i += 1;
                if !glued_next {
                    break;
                }
            }
            this.start.push(start);
            this.len.push(len);
            this.weight.push(weight);
            this.first.push(this.members.len() as u32);
        }
        this
    }
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end (decomposition round-trip, honesty panics)
    // in tests/search.rs against real study programs; no synthetic
    // Program builder is duplicated here.
}
