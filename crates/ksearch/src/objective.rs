//! The composite search objective: predicted conflict excess plus an
//! ext-TSP-style distance cost, both maintained incrementally in exact
//! integer arithmetic.
//!
//! ```text
//! J(layout) = w_conflict · 1000 · Σ_set excess(set)
//!           + w_distance · Σ_arc count(arc) · penalty_pm(arc)
//! ```
//!
//! The conflict term is the trace-free predictor's per-set excess (the
//! fetch weight each set carries beyond its single hottest line),
//! scaled by 1000 so both terms share a per-mille unit. The distance
//! term follows the ext-TSP objective of Newell & Pupyrev's *Improved
//! Basic Block Reordering*: each profiled arc pays a per-mille penalty
//! by placement distance — glued fall-throughs are free, short forward
//! branches cheap, short backward branches (loop backedges) a little
//! dearer, and anything outside Codestitcher-style locality windows
//! pays full price.
//!
//! Both halves update incrementally: moving a block re-scores only the
//! cache lines its span touches and the arcs incident to it. A
//! generation stamp per arc dedups arcs whose both endpoints moved in
//! the same mutation, so a candidate is scored with zero allocation.

use oslay_cache::CacheConfig;
use oslay_model::BlockId;
use oslay_profile::Profile;
use oslay_verify::{IncrementalPressure, LayoutView};

/// Arcs at least this far forward pay the full 1000‰ penalty.
pub const FORWARD_WINDOW: u64 = 1024;
/// Arcs at least this far backward pay the full 1000‰ penalty.
pub const BACKWARD_WINDOW: u64 = 640;

/// Relative weights of the two objective halves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectiveWeights {
    /// Multiplier for the (×1000) predicted conflict excess.
    pub conflict: u64,
    /// Multiplier for the per-mille arc distance cost.
    pub distance: u64,
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        Self {
            conflict: 1,
            distance: 1,
        }
    }
}

/// Per-mille penalty for one taken arc, by placement distance.
///
/// `src_end` is the *effective* end of the source block (including its
/// escape-branch stretch); `dst` is the target's start address.
#[must_use]
pub fn distance_penalty_pm(src_end: u64, dst: u64) -> u64 {
    if dst == src_end {
        // Glued fall-through: free, exactly what ext-TSP maximizes.
        0
    } else if dst > src_end {
        let d = dst - src_end;
        if d < FORWARD_WINDOW {
            100 + 900 * d / FORWARD_WINDOW
        } else {
            1000
        }
    } else {
        let d = src_end - dst;
        if d < BACKWARD_WINDOW {
            300 + 700 * d / BACKWARD_WINDOW
        } else {
            1000
        }
    }
}

/// Full-recompute distance cost of a view — the reference the
/// incremental bookkeeping is differential-tested against.
#[must_use]
pub fn distance_cost(profile: &Profile, view: &LayoutView) -> u64 {
    profile
        .arcs()
        .filter(|a| a.count > 0 && a.src != a.dst)
        .map(|a| a.count * distance_penalty_pm(view.end(a.src.index()), view.addr[a.dst.index()]))
        .sum()
}

struct Arc {
    src: u32,
    dst: u32,
    count: u64,
}

/// Incrementally maintained composite objective over one layout.
///
/// The caller owns the address array (the search state); the objective
/// mirrors per-set pressure and per-arc distance costs. A mutation is
/// reported in two phases: first [`Objective::move_block`] for every
/// moved block (pressure), then [`Objective::rescore_block_arcs`] for
/// every moved block against the *final* addresses (distance), with
/// [`Objective::begin_mutation`] bumping the dedup stamp in between
/// candidates.
pub struct Objective {
    weights: ObjectiveWeights,
    pressure: IncrementalPressure,
    /// Profile node weight per block.
    weight: Vec<u64>,
    /// Effective (stretch-inclusive) size per block — constant under
    /// atom moves.
    size: Vec<u32>,
    arcs: Vec<Arc>,
    arc_cost: Vec<u64>,
    arc_stamp: Vec<u64>,
    /// CSR offsets into `incident` per block (length `num_blocks + 1`).
    incident_first: Vec<u32>,
    /// Arc ids incident to each block (each arc appears under both
    /// endpoints).
    incident: Vec<u32>,
    dist_total: u64,
    tick: u64,
}

impl std::fmt::Debug for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Objective")
            .field("weights", &self.weights)
            .field("arcs", &self.arcs.len())
            .field("conflict_excess", &self.pressure.total_excess())
            .field("distance_total", &self.dist_total)
            .finish()
    }
}

impl Objective {
    /// Builds the objective for `view`, admitting spans anywhere in
    /// `[0, addr_limit)`.
    #[must_use]
    pub fn new(
        profile: &Profile,
        view: &LayoutView,
        config: &CacheConfig,
        weights: ObjectiveWeights,
        addr_limit: u64,
    ) -> Self {
        let n = view.num_blocks();
        let weight: Vec<u64> = (0..n)
            .map(|i| profile.node_weight(BlockId::new(i)))
            .collect();
        let size = view.size.clone();
        let mut pressure = IncrementalPressure::new(config, addr_limit);
        for i in 0..n {
            pressure.add_span(view.addr[i], u64::from(size[i]), weight[i]);
        }
        let arcs: Vec<Arc> = profile
            .arcs()
            .filter(|a| a.count > 0 && a.src != a.dst)
            .map(|a| Arc {
                src: a.src.index() as u32,
                dst: a.dst.index() as u32,
                count: a.count,
            })
            .collect();
        let mut incident_first = vec![0u32; n + 1];
        for a in &arcs {
            incident_first[a.src as usize + 1] += 1;
            incident_first[a.dst as usize + 1] += 1;
        }
        for i in 0..n {
            incident_first[i + 1] += incident_first[i];
        }
        let mut cursor = incident_first.clone();
        let mut incident = vec![0u32; arcs.len() * 2];
        for (id, a) in arcs.iter().enumerate() {
            for b in [a.src as usize, a.dst as usize] {
                incident[cursor[b] as usize] = id as u32;
                cursor[b] += 1;
            }
        }
        let mut this = Self {
            weights,
            pressure,
            weight,
            size,
            arcs,
            arc_cost: Vec::new(),
            arc_stamp: Vec::new(),
            incident_first,
            incident,
            dist_total: 0,
            tick: 0,
        };
        this.arc_cost = (0..this.arcs.len())
            .map(|id| this.arc_cost_at(id, &view.addr))
            .collect();
        this.arc_stamp = vec![0; this.arcs.len()];
        this.dist_total = this.arc_cost.iter().sum();
        this
    }

    fn arc_cost_at(&self, id: usize, addr: &[u64]) -> u64 {
        let a = &self.arcs[id];
        let src_end = addr[a.src as usize] + u64::from(self.size[a.src as usize]);
        a.count * distance_penalty_pm(src_end, addr[a.dst as usize])
    }

    /// Current objective value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.weights.conflict * 1000 * self.pressure.total_excess()
            + self.weights.distance * self.dist_total
    }

    /// The conflict half: total predicted per-set excess (unscaled).
    #[must_use]
    pub fn conflict_excess(&self) -> u64 {
        self.pressure.total_excess()
    }

    /// The distance half: total per-mille arc cost.
    #[must_use]
    pub fn distance_total(&self) -> u64 {
        self.dist_total
    }

    /// Read-only access to the per-set pressure model (used by
    /// predictor-targeted proposals and the differential tests).
    #[must_use]
    pub fn pressure(&self) -> &IncrementalPressure {
        &self.pressure
    }

    /// Starts a new mutation: subsequent [`Objective::rescore_block_arcs`]
    /// calls dedup arcs against this generation.
    pub fn begin_mutation(&mut self) {
        self.tick += 1;
    }

    /// Phase 1: re-homes one block's fetch weight from `old` to `new`.
    pub fn move_block(&mut self, block: usize, old: u64, new: u64) {
        let (w, len) = (self.weight[block], u64::from(self.size[block]));
        self.pressure.remove_span(old, len, w);
        self.pressure.add_span(new, len, w);
    }

    /// Phase 2: re-prices every arc incident to `block` against the
    /// final `addr` array. Arcs already re-priced in this mutation (both
    /// endpoints moved) are skipped via the generation stamp.
    pub fn rescore_block_arcs(&mut self, block: usize, addr: &[u64]) {
        let (lo, hi) = (
            self.incident_first[block] as usize,
            self.incident_first[block + 1] as usize,
        );
        for k in lo..hi {
            let id = self.incident[k] as usize;
            if self.arc_stamp[id] == self.tick {
                continue;
            }
            self.arc_stamp[id] = self.tick;
            let new_cost = self.arc_cost_at(id, addr);
            self.dist_total = self.dist_total - self.arc_cost[id] + new_cost;
            self.arc_cost[id] = new_cost;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glued_fallthrough_is_free() {
        assert_eq!(distance_penalty_pm(128, 128), 0);
    }

    #[test]
    fn forward_window_prices_below_backward() {
        // A short forward branch is cheaper than a short backward one.
        assert!(distance_penalty_pm(100, 104) < distance_penalty_pm(104, 100));
        // Monotone in distance within each window.
        assert!(distance_penalty_pm(0, 8) < distance_penalty_pm(0, 512));
        assert!(distance_penalty_pm(512, 480) < distance_penalty_pm(512, 32));
    }

    #[test]
    fn far_arcs_pay_full_price_both_ways() {
        assert_eq!(distance_penalty_pm(0, FORWARD_WINDOW), 1000);
        assert_eq!(distance_penalty_pm(BACKWARD_WINDOW, 0), 1000);
        assert_eq!(distance_penalty_pm(0, 1 << 40), 1000);
    }

    #[test]
    fn window_edges_stay_in_per_mille_range() {
        assert_eq!(distance_penalty_pm(0, 1), 100);
        assert_eq!(distance_penalty_pm(1, 0), 301);
        assert!(distance_penalty_pm(0, FORWARD_WINDOW - 1) < 1000);
        assert!(distance_penalty_pm(BACKWARD_WINDOW - 1, 0) < 1000);
    }
}
