//! Metaheuristic layout search — the repo's first result the paper does
//! not contain.
//!
//! The paper's OptS/OptL layouts are hand-derived heuristics: classify
//! blocks by weight, pack sequences greedily, reserve a SelfConfFree
//! area. This crate searches the layout space *directly*, using the
//! machinery the earlier milestones built:
//!
//! * the trace-free conflict predictor
//!   ([`predict_from_spans`](oslay_verify::predict_from_spans)) supplies
//!   the conflict half of the objective, maintained incrementally by
//!   [`IncrementalPressure`](oslay_verify::IncrementalPressure) so one
//!   candidate costs a handful of array adds, not a full re-fold;
//! * an ext-TSP-style distance term (after Newell & Pupyrev's *Improved
//!   Basic Block Reordering* and Codestitcher's distance-bucketed
//!   placement) keeps hot arcs short: glued fall-throughs are free,
//!   short forward branches cheap, far jumps expensive;
//! * [`LayoutView`](oslay_verify::LayoutView) mutations — atom swaps and
//!   re-homes — are admission-gated before scoring so every candidate
//!   the walk scores would lint clean under KV001–KV008;
//! * multi-seed restarts (hill-climbing plus simulated annealing) fan
//!   out over [`oslay::exec::parallel_map`] with byte-identical winner
//!   selection at any thread count.
//!
//! The search moves *atoms*: maximal runs of blocks glued by placed
//! fall-through adjacency. Moving whole atoms preserves the layout's
//! stretch accounting (a block with no escape branch keeps its
//! fall-through adjacent), which is what lets a searched view be
//! re-materialized into a real `oslay_layout::Layout` via
//! `Layout::assemble` without re-deriving branch stretches.
//!
//! Everything is integer arithmetic: trial-apply-then-revert restores
//! state bit-for-bit, and the differential tests assert the incremental
//! score equals the full predictor exactly at every probed step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod atoms;
mod engine;
mod objective;
mod state;

pub use atoms::Atoms;
pub use engine::{run_search, RestartOutcome, SearchOutcome, SearchParams};
pub use objective::{
    distance_cost, distance_penalty_pm, Objective, ObjectiveWeights, BACKWARD_WINDOW,
    FORWARD_WINDOW,
};
pub use state::{Proposal, SearchState, StepOutcome, WalkStats};
