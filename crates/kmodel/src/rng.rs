//! Deterministic pseudo-random number generation for the synthetic
//! generators and the trace engine.
//!
//! The reproduction must be buildable and bit-reproducible on an
//! air-gapped machine, so instead of the `rand` crate we carry a small
//! xoshiro256** generator (Blackman & Vigna) seeded through splitmix64 —
//! the exact construction the xoshiro authors recommend for expanding a
//! 64-bit seed into a full 256-bit state. The statistical quality is far
//! beyond what the stochastic CFG walk needs, and the stream for a given
//! seed is stable across platforms and Rust versions (unlike `StdRng`,
//! whose algorithm is explicitly unspecified).
//!
//! The API mirrors the subset of `rand::Rng` the workspace used, so call
//! sites read the same: [`Rng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen_f64`].

/// Expands a 64-bit seed into well-mixed 64-bit values (splitmix64).
///
/// Used only for seeding; the main stream comes from xoshiro256**.
#[must_use]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// Cheap to construct, `Clone`, and completely determined by its seed:
/// two generators built with the same seed produce identical streams on
/// every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded with splitmix64 so that similar seeds (0, 1,
    /// 2, …) still yield uncorrelated streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Returns the next 64 raw bits of the stream.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits of the stream.
    #[must_use]
    pub fn gen_f64(&mut self) -> f64 {
        // 2^-53; the standard bits-to-double construction.
        (self.next_u64() >> 11) as f64 * 1.110_223_024_625_156_5e-16
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen_f64() < p
    }

    /// Uniform sample from a range, mirroring `rand`'s `gen_range`.
    ///
    /// Accepts `Range`/`RangeInclusive` over `usize`, `u32`, `u64`, and
    /// half-open `Range<f64>`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform integer in `[0, bound)` by Lemire's multiply-shift method
    /// (with rejection to remove modulo bias).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling on the top bits: unbiased and branch-cheap.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges a [`Rng`] can sample uniformly, mirroring `rand`'s
/// `SampleRange` so `gen_range(a..b)` and `gen_range(a..=b)` both work.
/// The type parameter is the sampled value's type, which lets integer
/// literals in ranges infer their type from the call site.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample(self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample(self, rng: &mut Rng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + rng.bounded_u64(span + 1) as $ty
            }
        }
    )*};
}

impl_int_range!(usize, u32, u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_stream_is_stable() {
        // Pin the exact stream so an accidental algorithm change is caught:
        // the synthetic kernels (and thus every figure) depend on it.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11_091_344_671_253_066_420,
                13_793_997_310_169_335_082,
                1_900_383_378_846_508_768,
                7_684_712_102_626_143_532,
            ]
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 should appear");
        for _ in 0..1000 {
            let v = r.gen_range(3u32..=7);
            assert!((3..=7).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range(1.5f64..7.0);
            assert!((1.5..7.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn bounded_is_unbiased_across_buckets() {
        let mut r = Rng::seed_from_u64(13);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.gen_range(0usize..7)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }
}
