//! Error type for program construction and validation.

use std::error::Error;
use std::fmt;

use crate::{BlockId, RoutineId, SeedKind};

/// Reasons a [`crate::Program`] failed to validate.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ModelError {
    /// A block was left without a terminator.
    MissingTerminator(BlockId),
    /// A terminator targets a block outside its own routine.
    CrossRoutineEdge {
        /// The offending block.
        src: BlockId,
        /// The out-of-routine target.
        dst: BlockId,
    },
    /// A terminator references a block id past the end of the block table.
    DanglingBlock {
        /// The offending block.
        src: BlockId,
        /// The nonexistent target.
        dst: BlockId,
    },
    /// A call references a routine id past the end of the routine table.
    DanglingCallee {
        /// The calling block.
        src: BlockId,
        /// The nonexistent callee.
        callee: RoutineId,
    },
    /// Branch probabilities are not positive or do not sum to 1.
    BadProbabilities {
        /// The offending block.
        src: BlockId,
        /// The probability sum that was found.
        sum: f64,
    },
    /// A branch or dispatch has no targets.
    EmptyTargets(BlockId),
    /// A basic block has zero size.
    ZeroSizeBlock(BlockId),
    /// A routine has no blocks.
    EmptyRoutine(RoutineId),
    /// Two routines share a name.
    DuplicateRoutineName(String),
    /// An OS program is missing one of the four seed routines.
    MissingSeed(SeedKind),
    /// A seed points at a routine id past the end of the routine table.
    DanglingSeed(SeedKind, RoutineId),
    /// `begin_routine`/`end_routine` were not balanced.
    UnfinishedRoutine,
    /// A builder method was called outside `begin_routine`/`end_routine`.
    NoOpenRoutine,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
            ModelError::CrossRoutineEdge { src, dst } => {
                write!(f, "block {src} branches to {dst} in a different routine")
            }
            ModelError::DanglingBlock { src, dst } => {
                write!(f, "block {src} targets nonexistent block {dst}")
            }
            ModelError::DanglingCallee { src, callee } => {
                write!(f, "block {src} calls nonexistent routine {callee}")
            }
            ModelError::BadProbabilities { src, sum } => {
                write!(f, "branch probabilities of block {src} sum to {sum}, not 1")
            }
            ModelError::EmptyTargets(b) => write!(f, "block {b} branches to an empty target list"),
            ModelError::ZeroSizeBlock(b) => write!(f, "block {b} has zero size"),
            ModelError::EmptyRoutine(r) => write!(f, "routine {r} has no blocks"),
            ModelError::DuplicateRoutineName(name) => {
                write!(f, "duplicate routine name {name:?}")
            }
            ModelError::MissingSeed(kind) => write!(f, "program has no {kind} seed"),
            ModelError::DanglingSeed(kind, r) => {
                write!(f, "{kind} seed references nonexistent routine {r}")
            }
            ModelError::UnfinishedRoutine => {
                write!(f, "build called while a routine is still open")
            }
            ModelError::NoOpenRoutine => {
                write!(f, "builder method requires an open routine")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_style() {
        let e = ModelError::ZeroSizeBlock(BlockId::new(3));
        let msg = e.to_string();
        assert!(msg.contains("b3"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
