//! Program transformations: function inlining.
//!
//! The paper considers inlining as an alternative to its
//! caller/callee-interleaving sequences and rejects it: "In function
//! inlining, the whole callee routine is inserted between the caller's
//! basic blocks, not just a few basic blocks of the callee. Function
//! inlining, however, expands the active code size and may increase the
//! chance of conflicts" (Section 4.1, citing Chen et al.). To reproduce
//! that discussion as an experiment, [`inline_calls`] rewrites a program
//! with selected call sites expanded: each site receives its *own private
//! copy* of the callee's blocks, appended to the calling routine.
//!
//! One level deep: calls inside the cloned callee body remain calls.

use std::collections::HashMap;

use crate::{
    BlockId, BranchTarget, Domain, ModelError, Program, ProgramBuilder, SeedKind, Terminator,
};

/// Rewrites `program` with each call site in `sites` inlined.
///
/// Every listed block must terminate in a [`Terminator::Call`]; its callee
/// routine's blocks are cloned into the calling routine (after the
/// caller's own blocks), the call becomes a jump to the cloned entry, and
/// cloned returns become jumps to the call's continuation.
///
/// Returns the new program and the number of blocks added by cloning.
///
/// # Errors
///
/// Returns [`ModelError`] if the rewritten program fails validation (it
/// cannot for well-formed inputs).
///
/// # Panics
///
/// Panics if a listed site does not terminate in a call.
pub fn inline_calls(program: &Program, sites: &[BlockId]) -> Result<(Program, usize), ModelError> {
    let site_set: std::collections::HashSet<BlockId> = sites.iter().copied().collect();
    for &s in sites {
        assert!(
            program.block(s).terminator().callee().is_some(),
            "inline site {s} is not a call"
        );
    }

    let mut b = ProgramBuilder::new(program.domain());
    // Preserve dispatch-table identities.
    for _ in 0..program.num_dispatch_tables() {
        let _ = b.new_dispatch_table();
    }

    // Phase 1: create all blocks, collecting id maps.
    // Originals: old id -> new id (global).
    let mut orig_map: HashMap<BlockId, BlockId> = HashMap::new();
    // Per inlined site: callee-old id -> cloned-new id.
    let mut clone_maps: HashMap<BlockId, HashMap<BlockId, BlockId>> = HashMap::new();
    let mut added = 0usize;

    for routine in program.routines() {
        b.begin_routine(routine.name());
        for (i, &old) in routine.blocks().iter().enumerate() {
            let linked = i > 0 && program.block(routine.blocks()[i - 1]).fallthrough() == Some(old);
            let new = if linked {
                b.add_block(program.block(old).size())
            } else {
                b.add_block_no_fallthrough(program.block(old).size())
            };
            orig_map.insert(old, new);
        }
        // Clones for this routine's inlined sites, in source order.
        for &old in routine.blocks() {
            if !site_set.contains(&old) {
                continue;
            }
            let callee = program
                .block(old)
                .terminator()
                .callee()
                .expect("checked above");
            let callee_routine = program.routine(callee);
            let mut map = HashMap::new();
            for (i, &cb) in callee_routine.blocks().iter().enumerate() {
                let linked = i > 0
                    && program.block(callee_routine.blocks()[i - 1]).fallthrough() == Some(cb);
                let new = if linked {
                    b.add_block(program.block(cb).size())
                } else {
                    b.add_block_no_fallthrough(program.block(cb).size())
                };
                map.insert(cb, new);
                added += 1;
            }
            clone_maps.insert(old, map);
        }
        b.end_routine();
    }

    // Phase 2: wire terminators.
    let remap_term = |term: &Terminator, map: &dyn Fn(BlockId) -> BlockId| -> Terminator {
        match term {
            Terminator::Jump(d) => Terminator::Jump(map(*d)),
            Terminator::Branch(targets) => Terminator::Branch(
                targets
                    .iter()
                    .map(|t| BranchTarget::new(map(t.dst), t.prob))
                    .collect(),
            ),
            Terminator::Dispatch { table, targets } => Terminator::Dispatch {
                table: *table,
                targets: targets.iter().map(|&d| map(d)).collect(),
            },
            Terminator::Call { callee, ret_to } => Terminator::Call {
                callee: *callee,
                ret_to: map(*ret_to),
            },
            Terminator::Return => Terminator::Return,
        }
    };

    for (old, block) in program.blocks() {
        let new = orig_map[&old];
        if let Some(map) = clone_maps.get(&old) {
            // Inlined call: jump to the cloned entry.
            let callee = block.terminator().callee().expect("site is a call");
            let entry = program.routine(callee).entry();
            b.terminate(new, Terminator::Jump(map[&entry]));
            // Wire the clone: internal targets to clone ids; returns to the
            // continuation.
            let Terminator::Call { ret_to, .. } = block.terminator() else {
                unreachable!("site is a call");
            };
            let ret_new = orig_map[ret_to];
            for (&cb_old, &cb_new) in map {
                let term = program.block(cb_old).terminator();
                if term.is_return() {
                    b.terminate(cb_new, Terminator::Jump(ret_new));
                } else {
                    b.terminate(cb_new, remap_term(term, &|d| map[&d]));
                }
            }
        } else {
            b.terminate(new, remap_term(block.terminator(), &|d| orig_map[&d]));
        }
    }

    // Seeds / entry.
    if program.domain() == Domain::Os {
        for kind in SeedKind::ALL {
            if let Some(r) = program.seed(kind) {
                b.set_seed(kind, r);
            }
        }
    } else if let Some(r) = program.entry() {
        b.set_entry(r);
    }

    Ok((b.build()?, added))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_kernel, KernelParams, Scale};
    use crate::Terminator;

    fn kernel() -> crate::synth::SyntheticKernel {
        generate_kernel(&KernelParams::at_scale(Scale::Tiny, 7))
    }

    /// All call sites of one routine.
    fn call_sites(p: &Program, name: &str) -> Vec<BlockId> {
        let r = p.routine_by_name(name).unwrap();
        r.blocks()
            .iter()
            .copied()
            .filter(|&b| p.block(b).terminator().callee().is_some())
            .collect()
    }

    #[test]
    fn inlining_grows_the_caller_and_validates() {
        let k = kernel();
        let sites = call_sites(&k.program, "timer_intr");
        assert!(!sites.is_empty());
        let (inlined, added) = inline_calls(&k.program, &sites).unwrap();
        assert!(added > 0);
        assert_eq!(
            inlined.num_blocks(),
            k.program.num_blocks() + added,
            "clones are appended"
        );
        assert_eq!(inlined.num_routines(), k.program.num_routines());
        let old = k
            .program
            .routine_by_name("timer_intr")
            .unwrap()
            .num_blocks();
        let new = inlined.routine_by_name("timer_intr").unwrap().num_blocks();
        assert_eq!(new, old + added);
    }

    #[test]
    fn inlined_sites_no_longer_call() {
        let k = kernel();
        let sites = call_sites(&k.program, "timer_intr");
        let (inlined, _) = inline_calls(&k.program, &sites).unwrap();
        // The rewritten timer_intr has fewer call terminators.
        let count_calls = |p: &Program, name: &str| {
            p.routine_by_name(name)
                .unwrap()
                .blocks()
                .iter()
                .filter(|&&b| p.block(b).terminator().callee().is_some())
                .count()
        };
        let before = count_calls(&k.program, "timer_intr");
        let after = count_calls(&inlined, "timer_intr");
        // Cloned callee bodies may contain their own (kept) calls, so the
        // count need not drop to zero — but every *original* site is gone.
        assert!(after < before + 1, "before {before}, after {after}");
        // The original sites now jump.
        for &s in &sites {
            // Same index: originals map 1:1 in creation order per routine,
            // so find by position is not stable; instead check no block of
            // the routine calls the originally-inlined callees directly
            // from the original site positions. Simplest invariant: the
            // program still validates and the total call count matches
            // before - sites + calls inside clones.
            let _ = s;
        }
    }

    #[test]
    fn empty_site_list_is_identity_modulo_ids() {
        let k = kernel();
        let (inlined, added) = inline_calls(&k.program, &[]).unwrap();
        assert_eq!(added, 0);
        assert_eq!(inlined.num_blocks(), k.program.num_blocks());
        assert_eq!(inlined.total_size(), k.program.total_size());
        assert_eq!(
            inlined.num_dispatch_tables(),
            k.program.num_dispatch_tables()
        );
        for kind in SeedKind::ALL {
            assert_eq!(inlined.seed(kind), k.program.seed(kind));
        }
    }

    #[test]
    fn inlined_program_traces_equivalently() {
        // The inlined program must execute the same logical work: an
        // engine walk should never get stuck and invocation structure is
        // preserved (same seeds, same dispatch tables).
        let k = kernel();
        let hot_sites: Vec<BlockId> = k
            .program
            .blocks()
            .filter(|(_, blk)| blk.terminator().callee().is_some())
            .map(|(id, _)| id)
            .take(20)
            .collect();
        let (inlined, _) = inline_calls(&k.program, &hot_sites).unwrap();
        // Walk a few blocks manually from each seed following static
        // successors; every reachable terminator target must be in range.
        for kind in SeedKind::ALL {
            let entry = inlined.seed_block(kind).unwrap();
            let mut frontier = vec![entry];
            let mut seen = std::collections::HashSet::new();
            while let Some(b) = frontier.pop() {
                if !seen.insert(b) || seen.len() > 5_000 {
                    continue;
                }
                for s in inlined.block(b).terminator().intra_successors() {
                    assert!(s.index() < inlined.num_blocks());
                    frontier.push(s);
                }
                if let Terminator::Call { callee, .. } = inlined.block(b).terminator() {
                    frontier.push(inlined.routine(*callee).entry());
                }
            }
        }
    }
}
