//! Routines (procedures).

use crate::{BlockId, RoutineId};

/// A routine: a named procedure owning a contiguous group of basic blocks.
///
/// Blocks are listed in *source order* — the order the original code placed
/// them in memory — which is what the `Base` layout reproduces.
#[derive(Clone, PartialEq, Debug)]
pub struct Routine {
    id: RoutineId,
    name: String,
    entry: BlockId,
    blocks: Vec<BlockId>,
}

impl Routine {
    pub(crate) fn new(id: RoutineId, name: String, entry: BlockId, blocks: Vec<BlockId>) -> Self {
        Self {
            id,
            name,
            entry,
            blocks,
        }
    }

    /// This routine's id.
    #[must_use]
    pub fn id(&self) -> RoutineId {
        self.id
    }

    /// The routine's name (unique within a program).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block control enters when this routine is called.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// All blocks of the routine in source order.
    #[must_use]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of basic blocks in the routine.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}
