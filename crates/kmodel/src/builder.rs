//! Incremental construction of [`Program`]s.

use std::collections::BTreeMap;

use crate::{
    BasicBlock, BlockId, DispatchId, Domain, ModelError, Program, Routine, RoutineId, SeedKind,
    Terminator,
};

/// Builds a [`Program`] routine by routine.
///
/// Blocks are created inside a `begin_routine` / `end_routine` bracket with
/// [`ProgramBuilder::add_block`], then wired with
/// [`ProgramBuilder::terminate`] (forward references are fine: a block may be
/// terminated after its targets are created, and terminators may be installed
/// for blocks of already-finished routines, which is how call edges are
/// usually wired). [`ProgramBuilder::build`] validates the whole program.
///
/// Consecutively created blocks are assumed to *fall through* in the original
/// source order; this natural adjacency is what layout algorithms must pay a
/// branch for when they break it. Use [`ProgramBuilder::add_block_no_fallthrough`]
/// for blocks that the original code already reached only via explicit jumps.
///
/// # Example
///
/// See the crate-level documentation.
#[derive(Debug)]
pub struct ProgramBuilder {
    domain: Domain,
    blocks: Vec<PendingBlock>,
    routines: Vec<Routine>,
    seeds: BTreeMap<SeedKind, RoutineId>,
    entry: Option<RoutineId>,
    open: Option<OpenRoutine>,
    next_dispatch: usize,
}

#[derive(Debug)]
struct PendingBlock {
    routine: RoutineId,
    size: u32,
    terminator: Option<Terminator>,
    fallthrough: Option<BlockId>,
}

#[derive(Debug)]
struct OpenRoutine {
    id: RoutineId,
    name: String,
    blocks: Vec<BlockId>,
}

impl ProgramBuilder {
    /// Creates a builder for a program in the given domain.
    #[must_use]
    pub fn new(domain: Domain) -> Self {
        Self {
            domain,
            blocks: Vec::new(),
            routines: Vec::new(),
            seeds: BTreeMap::new(),
            entry: None,
            open: None,
            next_dispatch: 0,
        }
    }

    /// Starts a new routine and returns its id.
    ///
    /// The first block added becomes the routine's entry.
    ///
    /// # Panics
    ///
    /// Panics if a routine is already open.
    pub fn begin_routine(&mut self, name: impl Into<String>) -> RoutineId {
        assert!(self.open.is_none(), "previous routine not ended");
        let id = RoutineId::new(self.routines.len());
        self.open = Some(OpenRoutine {
            id,
            name: name.into(),
            blocks: Vec::new(),
        });
        id
    }

    /// Adds a block of `size` bytes to the open routine and returns its id.
    ///
    /// The previously added block of this routine is recorded as naturally
    /// falling through to this one (unless it was added with
    /// [`Self::add_block_no_fallthrough`] semantics broken by an intervening
    /// routine end).
    ///
    /// # Panics
    ///
    /// Panics if no routine is open or `size == 0`.
    pub fn add_block(&mut self, size: u32) -> BlockId {
        self.add_block_inner(size, true)
    }

    /// Adds a block that the original code did *not* fall through to (it was
    /// reached only by explicit branches, e.g. an out-of-line error handler).
    ///
    /// # Panics
    ///
    /// Panics if no routine is open or `size == 0`.
    pub fn add_block_no_fallthrough(&mut self, size: u32) -> BlockId {
        self.add_block_inner(size, false)
    }

    fn add_block_inner(&mut self, size: u32, fallthrough: bool) -> BlockId {
        assert!(size > 0, "blocks must have positive size");
        let open = self.open.as_mut().expect("no open routine");
        let id = BlockId::new(self.blocks.len());
        if fallthrough {
            if let Some(&prev) = open.blocks.last() {
                let prev_block = &mut self.blocks[prev.index()];
                prev_block.fallthrough = Some(id);
            }
        }
        self.blocks.push(PendingBlock {
            routine: open.id,
            size,
            terminator: None,
            fallthrough: None,
        });
        open.blocks.push(id);
        id
    }

    /// Installs (or replaces) the terminator of a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` was never created.
    pub fn terminate(&mut self, block: BlockId, terminator: Terminator) {
        self.blocks[block.index()].terminator = Some(terminator);
    }

    /// Finishes the open routine.
    ///
    /// # Panics
    ///
    /// Panics if no routine is open.
    pub fn end_routine(&mut self) {
        let open = self.open.take().expect("no open routine");
        let entry = open.blocks.first().copied().unwrap_or_default();
        self.routines
            .push(Routine::new(open.id, open.name, entry, open.blocks));
    }

    /// Registers `routine` as the seed for an OS entry class.
    pub fn set_seed(&mut self, kind: SeedKind, routine: RoutineId) {
        self.seeds.insert(kind, routine);
    }

    /// Registers the application `main` routine.
    pub fn set_entry(&mut self, routine: RoutineId) {
        self.entry = Some(routine);
    }

    /// Allocates a fresh workload-controlled dispatch table id.
    pub fn new_dispatch_table(&mut self) -> DispatchId {
        let id = DispatchId::new(self.next_dispatch);
        self.next_dispatch += 1;
        id
    }

    /// Number of blocks created so far.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Validates and finishes the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if a routine is still open, any block lacks a
    /// terminator, or the program violates a structural invariant (see
    /// [`ModelError`] variants).
    pub fn build(self) -> Result<Program, ModelError> {
        if self.open.is_some() {
            return Err(ModelError::UnfinishedRoutine);
        }
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, pending) in self.blocks.into_iter().enumerate() {
            let terminator = pending
                .terminator
                .ok_or(ModelError::MissingTerminator(BlockId::new(i)))?;
            blocks.push(BasicBlock::new(
                pending.routine,
                pending.size,
                terminator,
                pending.fallthrough,
            ));
        }
        Program::from_parts(
            self.domain,
            blocks,
            self.routines,
            self.seeds,
            self.entry,
            self.next_dispatch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchTarget;

    #[test]
    fn fallthrough_links_consecutive_blocks() {
        let mut b = ProgramBuilder::new(Domain::App);
        let r = b.begin_routine("main");
        let x = b.add_block(8);
        let y = b.add_block(8);
        let z = b.add_block_no_fallthrough(8);
        b.terminate(x, Terminator::Jump(y));
        b.terminate(y, Terminator::Jump(z));
        b.terminate(z, Terminator::Return);
        b.end_routine();
        b.set_entry(r);
        let p = b.build().unwrap();
        assert_eq!(p.block(x).fallthrough(), Some(y));
        // z was added as no-fallthrough, so y has no natural successor.
        assert_eq!(p.block(y).fallthrough(), None);
        assert_eq!(p.block(z).fallthrough(), None);
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut b = ProgramBuilder::new(Domain::App);
        let r = b.begin_routine("main");
        let x = b.add_block(8);
        b.end_routine();
        b.set_entry(r);
        assert_eq!(b.build().unwrap_err(), ModelError::MissingTerminator(x));
    }

    #[test]
    fn unfinished_routine_is_reported() {
        let mut b = ProgramBuilder::new(Domain::App);
        let _r = b.begin_routine("main");
        let x = b.add_block(8);
        b.terminate(x, Terminator::Return);
        assert_eq!(b.build().unwrap_err(), ModelError::UnfinishedRoutine);
    }

    #[test]
    fn dispatch_tables_are_dense() {
        let mut b = ProgramBuilder::new(Domain::Os);
        let d0 = b.new_dispatch_table();
        let d1 = b.new_dispatch_table();
        assert_eq!(d0.index(), 0);
        assert_eq!(d1.index(), 1);
    }

    #[test]
    fn forward_call_edges_can_be_wired_late() {
        let mut b = ProgramBuilder::new(Domain::App);
        let main = b.begin_routine("main");
        let e = b.add_block(8);
        let cont = b.add_block(8);
        b.terminate(cont, Terminator::Return);
        b.end_routine();
        let helper = b.begin_routine("helper");
        let h = b.add_block(12);
        b.terminate(h, Terminator::Return);
        b.end_routine();
        // Wire the call after `helper` exists.
        b.terminate(
            e,
            Terminator::Call {
                callee: helper,
                ret_to: cont,
            },
        );
        b.set_entry(main);
        let p = b.build().unwrap();
        assert_eq!(p.block(e).terminator().callee(), Some(helper));
        assert_eq!(p.routine(main).entry(), e);
    }

    #[test]
    fn branch_probabilities_validated_on_build() {
        let mut b = ProgramBuilder::new(Domain::App);
        let r = b.begin_routine("main");
        let e = b.add_block(8);
        let t = b.add_block(8);
        b.terminate(
            e,
            Terminator::branch([BranchTarget::new(t, 0.7), BranchTarget::new(t, 0.3)]),
        );
        b.terminate(t, Terminator::Return);
        b.end_routine();
        b.set_entry(r);
        assert!(b.build().is_ok());
    }
}
