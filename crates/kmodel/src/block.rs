//! Basic blocks and their terminators.

use crate::{BlockId, DispatchId, RoutineId};

/// One outgoing edge of a probabilistic branch.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct BranchTarget {
    /// Destination block (must belong to the same routine).
    pub dst: BlockId,
    /// Ground-truth probability that execution follows this edge.
    ///
    /// These probabilities drive the stochastic trace engine only; the
    /// profiler and the layout algorithms never see them — they work from
    /// *measured* arc counts, exactly as the paper's tooling works from
    /// hardware traces.
    pub prob: f64,
}

impl BranchTarget {
    /// Creates a branch target with the given probability.
    #[must_use]
    pub fn new(dst: BlockId, prob: f64) -> Self {
        Self { dst, prob }
    }
}

/// How control leaves a basic block.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional transfer to another block of the same routine.
    Jump(BlockId),
    /// Probabilistic multi-way branch (conditional branches, including loop
    /// back-edges). Probabilities must be positive and sum to 1.
    Branch(Vec<BranchTarget>),
    /// A multi-way dispatch whose successor distribution is supplied *by the
    /// workload* at trace time (e.g. the system-call dispatch table: which
    /// service gets called depends on what the workload does, not on the
    /// kernel's code).
    Dispatch {
        /// Identifies the workload-supplied weight table.
        table: DispatchId,
        /// Candidate successors, in table order.
        targets: Vec<BlockId>,
    },
    /// Procedure call: control enters `callee`'s entry block and, when the
    /// callee executes a [`Terminator::Return`], resumes at `ret_to` in this
    /// routine.
    Call {
        /// The routine being called.
        callee: RoutineId,
        /// Continuation block in the calling routine.
        ret_to: BlockId,
    },
    /// Return from the current routine (or, at the bottom of the call stack,
    /// the end of an operating-system invocation / application burst).
    Return,
}

impl Terminator {
    /// Convenience constructor for [`Terminator::Branch`].
    pub fn branch(targets: impl IntoIterator<Item = BranchTarget>) -> Self {
        Terminator::Branch(targets.into_iter().collect())
    }

    /// Intra-routine successor blocks, in declaration order.
    ///
    /// For a [`Terminator::Call`] this is the continuation block: the callee
    /// is *not* an intra-routine successor. This is the edge set used for
    /// dominator and natural-loop analysis, which the paper performs per
    /// routine ("we use dataflow analysis", citing Aho, Sethi & Ullman).
    pub fn intra_successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let slice: SuccessorIter<'_> = match self {
            Terminator::Jump(dst) => SuccessorIter::One(Some(*dst)),
            Terminator::Branch(targets) => SuccessorIter::Branch(targets.iter()),
            Terminator::Dispatch { targets, .. } => SuccessorIter::Blocks(targets.iter()),
            Terminator::Call { ret_to, .. } => SuccessorIter::One(Some(*ret_to)),
            Terminator::Return => SuccessorIter::One(None),
        };
        slice
    }

    /// The callee routine, if this is a call.
    #[must_use]
    pub fn callee(&self) -> Option<RoutineId> {
        match self {
            Terminator::Call { callee, .. } => Some(*callee),
            _ => None,
        }
    }

    /// True if this terminator ends the routine.
    #[must_use]
    pub fn is_return(&self) -> bool {
        matches!(self, Terminator::Return)
    }
}

enum SuccessorIter<'a> {
    One(Option<BlockId>),
    Branch(std::slice::Iter<'a, BranchTarget>),
    Blocks(std::slice::Iter<'a, BlockId>),
}

impl Iterator for SuccessorIter<'_> {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        match self {
            SuccessorIter::One(slot) => slot.take(),
            SuccessorIter::Branch(it) => it.next().map(|t| t.dst),
            SuccessorIter::Blocks(it) => it.next().copied(),
        }
    }
}

/// A basic block: a straight-line run of instructions with a single entry
/// and a single terminator.
///
/// Blocks are positionless; the layout algorithms assign addresses. The
/// average block in the paper's kernel is 21.3 bytes (Section 3.2.1), and
/// the synthetic generator reproduces that scale.
#[derive(Clone, PartialEq, Debug)]
pub struct BasicBlock {
    routine: RoutineId,
    size: u32,
    terminator: Terminator,
    fallthrough: Option<BlockId>,
}

impl BasicBlock {
    pub(crate) fn new(
        routine: RoutineId,
        size: u32,
        terminator: Terminator,
        fallthrough: Option<BlockId>,
    ) -> Self {
        Self {
            routine,
            size,
            terminator,
            fallthrough,
        }
    }

    /// The routine this block belongs to.
    #[must_use]
    pub fn routine(&self) -> RoutineId {
        self.routine
    }

    /// Block size in bytes (excluding any layout-added stretch branches).
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// How control leaves this block.
    #[must_use]
    pub fn terminator(&self) -> &Terminator {
        &self.terminator
    }

    /// The block that followed this one in the *original* code order, if the
    /// original code could fall through to it without a branch.
    ///
    /// Layout algorithms that separate a block from its natural fall-through
    /// successor must insert an unconditional branch; `oslay-layout` charges
    /// one extra instruction word for that (the paper measures the resulting
    /// dynamic code growth at about 2%, Section 4.3).
    #[must_use]
    pub fn fallthrough(&self) -> Option<BlockId> {
        self.fallthrough
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: usize) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn jump_has_single_successor() {
        let t = Terminator::Jump(b(3));
        assert_eq!(t.intra_successors().collect::<Vec<_>>(), vec![b(3)]);
        assert_eq!(t.callee(), None);
        assert!(!t.is_return());
    }

    #[test]
    fn branch_successors_in_order() {
        let t = Terminator::branch([BranchTarget::new(b(1), 0.9), BranchTarget::new(b(2), 0.1)]);
        assert_eq!(t.intra_successors().collect::<Vec<_>>(), vec![b(1), b(2)]);
    }

    #[test]
    fn call_successor_is_continuation_not_callee() {
        let t = Terminator::Call {
            callee: RoutineId::new(5),
            ret_to: b(7),
        };
        assert_eq!(t.intra_successors().collect::<Vec<_>>(), vec![b(7)]);
        assert_eq!(t.callee(), Some(RoutineId::new(5)));
    }

    #[test]
    fn return_has_no_successors() {
        assert_eq!(Terminator::Return.intra_successors().count(), 0);
        assert!(Terminator::Return.is_return());
    }

    #[test]
    fn dispatch_lists_all_targets() {
        let t = Terminator::Dispatch {
            table: DispatchId::new(0),
            targets: vec![b(1), b(2), b(3)],
        };
        assert_eq!(t.intra_successors().count(), 3);
    }
}
