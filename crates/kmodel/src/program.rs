//! The program container and its validation.

use std::collections::BTreeMap;

use crate::{BasicBlock, BlockId, Domain, ModelError, Routine, RoutineId, SeedKind, Terminator};

/// A complete program: routines, basic blocks, control-flow structure, and
/// (for operating-system programs) the four seed entry points.
///
/// A `Program` is immutable once built (use [`crate::ProgramBuilder`]); all
/// downstream stages — tracing, profiling, layout, simulation — share it by
/// reference.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    domain: Domain,
    blocks: Vec<BasicBlock>,
    routines: Vec<Routine>,
    seeds: BTreeMap<SeedKind, RoutineId>,
    entry: Option<RoutineId>,
    num_dispatch_tables: usize,
}

impl Program {
    pub(crate) fn from_parts(
        domain: Domain,
        blocks: Vec<BasicBlock>,
        routines: Vec<Routine>,
        seeds: BTreeMap<SeedKind, RoutineId>,
        entry: Option<RoutineId>,
        num_dispatch_tables: usize,
    ) -> Result<Self, ModelError> {
        let program = Self {
            domain,
            blocks,
            routines,
            seeds,
            entry,
            num_dispatch_tables,
        };
        program.validate()?;
        Ok(program)
    }

    /// Whether this is the operating system or an application.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of routines.
    #[must_use]
    pub fn num_routines(&self) -> usize {
        self.routines.len()
    }

    /// Number of workload-controlled dispatch tables referenced by
    /// [`Terminator::Dispatch`] blocks.
    #[must_use]
    pub fn num_dispatch_tables(&self) -> usize {
        self.num_dispatch_tables
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids obtained from this program are
    /// always in range).
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Looks up a routine.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn routine(&self, id: RoutineId) -> &Routine {
        &self.routines[id.index()]
    }

    /// Iterates over all blocks with their ids.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i), b))
    }

    /// Iterates over all routines.
    pub fn routines(&self) -> impl Iterator<Item = &Routine> {
        self.routines.iter()
    }

    /// The seed routine for an operating-system entry class.
    ///
    /// Returns `None` for application programs.
    #[must_use]
    pub fn seed(&self, kind: SeedKind) -> Option<RoutineId> {
        self.seeds.get(&kind).copied()
    }

    /// The seed *block* (entry block of the seed routine) for an entry class.
    #[must_use]
    pub fn seed_block(&self, kind: SeedKind) -> Option<BlockId> {
        self.seed(kind).map(|r| self.routine(r).entry())
    }

    /// The `main` entry routine of an application program.
    ///
    /// Returns `None` for operating-system programs (use [`Program::seed`]).
    #[must_use]
    pub fn entry(&self) -> Option<RoutineId> {
        self.entry
    }

    /// Finds a routine by name.
    #[must_use]
    pub fn routine_by_name(&self, name: &str) -> Option<&Routine> {
        self.routines.iter().find(|r| r.name() == name)
    }

    /// Total static code size in bytes (sum of all block sizes).
    #[must_use]
    pub fn total_size(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.size())).sum()
    }

    /// Blocks in *source order*: routine creation order, blocks within each
    /// routine in their source order. The `Base` layout places code exactly
    /// in this order, mirroring the unoptimized kernel image.
    pub fn source_order(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.routines
            .iter()
            .flat_map(|r| r.blocks().iter().copied())
    }

    /// Average basic-block size in bytes (paper: 21.3 bytes).
    #[must_use]
    pub fn mean_block_size(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.total_size() as f64 / self.blocks.len() as f64
    }

    fn validate(&self) -> Result<(), ModelError> {
        let mut names = std::collections::HashSet::new();
        for routine in &self.routines {
            if routine.blocks().is_empty() {
                return Err(ModelError::EmptyRoutine(routine.id()));
            }
            if !names.insert(routine.name()) {
                return Err(ModelError::DuplicateRoutineName(routine.name().to_owned()));
            }
        }
        for (id, block) in self.blocks() {
            if block.size() == 0 {
                return Err(ModelError::ZeroSizeBlock(id));
            }
            self.validate_terminator(id, block)?;
        }
        if self.domain == Domain::Os {
            for kind in SeedKind::ALL {
                let seed = self.seeds.get(&kind).ok_or(ModelError::MissingSeed(kind))?;
                if seed.index() >= self.routines.len() {
                    return Err(ModelError::DanglingSeed(kind, *seed));
                }
            }
        }
        Ok(())
    }

    fn validate_terminator(&self, id: BlockId, block: &BasicBlock) -> Result<(), ModelError> {
        let check_target = |dst: BlockId| -> Result<(), ModelError> {
            let Some(target) = self.blocks.get(dst.index()) else {
                return Err(ModelError::DanglingBlock { src: id, dst });
            };
            if target.routine() != block.routine() {
                return Err(ModelError::CrossRoutineEdge { src: id, dst });
            }
            Ok(())
        };
        match block.terminator() {
            Terminator::Jump(dst) => check_target(*dst)?,
            Terminator::Branch(targets) => {
                if targets.is_empty() {
                    return Err(ModelError::EmptyTargets(id));
                }
                let mut sum = 0.0;
                for t in targets {
                    check_target(t.dst)?;
                    if t.prob <= 0.0 {
                        return Err(ModelError::BadProbabilities {
                            src: id,
                            sum: t.prob,
                        });
                    }
                    sum += t.prob;
                }
                if (sum - 1.0).abs() > 1e-6 {
                    return Err(ModelError::BadProbabilities { src: id, sum });
                }
            }
            Terminator::Dispatch { targets, .. } => {
                if targets.is_empty() {
                    return Err(ModelError::EmptyTargets(id));
                }
                for &dst in targets {
                    check_target(dst)?;
                }
            }
            Terminator::Call { callee, ret_to } => {
                if callee.index() >= self.routines.len() {
                    return Err(ModelError::DanglingCallee {
                        src: id,
                        callee: *callee,
                    });
                }
                check_target(*ret_to)?;
            }
            Terminator::Return => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{BranchTarget, Domain, ProgramBuilder, SeedKind, Terminator};

    fn tiny_os() -> crate::Program {
        let mut b = ProgramBuilder::new(Domain::Os);
        let mut seed_routines = Vec::new();
        for kind in SeedKind::ALL {
            let r = b.begin_routine(format!("seed_{kind}"));
            let entry = b.add_block(16);
            b.terminate(entry, Terminator::Return);
            b.end_routine();
            seed_routines.push((kind, r));
        }
        for (kind, r) in seed_routines {
            b.set_seed(kind, r);
        }
        b.build().expect("valid tiny OS")
    }

    #[test]
    fn tiny_os_builds_and_has_seeds() {
        let p = tiny_os();
        assert_eq!(p.num_routines(), 4);
        assert_eq!(p.num_blocks(), 4);
        for kind in SeedKind::ALL {
            assert!(p.seed(kind).is_some());
            assert!(p.seed_block(kind).is_some());
        }
        assert_eq!(p.entry(), None);
    }

    #[test]
    fn source_order_covers_all_blocks_once() {
        let p = tiny_os();
        let order: Vec<_> = p.source_order().collect();
        assert_eq!(order.len(), p.num_blocks());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), p.num_blocks());
    }

    #[test]
    fn missing_seed_is_rejected() {
        let mut b = ProgramBuilder::new(Domain::Os);
        let _r = b.begin_routine("only");
        let blk = b.add_block(8);
        b.terminate(blk, Terminator::Return);
        b.end_routine();
        assert!(matches!(
            b.build(),
            Err(crate::ModelError::MissingSeed(SeedKind::Interrupt))
        ));
    }

    #[test]
    fn bad_probability_sum_is_rejected() {
        let mut b = ProgramBuilder::new(Domain::App);
        let r = b.begin_routine("main");
        let e = b.add_block(8);
        let x = b.add_block(8);
        b.terminate(
            e,
            Terminator::branch([BranchTarget::new(x, 0.5), BranchTarget::new(x, 0.1)]),
        );
        b.terminate(x, Terminator::Return);
        b.end_routine();
        b.set_entry(r);
        assert!(matches!(
            b.build(),
            Err(crate::ModelError::BadProbabilities { .. })
        ));
    }

    #[test]
    fn cross_routine_jump_is_rejected() {
        let mut b = ProgramBuilder::new(Domain::App);
        let r = b.begin_routine("main");
        let e = b.add_block(8);
        b.end_routine();
        let _other = b.begin_routine("other");
        let o = b.add_block(8);
        b.terminate(o, Terminator::Return);
        b.end_routine();
        b.terminate(e, Terminator::Jump(o));
        b.set_entry(r);
        assert!(matches!(
            b.build(),
            Err(crate::ModelError::CrossRoutineEdge { .. })
        ));
    }

    #[test]
    fn mean_block_size() {
        let p = tiny_os();
        assert!((p.mean_block_size() - 16.0).abs() < f64::EPSILON);
        assert_eq!(p.total_size(), 64);
    }
}
