//! Static program statistics.
//!
//! Summarizes a [`Program`]'s static shape — the numbers the paper quotes
//! when describing its kernel (≈ 930 KB, ≈ 2,300 routines, 21.3-byte
//! average basic block) — so generators and user-supplied programs can be
//! sanity-checked quickly.

use crate::{Program, Terminator};

/// Static census of one program.
#[derive(Clone, PartialEq, Debug)]
pub struct ProgramStats {
    /// Number of routines.
    pub routines: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Total code bytes.
    pub bytes: u64,
    /// Mean basic-block size in bytes.
    pub mean_block_size: f64,
    /// Mean blocks per routine.
    pub mean_blocks_per_routine: f64,
    /// Blocks ending in an unconditional jump.
    pub jumps: usize,
    /// Blocks ending in a conditional/multiway branch.
    pub branches: usize,
    /// Blocks ending in a workload-controlled dispatch.
    pub dispatches: usize,
    /// Call sites.
    pub calls: usize,
    /// Return blocks.
    pub returns: usize,
    /// Blocks with a natural fall-through successor.
    pub fallthroughs: usize,
}

impl ProgramStats {
    /// Computes the census.
    #[must_use]
    pub fn compute(program: &Program) -> Self {
        let mut jumps = 0;
        let mut branches = 0;
        let mut dispatches = 0;
        let mut calls = 0;
        let mut returns = 0;
        let mut fallthroughs = 0;
        for (_, block) in program.blocks() {
            match block.terminator() {
                Terminator::Jump(_) => jumps += 1,
                Terminator::Branch(_) => branches += 1,
                Terminator::Dispatch { .. } => dispatches += 1,
                Terminator::Call { .. } => calls += 1,
                Terminator::Return => returns += 1,
            }
            if block.fallthrough().is_some() {
                fallthroughs += 1;
            }
        }
        let blocks = program.num_blocks();
        let routines = program.num_routines();
        Self {
            routines,
            blocks,
            bytes: program.total_size(),
            mean_block_size: program.mean_block_size(),
            mean_blocks_per_routine: if routines == 0 {
                0.0
            } else {
                blocks as f64 / routines as f64
            },
            jumps,
            branches,
            dispatches,
            calls,
            returns,
            fallthroughs,
        }
    }

    /// Terminator counts sum to the number of blocks (a consistency check
    /// exposed for tests and asserts).
    #[must_use]
    pub fn terminators_total(&self) -> usize {
        self.jumps + self.branches + self.dispatches + self.calls + self.returns
    }
}

impl std::fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} routines, {} blocks, {:.1} KB (mean block {:.1} B); \
             terminators: {} jump / {} branch / {} dispatch / {} call / {} return",
            self.routines,
            self.blocks,
            self.bytes as f64 / 1024.0,
            self.mean_block_size,
            self.jumps,
            self.branches,
            self.dispatches,
            self.calls,
            self.returns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_kernel, KernelParams, Scale};

    #[test]
    fn census_is_consistent() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 3));
        let s = ProgramStats::compute(&k.program);
        assert_eq!(s.terminators_total(), s.blocks);
        assert_eq!(s.blocks, k.program.num_blocks());
        assert_eq!(s.routines, k.program.num_routines());
        assert!(s.calls > 0);
        assert!(s.dispatches >= 4, "four seed services dispatch");
        assert!(s.fallthroughs < s.blocks);
    }

    #[test]
    fn kernel_mean_block_size_is_paper_like() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Small, 3));
        let s = ProgramStats::compute(&k.program);
        assert!(
            (16.0..28.0).contains(&s.mean_block_size),
            "mean block {}",
            s.mean_block_size
        );
        assert!(s.mean_blocks_per_routine > 5.0);
    }

    #[test]
    fn display_is_informative() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 3));
        let text = ProgramStats::compute(&k.program).to_string();
        assert!(text.contains("routines"));
        assert!(text.contains("dispatch"));
    }
}
