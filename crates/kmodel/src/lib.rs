//! Program model for the `oslay` reproduction of Torrellas, Xia & Daigle,
//! *"Optimizing Instruction Cache Performance for Operating System Intensive
//! Workloads"* (HPCA 1995).
//!
//! This crate provides:
//!
//! * a layout-independent **program representation** — routines made of basic
//!   blocks connected by a probabilistic control-flow graph ([`Program`],
//!   [`BasicBlock`], [`Terminator`]) — shared by the operating-system kernel
//!   model and the application models;
//! * a [`ProgramBuilder`] for constructing programs by hand (the public API a
//!   downstream user would target to lay out *their own* code);
//! * **synthetic generators** ([`synth`]) that produce a kernel and a set of
//!   applications whose measured statistics match the paper's
//!   characterization study (Section 3). These stand in for the proprietary
//!   Alliant FX/8 / Concentrix 3.0 traces that the original work measured
//!   with a hardware performance monitor; see `DESIGN.md` at the repository
//!   root for the substitution argument.
//!
//! The representation is deliberately *positionless*: a [`BasicBlock`] has a
//! size in bytes but no address. Addresses are assigned later by the layout
//! algorithms in `oslay-layout`, which is exactly the degree of freedom the
//! paper's optimization exploits.
//!
//! # Example
//!
//! ```
//! use oslay_model::{ProgramBuilder, Domain, Terminator, BranchTarget, SeedKind};
//!
//! let mut b = ProgramBuilder::new(Domain::Os);
//! let tick = b.begin_routine("clock_tick");
//! let entry = b.add_block(24);
//! let fast = b.add_block(16);
//! let slow = b.add_block(40);
//! let done = b.add_block(8);
//! b.terminate(entry, Terminator::branch([
//!     BranchTarget::new(fast, 0.99),
//!     BranchTarget::new(slow, 0.01),
//! ]));
//! b.terminate(fast, Terminator::Jump(done));
//! b.terminate(slow, Terminator::Jump(done));
//! b.terminate(done, Terminator::Return);
//! b.end_routine();
//! // An OS program needs all four seed entry points; a real kernel would
//! // register a distinct routine for each.
//! for kind in SeedKind::ALL {
//!     b.set_seed(kind, tick);
//! }
//! let program = b.build()?;
//! assert_eq!(program.num_blocks(), 4);
//! # Ok::<(), oslay_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod builder;
mod error;
mod ids;
mod program;
pub mod rng;
mod routine;
mod seed;
mod stats;
pub mod synth;
pub mod transform;

pub use block::{BasicBlock, BranchTarget, Terminator};
pub use builder::ProgramBuilder;
pub use error::ModelError;
pub use ids::{BlockId, DispatchId, RoutineId};
pub use program::Program;
pub use routine::Routine;
pub use seed::{Domain, SeedKind};
pub use stats::ProgramStats;

/// Size of one instruction word in bytes.
///
/// The paper counts "instruction words" when measuring temporal reuse
/// distance (Figure 7); all instruction fetches in the simulator are
/// word-granular. A basic block of `size` bytes is fetched as
/// `size.div_ceil(WORD_BYTES)` word accesses.
pub const WORD_BYTES: u32 = 4;

/// Number of instruction-word fetches needed to execute a block of
/// `size_bytes` bytes.
///
/// ```
/// assert_eq!(oslay_model::fetch_words(21), 6);
/// assert_eq!(oslay_model::fetch_words(4), 1);
/// ```
#[must_use]
pub fn fetch_words(size_bytes: u32) -> u32 {
    size_bytes.div_ceil(WORD_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_words_rounds_up() {
        assert_eq!(fetch_words(1), 1);
        assert_eq!(fetch_words(4), 1);
        assert_eq!(fetch_words(5), 2);
        assert_eq!(fetch_words(8), 2);
        assert_eq!(fetch_words(21), 6);
    }

    #[test]
    fn fetch_words_zero_is_zero() {
        assert_eq!(fetch_words(0), 0);
    }
}
