//! Synthetic operating-system kernel generator.
//!
//! Builds a kernel image with the structure the paper measures: four seed
//! services (interrupt, page-fault, system-call, other), subsystems (VM,
//! file system, process management, buffer/device I/O), a set of tiny hot
//! utility routines shared by everything (locks, timer reads, register
//! save/restore, TLB shootdown, block zero/copy, software multiply/divide),
//! and a large bulk of never-invoked special-case routines interleaved with
//! the hot code in source order.

use crate::rng::Rng;
use crate::{
    BlockId, DispatchId, Domain, Program, ProgramBuilder, RoutineId, SeedKind, Terminator,
};

use super::params::{BlockSizeDist, KernelParams};
use super::shape::{build_chain_routine, ChainSpec, Detour, DetourBody, LoopSpec};

/// The workload-controlled dispatch tables of a synthetic kernel.
///
/// `oslay-trace` workload specifications provide a weight vector per table;
/// the vector length must equal the table's arity.
#[derive(Clone, Debug)]
pub struct DispatchTables {
    /// Interrupt-type dispatch (timer, cross-processor, I/O, sync).
    pub interrupt: DispatchId,
    /// Number of interrupt types.
    pub interrupt_arity: usize,
    /// Fault-type dispatch (TLB fix, protection, demand-zero, swap-in).
    pub fault: DispatchId,
    /// Number of fault types.
    pub fault_arity: usize,
    /// System-call dispatch.
    pub syscall: DispatchId,
    /// Number of system calls.
    pub syscall_arity: usize,
    /// "Other" service dispatch (context switch, idle, signal delivery).
    pub other: DispatchId,
    /// Number of "other" services.
    pub other_arity: usize,
}

impl DispatchTables {
    /// Arity of the table identified by `id`, if it is one of the four.
    #[must_use]
    pub fn arity(&self, id: DispatchId) -> Option<usize> {
        if id == self.interrupt {
            Some(self.interrupt_arity)
        } else if id == self.fault {
            Some(self.fault_arity)
        } else if id == self.syscall {
            Some(self.syscall_arity)
        } else if id == self.other {
            Some(self.other_arity)
        } else {
            None
        }
    }
}

/// A generated kernel: the program plus its dispatch-table metadata.
#[derive(Clone, Debug)]
pub struct SyntheticKernel {
    /// The kernel program.
    pub program: Program,
    /// Dispatch tables that workloads parameterize.
    pub tables: DispatchTables,
}

/// Generates a synthetic kernel.
///
/// Deterministic: the same [`KernelParams`] (including seed) always produce
/// the same program.
///
/// # Panics
///
/// Panics only on internal generator bugs; all parameter combinations
/// produced by [`KernelParams::at_scale`] are valid.
#[must_use]
pub fn generate_kernel(params: &KernelParams) -> SyntheticKernel {
    Generator::new(params).run()
}

const SYSCALL_NAMES: [&str; 36] = [
    "read",
    "write",
    "open",
    "close",
    "stat",
    "fstat",
    "lseek",
    "dup",
    "pipe",
    "ioctl",
    "fcntl",
    "access",
    "unlink",
    "link",
    "mkdir",
    "rmdir",
    "chdir",
    "chmod",
    "chown",
    "mount",
    "fork",
    "vfork",
    "execve",
    "exit",
    "wait",
    "kill",
    "getpid",
    "getuid",
    "brk",
    "sbrk",
    "mmap",
    "munmap",
    "gettimeofday",
    "select",
    "sigvec",
    "sync",
];

const COLD_SUBSYSTEMS: [&str; 12] = [
    "nfs", "tty", "net", "sock", "quota", "ipc", "ktrace", "execfmt", "acct", "rawdev", "route",
    "uipc",
];

/// Hot utility routines shared across all services.
struct Utilities {
    lock_acquire: RoutineId,
    lock_release: RoutineId,
    read_hrc: RoutineId,
    soft_mul: RoutineId,
    soft_div: RoutineId,
    state_save: RoutineId,
    state_restore: RoutineId,
    usr_sys_trans: RoutineId,
    tlb_invalidate: RoutineId,
    bzero: RoutineId,
    bcopy: RoutineId,
    check_curtimer: RoutineId,
    update_hrtimer: RoutineId,
    sched_wakeup: RoutineId,
    hashfn: RoutineId,
    strcmp_k: RoutineId,
}

struct Generator<'p> {
    b: ProgramBuilder,
    rng: Rng,
    p: &'p KernelParams,
    sizes: BlockSizeDist,
    /// Never-invoked cold routines remaining to emit.
    cold_remaining: usize,
    cold_counter: usize,
    /// Fractional accumulator controlling cold interleave.
    cold_acc: f64,
    cold_per_hot: f64,
    /// Rarely-invoked helper routines used as cold-detour callees.
    rare_pool: Vec<RoutineId>,
}

impl<'p> Generator<'p> {
    fn new(p: &'p KernelParams) -> Self {
        let hot_estimate = 16
            + p.num_io_routines
            + p.num_vm_routines
            + p.num_fs_routines
            + p.num_proc_routines
            + p.num_syscalls
            + 24
            + (p.num_io_routines + p.num_vm_routines + p.num_fs_routines + p.num_proc_routines);
        Self {
            b: ProgramBuilder::new(Domain::Os),
            rng: Rng::seed_from_u64(p.seed),
            p,
            sizes: p.sizes.clone(),
            cold_remaining: p.num_cold_routines,
            cold_counter: 0,
            cold_acc: 0.0,
            cold_per_hot: p.num_cold_routines as f64 / hot_estimate as f64,
            rare_pool: Vec::new(),
        }
    }

    fn run(mut self) -> SyntheticKernel {
        let utils = self.build_utilities();
        let io = self.build_io_subsystem(&utils);
        let vm = self.build_vm_subsystem(&utils, &io);
        let fs = self.build_fs_subsystem(&utils, &io, &vm);
        let proc = self.build_proc_subsystem(&utils, &vm);
        let handlers = self.build_syscall_handlers(&utils, &fs, &vm, &proc, &io);

        let interrupt_table = self.b.new_dispatch_table();
        let fault_table = self.b.new_dispatch_table();
        let syscall_table = self.b.new_dispatch_table();
        let other_table = self.b.new_dispatch_table();

        let intr_handlers = self.build_interrupt_handlers(&utils, &io);
        let intr_entry = self.dispatch_service(
            "intr_entry",
            &[utils.state_save],
            &intr_handlers,
            &[utils.state_restore],
            interrupt_table,
        );

        let fault_handlers = self.build_fault_handlers(&utils, &vm, &io);
        let fault_entry = self.dispatch_service(
            "pf_entry",
            &[utils.usr_sys_trans],
            &fault_handlers,
            &[utils.state_restore],
            fault_table,
        );

        let usr_sys_ret = self.auto_chain(AutoChain {
            name: "usr_sys_ret".into(),
            hot: 4,
            calls: vec![utils.state_restore],
            loops: vec![],
            cold_tail: 2,
            fat: true,
            extra_detours: true,
        });
        let sc_entry = self.dispatch_service(
            "sc_entry",
            &[utils.usr_sys_trans],
            &handlers,
            &[usr_sys_ret],
            syscall_table,
        );

        let other_handlers = self.build_other_handlers(&utils, &proc);
        let other_entry =
            self.dispatch_service("swtch_entry", &[], &other_handlers, &[], other_table);

        self.drain_cold();

        self.b.set_seed(SeedKind::Interrupt, intr_entry);
        self.b.set_seed(SeedKind::PageFault, fault_entry);
        self.b.set_seed(SeedKind::SysCall, sc_entry);
        self.b.set_seed(SeedKind::Other, other_entry);

        let program = self.b.build().expect("generated kernel must validate");
        SyntheticKernel {
            program,
            tables: DispatchTables {
                interrupt: interrupt_table,
                interrupt_arity: intr_handlers.len(),
                fault: fault_table,
                fault_arity: fault_handlers.len(),
                syscall: syscall_table,
                syscall_arity: handlers.len(),
                other: other_table,
                other_arity: other_handlers.len(),
            },
        }
    }

    // ----- utilities ------------------------------------------------------

    fn build_utilities(&mut self) -> Utilities {
        let lock_acquire = self.spec_chain(&ChainSpec::new("lock_acquire", 3).looped(1, 1, 1.2));
        let lock_release = self.spec_chain(&ChainSpec::new("lock_release", 2));
        let read_hrc = self.spec_chain(&ChainSpec::new("read_hrc", 2));
        let soft_mul = self.spec_chain(&ChainSpec::new("soft_mul", 4).looped(1, 2, 8.0));
        let soft_div = self.spec_chain(&ChainSpec::new("soft_div", 5).looped(1, 3, 12.0));
        let state_save = self.spec_chain(&ChainSpec::new("state_save", 3).fat());
        let state_restore = self.spec_chain(&ChainSpec::new("state_restore", 3).fat());
        let sig_check_detour = Detour {
            pos: 3,
            enter_prob: 0.12,
            body: DetourBody::Plain,
            to_tail: false,
        };
        let usr_sys_trans = self.spec_chain(
            &ChainSpec::new("usr_sys_trans", 5)
                .fat()
                .detour(sig_check_detour)
                .cold_tail(2),
        );
        let tlb_invalidate =
            self.spec_chain(&ChainSpec::new("tlb_invalidate", 3).looped(1, 1, 4.0));
        let bzero = self.spec_chain(&ChainSpec::new("bzero", 2).looped(0, 0, 32.0));
        let bcopy = self.spec_chain(&ChainSpec::new("bcopy", 2).looped(0, 0, 24.0));
        let check_curtimer =
            self.spec_chain(&ChainSpec::new("check_curtimer", 3).looped(0, 1, 2.2));
        let update_hrtimer = self.spec_chain(&ChainSpec::new("update_hrtimer", 3));
        let sched_wakeup = self.auto_chain(AutoChain {
            name: "sched_wakeup".into(),
            hot: 4,
            calls: vec![lock_acquire, lock_release],
            loops: vec![],
            cold_tail: 2,
            fat: false,
            extra_detours: true,
        });
        let hashfn = self.spec_chain(&ChainSpec::new("hashfn", 2));
        let strcmp_k = self.spec_chain(&ChainSpec::new("strcmp_k", 2).looped(0, 0, 8.0));
        Utilities {
            lock_acquire,
            lock_release,
            read_hrc,
            soft_mul,
            soft_div,
            state_save,
            state_restore,
            usr_sys_trans,
            tlb_invalidate,
            bzero,
            bcopy,
            check_curtimer,
            update_hrtimer,
            sched_wakeup,
            hashfn,
            strcmp_k,
        }
    }

    // ----- subsystems -----------------------------------------------------

    fn build_io_subsystem(&mut self, u: &Utilities) -> Vec<RoutineId> {
        self.build_rare_helpers("io", self.p.num_io_routines, &[]);
        let mut pool = vec![u.lock_acquire, u.lock_release, u.bcopy, u.hashfn];
        let named = [
            "bufhash",
            "getblk",
            "brelse",
            "iodone",
            "disk_strategy",
            "disk_io",
        ];
        let mut out = Vec::new();
        for i in 0..self.p.num_io_routines {
            let name = named
                .get(i)
                .map_or_else(|| format!("io_aux{i}"), |s| (*s).to_owned());
            let r = self.subsystem_routine(name, &pool, (u.lock_acquire, u.lock_release), 0.45);
            out.push(r);
            pool.push(r);
        }
        out
    }

    fn build_vm_subsystem(&mut self, u: &Utilities, io: &[RoutineId]) -> Vec<RoutineId> {
        self.build_rare_helpers("vm", self.p.num_vm_routines, io);
        let mut pool = vec![u.lock_acquire, u.lock_release, u.tlb_invalidate, u.bzero];
        if let Some(&d) = io.last() {
            pool.push(d);
        }
        let named = [
            "pt_lookup",
            "page_alloc",
            "page_free",
            "pmap_enter",
            "pmap_remove",
            "vm_map_enter",
            "vm_map_remove",
            "vm_prot_set",
            "page_reclaim",
            "swap_alloc",
        ];
        let mut out = Vec::new();
        for i in 0..self.p.num_vm_routines {
            let name = named
                .get(i)
                .map_or_else(|| format!("vm_aux{i}"), |s| (*s).to_owned());
            let r = self.subsystem_routine(name, &pool, (u.lock_acquire, u.lock_release), 0.45);
            out.push(r);
            pool.push(r);
        }
        out
    }

    fn build_fs_subsystem(
        &mut self,
        u: &Utilities,
        io: &[RoutineId],
        vm: &[RoutineId],
    ) -> Vec<RoutineId> {
        self.build_rare_helpers("fs", self.p.num_fs_routines, io);
        let mut pool = vec![
            u.lock_acquire,
            u.lock_release,
            u.hashfn,
            u.strcmp_k,
            u.bcopy,
        ];
        pool.extend(io.iter().take(4).copied());
        if let Some(&p0) = vm.get(1) {
            pool.push(p0);
        }
        let named = [
            "vfs_lookup",
            "dirlook",
            "iget",
            "iput",
            "ialloc",
            "iupdat",
            "bmap",
            "bread",
            "bwrite",
            "readi",
            "writei",
            "balloc",
            "bfree",
            "dir_add",
            "dir_rm",
            "ufs_trunc",
        ];
        let mut out = Vec::new();
        for i in 0..self.p.num_fs_routines {
            let name = named
                .get(i)
                .map_or_else(|| format!("fs_aux{i}"), |s| (*s).to_owned());
            let r = self.subsystem_routine(name, &pool, (u.lock_acquire, u.lock_release), 0.45);
            out.push(r);
            pool.push(r);
        }
        // `namei` is a canonical loop-with-calls: iterate over path
        // components calling the lookup chain.
        if out.len() >= 2 {
            let body_callee = out[0];
            let namei = self.auto_chain(AutoChain {
                name: "namei".into(),
                hot: 6,
                calls: vec![body_callee, u.strcmp_k],
                loops: vec![LoopSpec {
                    start: 1,
                    end: 4,
                    mean_iters: 3.0,
                }],
                cold_tail: 3,
                fat: false,
                extra_detours: true,
            });
            out.push(namei);
        }
        out
    }

    fn build_proc_subsystem(&mut self, u: &Utilities, vm: &[RoutineId]) -> Vec<RoutineId> {
        self.build_rare_helpers("proc", self.p.num_proc_routines, vm);
        let mut pool = vec![u.lock_acquire, u.lock_release, u.sched_wakeup];
        let page_alloc = vm.get(1).copied();
        let page_free = vm.get(2).copied();
        let named = [
            "runq_insert",
            "runq_remove",
            "sched_pick",
            "setrun",
            "sleep_on",
            "wakeup_chan",
            "sig_post",
            "cred_check",
        ];
        let mut out = Vec::new();
        for i in 0..self.p.num_proc_routines {
            let name = named
                .get(i)
                .map_or_else(|| format!("proc_aux{i}"), |s| (*s).to_owned());
            let r = self.subsystem_routine(name, &pool, (u.lock_acquire, u.lock_release), 0.45);
            out.push(r);
            pool.push(r);
        }
        // The paper's running example of a loop with procedure calls:
        // freeing a dead process's memory loops over page tables, with
        // shared-page checks, calling the free routines (Section 3.2.2).
        if let (Some(pa), Some(pf)) = (page_alloc, page_free) {
            let proc_dup = self.auto_chain(AutoChain {
                name: "proc_dup".into(),
                hot: 8,
                calls: vec![pa, u.bcopy],
                loops: vec![LoopSpec {
                    start: 2,
                    end: 6,
                    mean_iters: 8.0,
                }],
                cold_tail: 3,
                fat: false,
                extra_detours: true,
            });
            let proc_free = self.auto_chain(AutoChain {
                name: "proc_free".into(),
                hot: 8,
                calls: vec![pf, u.lock_release],
                loops: vec![LoopSpec {
                    start: 1,
                    end: 6,
                    mean_iters: 8.0,
                }],
                cold_tail: 3,
                fat: false,
                extra_detours: true,
            });
            out.push(proc_dup);
            out.push(proc_free);
        }
        out
    }

    // ----- system-call handlers --------------------------------------------

    fn build_syscall_handlers(
        &mut self,
        u: &Utilities,
        fs: &[RoutineId],
        vm: &[RoutineId],
        proc: &[RoutineId],
        io: &[RoutineId],
    ) -> Vec<RoutineId> {
        let mut handlers = Vec::with_capacity(self.p.num_syscalls);
        for i in 0..self.p.num_syscalls {
            let name = SYSCALL_NAMES
                .get(i)
                .map_or_else(|| format!("syscall{i}"), |s| format!("sys_{s}"));
            let r = match SYSCALL_NAMES.get(i).copied() {
                Some("getpid" | "getuid") => self.spec_chain(&ChainSpec::new(name, 2)),
                Some("gettimeofday") => self.auto_chain(AutoChain {
                    name,
                    hot: 4,
                    calls: vec![u.read_hrc, u.soft_div],
                    loops: vec![],
                    cold_tail: 2,
                    fat: false,
                    extra_detours: true,
                }),
                Some("fork" | "vfork") => {
                    let dup = proc.last().map_or(u.bcopy, |_| proc[proc.len() - 2]);
                    self.auto_chain(AutoChain {
                        name,
                        hot: 8,
                        calls: vec![dup, u.lock_acquire, u.lock_release],
                        loops: vec![],
                        cold_tail: 4,
                        fat: false,
                        extra_detours: true,
                    })
                }
                Some("exit") => {
                    let free = proc.last().copied().unwrap_or(u.lock_release);
                    self.auto_chain(AutoChain {
                        name,
                        hot: 7,
                        calls: vec![free, u.sched_wakeup],
                        loops: vec![],
                        cold_tail: 3,
                        fat: false,
                        extra_detours: true,
                    })
                }
                Some("select") => {
                    let poll = fs.first().copied().unwrap_or(u.hashfn);
                    self.auto_chain(AutoChain {
                        name,
                        hot: 7,
                        calls: vec![poll],
                        loops: vec![LoopSpec {
                            start: 2,
                            end: 4,
                            mean_iters: 4.0,
                        }],
                        cold_tail: 3,
                        fat: false,
                        extra_detours: true,
                    })
                }
                Some("read" | "write") => {
                    let data = if i % 2 == 0 {
                        fs.get(9).copied()
                    } else {
                        fs.get(10).copied()
                    };
                    let mut calls = vec![u.bcopy];
                    calls.extend(data);
                    calls.extend(fs.get(2).copied());
                    self.auto_chain(AutoChain {
                        name,
                        hot: 9,
                        calls,
                        loops: vec![],
                        cold_tail: 4,
                        fat: false,
                        extra_detours: true,
                    })
                }
                Some("brk" | "sbrk" | "mmap" | "munmap") => {
                    let mut calls: Vec<RoutineId> =
                        vm.iter().skip(i % 3).step_by(4).take(2).copied().collect();
                    if calls.is_empty() {
                        calls.push(u.bzero);
                    }
                    self.auto_chain(AutoChain {
                        name,
                        hot: 7,
                        calls,
                        loops: vec![],
                        cold_tail: 3,
                        fat: false,
                        extra_detours: true,
                    })
                }
                Some("execve") => {
                    let mut calls: Vec<RoutineId> = Vec::new();
                    calls.extend(fs.last().copied());
                    calls.extend(fs.get(7).copied());
                    calls.extend(vm.get(3).copied());
                    calls.push(u.bzero);
                    self.auto_chain(AutoChain {
                        name,
                        hot: 12,
                        calls,
                        loops: vec![],
                        cold_tail: 6,
                        fat: false,
                        extra_detours: true,
                    })
                }
                _ => {
                    // Generic file-flavoured handler: a couple of FS calls,
                    // sometimes a path lookup, sometimes an I/O call, and
                    // sometimes a small scanning loop (fd tables, name
                    // buffers, ...).
                    let hot = self.rng.gen_range(10..=20);
                    let mut loops = Vec::new();
                    if self.rng.gen_bool(0.4) {
                        let start = self.rng.gen_range(0..hot - 3);
                        let end = self.rng.gen_range(start..hot - 2);
                        let mean = if self.rng.gen_bool(0.7) {
                            self.rng.gen_range(1.5..7.0)
                        } else {
                            self.rng.gen_range(7.0..30.0)
                        };
                        loops.push(LoopSpec {
                            start,
                            end,
                            mean_iters: mean,
                        });
                    }
                    let mut calls = Vec::new();
                    if !fs.is_empty() {
                        let a = self.rng.gen_range(0..fs.len());
                        calls.push(fs[a]);
                        if self.rng.gen_bool(0.6) {
                            let c = self.rng.gen_range(0..fs.len());
                            calls.push(fs[c]);
                        }
                    }
                    if self.rng.gen_bool(0.3) && !io.is_empty() {
                        let c = self.rng.gen_range(0..io.len());
                        calls.push(io[c]);
                    }
                    if self.rng.gen_bool(0.25) {
                        calls.push(u.lock_acquire);
                    }
                    let cold_tail = self.rng.gen_range(3..=8);
                    self.auto_chain(AutoChain {
                        name,
                        hot,
                        calls,
                        loops,
                        cold_tail,
                        fat: false,
                        extra_detours: true,
                    })
                }
            };
            handlers.push(r);
        }
        handlers
    }

    // ----- service handlers -------------------------------------------------

    fn build_interrupt_handlers(&mut self, u: &Utilities, io: &[RoutineId]) -> Vec<RoutineId> {
        // The timer interrupt path and its software multiply/divide helpers
        // are the paper's dominant conflict peak (Figure 1-b).
        let push_hrtime = self.auto_chain(AutoChain {
            name: "push_hrtime".into(),
            hot: 6,
            calls: vec![u.read_hrc, u.soft_mul, u.check_curtimer],
            loops: vec![],
            cold_tail: 2,
            fat: false,
            extra_detours: false,
        });
        let timer = self.auto_chain(AutoChain {
            name: "timer_intr".into(),
            hot: 10,
            calls: vec![
                push_hrtime,
                u.soft_mul,
                u.soft_div,
                u.check_curtimer,
                u.update_hrtimer,
            ],
            loops: vec![],
            cold_tail: 3,
            fat: false,
            extra_detours: true,
        });
        let xproc = self.auto_chain(AutoChain {
            name: "xproc_intr".into(),
            hot: 9,
            calls: vec![
                u.lock_acquire,
                u.tlb_invalidate,
                u.sched_wakeup,
                u.lock_release,
            ],
            loops: vec![],
            cold_tail: 3,
            fat: false,
            extra_detours: true,
        });
        let mut io_calls = vec![u.sched_wakeup];
        io_calls.extend(io.get(3).copied());
        io_calls.extend(io.get(5).copied());
        io_calls.extend(io.get(2).copied());
        let io_intr = self.auto_chain(AutoChain {
            name: "io_intr".into(),
            hot: 11,
            calls: io_calls,
            loops: vec![],
            cold_tail: 4,
            fat: false,
            extra_detours: true,
        });
        let sync = self.auto_chain(AutoChain {
            name: "sync_intr".into(),
            hot: 6,
            calls: vec![u.lock_acquire, u.lock_release],
            loops: vec![],
            cold_tail: 2,
            fat: false,
            extra_detours: true,
        });
        let mut disk_calls: Vec<RoutineId> = io.iter().take(4).copied().collect();
        disk_calls.push(u.sched_wakeup);
        let disk_intr = self.auto_chain(AutoChain {
            name: "disk_intr".into(),
            hot: 12,
            calls: disk_calls,
            loops: vec![],
            cold_tail: 5,
            fat: false,
            extra_detours: true,
        });
        let mut net_calls: Vec<RoutineId> = io.iter().skip(4).take(3).copied().collect();
        net_calls.push(u.bcopy);
        let net_intr = self.auto_chain(AutoChain {
            name: "net_intr".into(),
            hot: 12,
            calls: net_calls,
            loops: vec![],
            cold_tail: 5,
            fat: false,
            extra_detours: true,
        });
        vec![timer, xproc, io_intr, sync, disk_intr, net_intr]
    }

    fn build_fault_handlers(
        &mut self,
        u: &Utilities,
        vm: &[RoutineId],
        io: &[RoutineId],
    ) -> Vec<RoutineId> {
        let pt_lookup = vm.first().copied().unwrap_or(u.hashfn);
        let page_alloc = vm.get(1).copied().unwrap_or(u.bzero);
        let tlb_fix = self.auto_chain(AutoChain {
            name: "tlb_fix".into(),
            hot: 7,
            calls: vec![pt_lookup, u.tlb_invalidate],
            loops: vec![],
            cold_tail: 2,
            fat: false,
            extra_detours: true,
        });
        let mut prot_calls = vec![pt_lookup];
        prot_calls.extend(vm.get(7).copied());
        prot_calls.extend(vm.get(5).copied());
        let prot = self.auto_chain(AutoChain {
            name: "prot_fault".into(),
            hot: 10,
            calls: prot_calls,
            loops: vec![],
            cold_tail: 4,
            fat: false,
            extra_detours: true,
        });
        let mut dz_calls = vec![pt_lookup, page_alloc, u.tlb_invalidate];
        dz_calls.extend(vm.get(3).copied());
        let demand_zero = self.auto_chain(AutoChain {
            name: "demand_zero".into(),
            hot: 10,
            calls: dz_calls,
            loops: vec![],
            cold_tail: 3,
            fat: false,
            extra_detours: true,
        });
        let mut cow_calls = vec![pt_lookup, page_alloc, u.bcopy];
        cow_calls.extend(vm.get(4).copied());
        let cow_fault = self.auto_chain(AutoChain {
            name: "cow_fault".into(),
            hot: 11,
            calls: cow_calls,
            loops: vec![],
            cold_tail: 4,
            fat: false,
            extra_detours: true,
        });
        let mut swap_calls = vec![page_alloc];
        swap_calls.extend(io.get(4).copied());
        swap_calls.extend(io.get(5).copied());
        swap_calls.extend(vm.get(8).copied());
        let swap_in = self.auto_chain(AutoChain {
            name: "swap_in".into(),
            hot: 14,
            calls: swap_calls,
            loops: vec![],
            cold_tail: 6,
            fat: false,
            extra_detours: true,
        });
        vec![tlb_fix, prot, demand_zero, cow_fault, swap_in]
    }

    fn build_other_handlers(&mut self, u: &Utilities, proc: &[RoutineId]) -> Vec<RoutineId> {
        let sched_pick = proc.get(2).copied().unwrap_or(u.hashfn);
        let swtch = self.auto_chain(AutoChain {
            name: "swtch".into(),
            hot: 9,
            calls: vec![u.lock_acquire, sched_pick, u.state_save, u.state_restore],
            loops: vec![],
            cold_tail: 3,
            fat: true,
            extra_detours: true,
        });
        let idle = self.spec_chain(&ChainSpec::new("idle_loop", 3).looped(1, 1, 2.5));
        let sig = self.auto_chain(AutoChain {
            name: "signal_deliver".into(),
            hot: 10,
            calls: vec![proc.get(6).copied().unwrap_or(u.sched_wakeup), u.bcopy],
            loops: vec![],
            cold_tail: 4,
            fat: false,
            extra_detours: true,
        });
        let mut preempt_calls = vec![u.lock_acquire];
        preempt_calls.extend(proc.first().copied());
        preempt_calls.extend(proc.get(1).copied());
        preempt_calls.push(u.lock_release);
        let preempt = self.auto_chain(AutoChain {
            name: "preempt".into(),
            hot: 8,
            calls: preempt_calls,
            loops: vec![],
            cold_tail: 3,
            fat: false,
            extra_detours: true,
        });
        vec![swtch, idle, sig, preempt]
    }

    // ----- building blocks ---------------------------------------------------

    /// Builds a routine from an explicit spec and interleaves cold bulk.
    fn spec_chain(&mut self, spec: &ChainSpec) -> RoutineId {
        let r = build_chain_routine(&mut self.b, &mut self.rng, &self.sizes, spec);
        self.cold_tick();
        r
    }

    /// Builds a generic subsystem routine with random decoration.
    ///
    /// Half of all subsystem routines bracket their work with the spin
    /// lock pair — the paper's hottest routines are exactly such tiny,
    /// constantly-reinvoked utilities (lock handling, timer reads, state
    /// save/restore), and this is what produces the extreme basic-block
    /// invocation skew of Figure 8.
    fn subsystem_routine(
        &mut self,
        name: String,
        pool: &[RoutineId],
        locks: (RoutineId, RoutineId),
        loop_prob: f64,
    ) -> RoutineId {
        let hot = self.rng.gen_range(8..=18);
        let mut calls = Vec::new();
        let take_locks = self.rng.gen_bool(0.5);
        if take_locks {
            calls.push(locks.0);
        }
        let n_calls = self.rng.gen_range(0..=3.min(pool.len()));
        for _ in 0..n_calls {
            let i = self.rng.gen_range(0..pool.len());
            calls.push(pool[i]);
        }
        if take_locks {
            calls.push(locks.1);
        }
        let mut loops = Vec::new();
        if self.rng.gen_bool(loop_prob) && hot >= 4 {
            let start = self.rng.gen_range(0..hot - 2);
            let end = self.rng.gen_range(start..hot - 1);
            // Mostly shallow loops; occasionally a scanning loop.
            let mean = if self.rng.gen_bool(0.75) {
                self.rng.gen_range(1.5..7.0)
            } else {
                self.rng.gen_range(7.0..40.0)
            };
            loops.push(LoopSpec {
                start,
                end,
                mean_iters: mean,
            });
        }
        let cold_tail = self.rng.gen_range(2..=8);
        self.auto_chain(AutoChain {
            name,
            hot,
            calls,
            loops,
            cold_tail,
            fat: false,
            extra_detours: true,
        })
    }

    /// Rarely-invoked helper routines, reachable only through cold detours.
    fn build_rare_helpers(&mut self, prefix: &str, count: usize, callees: &[RoutineId]) {
        for i in 0..count {
            let hot = self.rng.gen_range(8..=16);
            let mut calls = Vec::new();
            if !callees.is_empty() && self.rng.gen_bool(0.4) {
                let c = self.rng.gen_range(0..callees.len());
                calls.push(callees[c]);
            }
            let cold_tail = self.rng.gen_range(2..=6);
            let r = self.auto_chain(AutoChain {
                name: format!("{prefix}_rare{i}"),
                hot,
                calls,
                loops: vec![],
                cold_tail,
                fat: false,
                extra_detours: false,
            });
            self.rare_pool.push(r);
        }
    }

    /// Random decoration + chain materialization + cold interleave.
    fn auto_chain(&mut self, ac: AutoChain) -> RoutineId {
        let mut spec = ChainSpec::new(ac.name, ac.hot);
        spec.cold_tail = ac.cold_tail;
        if ac.fat {
            spec = spec.fat();
        }
        let mut occupied = vec![false; ac.hot];
        for l in &ac.loops {
            occupied[l.end] = true;
            spec.loops.push(l.clone());
        }
        // Spread explicit calls across free positions, left to right.
        let free: Vec<usize> = (0..ac.hot).filter(|&i| !occupied[i]).collect();
        let n = ac.calls.len();
        assert!(n <= free.len(), "too many calls for chain length");
        for (i, callee) in ac.calls.iter().enumerate() {
            let pos = free[(i * free.len()) / n.max(1)];
            occupied[pos] = true;
            spec = spec.call(pos, *callee);
        }
        if ac.extra_detours {
            #[allow(clippy::needless_range_loop)] // pos is a chain position
            for pos in 0..ac.hot {
                if occupied[pos] {
                    continue;
                }
                if self.rng.gen_bool(self.p.cold_detour_rate) {
                    let body = if !self.rare_pool.is_empty() && self.rng.gen_bool(0.45) {
                        let i = self.rng.gen_range(0..self.rare_pool.len());
                        DetourBody::Call(self.rare_pool[i])
                    } else {
                        DetourBody::Plain
                    };
                    spec = spec.detour(Detour {
                        pos,
                        enter_prob: self.p.cold_enter_prob * self.rng.gen_range(0.5..2.0),
                        body,
                        to_tail: ac.cold_tail > 0 && self.rng.gen_bool(0.5),
                    });
                } else if self.rng.gen_bool(self.p.warm_detour_rate) {
                    spec = spec.detour(Detour {
                        pos,
                        enter_prob: self.rng.gen_range(0.08..0.35),
                        body: DetourBody::Plain,
                        to_tail: false,
                    });
                }
            }
        }
        self.spec_chain(&spec)
    }

    /// Builds a seed service: entry stub, prologue calls, a
    /// workload-controlled dispatch over handler stubs, epilogue calls.
    fn dispatch_service(
        &mut self,
        name: &str,
        pre: &[RoutineId],
        handlers: &[RoutineId],
        post: &[RoutineId],
        table: DispatchId,
    ) -> RoutineId {
        assert!(!handlers.is_empty(), "dispatch service needs handlers");
        let routine = self.b.begin_routine(name);
        let entry = self.b.add_block(2 * self.sizes.sample(&mut self.rng));
        let pre_blocks: Vec<BlockId> = pre
            .iter()
            .map(|_| self.b.add_block(self.sizes.sample(&mut self.rng)))
            .collect();
        let dispatch = self.b.add_block(self.sizes.sample(&mut self.rng));
        let stubs: Vec<BlockId> = handlers.iter().map(|_| self.b.add_block(8)).collect();
        let join = self.b.add_block(self.sizes.sample(&mut self.rng));
        let post_blocks: Vec<BlockId> = post
            .iter()
            .map(|_| self.b.add_block(self.sizes.sample(&mut self.rng)))
            .collect();
        let ret = self.b.add_block(8);

        let after_entry = pre_blocks.first().copied().unwrap_or(dispatch);
        self.b.terminate(entry, Terminator::Jump(after_entry));
        for (i, (&blk, &callee)) in pre_blocks.iter().zip(pre).enumerate() {
            let next = pre_blocks.get(i + 1).copied().unwrap_or(dispatch);
            self.b.terminate(
                blk,
                Terminator::Call {
                    callee,
                    ret_to: next,
                },
            );
        }
        self.b.terminate(
            dispatch,
            Terminator::Dispatch {
                table,
                targets: stubs.clone(),
            },
        );
        for (&stub, &handler) in stubs.iter().zip(handlers) {
            self.b.terminate(
                stub,
                Terminator::Call {
                    callee: handler,
                    ret_to: join,
                },
            );
        }
        let after_join = post_blocks.first().copied().unwrap_or(ret);
        self.b.terminate(join, Terminator::Jump(after_join));
        for (i, (&blk, &callee)) in post_blocks.iter().zip(post).enumerate() {
            let next = post_blocks.get(i + 1).copied().unwrap_or(ret);
            self.b.terminate(
                blk,
                Terminator::Call {
                    callee,
                    ret_to: next,
                },
            );
        }
        self.b.terminate(ret, Terminator::Return);
        self.b.end_routine();
        self.cold_tick();
        routine
    }

    // ----- cold bulk ----------------------------------------------------------

    fn cold_tick(&mut self) {
        self.cold_acc += self.cold_per_hot;
        while self.cold_acc >= 1.0 && self.cold_remaining > 0 {
            self.cold_acc -= 1.0;
            self.emit_cold_routine();
        }
    }

    fn drain_cold(&mut self) {
        while self.cold_remaining > 0 {
            self.emit_cold_routine();
        }
    }

    fn emit_cold_routine(&mut self) {
        self.cold_remaining -= 1;
        let subsystem = COLD_SUBSYSTEMS[self.cold_counter % COLD_SUBSYSTEMS.len()];
        let name = format!("{}_case{}", subsystem, self.cold_counter);
        self.cold_counter += 1;
        let mean = self.p.cold_routine_blocks.max(2);
        let hot = self.rng.gen_range((mean / 2).max(2)..=mean * 2);
        let spec = ChainSpec::new(name, hot).cold_tail(self.rng.gen_range(0..=4));
        let _ = build_chain_routine(&mut self.b, &mut self.rng, &self.sizes, &spec);
    }
}

/// Parameters for [`Generator::auto_chain`].
struct AutoChain {
    name: String,
    hot: usize,
    calls: Vec<RoutineId>,
    loops: Vec<LoopSpec>,
    cold_tail: usize,
    fat: bool,
    extra_detours: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{KernelParams, Scale};

    fn tiny() -> SyntheticKernel {
        generate_kernel(&KernelParams::at_scale(Scale::Tiny, 42))
    }

    #[test]
    fn tiny_kernel_builds_with_all_seeds() {
        let k = tiny();
        for kind in SeedKind::ALL {
            assert!(k.program.seed(kind).is_some(), "missing {kind} seed");
        }
    }

    #[test]
    fn kernel_generation_is_deterministic() {
        let a = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 7));
        let b = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 7));
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 7));
        let b = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 8));
        assert_ne!(a.program, b.program);
    }

    #[test]
    fn dispatch_tables_have_positive_arity() {
        let k = tiny();
        assert!(k.tables.interrupt_arity >= 3);
        assert!(k.tables.fault_arity >= 3);
        assert!(k.tables.syscall_arity >= 3);
        assert!(k.tables.other_arity >= 2);
        assert_eq!(k.program.num_dispatch_tables(), 4);
    }

    #[test]
    fn arity_lookup_by_table_id() {
        let k = tiny();
        assert_eq!(
            k.tables.arity(k.tables.syscall),
            Some(k.tables.syscall_arity)
        );
    }

    #[test]
    fn named_conflict_routines_exist() {
        let k = tiny();
        for name in [
            "timer_intr",
            "soft_mul",
            "soft_div",
            "usr_sys_trans",
            "sc_entry",
            "read_hrc",
            "check_curtimer",
            "update_hrtimer",
        ] {
            assert!(
                k.program.routine_by_name(name).is_some(),
                "routine {name} missing"
            );
        }
    }

    #[test]
    fn paper_scale_kernel_matches_reported_shape() {
        let k = generate_kernel(&KernelParams::default());
        let total = k.program.total_size();
        // Paper: ~930 KB kernel; accept a generous band.
        assert!(
            (700_000..1_300_000).contains(&total),
            "kernel size {total} out of band"
        );
        // Paper: ~2300 routines, ~8500 executed BBs out of far more total.
        assert!(k.program.num_routines() > 1500);
        assert!(k.program.num_blocks() > 25_000);
        let mean = k.program.mean_block_size();
        assert!((17.0..26.0).contains(&mean), "mean block size {mean}");
    }

    #[test]
    fn cold_bulk_dominates_static_size() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Small, 42));
        let mut cold_bytes = 0_u64;
        let mut total = 0_u64;
        for r in k.program.routines() {
            let bytes: u64 = r
                .blocks()
                .iter()
                .map(|&b| u64::from(k.program.block(b).size()))
                .sum();
            total += bytes;
            if r.name().contains("_case") {
                cold_bytes += bytes;
            }
        }
        assert!(
            cold_bytes * 2 > total,
            "cold bulk should be at least half the kernel ({cold_bytes}/{total})"
        );
    }
}
