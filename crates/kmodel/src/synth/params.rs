//! Calibration parameters for the synthetic generators.

use crate::rng::Rng;

/// Overall size class of a generated kernel.
///
/// `Paper` matches the scale of the Concentrix 3.0 kernel studied in the
/// paper (≈ 930 KB of code, ≈ 2,300 routines, ≈ 44,000 basic blocks, of
/// which a given workload executes 3–13%). The smaller scales keep unit
/// tests and Criterion benches fast while preserving every structural
/// property.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Scale {
    /// A few tens of kilobytes; for unit tests.
    Tiny,
    /// Roughly 150 KB; for integration tests and benches.
    Small,
    /// Full paper scale (≈ 930 KB kernel).
    Paper,
}

/// Parameters of the synthetic kernel generator.
///
/// The defaults (via [`KernelParams::at_scale`]) are calibrated so that the
/// *measured* statistics of the generated kernel under the four standard
/// workloads land in the ranges the paper reports; `EXPERIMENTS.md` records
/// the comparison.
#[derive(Clone, Debug)]
pub struct KernelParams {
    /// RNG seed; the same seed always yields bit-identical kernels.
    pub seed: u64,
    /// Number of system-call handler routines hanging off the dispatcher.
    pub num_syscalls: usize,
    /// Number of never-invoked special-case routines (the cold bulk).
    pub num_cold_routines: usize,
    /// Mean number of blocks per cold routine.
    pub cold_routine_blocks: usize,
    /// Number of file-system subsystem routines callable from handlers.
    pub num_fs_routines: usize,
    /// Number of virtual-memory subsystem routines.
    pub num_vm_routines: usize,
    /// Number of process-management subsystem routines.
    pub num_proc_routines: usize,
    /// Number of buffer-cache / device-I/O routines.
    pub num_io_routines: usize,
    /// Probability that a hot block grows an inline cold detour
    /// (special-case code the common path branches around).
    pub cold_detour_rate: f64,
    /// Probability of *entering* a cold detour when one exists.
    pub cold_enter_prob: f64,
    /// Probability that a hot block grows a warm diamond (a genuinely
    /// data-dependent two-way decision).
    pub warm_detour_rate: f64,
    /// Block-size distribution.
    pub sizes: BlockSizeDist,
}

impl KernelParams {
    /// Calibrated parameters for a given scale with the given seed.
    #[must_use]
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let base = Self {
            seed,
            num_syscalls: 36,
            num_cold_routines: 1950,
            cold_routine_blocks: 11,
            num_fs_routines: 72,
            num_vm_routines: 42,
            num_proc_routines: 32,
            num_io_routines: 36,
            cold_detour_rate: 0.35,
            cold_enter_prob: 0.004,
            warm_detour_rate: 0.18,
            sizes: BlockSizeDist::paper(),
        };
        match scale {
            Scale::Paper => base,
            Scale::Small => Self {
                num_syscalls: 16,
                num_cold_routines: 300,
                cold_routine_blocks: 12,
                num_fs_routines: 30,
                num_vm_routines: 18,
                num_proc_routines: 14,
                num_io_routines: 16,
                ..base
            },
            Scale::Tiny => Self {
                num_syscalls: 6,
                num_cold_routines: 40,
                cold_routine_blocks: 8,
                num_fs_routines: 6,
                num_vm_routines: 4,
                num_proc_routines: 3,
                num_io_routines: 3,
                ..base
            },
        }
    }
}

impl Default for KernelParams {
    fn default() -> Self {
        Self::at_scale(Scale::Paper, 0x05_1995)
    }
}

/// Discrete distribution of basic-block sizes in bytes.
///
/// The paper reports an average block size of 21.3 bytes (Motorola 68020
/// style code); [`BlockSizeDist::paper`] is calibrated to that mean.
#[derive(Clone, Debug)]
pub struct BlockSizeDist {
    sizes: Vec<u32>,
    cumulative: Vec<u32>,
    total: u32,
}

impl BlockSizeDist {
    /// Builds a distribution from `(size_bytes, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or all weights are zero.
    #[must_use]
    pub fn new(entries: &[(u32, u32)]) -> Self {
        assert!(!entries.is_empty(), "size distribution must be nonempty");
        let mut sizes = Vec::with_capacity(entries.len());
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut total = 0;
        for &(size, weight) in entries {
            total += weight;
            sizes.push(size);
            cumulative.push(total);
        }
        assert!(total > 0, "size distribution needs positive total weight");
        Self {
            sizes,
            cumulative,
            total,
        }
    }

    /// Distribution calibrated to the paper's 21.3-byte average block.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(&[
            (6, 4),
            (8, 8),
            (10, 9),
            (12, 10),
            (16, 12),
            (20, 11),
            (24, 10),
            (28, 8),
            (32, 7),
            (40, 5),
            (48, 4),
            (64, 2),
        ])
    }

    /// Samples one block size.
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        let x = rng.gen_range(0..self.total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        self.sizes[idx]
    }

    /// The exact mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let mut prev = 0;
        let mut acc = 0.0;
        for (&size, &cum) in self.sizes.iter().zip(&self.cumulative) {
            acc += f64::from(size) * f64::from(cum - prev);
            prev = cum;
        }
        acc / f64::from(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_distribution_mean_is_close_to_21_3() {
        let mean = BlockSizeDist::paper().mean();
        assert!((19.0..24.0).contains(&mean), "mean was {mean}");
    }

    #[test]
    fn sample_is_always_a_listed_size() {
        let dist = BlockSizeDist::paper();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = dist.sample(&mut rng);
            assert!(dist.sizes.contains(&s));
        }
    }

    #[test]
    fn empirical_mean_tracks_exact_mean() {
        let dist = BlockSizeDist::paper();
        let mut rng = Rng::seed_from_u64(7);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| u64::from(dist.sample(&mut rng))).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - dist.mean()).abs() < 0.2, "empirical {emp}");
    }

    #[test]
    fn scales_shrink_monotonically() {
        let paper = KernelParams::at_scale(Scale::Paper, 0);
        let small = KernelParams::at_scale(Scale::Small, 0);
        let tiny = KernelParams::at_scale(Scale::Tiny, 0);
        assert!(paper.num_cold_routines > small.num_cold_routines);
        assert!(small.num_cold_routines > tiny.num_cold_routines);
        assert!(paper.num_syscalls > tiny.num_syscalls);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_distribution_panics() {
        let _ = BlockSizeDist::new(&[]);
    }
}
