//! Routine shape templates.
//!
//! Almost every synthetic routine is an instance of [`ChainSpec`]: a hot
//! main path of basic blocks decorated with
//!
//! * **calls** on the main path,
//! * **detours** — inline side blocks the main path branches around, either
//!   *cold* (rarely-entered special-case code, entry probability ≈ 0.002–0.01)
//!   or *warm* (real data-dependent diamonds, entry probability ≈ 0.1–0.35),
//!   optionally containing a call or escaping to the routine's cold tail,
//! * **loops** — geometric back-edges over a segment of the main path, and
//! * a **cold tail** of error/cleanup blocks reachable only from detours.
//!
//! In source order, detour blocks sit *between* the hot blocks, which is
//! exactly the property the paper identifies as destroying the spatial
//! locality of the unoptimized kernel ("rarely-executed special-case code
//! disrupts spatial locality").

use crate::rng::Rng;
use crate::{BlockId, BranchTarget, ProgramBuilder, RoutineId, Terminator};

use super::params::BlockSizeDist;

/// A geometric loop over a segment of the main path.
#[derive(Clone, Debug)]
pub(crate) struct LoopSpec {
    /// Main-path position of the loop head (0-based).
    pub start: usize,
    /// Main-path position of the block carrying the back-edge
    /// (`end >= start`).
    pub end: usize,
    /// Mean iterations per invocation (must be > 1). The back-edge is taken
    /// with probability `1 - 1/mean_iters`, giving geometrically distributed
    /// iteration counts, which matches the shallow-loop histograms of the
    /// paper's Figures 4 and 5.
    pub mean_iters: f64,
}

/// What a detour block does.
#[derive(Clone, Debug)]
pub(crate) enum DetourBody {
    /// Plain side computation; rejoins the main path.
    Plain,
    /// Calls a routine, then rejoins the main path.
    Call(RoutineId),
}

/// An inline side block following main-path position `pos`.
#[derive(Clone, Debug)]
pub(crate) struct Detour {
    /// Main-path position after which the detour block sits.
    pub pos: usize,
    /// Probability that execution enters the detour.
    pub enter_prob: f64,
    /// Detour contents.
    pub body: DetourBody,
    /// If true (and the routine has a cold tail) the detour exits to the
    /// cold tail instead of rejoining the main path.
    pub to_tail: bool,
}

/// A call on the main path at a given position.
#[derive(Clone, Debug)]
pub(crate) struct CallSite {
    /// Main-path position of the calling block.
    pub pos: usize,
    /// The routine called.
    pub callee: RoutineId,
}

/// Full description of a chain-shaped routine.
#[derive(Clone, Debug)]
pub(crate) struct ChainSpec {
    pub name: String,
    /// Number of hot main-path blocks (≥ 1). A return block is always
    /// appended after the last one.
    pub hot: usize,
    pub calls: Vec<CallSite>,
    pub detours: Vec<Detour>,
    pub loops: Vec<LoopSpec>,
    /// Number of cold-tail blocks.
    pub cold_tail: usize,
    /// Block-size multiplier (register-save style code uses 2).
    pub size_mul: u32,
}

impl ChainSpec {
    pub(crate) fn new(name: impl Into<String>, hot: usize) -> Self {
        Self {
            name: name.into(),
            hot,
            calls: Vec::new(),
            detours: Vec::new(),
            loops: Vec::new(),
            cold_tail: 0,
            size_mul: 1,
        }
    }

    pub(crate) fn call(mut self, pos: usize, callee: RoutineId) -> Self {
        self.calls.push(CallSite { pos, callee });
        self
    }

    pub(crate) fn detour(mut self, d: Detour) -> Self {
        self.detours.push(d);
        self
    }

    pub(crate) fn looped(mut self, start: usize, end: usize, mean_iters: f64) -> Self {
        self.loops.push(LoopSpec {
            start,
            end,
            mean_iters,
        });
        self
    }

    pub(crate) fn cold_tail(mut self, n: usize) -> Self {
        self.cold_tail = n;
        self
    }

    pub(crate) fn fat(mut self) -> Self {
        self.size_mul = 2;
        self
    }

    fn validate(&self) {
        assert!(self.hot >= 1, "{}: empty main path", self.name);
        let mut used = vec![false; self.hot];
        let mut claim = |pos: usize, what: &str| {
            assert!(
                pos < self.hot,
                "{}: {what} position {pos} out of range",
                self.name
            );
            assert!(
                !used[pos],
                "{}: conflicting roles at position {pos}",
                self.name
            );
            used[pos] = true;
        };
        for c in &self.calls {
            claim(c.pos, "call");
        }
        for l in &self.loops {
            assert!(l.start <= l.end, "{}: inverted loop", self.name);
            assert!(l.mean_iters > 1.0, "{}: loop mean must exceed 1", self.name);
            claim(l.end, "loop back-edge");
        }
        for d in &self.detours {
            claim(d.pos, "detour");
            assert!(
                d.enter_prob > 0.0 && d.enter_prob < 1.0,
                "{}: detour probability {} out of (0,1)",
                self.name,
                d.enter_prob
            );
        }
    }
}

/// Materializes a [`ChainSpec`] into the builder. Returns the new routine.
pub(crate) fn build_chain_routine(
    b: &mut ProgramBuilder,
    rng: &mut Rng,
    sizes: &BlockSizeDist,
    spec: &ChainSpec,
) -> RoutineId {
    spec.validate();
    let routine = b.begin_routine(spec.name.clone());
    let sample = |rng: &mut Rng| sizes.sample(rng) * spec.size_mul;

    // Create blocks in source order: hot[i] followed by its detour block.
    let mut hot = Vec::with_capacity(spec.hot + 1);
    let mut detour_blocks: Vec<Option<BlockId>> = vec![None; spec.hot];
    #[allow(clippy::needless_range_loop)] // pos is a chain position
    for pos in 0..spec.hot {
        hot.push(b.add_block(sample(rng)));
        if let Some(d) = spec.detours.iter().find(|d| d.pos == pos) {
            let _ = d;
            detour_blocks[pos] = Some(b.add_block(sample(rng)));
        }
    }
    // Implicit epilogue/return block.
    let ret = b.add_block(sample(rng).clamp(4, 12));
    hot.push(ret);
    b.terminate(ret, Terminator::Return);

    // Cold tail chain.
    let mut tail = Vec::with_capacity(spec.cold_tail);
    for i in 0..spec.cold_tail {
        let blk = if i == 0 {
            b.add_block_no_fallthrough(sample(rng))
        } else {
            b.add_block(sample(rng))
        };
        tail.push(blk);
    }
    for (i, &blk) in tail.iter().enumerate() {
        if i + 1 < tail.len() {
            b.terminate(blk, Terminator::Jump(tail[i + 1]));
        } else {
            b.terminate(blk, Terminator::Return);
        }
    }

    // Wire the main path.
    for pos in 0..spec.hot {
        let this = hot[pos];
        let next = hot[pos + 1];
        if let Some(call) = spec.calls.iter().find(|c| c.pos == pos) {
            b.terminate(
                this,
                Terminator::Call {
                    callee: call.callee,
                    ret_to: next,
                },
            );
        } else if let Some(l) = spec.loops.iter().find(|l| l.end == pos) {
            let p_back = 1.0 - 1.0 / l.mean_iters;
            b.terminate(
                this,
                Terminator::branch([
                    BranchTarget::new(hot[l.start], p_back),
                    BranchTarget::new(next, 1.0 - p_back),
                ]),
            );
        } else if let Some(d) = spec.detours.iter().find(|d| d.pos == pos) {
            let side = detour_blocks[pos].expect("detour block created");
            b.terminate(
                this,
                Terminator::branch([
                    BranchTarget::new(next, 1.0 - d.enter_prob),
                    BranchTarget::new(side, d.enter_prob),
                ]),
            );
            let rejoin = if d.to_tail && !tail.is_empty() {
                tail[0]
            } else {
                next
            };
            match d.body {
                DetourBody::Plain => b.terminate(side, Terminator::Jump(rejoin)),
                DetourBody::Call(callee) => b.terminate(
                    side,
                    Terminator::Call {
                        callee,
                        ret_to: rejoin,
                    },
                ),
            }
        } else {
            b.terminate(this, Terminator::Jump(next));
        }
    }

    b.end_routine();
    routine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, SeedKind};

    fn build(spec: &ChainSpec) -> crate::Program {
        let mut b = ProgramBuilder::new(Domain::Os);
        let mut rng = Rng::seed_from_u64(9);
        let sizes = BlockSizeDist::paper();
        let r = build_chain_routine(&mut b, &mut rng, &sizes, spec);
        for kind in SeedKind::ALL {
            b.set_seed(kind, r);
        }
        b.build().expect("chain routine validates")
    }

    #[test]
    fn plain_chain_has_hot_plus_return_blocks() {
        let p = build(&ChainSpec::new("f", 4));
        assert_eq!(p.num_blocks(), 5);
    }

    #[test]
    fn detour_adds_inline_block_between_hot_blocks() {
        let p = build(&ChainSpec::new("f", 3).detour(Detour {
            pos: 1,
            enter_prob: 0.01,
            body: DetourBody::Plain,
            to_tail: false,
        }));
        // 3 hot + 1 detour + 1 return.
        assert_eq!(p.num_blocks(), 5);
        let r = p.routine_by_name("f").unwrap();
        // Source order: hot0, hot1, detour, hot2, ret — detour inline.
        assert_eq!(r.num_blocks(), 5);
    }

    #[test]
    fn loop_back_edge_probability_matches_mean() {
        let p = build(&ChainSpec::new("f", 3).looped(0, 1, 5.0));
        let r = p.routine_by_name("f").unwrap();
        let back_src = r.blocks()[1];
        match p.block(back_src).terminator() {
            Terminator::Branch(targets) => {
                let back = targets.iter().find(|t| t.dst == r.blocks()[0]).unwrap();
                assert!((back.prob - 0.8).abs() < 1e-9);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn cold_tail_blocks_return() {
        let p = build(&ChainSpec::new("f", 2).cold_tail(3).detour(Detour {
            pos: 0,
            enter_prob: 0.005,
            body: DetourBody::Plain,
            to_tail: true,
        }));
        // 2 hot + 1 detour + 1 ret + 3 tail.
        assert_eq!(p.num_blocks(), 7);
    }

    #[test]
    #[should_panic(expected = "conflicting roles")]
    fn conflicting_roles_panic() {
        let spec = ChainSpec::new("f", 3).looped(0, 1, 4.0).detour(Detour {
            pos: 1,
            enter_prob: 0.1,
            body: DetourBody::Plain,
            to_tail: false,
        });
        let _ = build(&spec);
    }

    #[test]
    fn call_site_targets_next_hot_block() {
        let mut b = ProgramBuilder::new(Domain::Os);
        let mut rng = Rng::seed_from_u64(1);
        let sizes = BlockSizeDist::paper();
        let callee = build_chain_routine(&mut b, &mut rng, &sizes, &ChainSpec::new("g", 2));
        let spec = ChainSpec::new("f", 3).call(1, callee);
        let f = build_chain_routine(&mut b, &mut rng, &sizes, &spec);
        for kind in SeedKind::ALL {
            b.set_seed(kind, f);
        }
        let p = b.build().unwrap();
        let r = p.routine_by_name("f").unwrap();
        match p.block(r.blocks()[1]).terminator() {
            Terminator::Call { callee: c, ret_to } => {
                assert_eq!(*c, callee);
                assert_eq!(*ret_to, r.blocks()[2]);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }
}
