//! Synthetic application generators.
//!
//! The paper's workloads mix three application families:
//!
//! * **Scientific** (TRFD, ARC2D): small hand-parallelized Fortran codes
//!   dominated by tight matrix loops — a tiny instruction working set with
//!   very high loop counts, hence a negligible miss rate of its own but
//!   frequent OS interaction (scheduling, cross-processor interrupts).
//! * **Compiler** (the second phase of the C compiler driven by `make`):
//!   ~15,000 lines of sequence-heavy code — many routines, skewed branches,
//!   a working set large enough to miss on its own.
//! * **Utility** (`fsck`): medium-sized I/O-heavy checking code with
//!   loops-over-inodes that call checking routines.
//!
//! An application program's `main` routine is an endless job loop; the trace
//! engine suspends and resumes it around OS invocations, the way a real CPU
//! interleaves user and kernel execution.

use crate::rng::Rng;
use crate::{BranchTarget, Domain, Program, ProgramBuilder, RoutineId, Terminator};

use super::params::BlockSizeDist;
use super::shape::{build_chain_routine, ChainSpec, Detour, DetourBody, LoopSpec};

/// The application family to generate.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AppKind {
    /// Tight-loop scientific code (TRFD / ARC2D analogue).
    Scientific,
    /// Sequence-heavy compiler pass (cc1 analogue).
    Compiler,
    /// I/O-heavy file checker (fsck analogue).
    Utility,
}

/// Parameters for application generation.
#[derive(Clone, Debug)]
pub struct AppParams {
    /// RNG seed (deterministic generation).
    pub seed: u64,
    /// Basic-block size distribution.
    pub sizes: BlockSizeDist,
    /// Scale multiplier for routine counts (1.0 = paper scale).
    pub scale: f64,
}

impl AppParams {
    /// Paper-scale parameters with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sizes: BlockSizeDist::paper(),
            scale: 1.0,
        }
    }

    /// Shrinks the application (for tests/benches).
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(2)
    }
}

/// Generates a single-family application program.
#[must_use]
pub fn generate_app(kind: AppKind, params: &AppParams) -> Program {
    generate_app_mix(&[(kind, 1.0)], params)
}

/// Generates an application that mixes several families with the given
/// weights (e.g. the TRFD+Make workload runs scientific and compiler jobs
/// concurrently; a single processor's trace interleaves both).
///
/// # Panics
///
/// Panics if `components` is empty or all weights are zero.
#[must_use]
pub fn generate_app_mix(components: &[(AppKind, f64)], params: &AppParams) -> Program {
    assert!(!components.is_empty(), "need at least one app component");
    let total: f64 = components.iter().map(|c| c.1).sum();
    assert!(total > 0.0, "app mix weights must be positive");

    let mut g = AppGen {
        b: ProgramBuilder::new(Domain::App),
        rng: Rng::seed_from_u64(params.seed),
        sizes: params.sizes.clone(),
        params: params.clone(),
    };
    let mut entries = Vec::new();
    for (i, &(kind, weight)) in components.iter().enumerate() {
        let main = match kind {
            AppKind::Scientific => g.scientific(i),
            AppKind::Compiler => g.compiler(i),
            AppKind::Utility => g.utility(i),
        };
        entries.push((main, weight / total));
    }

    // The top-level job loop: pick a component job, run it, repeat forever.
    let main = g.b.begin_routine("main");
    let head = g.b.add_block(12);
    let stubs: Vec<_> = entries.iter().map(|_| g.b.add_block(8)).collect();
    g.b.terminate(
        head,
        Terminator::branch(
            stubs
                .iter()
                .zip(&entries)
                .map(|(&stub, &(_, w))| BranchTarget::new(stub, w)),
        ),
    );
    for (&stub, &(component_main, _)) in stubs.iter().zip(&entries) {
        g.b.terminate(
            stub,
            Terminator::Call {
                callee: component_main,
                ret_to: head,
            },
        );
    }
    g.b.end_routine();
    g.b.set_entry(main);
    g.b.build().expect("generated application must validate")
}

struct AppGen {
    b: ProgramBuilder,
    rng: Rng,
    sizes: BlockSizeDist,
    params: AppParams,
}

impl AppGen {
    fn chain(&mut self, spec: &ChainSpec) -> RoutineId {
        build_chain_routine(&mut self.b, &mut self.rng, &self.sizes, spec)
    }

    /// Random sequence-heavy routine calling into `pool`.
    fn seq_routine(&mut self, name: String, pool: &[RoutineId], loop_prob: f64) -> RoutineId {
        let hot = self.rng.gen_range(5..=12);
        let mut spec = ChainSpec::new(name, hot);
        let mut occupied = vec![false; hot];
        if self.rng.gen_bool(loop_prob) && hot >= 4 {
            let start = self.rng.gen_range(0..hot - 2);
            let end = self.rng.gen_range(start..hot - 1);
            occupied[end] = true;
            spec.loops.push(LoopSpec {
                start,
                end,
                mean_iters: self.rng.gen_range(1.5..8.0),
            });
        }
        let n_calls = self.rng.gen_range(0..=3.min(pool.len()));
        let mut pos = 0;
        for _ in 0..n_calls {
            while pos < hot && occupied[pos] {
                pos += 1;
            }
            if pos >= hot {
                break;
            }
            occupied[pos] = true;
            let c = self.rng.gen_range(0..pool.len());
            spec = spec.call(pos, pool[c]);
            pos += 2;
        }
        #[allow(clippy::needless_range_loop)] // p is a position, not just an index
        for p in 0..hot {
            if occupied[p] {
                continue;
            }
            if self.rng.gen_bool(0.3) {
                spec = spec.detour(Detour {
                    pos: p,
                    enter_prob: if self.rng.gen_bool(0.5) {
                        self.rng.gen_range(0.002..0.02)
                    } else {
                        self.rng.gen_range(0.08..0.35)
                    },
                    body: DetourBody::Plain,
                    to_tail: false,
                });
            }
        }
        spec.cold_tail = self.rng.gen_range(1..=4);
        self.chain(&spec)
    }

    /// Emits one cold routine (used to interleave cold code among hot
    /// routines, as real images do).
    fn cold_one(&mut self, prefix: &str, i: usize) {
        let hot = self.rng.gen_range(4..=16);
        let spec =
            ChainSpec::new(format!("{prefix}_cold{i}"), hot).cold_tail(self.rng.gen_range(0..=3));
        let _ = self.chain(&spec);
    }

    fn cold_bulk(&mut self, prefix: &str, count: usize) {
        for i in 0..count {
            let hot = self.rng.gen_range(4..=16);
            let spec = ChainSpec::new(format!("{prefix}_coldbulk{i}"), hot)
                .cold_tail(self.rng.gen_range(0..=3));
            let _ = self.chain(&spec);
        }
    }

    fn scientific(&mut self, idx: usize) -> RoutineId {
        let tag = format!("sci{idx}");
        let inner = self.chain(&ChainSpec::new(format!("{tag}_dgemm_inner"), 3).looped(0, 1, 60.0));
        let outer = self.chain(
            &ChainSpec::new(format!("{tag}_dgemm_outer"), 5)
                .call(2, inner)
                .looped(1, 3, 30.0),
        );
        let interchange =
            self.chain(&ChainSpec::new(format!("{tag}_interchange"), 4).looped(1, 2, 40.0));
        let barrier = self.chain(&ChainSpec::new(format!("{tag}_barrier"), 3).looped(1, 1, 2.0));
        let init = self.chain(&ChainSpec::new(format!("{tag}_init"), 6).cold_tail(2));
        self.cold_bulk(&tag, self.params.scaled(28));
        // One "job": init once, then iterate the solve loop.
        self.chain(
            &ChainSpec::new(format!("{tag}_main"), 9)
                .call(0, init)
                .call(3, outer)
                .call(4, interchange)
                .call(5, barrier)
                .looped(2, 6, 10.0)
                .cold_tail(2),
        )
    }

    fn compiler(&mut self, idx: usize) -> RoutineId {
        let tag = format!("cc{idx}");
        let lex = self.chain(&ChainSpec::new(format!("{tag}_lex_next"), 4).looped(1, 2, 6.0));
        let hash = self.chain(&ChainSpec::new(format!("{tag}_sym_hash"), 2));
        let sym = self.chain(
            &ChainSpec::new(format!("{tag}_sym_lookup"), 5)
                .call(1, hash)
                .looped(2, 3, 2.5),
        );
        let mut pool = vec![lex, sym];
        let n = self.params.scaled(96);
        for i in 0..n {
            let name = match i {
                0 => format!("{tag}_parse_expr"),
                1 => format!("{tag}_parse_term"),
                2 => format!("{tag}_parse_stmt"),
                3 => format!("{tag}_parse_decl"),
                4 => format!("{tag}_emit_expr"),
                5 => format!("{tag}_emit_stmt"),
                6 => format!("{tag}_reg_alloc"),
                7 => format!("{tag}_opt_fold"),
                _ => format!("{tag}_pass{i}"),
            };
            let r = self.seq_routine(name, &pool, 0.25);
            pool.push(r);
            // Interleave cold special-case code between the hot routines,
            // as the compiler's real image does.
            self.cold_one(&tag, i);
        }
        self.cold_bulk(&tag, self.params.scaled(30));
        let top_a = pool[pool.len() - 1];
        let top_b = pool[pool.len() - 3];
        let top_c = pool[2.min(pool.len() - 1)];
        self.chain(
            &ChainSpec::new(format!("{tag}_main"), 9)
                .call(1, top_c)
                .call(3, top_b)
                .call(5, top_a)
                .looped(2, 6, 40.0)
                .cold_tail(3),
        )
    }

    fn utility(&mut self, idx: usize) -> RoutineId {
        let tag = format!("fsck{idx}");
        let scan = self.chain(&ChainSpec::new(format!("{tag}_scan_blocks"), 4).looped(0, 2, 12.0));
        let mut pool = vec![scan];
        let n = self.params.scaled(40);
        for i in 0..n {
            let name = match i {
                0 => format!("{tag}_check_inode"),
                1 => format!("{tag}_check_dir"),
                2 => format!("{tag}_check_link"),
                _ => format!("{tag}_pass{i}"),
            };
            let r = self.seq_routine(name, &pool, 0.35);
            pool.push(r);
            self.cold_one(&tag, i);
        }
        self.cold_bulk(&tag, self.params.scaled(14));
        let check = pool[1.min(pool.len() - 1)];
        let last = pool[pool.len() - 1];
        self.chain(
            &ChainSpec::new(format!("{tag}_main"), 8)
                .call(1, check)
                .call(4, last)
                .looped(2, 5, 20.0)
                .cold_tail(2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AppParams {
        AppParams::new(5).with_scale(0.2)
    }

    #[test]
    fn each_kind_generates_a_valid_program() {
        for kind in [AppKind::Scientific, AppKind::Compiler, AppKind::Utility] {
            let p = generate_app(kind, &small());
            assert_eq!(p.domain(), Domain::App);
            assert!(p.entry().is_some(), "{kind:?} must have an entry");
            assert!(p.num_blocks() > 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_app(AppKind::Compiler, &small());
        let b = generate_app(AppKind::Compiler, &small());
        assert_eq!(a, b);
    }

    #[test]
    fn mix_contains_both_components() {
        let p = generate_app_mix(
            &[(AppKind::Scientific, 0.5), (AppKind::Compiler, 0.5)],
            &small(),
        );
        assert!(p.routine_by_name("sci0_main").is_some());
        assert!(p.routine_by_name("cc1_main").is_some());
        assert!(p.routine_by_name("main").is_some());
    }

    #[test]
    fn compiler_is_much_larger_than_scientific_hot_part() {
        let params = AppParams::new(9);
        let sci = generate_app(AppKind::Scientific, &params);
        let cc = generate_app(AppKind::Compiler, &params);
        assert!(cc.total_size() > 2 * sci.total_size());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_mix_panics() {
        let _ = generate_app_mix(&[], &small());
    }

    #[test]
    fn main_job_loop_never_falls_off() {
        // `main`'s stubs call component mains and return to the head:
        // the walk can always continue.
        let p = generate_app(AppKind::Utility, &small());
        let main = p.routine_by_name("main").unwrap();
        let head = main.entry();
        match p.block(head).terminator() {
            Terminator::Branch(targets) => assert!(!targets.is_empty()),
            other => panic!("unexpected main head terminator {other:?}"),
        }
    }
}
