//! Synthetic kernel and application generators.
//!
//! The original study measured a proprietary system — Concentrix 3.0 (a
//! BSD 4.2-derived multiprocessor Unix) on a 4-CPU Alliant FX/8 — with a
//! hardware performance monitor. Neither the kernel image nor the traces are
//! obtainable, so this module generates a *synthetic* kernel and synthetic
//! applications whose measured statistics reproduce the paper's
//! characterization (Section 3):
//!
//! * **footprint skew** — the bulk of the kernel is rarely- or
//!   never-executed special-case code; each workload touches only a few
//!   percent of it (Table 1);
//! * **bimodal arc determinism** — most control transfers are taken with
//!   probability ≥ 0.99 or ≤ 0.01 (Figure 3);
//! * **shallow loops** — call-free loops are small (≤ 300 bytes) and
//!   iterate little (50% ≤ 6 iterations); call-bearing loops iterate ≤ 10
//!   times but span kilobytes of callees (Figures 4 and 5);
//! * **temporal skew** — a handful of tiny routines (locks, timer reads,
//!   state save/restore, TLB shootdown, block zeroing) absorb most
//!   invocations (Figures 6–8);
//! * **named conflict pairs** — the synthetic kernel contains the actual
//!   routine families behind the paper's two dominant miss peaks: the timer
//!   interrupt path with its software multiply/divide helpers, and the
//!   user/system transition code with the system-call prologue.
//!
//! The generator only *shapes* the program; every probability it embeds is
//! hidden from the optimization pipeline, which consumes measured profiles
//! exclusively.

mod app;
mod kernel;
mod params;
mod shape;

pub use app::{generate_app, generate_app_mix, AppKind, AppParams};
pub use kernel::{generate_kernel, DispatchTables, SyntheticKernel};
pub use params::{BlockSizeDist, KernelParams, Scale};
