//! Typed indices for program entities.
//!
//! Newtypes ([`BlockId`], [`RoutineId`], [`DispatchId`]) keep the many
//! `usize` indices flowing through the profiler, layout algorithms, and
//! simulator statically distinct (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[must_use]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }

            /// Returns the dense index backing this id.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a [`crate::BasicBlock`] within a [`crate::Program`].
    ///
    /// Ids are dense: `0..program.num_blocks()`.
    BlockId,
    "b"
);

define_id!(
    /// Identifies a [`crate::Routine`] within a [`crate::Program`].
    ///
    /// Ids are dense: `0..program.num_routines()`.
    RoutineId,
    "r"
);

define_id!(
    /// Identifies a workload-controlled dispatch table.
    ///
    /// Blocks terminated by [`crate::Terminator::Dispatch`] select their
    /// successor using per-workload weights supplied at trace time, which
    /// models how different workloads exercise different kernel services
    /// (e.g. distinct system calls) through the same dispatcher code.
    DispatchId,
    "d"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let id = BlockId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(BlockId::new(7).to_string(), "b7");
        assert_eq!(RoutineId::new(3).to_string(), "r3");
        assert_eq!(DispatchId::new(0).to_string(), "d0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn new_panics_on_overflow() {
        let _ = BlockId::new(usize::MAX);
    }
}
