//! Operating-system entry classes and reference domains.

use std::fmt;

/// The class of event that caused an operating-system invocation.
///
/// The paper identifies four *seeds* — the starting basic blocks of the
/// common operating-system functions — and grows its code sequences from
/// them (Section 3.2.1). Table 1 breaks down each workload's invocations
/// into these same four classes.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum SeedKind {
    /// Interrupt servicing: cross-processor, clock, I/O, or multiprocessor
    /// synchronization interrupts.
    Interrupt,
    /// Page-fault and TLB-miss servicing.
    PageFault,
    /// System-call servicing.
    SysCall,
    /// Everything else (context switching, scheduler entry, ...).
    Other,
}

impl SeedKind {
    /// All seed kinds, in the order used by the paper's Table 4.
    pub const ALL: [SeedKind; 4] = [
        SeedKind::Interrupt,
        SeedKind::PageFault,
        SeedKind::SysCall,
        SeedKind::Other,
    ];

    /// Dense index of this seed kind (`0..4`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            SeedKind::Interrupt => 0,
            SeedKind::PageFault => 1,
            SeedKind::SysCall => 2,
            SeedKind::Other => 3,
        }
    }

    /// Inverse of [`SeedKind::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Short human-readable label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SeedKind::Interrupt => "Interrupt",
            SeedKind::PageFault => "PageFault",
            SeedKind::SysCall => "SysCall",
            SeedKind::Other => "Other",
        }
    }
}

impl fmt::Display for SeedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether an instruction fetch (or a program) belongs to the operating
/// system or to the application.
///
/// The paper's miss classification (Figure 1, Figure 12) distinguishes
/// operating-system self-interference, application self-interference, and
/// the two cross-interference directions; the domain of each fetch is the
/// input to that classification.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum Domain {
    /// Operating-system code.
    Os,
    /// Application code.
    App,
}

impl Domain {
    /// Dense index of this domain (`0..2`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Domain::Os => 0,
            Domain::App => 1,
        }
    }

    /// The opposite domain.
    #[must_use]
    pub fn other(self) -> Self {
        match self {
            Domain::Os => Domain::App,
            Domain::App => Domain::Os,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Domain::Os => "OS",
            Domain::App => "App",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_index_round_trips() {
        for kind in SeedKind::ALL {
            assert_eq!(SeedKind::from_index(kind.index()), kind);
        }
    }

    #[test]
    fn domain_other_is_involution() {
        assert_eq!(Domain::Os.other(), Domain::App);
        assert_eq!(Domain::App.other().other(), Domain::App);
    }

    #[test]
    fn display_labels() {
        assert_eq!(SeedKind::PageFault.to_string(), "PageFault");
        assert_eq!(Domain::Os.to_string(), "OS");
    }
}
