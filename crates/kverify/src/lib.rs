//! Static layout verification — invariants proved without a trace.
//!
//! The layouts this workspace builds (`OptS`, `OptL`, `OptA`, `Call`)
//! carry structural guarantees the paper's results depend on: the
//! SelfConfFree area really is conflict-free, sequences really follow the
//! descending threshold schedule, the loop area really holds the
//! high-iteration loops. Until now those guarantees were only checked
//! *dynamically* — simulate a trace, read the measured attribution. This
//! crate checks them *statically*, in milliseconds, from the CFG, the
//! profile, and the placed address map alone:
//!
//! * [`verify`] — the invariant checker. Each violation is a typed
//!   [`Diagnostic`] with a stable code (`KV001`…`KV008`), severity, and
//!   block/sequence provenance, collected into a [`VerifyReport`].
//! * [`predict_conflicts`] — the static conflict predictor: per-set fetch
//!   pressure and a predicted routine×routine conflict ranking from
//!   profile weights folded over the address map, cross-validated against
//!   the measured [`ConflictMatrix`](oslay_cache::ConflictMatrix) via
//!   [`ranking_overlap`].
//! * [`IncrementalPressure`] — the same per-set pressure model with
//!   exact constant-ish-time span add/remove, so a mutation-based layout
//!   search (`oslay-search`) can re-score only the sets a candidate
//!   touches.
//!
//! * [`absint`] — the abstract-interpretation cache analysis: a fixpoint
//!   dataflow engine over the profile's arc graph computing per-set
//!   must/may/persistence LRU-age states, classifying every placed line
//!   access as always-hit / always-miss / persistent / unclassified —
//!   soundness-gated against measured misses by the `analyze` binary.
//!
//! The `lint` binary (in `oslay-bench`) fronts both halves with an
//! exit-code contract; the experiment drivers run [`verify_os_layout`] on
//! every OS layout before simulating it (always in debug builds, behind a
//! `--verify` flag in release).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod absint;
mod diagnostic;
mod incremental;
mod invariants;
mod predict;
mod view;

pub use absint::{
    block_line_addrs, classify_layout, AbsintParams, ClassPoint, Classification, LineClass,
};
pub use diagnostic::{DiagCode, Diagnostic, Severity, VerifyReport};
pub use incremental::IncrementalPressure;
pub use invariants::{verify, verify_structural, OptContext, VerifyInput};
pub use predict::{
    measured_pair_ranking, predict_conflicts, predict_from_spans, ranking_overlap, weighted_spans,
    PredictedConflicts, RoutineKey, SetPressure, WeightedSpan,
};
pub use view::LayoutView;

use oslay_layout::{OptLayout, OptParams};
use oslay_model::Program;
use oslay_profile::{LoopAnalysis, Profile};

/// Runs the full invariant suite on an optimized OS layout, using the same
/// parameters the optimizer was given.
///
/// `line_size` is only used to report which cache set a SelfConfFree
/// conflict lands in.
#[must_use]
pub fn verify_os_layout(
    program: &Program,
    profile: &Profile,
    loops: &LoopAnalysis,
    opt: &OptLayout,
    params: &OptParams,
    line_size: u32,
) -> VerifyReport {
    let view = LayoutView::from_layout(&opt.layout);
    verify(&VerifyInput {
        program,
        profile,
        view: &view,
        opt: Some(OptContext {
            classes: &opt.classes,
            sequences: &opt.sequences,
            schedule: &params.schedule,
            loops,
            scf_bytes: opt.scf_bytes,
            cache_size: params.cache_size,
            line_size,
            min_loop_iters: params.min_loop_iters,
            check_loop_area: params.extract_loops,
        }),
    })
}
