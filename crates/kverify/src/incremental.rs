//! Exact incremental per-set pressure — the layout search engine's
//! inner-loop scorer.
//!
//! [`predict_from_spans`](crate::predict_from_spans) rebuilds every set
//! from scratch on each call; a mutation-based optimizer that moves one
//! small group of blocks per candidate cannot afford that. This model
//! keeps the predictor's per-set state — a flat per-line fetch-weight
//! array, each set's total weight and hottest line — and updates only the
//! lines a moved span touches, so scoring one candidate costs a handful
//! of array adds instead of a full re-fold.
//!
//! **Integer exactness.** Profile node weights are `u64` trace counts far
//! below 2^53, and `f64` addition of integers in that range is exact, so
//! the `f64` sums the full predictor folds are bit-equal to `u64`
//! arithmetic regardless of association order. The incremental model
//! therefore tracks weights as `u64` and matches
//! [`predict_from_spans`](crate::predict_from_spans) *exactly*, not
//! approximately — the differential test in `oslay-search` asserts
//! equality on every probed step of a seeded mutation walk.
//!
//! The only non-constant update is removing weight from a set's hottest
//! line: the new maximum is found by rescanning that set's lines, a
//! stride-`num_sets` walk over the flat array that touches
//! `addr_limit / cache_size` entries (single digits for the address
//! ranges the search works in).

use oslay_cache::CacheConfig;

/// Incrementally maintained per-set fetch pressure over a bounded address
/// range `[0, addr_limit)`.
///
/// Spans are added and removed symmetrically; because all arithmetic is
/// integer, `remove_span` is an exact inverse of `add_span` and a
/// trial-and-revert search step restores the state bit-for-bit.
#[derive(Clone, Debug)]
pub struct IncrementalPressure {
    line_shift: u32,
    num_sets: usize,
    /// Fetch weight per cache line, indexed by line key (`addr >> shift`).
    line_weight: Vec<u64>,
    /// Total fetch weight per set.
    set_total: Vec<u64>,
    /// Weight of each set's hottest line.
    set_max: Vec<u64>,
    /// Sum over sets of `total - max` — the predictor's excess.
    total_excess: u64,
}

impl IncrementalPressure {
    /// Creates an empty model for `config` covering addresses in
    /// `[0, addr_limit)` (rounded up to a whole line).
    #[must_use]
    pub fn new(config: &CacheConfig, addr_limit: u64) -> Self {
        let line_shift = config.line_shift();
        let line = 1u64 << line_shift;
        let lines = usize::try_from((addr_limit + line - 1) >> line_shift)
            .expect("address limit fits in memory");
        let num_sets = config.num_sets() as usize;
        Self {
            line_shift,
            num_sets,
            line_weight: vec![0; lines],
            set_total: vec![0; num_sets],
            set_max: vec![0; num_sets],
            total_excess: 0,
        }
    }

    /// The exclusive address bound spans must stay under.
    #[must_use]
    pub fn addr_limit(&self) -> u64 {
        (self.line_weight.len() as u64) << self.line_shift
    }

    /// Number of cache sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Adds a placed span's fetch weight: every line the span touches
    /// gains `weight`, exactly as the full predictor folds it.
    ///
    /// # Panics
    ///
    /// Panics if the span reaches past the address limit.
    pub fn add_span(&mut self, addr: u64, len: u64, weight: u64) {
        if len == 0 || weight == 0 {
            return;
        }
        let first = (addr >> self.line_shift) as usize;
        let last = ((addr + len - 1) >> self.line_shift) as usize;
        assert!(
            last < self.line_weight.len(),
            "span [{addr}, {}) past the address limit {}",
            addr + len,
            self.addr_limit()
        );
        for line in first..=last {
            self.add_line(line, weight);
        }
    }

    /// Removes a previously added span. Exact inverse of
    /// [`IncrementalPressure::add_span`].
    ///
    /// # Panics
    ///
    /// Panics if the span reaches past the address limit (debug builds
    /// also catch removing weight that was never added).
    pub fn remove_span(&mut self, addr: u64, len: u64, weight: u64) {
        if len == 0 || weight == 0 {
            return;
        }
        let first = (addr >> self.line_shift) as usize;
        let last = ((addr + len - 1) >> self.line_shift) as usize;
        assert!(
            last < self.line_weight.len(),
            "span [{addr}, {}) past the address limit {}",
            addr + len,
            self.addr_limit()
        );
        for line in first..=last {
            self.remove_line(line, weight);
        }
    }

    fn add_line(&mut self, line: usize, weight: u64) {
        let set = line & (self.num_sets - 1);
        self.total_excess -= self.set_total[set] - self.set_max[set];
        self.line_weight[line] += weight;
        self.set_total[set] += weight;
        if self.line_weight[line] > self.set_max[set] {
            self.set_max[set] = self.line_weight[line];
        }
        self.total_excess += self.set_total[set] - self.set_max[set];
    }

    fn remove_line(&mut self, line: usize, weight: u64) {
        let set = line & (self.num_sets - 1);
        debug_assert!(
            self.line_weight[line] >= weight,
            "removing weight never added to line {line}"
        );
        self.total_excess -= self.set_total[set] - self.set_max[set];
        let was_max = self.line_weight[line] == self.set_max[set];
        self.line_weight[line] -= weight;
        self.set_total[set] -= weight;
        if was_max {
            // The hottest line may have cooled: rescan the set's lines.
            let mut max = 0;
            let mut l = set;
            while l < self.line_weight.len() {
                max = max.max(self.line_weight[l]);
                l += self.num_sets;
            }
            self.set_max[set] = max;
        }
        self.total_excess += self.set_total[set] - self.set_max[set];
    }

    /// Total fetch weight mapped to `set`.
    #[must_use]
    pub fn set_weight(&self, set: usize) -> u64 {
        self.set_total[set]
    }

    /// The set's pressure beyond its single hottest line — exactly
    /// [`SetPressure::excess`](crate::SetPressure::excess) as an integer.
    #[must_use]
    pub fn set_excess(&self, set: usize) -> u64 {
        self.set_total[set] - self.set_max[set]
    }

    /// Fetch weight of one line.
    #[must_use]
    pub fn line_weight(&self, line: usize) -> u64 {
        self.line_weight[line]
    }

    /// Sum of every set's excess — the conflict half of the search
    /// objective.
    #[must_use]
    pub fn total_excess(&self) -> u64 {
        self.total_excess
    }

    /// The set with the highest excess (lowest index on ties), or `None`
    /// when no set has any contention. A 256-entry scan — cheap enough
    /// for occasional predictor-targeted proposals, so no extra argmax
    /// state is maintained.
    #[must_use]
    pub fn top_excess_set(&self) -> Option<usize> {
        let (mut best, mut best_excess) = (None, 0u64);
        for set in 0..self.num_sets {
            let e = self.set_excess(set);
            if e > best_excess {
                best = Some(set);
                best_excess = e;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict_from_spans;
    use oslay_model::Domain;

    fn cfg() -> CacheConfig {
        // 256-byte cache, 32-byte lines → 8 sets.
        CacheConfig::new(256, 32, 1)
    }

    /// Deterministic pseudo-random spans without pulling in an RNG dep.
    fn spans(n: u64, limit: u64) -> Vec<(u64, u64, u64)> {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = (x >> 20) % (limit - 64);
                let len = 1 + (x >> 8) % 60;
                let weight = 1 + (x >> 40) % 1000;
                (addr, len.min(limit - addr), weight)
            })
            .collect()
    }

    #[test]
    fn matches_full_predictor_exactly() {
        let config = cfg();
        let mut inc = IncrementalPressure::new(&config, 4096);
        let spans = spans(200, 4096);
        for &(addr, len, w) in &spans {
            inc.add_span(addr, len, w);
        }
        let weighted: Vec<crate::WeightedSpan> = spans
            .iter()
            .map(|&(addr, len, w)| (addr, len, (Domain::Os, 0), w as f64))
            .collect();
        let full = predict_from_spans(&weighted, &config);
        let mut full_excess = 0.0;
        for (set, p) in full.sets.iter().enumerate() {
            assert_eq!(p.weight, inc.set_weight(set) as f64, "set {set} weight");
            assert_eq!(p.excess, inc.set_excess(set) as f64, "set {set} excess");
            full_excess += p.excess;
        }
        assert_eq!(full_excess, inc.total_excess() as f64);
    }

    #[test]
    fn remove_is_an_exact_inverse() {
        let config = cfg();
        let mut inc = IncrementalPressure::new(&config, 4096);
        let spans = spans(100, 4096);
        for &(addr, len, w) in &spans {
            inc.add_span(addr, len, w);
        }
        let reference = inc.clone();
        // Move every span somewhere else and back again.
        for &(addr, len, w) in &spans {
            let new_addr = (addr + 1024) % 3500;
            inc.remove_span(addr, len, w);
            inc.add_span(new_addr, len, w);
            inc.remove_span(new_addr, len, w);
            inc.add_span(addr, len, w);
        }
        assert_eq!(inc.total_excess(), reference.total_excess());
        for set in 0..inc.num_sets() {
            assert_eq!(inc.set_weight(set), reference.set_weight(set));
            assert_eq!(inc.set_excess(set), reference.set_excess(set));
        }
        // Draining everything returns to a clean slate.
        for &(addr, len, w) in &spans {
            inc.remove_span(addr, len, w);
        }
        assert_eq!(inc.total_excess(), 0);
        for set in 0..inc.num_sets() {
            assert_eq!(inc.set_weight(set), 0);
        }
    }

    #[test]
    fn excess_counts_weight_beyond_the_hottest_line() {
        let config = cfg();
        let mut inc = IncrementalPressure::new(&config, 4096);
        // Two lines in set 0 (one cache size apart), one line alone.
        inc.add_span(0, 32, 100);
        inc.add_span(256, 32, 60);
        inc.add_span(128, 32, 500);
        assert_eq!(inc.set_weight(0), 160);
        assert_eq!(inc.set_excess(0), 60);
        assert_eq!(
            inc.set_excess(4),
            0,
            "a set with one line has no contention"
        );
        assert_eq!(inc.total_excess(), 60);
        assert_eq!(inc.top_excess_set(), Some(0));
        // Cooling the hottest line flips which line owns the set.
        inc.remove_span(0, 32, 100);
        assert_eq!(inc.set_excess(0), 0);
        assert_eq!(inc.total_excess(), 0);
        assert_eq!(inc.top_excess_set(), None);
    }

    #[test]
    fn zero_len_and_zero_weight_are_no_ops() {
        let mut inc = IncrementalPressure::new(&cfg(), 4096);
        inc.add_span(0, 0, 10);
        inc.add_span(0, 32, 0);
        inc.remove_span(0, 0, 10);
        assert_eq!(inc.total_excess(), 0);
        assert_eq!(inc.set_weight(0), 0);
    }

    #[test]
    #[should_panic(expected = "past the address limit")]
    fn spans_past_the_limit_are_rejected() {
        let mut inc = IncrementalPressure::new(&cfg(), 4096);
        inc.add_span(4090, 32, 1);
    }
}
