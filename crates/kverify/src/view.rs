//! A mutable address-map view of a layout.
//!
//! The checker never needs the full [`Layout`](oslay_layout::Layout)
//! machinery — only each block's placed address and effective span. A
//! [`LayoutView`] captures exactly that, and (unlike `Layout`, whose
//! fields are deliberately private and whose builder refuses to construct
//! broken layouts) it can be *corrupted on purpose*: the mutation tests
//! and the `lint --mutate` modes swap, shift, and re-aim blocks through
//! this view to prove each invariant check actually fires.

use oslay_layout::Layout;
use oslay_model::BlockId;

/// Per-block placed addresses and effective sizes, open for mutation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LayoutView {
    /// Layout name (carried into reports).
    pub name: String,
    /// Start address per block, indexed by block index.
    pub addr: Vec<u64>,
    /// Effective size in bytes per block (block size plus stretch).
    pub size: Vec<u32>,
}

impl LayoutView {
    /// Captures a finished layout.
    #[must_use]
    pub fn from_layout(layout: &Layout) -> Self {
        let n = layout.num_blocks();
        Self {
            name: layout.name().to_owned(),
            addr: (0..n).map(|i| layout.addr(BlockId::new(i))).collect(),
            size: (0..n)
                .map(|i| layout.effective_size(BlockId::new(i)))
                .collect(),
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.addr.len()
    }

    /// End address (exclusive) of a block's span.
    #[must_use]
    pub fn end(&self, block: usize) -> u64 {
        self.addr[block] + u64::from(self.size[block])
    }

    /// Swaps the addresses of two blocks (sizes stay with their blocks, so
    /// unequal sizes usually also produce overlaps — the point of the
    /// mutation is breaking placement *order*).
    pub fn swap_addrs(&mut self, a: usize, b: usize) {
        self.addr.swap(a, b);
    }

    /// Shifts every listed block by `delta` bytes.
    ///
    /// # Panics
    ///
    /// Panics if a shift would move a block below address zero.
    pub fn shift_blocks(&mut self, blocks: &[usize], delta: i64) {
        for &b in blocks {
            self.addr[b] = self.addr[b]
                .checked_add_signed(delta)
                .expect("shift keeps addresses non-negative");
        }
    }

    /// Re-aims one block at an explicit address.
    pub fn set_addr(&mut self, block: usize, addr: u64) {
        self.addr[block] = addr;
    }

    /// Block indices sorted by placed address (ties by index).
    #[must_use]
    pub fn by_addr(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.num_blocks()).collect();
        order.sort_by_key(|&i| (self.addr[i], i));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> LayoutView {
        LayoutView {
            name: "t".into(),
            addr: vec![0, 10, 30],
            size: vec![10, 20, 5],
        }
    }

    #[test]
    fn end_and_order() {
        let v = view();
        assert_eq!(v.end(1), 30);
        assert_eq!(v.by_addr(), vec![0, 1, 2]);
    }

    #[test]
    fn mutations_apply() {
        let mut v = view();
        v.swap_addrs(0, 2);
        assert_eq!(v.addr, vec![30, 10, 0]);
        v.shift_blocks(&[1], 64);
        assert_eq!(v.addr[1], 74);
        v.set_addr(0, 5);
        assert_eq!(v.addr[0], 5);
        assert_eq!(v.by_addr(), vec![2, 0, 1]);
    }
}
