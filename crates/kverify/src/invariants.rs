//! The invariant checker: layout guarantees proved without simulation.
//!
//! Every guarantee the paper's optimized layouts rely on is a *structural*
//! property of the placed address map — none of them needs a trace to
//! check:
//!
//! * every block placed exactly once, no address-range overlaps
//!   ([`DiagCode::BlockOverlap`]);
//! * sequences placed contiguously in captured order, interrupted only by
//!   SelfConfFree-window skips ([`DiagCode::SequenceOrder`]);
//! * sequences conforming to the descending `(ExecThresh, BranchThresh)`
//!   schedule they claim ([`DiagCode::ThresholdSchedule`]);
//! * the loop area holding exactly the qualifying high-iteration loop
//!   blocks, contiguously, at the end of the sequences
//!   ([`DiagCode::LoopArea`]);
//! * the SelfConfFree region conflict-free by set-index arithmetic against
//!   every other logical cache ([`DiagCode::ScfConflict`],
//!   [`DiagCode::ScfResident`]).
//!
//! The checker consumes a [`LayoutView`] (addresses + spans) plus the same
//! inputs the optimizer had (profile, sequences, loop analysis), and
//! returns a [`VerifyReport`] of typed diagnostics.

use oslay_model::{BlockId, Program};
use oslay_profile::{LoopAnalysis, Profile};

use oslay_layout::{BlockClass, SequenceSet, ThresholdSchedule};

use crate::{DiagCode, Diagnostic, LayoutView, VerifyReport};

/// Float slack for re-checking threshold comparisons the sequence builder
/// made with the same arithmetic (guards against nothing today; keeps the
/// checker honest if ratios are ever recomputed differently).
const EPS: f64 = 1e-12;

/// Optimizer-side context for the full invariant suite. Without it (base /
/// Chang–Hwu / per-loop `Call` layouts) only the structural checks run.
#[derive(Clone, Debug)]
pub struct OptContext<'a> {
    /// Per-block placement classes (`OptLayout::classes`).
    pub classes: &'a [BlockClass],
    /// The sequences the layout was built from.
    pub sequences: &'a SequenceSet,
    /// The threshold schedule the sequences claim to follow.
    pub schedule: &'a ThresholdSchedule,
    /// Loop analysis over the same profile.
    pub loops: &'a LoopAnalysis,
    /// Bytes reserved for the SelfConfFree area (0 disables SCF checks).
    pub scf_bytes: u64,
    /// Logical-cache granularity in bytes (the target cache size).
    pub cache_size: u32,
    /// Cache line size in bytes (for reporting conflicting set indices).
    pub line_size: u32,
    /// Loop-extraction qualification bound (iterations per invocation).
    pub min_loop_iters: f64,
    /// Whether the layout extracted loops (OptL) — enables the loop-area
    /// population check.
    pub check_loop_area: bool,
}

/// Everything the checker consumes.
#[derive(Clone, Debug)]
pub struct VerifyInput<'a> {
    /// The program the layout places.
    pub program: &'a Program,
    /// The measured profile the layout was optimized for.
    pub profile: &'a Profile,
    /// The placed address map under test.
    pub view: &'a LayoutView,
    /// Optimizer context; `None` runs structural checks only.
    pub opt: Option<OptContext<'a>>,
}

/// Runs every applicable invariant check and returns the diagnostics.
///
/// # Panics
///
/// Panics if the view's block count disagrees with the program's.
#[must_use]
pub fn verify(input: &VerifyInput<'_>) -> VerifyReport {
    let VerifyInput {
        program,
        profile,
        view,
        opt,
    } = input;
    assert_eq!(
        view.num_blocks(),
        program.num_blocks(),
        "view covers every program block"
    );
    let mut report = VerifyReport::new(view.name.clone());

    check_zero_size(program, view, &mut report);
    check_overlaps(program, view, &mut report);

    if let Some(opt) = opt {
        assert_eq!(
            opt.classes.len(),
            program.num_blocks(),
            "one class per block"
        );
        check_scf_residents(program, view, opt, &mut report);
        check_scf_conflicts(program, profile, view, opt, &mut report);
        check_executed_cold(program, profile, opt, &mut report);
        check_schedule(program, profile, opt, &mut report);
        check_hot_stream(program, view, opt, &mut report);
        if opt.check_loop_area {
            check_loop_population(program, profile, opt, &mut report);
        }
    }
    report
}

/// Convenience: structural checks only (overlaps, zero-size spans) for
/// layouts without optimizer provenance.
#[must_use]
pub fn verify_structural(program: &Program, view: &LayoutView) -> VerifyReport {
    verify(&VerifyInput {
        program,
        profile: &Profile::empty(program),
        view,
        opt: None,
    })
}

fn routine_name(program: &Program, block: usize) -> String {
    program
        .routine(program.block(BlockId::new(block)).routine())
        .name()
        .to_owned()
}

/// `KV008`: zero-size spans. The layout builder cannot produce them from a
/// real program (block sizes are positive), so one here means the address
/// map was corrupted or hand-built.
fn check_zero_size(program: &Program, view: &LayoutView, report: &mut VerifyReport) {
    for b in 0..view.num_blocks() {
        if view.size[b] == 0 {
            report.push(
                Diagnostic::new(DiagCode::ZeroSizeBlock, "block has a zero-size span")
                    .with_block(b, routine_name(program, b))
                    .with_addr(view.addr[b]),
            );
        }
    }
}

/// `KV001`: address-range overlaps, detected over the address-sorted block
/// order. Every block appears exactly once in the view by construction
/// (it is indexed by block), so "placed exactly once" reduces to spans not
/// intersecting.
fn check_overlaps(program: &Program, view: &LayoutView, report: &mut VerifyReport) {
    let order = view.by_addr();
    for pair in order.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if view.end(a) > view.addr[b] {
            report.push(
                Diagnostic::new(
                    DiagCode::BlockOverlap,
                    format!(
                        "block {a} ({}, {:#x}..{:#x}) overlaps block {b} ({}, starts {:#x})",
                        routine_name(program, a),
                        view.addr[a],
                        view.end(a),
                        routine_name(program, b),
                        view.addr[b],
                    ),
                )
                .with_block(b, routine_name(program, b))
                .with_addr(view.addr[b]),
            );
        }
    }
}

/// `KV006`: every SelfConfFree resident must lie entirely inside the
/// reserved `[0, scf_bytes)` window of logical cache 0.
fn check_scf_residents(
    program: &Program,
    view: &LayoutView,
    opt: &OptContext<'_>,
    report: &mut VerifyReport,
) {
    for b in 0..view.num_blocks() {
        if opt.classes[b] != BlockClass::SelfConfFree {
            continue;
        }
        if opt.scf_bytes == 0 || view.end(b) > opt.scf_bytes {
            report.push(
                Diagnostic::new(
                    DiagCode::ScfResident,
                    format!(
                        "SelfConfFree block spans {:#x}..{:#x}, outside the reserved [0, {:#x}) area",
                        view.addr[b],
                        view.end(b),
                        opt.scf_bytes,
                    ),
                )
                .with_block(b, routine_name(program, b))
                .with_addr(view.addr[b]),
            );
        }
    }
}

/// `KV005`: the SelfConfFree guarantee, proved by set arithmetic. The area
/// owns cache offsets `[0, scf_bytes)`; it is conflict-free iff no
/// *executed* non-SCF code maps any byte into those offsets in any logical
/// cache (never-executed window fill is exactly what the windows are for).
///
/// `scf_bytes` is not line-aligned (the paper's 2.0% cut-off area is 1286
/// bytes), so the check is byte-granular: a span `[addr, addr+len)`
/// intersects a window iff `addr % cache < scf_bytes` or the span crosses
/// its chunk's end (entering the next window's start).
fn check_scf_conflicts(
    program: &Program,
    profile: &Profile,
    view: &LayoutView,
    opt: &OptContext<'_>,
    report: &mut VerifyReport,
) {
    if opt.scf_bytes == 0 {
        return;
    }
    let cache = u64::from(opt.cache_size);
    let sets_per_cache = opt.cache_size / opt.line_size;
    for b in 0..view.num_blocks() {
        if opt.classes[b] == BlockClass::SelfConfFree {
            continue;
        }
        if profile.node_weight(BlockId::new(b)) == 0 {
            continue;
        }
        let len = u64::from(view.size[b]);
        if len == 0 {
            continue;
        }
        let off = view.addr[b] % cache;
        let head_in_window = off < opt.scf_bytes;
        let crosses_chunk = off + len > cache;
        if head_in_window || crosses_chunk {
            let set = (view.addr[b] / u64::from(opt.line_size)) % u64::from(sets_per_cache);
            report.push(
                Diagnostic::new(
                    DiagCode::ScfConflict,
                    format!(
                        "executed {:?} block at cache offset {off:#x} (set {set}) maps into \
                         the SelfConfFree offsets [0, {:#x})",
                        opt.classes[b], opt.scf_bytes,
                    ),
                )
                .with_block(b, routine_name(program, b))
                .with_addr(view.addr[b]),
            );
        }
    }
}

/// `KV007` (warning): an executed block classified `Cold` was placed by
/// the never-executed fill paths — it will fault straight into a window.
fn check_executed_cold(
    program: &Program,
    profile: &Profile,
    opt: &OptContext<'_>,
    report: &mut VerifyReport,
) {
    for b in profile.executed_blocks() {
        if opt.classes[b.index()] == BlockClass::Cold {
            report.push(
                Diagnostic::new(
                    DiagCode::ExecutedCold,
                    format!(
                        "block executed {} times but is classified Cold",
                        profile.node_weight(b)
                    ),
                )
                .with_block(b.index(), routine_name(program, b.index())),
            );
        }
    }
}

/// `KV003`: each sequence must conform to the schedule — its recorded
/// `ExecThresh` matches its pass, the pass admits its seed, pass indices
/// are non-decreasing across the set (descending popularity), every member
/// meets the pass's `ExecThresh`, and every intra-sequence step follows an
/// arc meeting the seed's `BranchThresh`.
fn check_schedule(
    program: &Program,
    profile: &Profile,
    opt: &OptContext<'_>,
    report: &mut VerifyReport,
) {
    let mut last_pass = 0usize;
    for (idx, seq) in opt.sequences.sequences().iter().enumerate() {
        let Some(pass) = opt.schedule.passes.get(seq.pass) else {
            report.push(
                Diagnostic::new(
                    DiagCode::ThresholdSchedule,
                    format!(
                        "sequence claims pass {} of a {}-pass schedule",
                        seq.pass,
                        opt.schedule.passes.len()
                    ),
                )
                .with_sequence(idx),
            );
            continue;
        };
        if seq.pass < last_pass {
            report.push(
                Diagnostic::new(
                    DiagCode::ThresholdSchedule,
                    format!(
                        "pass order regresses: sequence at pass {} after pass {last_pass}",
                        seq.pass
                    ),
                )
                .with_sequence(idx),
            );
        }
        last_pass = last_pass.max(seq.pass);
        if seq.exec_thresh != pass.exec {
            report.push(
                Diagnostic::new(
                    DiagCode::ThresholdSchedule,
                    format!(
                        "sequence records ExecThresh {} but pass {} prescribes {}",
                        seq.exec_thresh, seq.pass, pass.exec
                    ),
                )
                .with_sequence(idx),
            );
        }
        let Some(branch_thresh) = pass.branch[seq.seed.index()] else {
            report.push(
                Diagnostic::new(
                    DiagCode::ThresholdSchedule,
                    format!(
                        "seed {} does not participate in pass {} yet",
                        seq.seed, seq.pass
                    ),
                )
                .with_sequence(idx),
            );
            continue;
        };
        for &b in &seq.blocks {
            if profile.exec_ratio(b) < seq.exec_thresh - EPS {
                report.push(
                    Diagnostic::new(
                        DiagCode::ThresholdSchedule,
                        format!(
                            "member exec ratio {:.3e} below the pass's ExecThresh {:.3e}",
                            profile.exec_ratio(b),
                            seq.exec_thresh
                        ),
                    )
                    .with_block(b.index(), routine_name(program, b.index()))
                    .with_sequence(idx),
                );
            }
        }
        for pair in seq.blocks.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if profile.arc_prob(a, b) < branch_thresh - EPS {
                report.push(
                    Diagnostic::new(
                        DiagCode::ThresholdSchedule,
                        format!(
                            "chain step {a}→{b} has arc probability {:.3} below \
                             BranchThresh {branch_thresh}",
                            profile.arc_prob(a, b),
                        ),
                    )
                    .with_block(b.index(), routine_name(program, b.index()))
                    .with_sequence(idx),
                );
            }
        }
    }
}

/// `KV002` / `KV004`: the hot placement stream. The optimizer places the
/// retained sequence blocks in captured order, then the extracted loop
/// blocks, through the logical-cache allocator — so each consecutive pair
/// is either dead contiguous (`addr(b) == end(a)`; stretch is inside the
/// effective size) or separated by a window skip landing exactly at cache
/// offset `scf_bytes`. A violated step inside the sequences is `KV002`;
/// a violated step entering or inside the loop area is `KV004`.
fn check_hot_stream(
    program: &Program,
    view: &LayoutView,
    opt: &OptContext<'_>,
    report: &mut VerifyReport,
) {
    let mut seq_of = vec![None; view.num_blocks()];
    for (idx, b) in opt.sequences.blocks_in_order() {
        seq_of[b.index()] = Some(idx);
    }
    // Reconstruct the placement stream: retained sequence blocks in
    // captured order, then loop-area blocks in captured order.
    let retained: Vec<BlockId> = opt
        .sequences
        .blocks_in_order()
        .map(|(_, b)| b)
        .filter(|&b| {
            !matches!(
                opt.classes[b.index()],
                BlockClass::SelfConfFree | BlockClass::Loop
            )
        })
        .collect();
    let loop_blocks: Vec<BlockId> = opt
        .sequences
        .blocks_in_order()
        .map(|(_, b)| b)
        .filter(|&b| opt.classes[b.index()] == BlockClass::Loop)
        .collect();

    let cache = u64::from(opt.cache_size);
    let window_landing = |addr: u64| opt.scf_bytes > 0 && addr % cache == opt.scf_bytes;

    // The stream starts right after the SelfConfFree area (or at the image
    // base when the area is disabled).
    if let Some(&first) = retained.first() {
        let addr = view.addr[first.index()];
        let ok = if opt.scf_bytes > 0 {
            window_landing(addr)
        } else {
            addr == 0
        };
        if !ok {
            report.push(
                Diagnostic::new(
                    DiagCode::SequenceOrder,
                    format!(
                        "first sequence block starts at {addr:#x}, not at the \
                         SelfConfFree boundary (cache offset {:#x})",
                        opt.scf_bytes
                    ),
                )
                .with_block(first.index(), routine_name(program, first.index()))
                .with_sequence(seq_of[first.index()].unwrap_or(0))
                .with_addr(addr),
            );
        }
    }

    let stream: Vec<BlockId> = retained.iter().chain(loop_blocks.iter()).copied().collect();
    for pair in stream.windows(2) {
        let (a, b) = (pair[0].index(), pair[1].index());
        let end_a = view.end(a);
        let addr_b = view.addr[b];
        let contiguous = addr_b == end_a;
        let skipped = addr_b > end_a && window_landing(addr_b);
        if contiguous || skipped {
            continue;
        }
        let in_loop_area = opt.classes[a] == BlockClass::Loop || opt.classes[b] == BlockClass::Loop;
        let (code, what) = if in_loop_area {
            (DiagCode::LoopArea, "loop area")
        } else {
            (DiagCode::SequenceOrder, "sequence stream")
        };
        let mut diag = Diagnostic::new(
            code,
            format!(
                "{what} breaks at block {a}→{b}: predecessor ends at {end_a:#x} but \
                 successor starts at {addr_b:#x} (neither contiguous nor a window \
                 skip to cache offset {:#x})",
                opt.scf_bytes
            ),
        )
        .with_block(b, routine_name(program, b))
        .with_addr(addr_b);
        if let Some(s) = seq_of[b] {
            diag = diag.with_sequence(s);
        }
        report.push(diag);
    }
}

/// `KV004` (population half): the loop area must hold *exactly* the
/// executed body blocks of executed loops with at least `min_loop_iters`
/// iterations per invocation, minus blocks already pulled into the
/// SelfConfFree area.
fn check_loop_population(
    program: &Program,
    profile: &Profile,
    opt: &OptContext<'_>,
    report: &mut VerifyReport,
) {
    let mut expected = vec![false; program.num_blocks()];
    for l in opt.loops.executed_loops() {
        if l.iterations_per_entry() < opt.min_loop_iters {
            continue;
        }
        for &b in &l.body {
            if profile.node_weight(b) > 0 && opt.classes[b.index()] != BlockClass::SelfConfFree {
                expected[b.index()] = true;
            }
        }
    }
    for (b, &should_be_loop) in expected.iter().enumerate() {
        let actual = opt.classes[b] == BlockClass::Loop;
        if actual == should_be_loop {
            continue;
        }
        let msg = if should_be_loop {
            format!(
                "block belongs to a ≥{} iterations/invocation loop but is not in the loop area",
                opt.min_loop_iters
            )
        } else {
            "block is in the loop area but no qualifying loop contains it".to_owned()
        };
        report
            .push(Diagnostic::new(DiagCode::LoopArea, msg).with_block(b, routine_name(program, b)));
    }
}
