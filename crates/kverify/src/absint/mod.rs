//! Trace-free abstract-interpretation cache analysis.
//!
//! A fixpoint dataflow engine over the profile's arc graph and one
//! placed layout, computing per cache set **must** (lines guaranteed
//! resident), **may** (lines possibly resident) and **persistence**
//! (lines never evicted once loaded) abstract states with LRU-age
//! lattices — then classifying every placed block's line accesses as
//! always-hit, always-miss, persistent (first-miss-only) or
//! unclassified, without replaying a single trace event.
//!
//! Soundness rests on three facts the rest of the repo establishes:
//!
//! 1. the trace engine keeps OS invocations *atomic* (no nesting, no
//!    application blocks inside), so everything between two invocations
//!    collapses into the havoc in-state pinned at each invocation seed;
//! 2. profile arcs are recorded only *within* invocations, so the arc
//!    graph is exactly the set of consecutive same-invocation block
//!    pairs — and a merged profile's arc set is a superset of every
//!    individual workload's, making one analysis sound for each;
//! 3. line accesses are enumerated from *fetch words* (the unit the
//!    replayer actually touches), not byte spans, so the static and
//!    measured access sequences agree line for line.
//!
//! The `analyze` binary's soundness gate replays all four workloads and
//! checks the classes against measured misses: zero on always-hit
//! points, at most one per persistent line.

mod domain;
mod fixpoint;

use std::collections::HashMap;

pub use domain::AbsState;

use oslay_cache::CacheConfig;
use oslay_model::{fetch_words, Program, SeedKind, WORD_BYTES};
use oslay_profile::Profile;

use crate::LayoutView;

/// Parameters of one abstract-interpretation run.
#[derive(Clone, Debug)]
pub struct AbsintParams {
    /// Cache geometry the layout is analyzed against.
    pub config: CacheConfig,
    /// Per-block join budget before the widening havocs the block's
    /// in-state (termination insurance; the lattice is finite, so this
    /// only fires on pathological graphs).
    pub join_bound: u32,
    /// Maximum explicit may entries per set before the oldest fold into
    /// the set's unknown pool.
    pub may_cap_per_set: usize,
    /// Line-aligned addresses of *foreign* code (application blocks the
    /// workloads execute). They never enter the abstract states — the
    /// seed havoc already covers them — but they count against each
    /// set's persistence budget.
    pub foreign_lines: Vec<u64>,
}

impl AbsintParams {
    /// Default parameters for a geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            join_bound: 64,
            may_cap_per_set: 8,
            foreign_lines: Vec::new(),
        }
    }

    /// Sets the foreign (application) line addresses.
    #[must_use]
    pub fn with_foreign_lines(mut self, lines: Vec<u64>) -> Self {
        self.foreign_lines = lines;
        self
    }
}

/// Static class of one line access point.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum LineClass {
    /// The line is resident in every concrete state reaching the point.
    AlwaysHit,
    /// The line's set never holds more distinct lines than ways: once
    /// loaded it is never evicted, so the point misses at most once per
    /// run.
    Persistent,
    /// The line is resident in no concrete state reaching the point.
    AlwaysMiss,
    /// Neither bound applies.
    Unclassified,
}

impl LineClass {
    /// All classes, strongest guarantee first.
    pub const ALL: [LineClass; 4] = [
        LineClass::AlwaysHit,
        LineClass::Persistent,
        LineClass::AlwaysMiss,
        LineClass::Unclassified,
    ];

    /// Dense index (`0..4`) in [`LineClass::ALL`] order.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            LineClass::AlwaysHit => 0,
            LineClass::Persistent => 1,
            LineClass::AlwaysMiss => 2,
            LineClass::Unclassified => 3,
        }
    }

    /// Short label used in tables and JSON section keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LineClass::AlwaysHit => "always-hit",
            LineClass::Persistent => "persistent",
            LineClass::AlwaysMiss => "always-miss",
            LineClass::Unclassified => "unclassified",
        }
    }
}

/// One classified line access point: block × line slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClassPoint {
    /// Block index in the program.
    pub block: u32,
    /// Line slot within the block's fetch sequence (0-based).
    pub slot: u32,
    /// Line-aligned address the slot touches.
    pub line_addr: u64,
    /// Cache set the line maps to.
    pub set: u32,
    /// Profile weight (block executions — accesses at this point).
    pub weight: u64,
    /// The static class.
    pub class: LineClass,
}

/// Result of classifying one layout: every executed block's line access
/// points, plus effort and coverage accounting.
#[derive(Clone, PartialEq, Debug)]
pub struct Classification {
    /// Name of the classified layout.
    pub layout: String,
    /// All points of executed blocks, ordered by (block, slot).
    pub points: Vec<ClassPoint>,
    /// Point counts per class, [`LineClass::ALL`] order.
    pub count: [u64; 4],
    /// Execution-weighted point counts per class.
    pub weighted: [u64; 4],
    /// Worklist pops until the fixpoint stabilized.
    pub iterations: u64,
    /// Blocks widened to havoc by the join budget.
    pub havocked: u32,
    /// Executed blocks analyzed.
    pub analyzed_blocks: u32,
    /// Lattice-consistency violations observed at classification time
    /// (must ⊆ may with consistent age bounds at every point); always 0
    /// unless the engine is broken — asserted by the property tests.
    pub invariant_violations: u64,
}

impl Classification {
    /// Total execution-weighted accesses across all points.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.weighted.iter().sum()
    }

    /// Weighted share of one class (0 when nothing is weighted).
    #[must_use]
    pub fn weighted_share(&self, class: LineClass) -> f64 {
        let total = self.total_weight();
        if total == 0 {
            0.0
        } else {
            self.weighted[class.index()] as f64 / total as f64
        }
    }

    /// Coverage: the fraction of weighted accesses carrying any
    /// guarantee (everything but unclassified).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        1.0 - self.weighted_share(LineClass::Unclassified)
    }
}

/// The line-aligned addresses a block at `addr` with `effective_size`
/// bytes touches, in fetch order — derived from the block's *fetch
/// words* exactly as the replayer touches them (a byte-span enumeration
/// can claim a trailing line no fetch ever reaches).
#[must_use]
pub fn block_line_addrs(addr: u64, effective_size: u32, config: &CacheConfig) -> Vec<u64> {
    let words = fetch_words(effective_size);
    let mut out = Vec::new();
    for w in 0..words {
        let line = config.line_addr(addr + u64::from(w) * u64::from(WORD_BYTES));
        if out.last() != Some(&line) {
            out.push(line);
        }
    }
    out
}

/// Classifies every executed block's line accesses under `view`.
///
/// `profile` supplies the arc graph and weights; pass the *merged*
/// profile to get a classification sound for every workload it merges.
/// `program` supplies the invocation seed blocks.
///
/// # Panics
///
/// Panics if `view` and `profile` disagree on the block count, or if the
/// geometry's associativity exceeds 255.
#[must_use]
pub fn classify_layout(
    program: &Program,
    profile: &Profile,
    view: &LayoutView,
    params: &AbsintParams,
) -> Classification {
    assert_eq!(
        view.num_blocks(),
        profile.num_blocks(),
        "layout and profile describe different programs"
    );
    let cfg = &params.config;
    let ways = u8::try_from(cfg.ways()).expect("associativity fits u8");
    let num_sets = cfg.num_sets() as usize;

    // Dense node ids for executed blocks; dense line ids for their
    // line-aligned addresses.
    let executed: Vec<usize> = profile.executed_blocks().map(|b| b.index()).collect();
    let mut node_of: HashMap<usize, u32> = HashMap::with_capacity(executed.len());
    for (node, &block) in executed.iter().enumerate() {
        node_of.insert(block, node as u32);
    }
    let mut line_ids: HashMap<u64, u32> = HashMap::new();
    let mut line_set: Vec<u32> = Vec::new();
    let mut line_addr_of: Vec<u64> = Vec::new();
    let mut lines: Vec<Vec<(u32, u32)>> = Vec::with_capacity(executed.len());
    for &block in &executed {
        let slots: Vec<(u32, u32)> = block_line_addrs(view.addr[block], view.size[block], cfg)
            .into_iter()
            .map(|addr| {
                let next = line_ids.len() as u32;
                let id = *line_ids.entry(addr).or_insert(next);
                if id == next {
                    line_set.push(cfg.set_of(addr));
                    line_addr_of.push(addr);
                }
                (id, line_set[id as usize])
            })
            .collect();
        lines.push(slots);
    }

    // CSR successor lists from the profile's arcs (both ends executed).
    let mut arcs: Vec<(u32, u32)> = profile
        .arcs()
        .filter(|a| a.count > 0)
        .filter_map(
            |a| match (node_of.get(&a.src.index()), node_of.get(&a.dst.index())) {
                (Some(&s), Some(&d)) => Some((s, d)),
                _ => None,
            },
        )
        .collect();
    arcs.sort_unstable();
    arcs.dedup();
    let mut succ_first = vec![0u32; executed.len() + 1];
    for &(s, _) in &arcs {
        succ_first[s as usize + 1] += 1;
    }
    for i in 0..executed.len() {
        succ_first[i + 1] += succ_first[i];
    }
    let succ: Vec<u32> = arcs.iter().map(|&(_, d)| d).collect();

    // Invocation seeds with at least one recorded entry.
    let seeds: Vec<u32> = SeedKind::ALL
        .iter()
        .filter(|&&k| profile.seed_invocations(k) > 0)
        .filter_map(|&k| program.seed_block(k))
        .filter_map(|b| node_of.get(&b.index()).copied())
        .collect();

    let graph = fixpoint::Graph {
        lines,
        succ_first,
        succ,
        seeds,
    };
    let fx = fixpoint::solve(
        &graph,
        num_sets,
        ways,
        &line_set,
        params.may_cap_per_set,
        params.join_bound,
    );

    // Persistence: a set whose distinct ever-accessed lines (executed OS
    // lines plus foreign application lines) fit within its ways never
    // evicts — every line in it misses at most once per run.
    let mut set_lines = vec![0u64; num_sets];
    for &s in &line_set {
        set_lines[s as usize] += 1;
    }
    let mut foreign_seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for &addr in &params.foreign_lines {
        let line = cfg.line_addr(addr);
        if line_ids.contains_key(&line) {
            continue; // already counted as an OS line
        }
        if foreign_seen.insert(line) {
            set_lines[cfg.set_of(line) as usize] += 1;
        }
    }
    let persistent_ok: Vec<bool> = set_lines.iter().map(|&n| n <= u64::from(ways)).collect();

    // Classification walk: each slot is judged against the state after
    // its block's earlier slots.
    let havoc = AbsState::havoc(num_sets);
    let mut points = Vec::new();
    let mut count = [0u64; 4];
    let mut weighted = [0u64; 4];
    let mut invariant_violations = 0u64;
    for (node, &block) in executed.iter().enumerate() {
        let weight = profile.node_weight(oslay_model::BlockId::new(block));
        let mut state = fx.in_states[node].clone().unwrap_or_else(|| havoc.clone());
        for (slot, &(line, set)) in graph.lines[node].iter().enumerate() {
            invariant_violations += state.invariant_violations(&line_set, ways);
            let class = if state.must_hit(line) {
                LineClass::AlwaysHit
            } else if persistent_ok[set as usize] {
                LineClass::Persistent
            } else if !state.may_contain(line, set, ways) {
                LineClass::AlwaysMiss
            } else {
                LineClass::Unclassified
            };
            count[class.index()] += 1;
            weighted[class.index()] += weight;
            points.push(ClassPoint {
                block: block as u32,
                slot: slot as u32,
                line_addr: line_addr_of[line as usize],
                set,
                weight,
                class,
            });
            state.access(line, set, ways, &line_set);
        }
    }

    Classification {
        layout: view.name.clone(),
        points,
        count,
        weighted,
        iterations: fx.iterations,
        havocked: fx.havocked,
        analyzed_blocks: executed.len() as u32,
        invariant_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_layout::base_layout;
    use oslay_model::synth::{generate_kernel, KernelParams, Scale};
    use oslay_trace::{standard_workloads, Engine, EngineConfig};

    fn tiny_classification() -> Classification {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 13));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(16)).run(40_000);
        let p = oslay_profile::Profile::collect(&k.program, &t);
        let layout = base_layout(&k.program, 0);
        let view = LayoutView::from_layout(&layout);
        let params = AbsintParams::new(CacheConfig::paper_default());
        classify_layout(&k.program, &p, &view, &params)
    }

    #[test]
    fn block_lines_follow_fetch_words_not_byte_spans() {
        let cfg = CacheConfig::paper_default();
        // addr 2, 31 bytes: byte span [2, 33) touches line 32, but the
        // last fetch word sits at addr 30 — only line 0 is fetched.
        assert_eq!(block_line_addrs(2, 31, &cfg), vec![0]);
        // addr 30, 8 bytes: words at 30 and 34 straddle the boundary.
        assert_eq!(block_line_addrs(30, 8, &cfg), vec![0, 32]);
        // Zero-size block fetches nothing.
        assert_eq!(block_line_addrs(64, 0, &cfg), Vec::<u64>::new());
    }

    #[test]
    fn classification_accounts_are_consistent() {
        let c = tiny_classification();
        assert!(c.analyzed_blocks > 0);
        assert_eq!(c.count.iter().sum::<u64>(), c.points.len() as u64);
        assert_eq!(
            c.total_weight(),
            c.points.iter().map(|p| p.weight).sum::<u64>()
        );
        assert!((0.0..=1.0).contains(&c.coverage()));
        assert_eq!(c.invariant_violations, 0);
        // A real trace produces within-invocation locality: some points
        // must be provably always-hit.
        assert!(c.count[LineClass::AlwaysHit.index()] > 0);
        // And the fixpoint did real work.
        assert!(c.iterations >= u64::from(c.analyzed_blocks));
    }

    #[test]
    fn classification_is_deterministic() {
        let a = tiny_classification();
        let b = tiny_classification();
        assert_eq!(a, b);
    }

    #[test]
    fn foreign_lines_shrink_persistence() {
        let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 13));
        let specs = standard_workloads(&k.tables);
        let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(16)).run(40_000);
        let p = oslay_profile::Profile::collect(&k.program, &t);
        let layout = base_layout(&k.program, 0);
        let view = LayoutView::from_layout(&layout);
        let cfg = CacheConfig::paper_default();
        let plain = classify_layout(&k.program, &p, &view, &AbsintParams::new(cfg));
        // Flood every set with `ways` foreign lines (placed far above
        // any OS address): no set can stay under its persistence budget.
        let flood: Vec<u64> = (0..cfg.num_sets() * cfg.ways())
            .map(|i| (1u64 << 40) + u64::from(i) * u64::from(cfg.line()))
            .collect();
        let flooded = classify_layout(
            &k.program,
            &p,
            &view,
            &AbsintParams::new(cfg).with_foreign_lines(flood),
        );
        assert_eq!(flooded.count[LineClass::Persistent.index()], 0);
        assert!(
            plain.count[LineClass::Persistent.index()]
                >= flooded.count[LineClass::Persistent.index()]
        );
    }
}
