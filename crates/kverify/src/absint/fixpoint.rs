//! Deterministic worklist fixpoint over the profile-weighted arc graph.
//!
//! Nodes are the *executed* blocks of one OS profile; edges are the
//! profile's measured arcs (a superset of every individual workload's
//! transitions when run on a merged profile, which is what makes the
//! result sound for each workload separately). Invocation seed blocks
//! are pinned to the havoc state: the trace engine guarantees OS
//! invocations are atomic, so everything that happens between two
//! invocations — application execution, other invocations — collapses
//! into "assume nothing" at the seed.
//!
//! Termination is structural: the join is a monotone climb in a finite
//! lattice, and a per-block join budget havocs any block whose in-state
//! keeps changing (the havoc state is absorbing, so a havocked block can
//! never be re-enqueued by a join). Total worklist pops are therefore
//! bounded by `blocks x (join budget + 2)` — the bound the property
//! tests assert.

use std::collections::VecDeque;

use super::domain::AbsState;

/// The analysis graph: dense executed-block indices, CSR successor
/// lists, per-node line slots.
pub(crate) struct Graph {
    /// Line slots (dense line id, set index) per node, in fetch order.
    pub lines: Vec<Vec<(u32, u32)>>,
    /// CSR offsets into `succ` (length `nodes + 1`).
    pub succ_first: Vec<u32>,
    /// Successor node indices, sorted per node.
    pub succ: Vec<u32>,
    /// Nodes pinned to the havoc in-state (invocation seeds).
    pub seeds: Vec<u32>,
}

/// Fixpoint outcome: per-node entry states plus effort counters.
pub(crate) struct Fixpoint {
    /// Entry state per node (`None` = never reached; classify against
    /// havoc, which assumes nothing).
    pub in_states: Vec<Option<AbsState>>,
    /// Worklist pops until stabilization.
    pub iterations: u64,
    /// Nodes widened to havoc by the join budget.
    pub havocked: u32,
}

/// Runs the worklist to fixpoint.
pub(crate) fn solve(
    graph: &Graph,
    num_sets: usize,
    ways: u8,
    line_set: &[u32],
    may_cap: usize,
    join_bound: u32,
) -> Fixpoint {
    let n = graph.lines.len();
    let mut in_states: Vec<Option<AbsState>> = vec![None; n];
    let mut joins = vec![0u32; n];
    let mut seed = vec![false; n];
    let mut queued = vec![false; n];
    let mut worklist = VecDeque::new();
    for &s in &graph.seeds {
        in_states[s as usize] = Some(AbsState::havoc(num_sets));
        seed[s as usize] = true;
        if !queued[s as usize] {
            queued[s as usize] = true;
            worklist.push_back(s);
        }
    }

    let mut iterations = 0u64;
    let mut havocked = 0u32;
    while let Some(node) = worklist.pop_front() {
        let node = node as usize;
        queued[node] = false;
        iterations += 1;

        // Transfer: push the entry state through the node's line slots.
        let mut out = in_states[node]
            .clone()
            .expect("only reached nodes are enqueued");
        for &(line, set) in &graph.lines[node] {
            out.access(line, set, ways, line_set);
        }

        let (lo, hi) = (
            graph.succ_first[node] as usize,
            graph.succ_first[node + 1] as usize,
        );
        for &next in &graph.succ[lo..hi] {
            let next = next as usize;
            if seed[next] {
                // Seed in-states are constant havoc; joining anything
                // into havoc is a no-op.
                continue;
            }
            let changed = match &mut in_states[next] {
                Some(state) => state.join_from(&out, line_set, ways, may_cap),
                slot @ None => {
                    let mut first = out.clone();
                    first.normalize(line_set, ways, may_cap);
                    *slot = Some(first);
                    true
                }
            };
            if changed {
                joins[next] += 1;
                if joins[next] > join_bound {
                    // Widen: havoc is absorbing, so this node's in-state
                    // can never change again — one final propagation.
                    let havoc = AbsState::havoc(num_sets);
                    if in_states[next].as_ref() != Some(&havoc) {
                        in_states[next] = Some(havoc);
                        havocked += 1;
                    }
                }
                if !queued[next] {
                    queued[next] = true;
                    worklist.push_back(next as u32);
                }
            }
        }
    }

    Fixpoint {
        in_states,
        iterations,
        havocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a graph from adjacency lists; every node touches one
    /// private line in set 0 (line id = node id).
    fn graph(adj: &[&[u32]], seeds: &[u32]) -> (Graph, Vec<u32>) {
        let n = adj.len();
        let mut succ_first = vec![0u32; n + 1];
        let mut succ = Vec::new();
        for (i, out) in adj.iter().enumerate() {
            let mut out: Vec<u32> = out.to_vec();
            out.sort_unstable();
            succ_first[i + 1] = succ_first[i] + out.len() as u32;
            succ.extend(out);
        }
        let lines = (0..n).map(|i| vec![(i as u32, 0u32)]).collect();
        let line_set = vec![0u32; n];
        (
            Graph {
                lines,
                succ_first,
                succ,
                seeds: seeds.to_vec(),
            },
            line_set,
        )
    }

    #[test]
    fn straight_line_propagates_must() {
        // 0 -> 1 -> 2, 4-way set: by node 2, lines 0 and 1 are must-hits.
        let (g, line_set) = graph(&[&[1], &[2], &[]], &[0]);
        let fx = solve(&g, 1, 4, &line_set, 8, 64);
        let s2 = fx.in_states[2].as_ref().unwrap();
        assert!(s2.must_hit(0));
        assert!(s2.must_hit(1));
        assert!(!s2.must_hit(2));
        assert_eq!(fx.havocked, 0);
    }

    #[test]
    fn diamond_join_intersects() {
        // 0 -> {1, 2} -> 3: at 3, line 0 is a must-hit on both paths;
        // lines 1 and 2 are path-dependent (may, not must).
        let (g, line_set) = graph(&[&[1, 2], &[3], &[3], &[]], &[0]);
        let fx = solve(&g, 1, 4, &line_set, 8, 64);
        let s3 = fx.in_states[3].as_ref().unwrap();
        assert!(s3.must_hit(0));
        assert!(!s3.must_hit(1));
        assert!(!s3.must_hit(2));
        assert!(s3.may_contain(1, 0, 4));
        assert!(s3.may_contain(2, 0, 4));
    }

    #[test]
    fn loop_reaches_fixpoint_and_terminates() {
        // 0 -> 1 <-> 2, all in one direct-mapped set: the 1-2 loop
        // alternately evicts each line.
        let (g, line_set) = graph(&[&[1], &[2], &[1]], &[0]);
        let fx = solve(&g, 1, 1, &line_set, 8, 64);
        let s1 = fx.in_states[1].as_ref().unwrap();
        // Entering 1 either from 0 (line 0 resident) or from 2 (line 2
        // resident): nothing is a guaranteed hit.
        assert!(!s1.must_hit(0));
        assert!(!s1.must_hit(2));
        let bound = (g.lines.len() as u64) * (64 + 2);
        assert!(fx.iterations <= bound, "{} > {bound}", fx.iterations);
    }

    #[test]
    fn join_budget_havocs_instead_of_diverging() {
        // A tight loop with budget 0: first re-join havocs node 1.
        let (g, line_set) = graph(&[&[1], &[2], &[1]], &[0]);
        let fx = solve(&g, 1, 2, &line_set, 8, 0);
        assert!(fx.havocked >= 1);
        // Still terminates quickly.
        assert!(fx.iterations <= (g.lines.len() as u64) * 2 + 2);
    }

    #[test]
    fn unreached_nodes_stay_none() {
        let (g, line_set) = graph(&[&[1], &[], &[]], &[0]);
        let fx = solve(&g, 1, 1, &line_set, 8, 64);
        assert!(fx.in_states[2].is_none());
    }

    #[test]
    fn seed_in_state_is_pinned_to_havoc() {
        // 0 -> 1 -> 0 loop: the back edge must not refine the seed.
        let (g, line_set) = graph(&[&[1], &[0]], &[0]);
        let fx = solve(&g, 1, 2, &line_set, 8, 64);
        let s0 = fx.in_states[0].as_ref().unwrap();
        assert_eq!(s0, &AbsState::havoc(1));
        assert!(s0.may_contain(1, 0, 2));
    }
}
