//! LRU-age abstract cache states: the must/may lattice elements.
//!
//! One [`AbsState`] abstracts the set of concrete cache contents that can
//! reach a program point:
//!
//! * the **must** component maps line → *upper* bound on its LRU age.
//!   A line present here is cached in *every* concrete state, at an age
//!   no greater than the bound — accessing it is a guaranteed hit.
//! * the **may** component maps line → *lower* bound on its LRU age,
//!   together with a per-set **unknown pool** bound: lines not explicitly
//!   tracked may still be cached (with age at least the pool bound). A
//!   line outside the may component whose set's pool is exhausted
//!   (`unknown == ways`) is cached in *no* concrete state — accessing it
//!   is a guaranteed miss.
//!
//! Both components share one transfer rule (the abstract image of an LRU
//! access): the touched line's age drops to zero and every same-set line
//! strictly younger than the touched line's old bound ages by one, with
//! eviction at `age >= ways`. The join is component-wise: must joins by
//! intersection with maximum age, may joins by union with minimum age,
//! pool bounds join by minimum — exactly the Ferdinand-style abstract
//! interpretation of set-associative LRU caches.

/// Abstract cache state at one program point.
///
/// Lines are dense `u32` ids assigned by the analysis; each id's set
/// index is supplied externally (`line_set`) so states stay small. Ages
/// are `u8`, which bounds supported associativity at 255 ways — far
/// beyond the paper's 1–8-way sweep.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AbsState {
    /// `(line, max-age)` sorted by line id; every entry is a guaranteed
    /// hit.
    must: Vec<(u32, u8)>,
    /// `(line, min-age)` sorted by line id; possible residents.
    may: Vec<(u32, u8)>,
    /// Per-set minimum age of *untracked* possible residents; `ways`
    /// means the pool is empty (no untracked line can be cached).
    unknown: Box<[u8]>,
}

fn age_of(entries: &[(u32, u8)], line: u32) -> Option<u8> {
    entries
        .binary_search_by_key(&line, |&(l, _)| l)
        .ok()
        .map(|i| entries[i].1)
}

fn set_age(entries: &mut Vec<(u32, u8)>, line: u32, age: u8) {
    match entries.binary_search_by_key(&line, |&(l, _)| l) {
        Ok(i) => entries[i].1 = age,
        Err(i) => entries.insert(i, (line, age)),
    }
}

impl AbsState {
    /// The havoc state: nothing guaranteed resident, anything possibly
    /// resident at any age. Used for operating-system invocation seeds,
    /// where arbitrary foreign code (and prior invocations) ran since.
    #[must_use]
    pub fn havoc(num_sets: usize) -> Self {
        Self {
            must: Vec::new(),
            may: Vec::new(),
            unknown: vec![0; num_sets].into_boxed_slice(),
        }
    }

    /// The must component's age bound for `line`, if guaranteed resident.
    #[must_use]
    pub fn must_age(&self, line: u32) -> Option<u8> {
        age_of(&self.must, line)
    }

    /// Whether `line` is guaranteed resident (an always-hit access).
    #[must_use]
    pub fn must_hit(&self, line: u32) -> bool {
        self.must_age(line).is_some()
    }

    /// Whether `line` (mapping to `set`) can be resident in any concrete
    /// state — explicitly tracked, or hiding in the set's unknown pool.
    #[must_use]
    pub fn may_contain(&self, line: u32, set: u32, ways: u8) -> bool {
        age_of(&self.may, line).is_some() || self.unknown[set as usize] < ways
    }

    /// Number of explicit must entries (diagnostics).
    #[must_use]
    pub fn must_len(&self) -> usize {
        self.must.len()
    }

    /// Number of explicit may entries (diagnostics).
    #[must_use]
    pub fn may_len(&self) -> usize {
        self.may.len()
    }

    /// Abstract image of one LRU access to `line` in `set`.
    ///
    /// The shared age-shift rule, applied to each component with its own
    /// bound for the touched line: age 0 for the line itself; same-set
    /// lines strictly younger than the touched line's old bound age by
    /// one; eviction at `ways`. In the may component an untracked line
    /// inherits the pool bound, and the pool itself ages like any line.
    pub fn access(&mut self, line: u32, set: u32, ways: u8, line_set: &[u32]) {
        // Must: the touched line's *upper* bound (absent = ways, i.e.
        // treat as the oldest possible — everything younger may age).
        let h_must = age_of(&self.must, line).unwrap_or(ways);
        for entry in &mut self.must {
            if entry.0 != line && line_set[entry.0 as usize] == set && entry.1 < h_must {
                entry.1 += 1;
            }
        }
        self.must.retain(|&(_, age)| age < ways);
        set_age(&mut self.must, line, 0);

        // May: the touched line's *lower* bound (absent = pool bound).
        // Unlike must, aging is at `<=`: concrete ages within a set are
        // distinct, so a line sharing the touched line's lower bound
        // cannot actually sit below it — its minimum age rises too.
        let pool = self.unknown[set as usize];
        let h_may = age_of(&self.may, line).unwrap_or(pool);
        for entry in &mut self.may {
            if entry.0 != line && line_set[entry.0 as usize] == set && entry.1 <= h_may {
                entry.1 += 1;
            }
        }
        self.may.retain(|&(_, age)| age < ways);
        if pool <= h_may && pool < ways {
            self.unknown[set as usize] = pool + 1;
        }
        set_age(&mut self.may, line, 0);
    }

    /// Joins `other` into `self`; returns whether `self` changed.
    ///
    /// Must: intersection, maximum age. May: union, minimum age — a line
    /// explicit on one side only meets the other side's unknown pool.
    /// Pool bounds: per-set minimum. The result is normalized (pool
    /// subsumption and the per-set may cap), so the havoc state is
    /// absorbing and the join count per block bounds the lattice climb.
    pub fn join_from(&mut self, other: &Self, line_set: &[u32], ways: u8, may_cap: usize) -> bool {
        let mut must = Vec::with_capacity(self.must.len().min(other.must.len()));
        {
            let (mut i, mut j) = (0, 0);
            while i < self.must.len() && j < other.must.len() {
                let (la, aa) = self.must[i];
                let (lb, ab) = other.must[j];
                match la.cmp(&lb) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        must.push((la, aa.max(ab)));
                        i += 1;
                        j += 1;
                    }
                }
            }
        }

        let mut may = Vec::with_capacity(self.may.len().max(other.may.len()));
        {
            // An entry explicit on one side only meets the other side's
            // unknown pool (that side may hold the line untracked).
            let from_a = |may: &mut Vec<(u32, u8)>, la: u32, aa: u8| {
                let pool = other.unknown[line_set[la as usize] as usize];
                may.push((la, aa.min(pool)));
            };
            let from_b = |may: &mut Vec<(u32, u8)>, lb: u32, ab: u8| {
                let pool = self.unknown[line_set[lb as usize] as usize];
                may.push((lb, ab.min(pool)));
            };
            let (mut i, mut j) = (0, 0);
            loop {
                match (self.may.get(i).copied(), other.may.get(j).copied()) {
                    (None, None) => break,
                    (Some((la, aa)), None) => {
                        from_a(&mut may, la, aa);
                        i += 1;
                    }
                    (None, Some((lb, ab))) => {
                        from_b(&mut may, lb, ab);
                        j += 1;
                    }
                    (Some((la, aa)), Some((lb, ab))) => match la.cmp(&lb) {
                        std::cmp::Ordering::Equal => {
                            may.push((la, aa.min(ab)));
                            i += 1;
                            j += 1;
                        }
                        std::cmp::Ordering::Less => {
                            from_a(&mut may, la, aa);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            from_b(&mut may, lb, ab);
                            j += 1;
                        }
                    },
                }
            }
        }
        may.retain(|&(_, age)| age < ways);

        let unknown: Box<[u8]> = self
            .unknown
            .iter()
            .zip(other.unknown.iter())
            .map(|(&a, &b)| a.min(b))
            .collect();

        let mut joined = Self { must, may, unknown };
        joined.normalize(line_set, ways, may_cap);
        if joined == *self {
            false
        } else {
            *self = joined;
            true
        }
    }

    /// Normalization: drop may entries subsumed by their set's unknown
    /// pool, then enforce the per-set explicit-entry cap by folding the
    /// oldest entries into the pool (keeping the youngest explicit —
    /// they carry the always-miss precision).
    pub fn normalize(&mut self, line_set: &[u32], ways: u8, may_cap: usize) {
        let unknown = &self.unknown;
        self.may
            .retain(|&(l, age)| age < ways && age < unknown[line_set[l as usize] as usize]);
        if self.may.len() <= may_cap {
            return;
        }
        // Count explicit entries per set; fold overflow per set.
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for &(l, _) in &self.may {
            *counts.entry(line_set[l as usize]).or_insert(0) += 1;
        }
        for (&set, &n) in &counts {
            if n <= may_cap {
                continue;
            }
            // The set's entries, youngest first (ties by line id for
            // determinism); fold everything past the cap into the pool.
            let mut entries: Vec<(u8, u32)> = self
                .may
                .iter()
                .filter(|&&(l, _)| line_set[l as usize] == set)
                .map(|&(l, age)| (age, l))
                .collect();
            entries.sort_unstable();
            let folded_min = entries[may_cap..].iter().map(|&(age, _)| age).min();
            if let Some(min_age) = folded_min {
                let s = set as usize;
                self.unknown[s] = self.unknown[s].min(min_age);
                let keep: std::collections::HashSet<u32> =
                    entries[..may_cap].iter().map(|&(_, l)| l).collect();
                let pool = self.unknown[s];
                self.may.retain(|&(l, age)| {
                    line_set[l as usize] != set || (keep.contains(&l) && age < pool)
                });
            }
        }
    }

    /// Lattice-consistency check: every must entry is also possible (must
    /// ⊆ may) with its upper age bound no smaller than the may lower
    /// bound, and no component holds an evicted (`age >= ways`) entry.
    /// Returns the number of violations (0 = consistent).
    #[must_use]
    pub fn invariant_violations(&self, line_set: &[u32], ways: u8) -> u64 {
        let mut bad = 0;
        for &(line, ub) in &self.must {
            if ub >= ways {
                bad += 1;
                continue;
            }
            let set = line_set[line as usize];
            match age_of(&self.may, line) {
                Some(lb) => {
                    if lb > ub {
                        bad += 1;
                    }
                }
                None => {
                    if self.unknown[set as usize] > ub {
                        bad += 1;
                    }
                }
            }
        }
        bad += self.may.iter().filter(|&&(_, age)| age >= ways).count() as u64;
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Four lines: 0,1 in set 0; 2,3 in set 1.
    const LINE_SET: [u32; 4] = [0, 0, 1, 1];

    fn fresh() -> AbsState {
        AbsState::havoc(2)
    }

    #[test]
    fn access_makes_line_a_must_hit() {
        let mut s = fresh();
        assert!(!s.must_hit(0));
        s.access(0, 0, 1, &LINE_SET);
        assert!(s.must_hit(0));
        assert!(s.may_contain(0, 0, 1));
    }

    #[test]
    fn direct_mapped_conflict_evicts_must() {
        let mut s = fresh();
        s.access(0, 0, 1, &LINE_SET);
        s.access(1, 0, 1, &LINE_SET);
        // Same set, one way: line 0 evicted, line 1 resident.
        assert!(!s.must_hit(0));
        assert!(s.must_hit(1));
        // Other set untouched.
        s.access(2, 1, 1, &LINE_SET);
        assert!(s.must_hit(1));
        assert!(s.must_hit(2));
    }

    #[test]
    fn two_way_set_keeps_both() {
        let mut s = fresh();
        s.access(0, 0, 2, &LINE_SET);
        s.access(1, 0, 2, &LINE_SET);
        assert!(s.must_hit(0));
        assert!(s.must_hit(1));
        assert_eq!(s.must_age(0), Some(1));
        assert_eq!(s.must_age(1), Some(0));
    }

    #[test]
    fn may_pool_exhausts_after_ways_distinct_accesses() {
        let mut s = fresh();
        // Havoc: anything may be cached.
        assert!(s.may_contain(3, 1, 1));
        s.access(0, 0, 1, &LINE_SET);
        // Accessing an (absent-or-unknown) line ages the pool past the
        // single way: untracked lines in set 0 are now provably absent.
        assert!(!s.may_contain(1, 0, 1));
        assert!(s.may_contain(0, 0, 1));
        // Set 1's pool is untouched.
        assert!(s.may_contain(3, 1, 1));
    }

    #[test]
    fn join_must_intersects_with_max_age() {
        let mut a = fresh();
        a.access(0, 0, 2, &LINE_SET);
        a.access(1, 0, 2, &LINE_SET); // a: 0@1, 1@0
        let mut b = fresh();
        b.access(1, 0, 2, &LINE_SET);
        b.access(0, 0, 2, &LINE_SET); // b: 1@1, 0@0
        let changed = a.join_from(&b, &LINE_SET, 2, 8);
        assert!(changed);
        assert_eq!(a.must_age(0), Some(1));
        assert_eq!(a.must_age(1), Some(1));
    }

    #[test]
    fn join_with_havoc_is_absorbing() {
        let mut a = fresh();
        a.access(0, 0, 1, &LINE_SET);
        a.access(2, 1, 1, &LINE_SET);
        let havoc = AbsState::havoc(2);
        let changed = a.join_from(&havoc, &LINE_SET, 1, 8);
        assert!(changed);
        assert_eq!(a, havoc);
        // And joining anything further into havoc changes nothing.
        let mut h = AbsState::havoc(2);
        let mut rich = fresh();
        rich.access(1, 0, 1, &LINE_SET);
        assert!(!h.join_from(&rich, &LINE_SET, 1, 8));
    }

    #[test]
    fn join_keeps_miss_guarantee_only_when_both_sides_have_it() {
        // Side a proved set 0's pool empty; side b did not.
        let mut a = fresh();
        a.access(0, 0, 1, &LINE_SET);
        let b = fresh();
        let mut j = a.clone();
        j.join_from(&b, &LINE_SET, 1, 8);
        assert!(j.may_contain(1, 0, 1), "join must re-admit the pool");
        assert!(!a.may_contain(1, 0, 1));
    }

    #[test]
    fn may_cap_folds_oldest_entries_into_pool() {
        // 6 lines in one set, 4 ways, cap 2.
        let line_set = [0u32; 6];
        let mut s = AbsState::havoc(1);
        for l in 0..6u32 {
            s.access(l, 0, 4, &line_set);
        }
        s.normalize(&line_set, 4, 2);
        assert!(s.may_len() <= 2);
        // The youngest lines stay explicit; the fold keeps soundness:
        // every line is still possibly resident.
        for l in 0..6u32 {
            assert!(s.may_contain(l, 0, 4), "line {l} lost from may");
        }
    }

    #[test]
    fn invariants_hold_through_a_random_walk() {
        let line_set: Vec<u32> = (0..32).map(|i| i % 4).collect();
        let mut s = AbsState::havoc(4);
        let mut x = 0x9E37_79B9_u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let line = (x >> 33) as u32 % 32;
            s.access(line, line_set[line as usize], 2, &line_set);
            assert_eq!(s.invariant_violations(&line_set, 2), 0);
        }
    }
}
