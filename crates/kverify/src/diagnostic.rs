//! Typed diagnostics with stable codes.
//!
//! Every invariant violation the checker can report carries a stable
//! [`DiagCode`] (`KV001`…), a [`Severity`], a human-readable message, and
//! provenance (block, routine, sequence, address) so a broken layout can
//! be traced back to the placement decision that broke it.

use std::fmt;

/// Stable diagnostic codes. Codes are append-only: a code never changes
/// meaning once shipped, so CI gates and scripts can match on them.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
#[non_exhaustive]
pub enum DiagCode {
    /// `KV001` — two blocks overlap in the address space.
    BlockOverlap,
    /// `KV002` — a sequence is not placed contiguously in its captured
    /// order (only SelfConfFree-window skips may interrupt it).
    SequenceOrder,
    /// `KV003` — a sequence does not conform to the descending
    /// `(ExecThresh, BranchThresh)` schedule it claims to be built from.
    ThresholdSchedule,
    /// `KV004` — the loop area does not contain exactly the qualifying
    /// (≥ `min_loop_iters` iterations/invocation) loop blocks, or is not a
    /// contiguous region at the end of the sequences.
    LoopArea,
    /// `KV005` — executed non-SelfConfFree code maps into a cache set
    /// owned by the SelfConfFree area (it would conflict with the
    /// globally hottest blocks).
    ScfConflict,
    /// `KV006` — a SelfConfFree resident lies outside the reserved
    /// `[0, scf_bytes)` window of logical cache 0.
    ScfResident,
    /// `KV007` — a block that executed under the profile is classified
    /// `Cold` (it was placed as if it never ran).
    ExecutedCold,
    /// `KV008` — a block has a zero-size address span.
    ZeroSizeBlock,
}

impl DiagCode {
    /// All codes, in numbering order.
    pub const ALL: [DiagCode; 8] = [
        DiagCode::BlockOverlap,
        DiagCode::SequenceOrder,
        DiagCode::ThresholdSchedule,
        DiagCode::LoopArea,
        DiagCode::ScfConflict,
        DiagCode::ScfResident,
        DiagCode::ExecutedCold,
        DiagCode::ZeroSizeBlock,
    ];

    /// The stable code string (`"KV001"`…).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::BlockOverlap => "KV001",
            DiagCode::SequenceOrder => "KV002",
            DiagCode::ThresholdSchedule => "KV003",
            DiagCode::LoopArea => "KV004",
            DiagCode::ScfConflict => "KV005",
            DiagCode::ScfResident => "KV006",
            DiagCode::ExecutedCold => "KV007",
            DiagCode::ZeroSizeBlock => "KV008",
        }
    }

    /// One-line description of the invariant the code checks.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::BlockOverlap => "block address ranges overlap",
            DiagCode::SequenceOrder => "sequence not contiguous in captured order",
            DiagCode::ThresholdSchedule => "sequence violates the threshold schedule",
            DiagCode::LoopArea => "loop area malformed or mispopulated",
            DiagCode::ScfConflict => "executed code conflicts with the SelfConfFree area",
            DiagCode::ScfResident => "SelfConfFree resident outside its window",
            DiagCode::ExecutedCold => "executed block classified Cold",
            DiagCode::ZeroSizeBlock => "block has a zero-size span",
        }
    }

    /// The default severity of the code.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::ExecutedCold | DiagCode::ZeroSizeBlock => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a diagnostic is.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum Severity {
    /// Suspicious but not a broken guarantee; `--deny warnings` promotes
    /// these to failures.
    Warning,
    /// A violated layout invariant: simulating this layout would measure a
    /// machine the optimizer never meant to build.
    Error,
}

impl Severity {
    /// Lowercase label (`"warning"` / `"error"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One checker finding with provenance.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (defaults to [`DiagCode::severity`]).
    pub severity: Severity,
    /// Human-readable detail.
    pub message: String,
    /// Offending block index, when one block is responsible.
    pub block: Option<usize>,
    /// Name of the routine owning the offending block.
    pub routine: Option<String>,
    /// Index of the sequence involved, for sequence-level checks.
    pub sequence: Option<usize>,
    /// Address the violation was observed at.
    pub addr: Option<u64>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity and no
    /// provenance.
    #[must_use]
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.severity(),
            message: message.into(),
            block: None,
            routine: None,
            sequence: None,
            addr: None,
        }
    }

    /// Attaches the offending block (and the routine that owns it).
    #[must_use]
    pub fn with_block(mut self, block: usize, routine: impl Into<String>) -> Self {
        self.block = Some(block);
        self.routine = Some(routine.into());
        self
    }

    /// Attaches the sequence index.
    #[must_use]
    pub fn with_sequence(mut self, sequence: usize) -> Self {
        self.sequence = Some(sequence);
        self
    }

    /// Attaches the address the violation was observed at.
    #[must_use]
    pub fn with_addr(mut self, addr: u64) -> Self {
        self.addr = Some(addr);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.severity.label(),
            self.code,
            self.message
        )?;
        if let Some(b) = self.block {
            write!(f, " (block {b}")?;
            if let Some(r) = &self.routine {
                write!(f, " in {r}")?;
            }
            if let Some(s) = self.sequence {
                write!(f, ", sequence {s}")?;
            }
            if let Some(a) = self.addr {
                write!(f, ", addr {a:#x}")?;
            }
            write!(f, ")")?;
        } else if let Some(a) = self.addr {
            write!(f, " (addr {a:#x})")?;
        }
        Ok(())
    }
}

/// The checker's result for one layout: all diagnostics, in check order.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    layout: String,
    diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// An empty report for the named layout.
    #[must_use]
    pub fn new(layout: impl Into<String>) -> Self {
        Self {
            layout: layout.into(),
            diagnostics: Vec::new(),
        }
    }

    /// The layout the report describes.
    #[must_use]
    pub fn layout(&self) -> &str {
        &self.layout
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// All diagnostics, in check order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True if no diagnostics at all were produced.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if any diagnostic carries the given code.
    #[must_use]
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Whether the report fails under the exit-code contract: errors
    /// always fail; warnings fail only when `deny_warnings` is set.
    #[must_use]
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// Renders the report as human-readable text, one diagnostic per line,
    /// with a trailing summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            self.layout,
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Renders the report as a JSON object (hand-rolled; the workspace
    /// builds with no external crates).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"layout\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            escape(&self.layout),
            self.errors(),
            self.warnings()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
                d.code,
                d.severity.label(),
                escape(&d.message)
            ));
            if let Some(b) = d.block {
                out.push_str(&format!(",\"block\":{b}"));
            }
            if let Some(r) = &d.routine {
                out.push_str(&format!(",\"routine\":\"{}\"", escape(r)));
            }
            if let Some(s) = d.sequence {
                out.push_str(&format!(",\"sequence\":{s}"));
            }
            if let Some(a) = d.addr {
                out.push_str(&format!(",\"addr\":{a}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = DiagCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(
            codes,
            ["KV001", "KV002", "KV003", "KV004", "KV005", "KV006", "KV007", "KV008"]
        );
    }

    #[test]
    fn report_counts_and_exit_contract() {
        let mut r = VerifyReport::new("t");
        assert!(!r.fails(true));
        r.push(Diagnostic::new(DiagCode::ZeroSizeBlock, "zero"));
        assert_eq!(r.warnings(), 1);
        assert!(!r.fails(false));
        assert!(r.fails(true));
        r.push(Diagnostic::new(DiagCode::BlockOverlap, "boom").with_addr(64));
        assert_eq!(r.errors(), 1);
        assert!(r.fails(false));
        assert!(r.has(DiagCode::BlockOverlap));
        assert!(!r.has(DiagCode::LoopArea));
    }

    #[test]
    fn render_and_json_carry_code_and_provenance() {
        let mut r = VerifyReport::new("OptL");
        r.push(
            Diagnostic::new(DiagCode::SequenceOrder, "out of order")
                .with_block(7, "vm_fault")
                .with_sequence(2)
                .with_addr(0x40),
        );
        let text = r.render();
        assert!(text.contains("KV002"));
        assert!(text.contains("vm_fault"));
        assert!(text.contains("sequence 2"));
        let json = r.to_json();
        assert!(json.contains("\"code\":\"KV002\""));
        assert!(json.contains("\"block\":7"));
        assert!(json.contains("\"addr\":64"));
    }

    #[test]
    fn json_escapes_quotes() {
        let mut r = VerifyReport::new("x\"y");
        r.push(Diagnostic::new(DiagCode::BlockOverlap, "a\"b\\c"));
        let json = r.to_json();
        assert!(json.contains("x\\\"y"));
        assert!(json.contains("a\\\"b\\\\c"));
    }
}
