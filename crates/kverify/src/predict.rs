//! The static conflict predictor: per-set pressure and a predicted
//! routine×routine conflict ranking, from profile weights and the placed
//! address map alone — no simulation.
//!
//! The model follows the cache-miss-equation family of static analyses:
//! every execution of a block fetches each cache line the block spans once,
//! so folding the profile's node weights over the placed spans yields a
//! per-line fetch weight. Lines mapping to the same set *compete*; the
//! pressure a set carries beyond its single hottest line
//! ([`SetPressure::excess`]) is weight that direct-mapped hardware must
//! serve by evicting, and for each pair of same-set lines owned by
//! different code the alternation bound `min(w₁, w₂)` estimates how often
//! one can knock the other out. Rolled up per routine pair, that produces
//! the static analogue of the measured
//! [`ConflictMatrix`](oslay_cache::ConflictMatrix) —
//! [`ranking_overlap`] cross-validates the two rankings.

use std::collections::BTreeMap;

use oslay_cache::{CacheConfig, ConflictMatrix};
use oslay_model::{BlockId, Domain, Program};
use oslay_profile::Profile;

use crate::LayoutView;

/// A routine identity the predictor shares with the measured matrix.
pub type RoutineKey = (Domain, u32);

/// One span of placed code with its fetch weight: `(addr, len, routine,
/// weight)`.
pub type WeightedSpan = (u64, u64, RoutineKey, f64);

/// Static pressure of one cache set.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SetPressure {
    /// The set index.
    pub set: u32,
    /// Total line-fetch weight mapped to the set.
    pub weight: f64,
    /// Weight beyond the set's single hottest line — the statically
    /// predicted contention (zero when one line owns the set).
    pub excess: f64,
}

/// The predictor's output.
#[derive(Clone, Debug)]
pub struct PredictedConflicts {
    /// Per-set pressure, indexed by set.
    pub sets: Vec<SetPressure>,
    /// Predicted routine-pair conflict scores, heaviest first. Pairs are
    /// unordered and stored with the smaller key first.
    pub pairs: Vec<(RoutineKey, RoutineKey, f64)>,
}

impl PredictedConflicts {
    /// The `k` highest-pressure sets, heaviest excess first.
    #[must_use]
    pub fn top_sets(&self, k: usize) -> Vec<SetPressure> {
        let mut sets = self.sets.clone();
        sets.sort_by(|a, b| {
            b.excess
                .partial_cmp(&a.excess)
                .unwrap()
                .then(a.set.cmp(&b.set))
        });
        sets.truncate(k);
        sets
    }

    /// The `k` highest-scoring predicted routine pairs.
    #[must_use]
    pub fn top_pairs(&self, k: usize) -> &[(RoutineKey, RoutineKey, f64)] {
        &self.pairs[..k.min(self.pairs.len())]
    }
}

/// Builds the weighted spans of one program under one layout view: each
/// executed block contributes its placed span at its node weight.
#[must_use]
pub fn weighted_spans(
    program: &Program,
    profile: &Profile,
    view: &LayoutView,
    domain: Domain,
) -> Vec<WeightedSpan> {
    (0..view.num_blocks())
        .filter_map(|i| {
            let w = profile.node_weight(BlockId::new(i));
            if w == 0 || view.size[i] == 0 {
                return None;
            }
            let routine = u32::try_from(program.block(BlockId::new(i)).routine().index())
                .expect("routine index fits u32");
            Some((
                view.addr[i],
                u64::from(view.size[i]),
                (domain, routine),
                w as f64,
            ))
        })
        .collect()
}

/// Runs the predictor over weighted spans (chain the spans of several
/// programs for multi-domain workloads — the address spaces are disjoint).
#[must_use]
pub fn predict_from_spans(spans: &[WeightedSpan], config: &CacheConfig) -> PredictedConflicts {
    let line = u64::from(config.line());
    let set_mask = config.set_mask();

    // Fold block weights into per-(line, routine) fetch weights.
    let mut units: BTreeMap<(u64, RoutineKey), f64> = BTreeMap::new();
    for &(addr, len, routine, weight) in spans {
        if len == 0 {
            continue;
        }
        let first = addr / line;
        let last = (addr + len - 1) / line;
        for line_key in first..=last {
            *units.entry((line_key, routine)).or_insert(0.0) += weight;
        }
    }

    // Group the units per set.
    let mut per_set: BTreeMap<u32, Vec<(u64, RoutineKey, f64)>> = BTreeMap::new();
    for (&(line_key, routine), &w) in &units {
        let set = (line_key & set_mask) as u32;
        per_set.entry(set).or_default().push((line_key, routine, w));
    }

    let num_sets = config.num_sets();
    let mut sets: Vec<SetPressure> = (0..num_sets)
        .map(|set| SetPressure {
            set,
            weight: 0.0,
            excess: 0.0,
        })
        .collect();
    let mut pairs: BTreeMap<(RoutineKey, RoutineKey), f64> = BTreeMap::new();

    for (&set, members) in &per_set {
        // Per-line totals (a line may host several routines).
        let mut line_weight: BTreeMap<u64, f64> = BTreeMap::new();
        let mut total = 0.0;
        for &(line_key, _, w) in members {
            *line_weight.entry(line_key).or_insert(0.0) += w;
            total += w;
        }
        let hottest = line_weight.values().cloned().fold(0.0, f64::max);
        sets[set as usize] = SetPressure {
            set,
            weight: total,
            excess: total - hottest,
        };

        // Pairwise alternation bounds between units on *different* lines
        // of the set (same-line code shares the line and cannot evict it).
        for (i, &(line_a, ra, wa)) in members.iter().enumerate() {
            for &(line_b, rb, wb) in &members[i + 1..] {
                if line_a == line_b {
                    continue;
                }
                let key = if ra <= rb { (ra, rb) } else { (rb, ra) };
                *pairs.entry(key).or_insert(0.0) += wa.min(wb);
            }
        }
    }

    let mut pairs: Vec<(RoutineKey, RoutineKey, f64)> =
        pairs.into_iter().map(|((a, b), s)| (a, b, s)).collect();
    pairs.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap()
            .then((a.0, a.1).cmp(&(b.0, b.1)))
    });
    PredictedConflicts { sets, pairs }
}

/// Convenience: predicts conflicts for one program under one layout view.
#[must_use]
pub fn predict_conflicts(
    program: &Program,
    profile: &Profile,
    view: &LayoutView,
    domain: Domain,
    config: &CacheConfig,
) -> PredictedConflicts {
    predict_from_spans(&weighted_spans(program, profile, view, domain), config)
}

/// Collapses a measured [`ConflictMatrix`] to unordered routine-pair
/// totals, heaviest first.
#[must_use]
pub fn measured_pair_ranking(matrix: &ConflictMatrix) -> Vec<(RoutineKey, RoutineKey, u64)> {
    let mut totals: BTreeMap<(RoutineKey, RoutineKey), u64> = BTreeMap::new();
    for (evictor, victim, count) in matrix.entries() {
        let key = if evictor <= victim {
            (evictor, victim)
        } else {
            (victim, evictor)
        };
        *totals.entry(key).or_insert(0) += count;
    }
    let mut ranked: Vec<(RoutineKey, RoutineKey, u64)> =
        totals.into_iter().map(|((a, b), c)| (a, b, c)).collect();
    ranked.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    ranked
}

/// Fraction of the measured top-`k` routine pairs the prediction also
/// ranks in its top `k` (the cross-validation gate). The denominator is
/// clamped to the shorter ranking; an empty intersection base (no
/// conflicts measured or predicted at all) counts as full agreement.
#[must_use]
pub fn ranking_overlap(predicted: &PredictedConflicts, measured: &ConflictMatrix, k: usize) -> f64 {
    let measured_top = measured_pair_ranking(measured);
    let denom = k.min(measured_top.len()).min(predicted.pairs.len());
    if denom == 0 {
        return 1.0;
    }
    let predicted_top: std::collections::BTreeSet<(RoutineKey, RoutineKey)> = predicted
        .top_pairs(k)
        .iter()
        .map(|&(a, b, _)| (a, b))
        .collect();
    let hits = measured_top
        .iter()
        .take(denom)
        .filter(|&&(a, b, _)| predicted_top.contains(&(a, b)))
        .count();
    hits as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        // 256-byte cache, 32-byte lines → 8 sets.
        CacheConfig::new(256, 32, 1)
    }

    const R0: RoutineKey = (Domain::Os, 0);
    const R1: RoutineKey = (Domain::Os, 1);
    const R2: RoutineKey = (Domain::Os, 2);

    #[test]
    fn colliding_spans_dominate_the_pair_ranking() {
        // R0 at set 0; R1 one cache-size away → same set; R2 alone at set 4.
        let spans = vec![
            (0, 32, R0, 100.0),
            (256, 32, R1, 60.0),
            (128, 32, R2, 500.0),
        ];
        let p = predict_from_spans(&spans, &cfg());
        assert_eq!(p.pairs.len(), 1);
        assert_eq!(p.pairs[0], (R0, R1, 60.0));
        assert_eq!(p.sets[0].weight, 160.0);
        assert_eq!(p.sets[0].excess, 60.0);
        assert_eq!(p.sets[4].weight, 500.0);
        assert_eq!(
            p.sets[4].excess, 0.0,
            "a set with one line has no contention"
        );
    }

    #[test]
    fn same_line_units_do_not_conflict() {
        // Two routines sharing one 32-byte line.
        let spans = vec![(0, 16, R0, 10.0), (16, 16, R1, 20.0)];
        let p = predict_from_spans(&spans, &cfg());
        assert!(p.pairs.is_empty());
        assert_eq!(p.sets[0].excess, 0.0);
    }

    #[test]
    fn multi_line_blocks_spread_weight() {
        // A 100-byte block spans 4 lines → sets 0..4 each get its weight.
        let spans = vec![(0, 100, R0, 7.0)];
        let p = predict_from_spans(&spans, &cfg());
        for set in 0..4 {
            assert_eq!(p.sets[set].weight, 7.0);
        }
        assert_eq!(p.sets[4].weight, 0.0);
    }

    #[test]
    fn overlap_against_measured_matrix() {
        let spans = vec![(0, 32, R0, 100.0), (256, 32, R1, 60.0)];
        let p = predict_from_spans(&spans, &cfg());
        let mut m = ConflictMatrix::default();
        m.add(R0, R1, 40);
        m.add(R1, R0, 10);
        assert_eq!(ranking_overlap(&p, &m, 10), 1.0);
        let empty = ConflictMatrix::default();
        assert_eq!(ranking_overlap(&p, &empty, 10), 1.0, "vacuous agreement");
    }

    #[test]
    fn top_sets_rank_by_excess() {
        let spans = vec![
            (0, 32, R0, 10.0),
            (256, 32, R1, 10.0),
            (32, 32, R0, 5.0),
            (288, 32, R2, 1.0),
        ];
        let p = predict_from_spans(&spans, &cfg());
        let top = p.top_sets(2);
        assert_eq!(top[0].set, 0);
        assert_eq!(top[0].excess, 10.0);
        assert_eq!(top[1].set, 1);
        assert_eq!(top[1].excess, 1.0);
    }
}
