//! Integration tests: the checker passes the optimizer's real layouts and
//! fires the right stable code on each deliberately corrupted one.

use oslay_layout::{base_layout, optimize_os, OptLayout, OptParams, ThresholdSchedule};
use oslay_model::synth::{generate_kernel, KernelParams, Scale};
use oslay_model::{BlockId, Program};
use oslay_profile::{LoopAnalysis, Profile};
use oslay_trace::{standard_workloads, Engine, EngineConfig};
use oslay_verify::{
    verify, verify_os_layout, verify_structural, DiagCode, LayoutView, OptContext, Severity,
    VerifyInput,
};

const CACHE: u32 = 8192;
const LINE: u32 = 32;

fn setup() -> (Program, Profile, LoopAnalysis) {
    let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 99));
    let specs = standard_workloads(&k.tables);
    let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(8)).run(60_000);
    let p = Profile::collect(&k.program, &t);
    let la = LoopAnalysis::analyze(&k.program, &p);
    (k.program, p, la)
}

fn opt_l(program: &Program, profile: &Profile, loops: &LoopAnalysis) -> (OptLayout, OptParams) {
    let params = OptParams::opt_l(CACHE);
    let opt = optimize_os(program, profile, loops, &params);
    (opt, params)
}

/// Re-verifies a mutated view with the optimizer's own context.
fn verify_mutated(
    program: &Program,
    profile: &Profile,
    loops: &LoopAnalysis,
    opt: &OptLayout,
    params: &OptParams,
    view: &LayoutView,
) -> oslay_verify::VerifyReport {
    verify(&VerifyInput {
        program,
        profile,
        view,
        opt: Some(OptContext {
            classes: &opt.classes,
            sequences: &opt.sequences,
            schedule: &params.schedule,
            loops,
            scf_bytes: opt.scf_bytes,
            cache_size: params.cache_size,
            line_size: LINE,
            min_loop_iters: params.min_loop_iters,
            check_loop_area: params.extract_loops,
        }),
    })
}

fn blocks_of_class(opt: &OptLayout, class: oslay_layout::BlockClass) -> Vec<usize> {
    (0..opt.classes.len())
        .filter(|&i| opt.classes[i] == class)
        .collect()
}

#[test]
fn clean_opt_layouts_verify_clean() {
    let (program, profile, loops) = setup();
    for params in [OptParams::opt_s(CACHE), OptParams::opt_l(CACHE)] {
        let opt = optimize_os(&program, &profile, &loops, &params);
        let report = verify_os_layout(&program, &profile, &loops, &opt, &params, LINE);
        assert!(
            report.is_clean(),
            "{} should verify clean:\n{}",
            opt.layout.name(),
            report.render()
        );
    }
}

#[test]
fn base_layout_verifies_structurally_clean() {
    let (program, _, _) = setup();
    let layout = base_layout(&program, 0);
    let view = LayoutView::from_layout(&layout);
    let report = verify_structural(&program, &view);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn no_scf_budget_layout_still_verifies() {
    let (program, profile, loops) = setup();
    let params = OptParams::opt_s(CACHE).with_scf_budget(None);
    let opt = optimize_os(&program, &profile, &loops, &params);
    assert_eq!(opt.scf_bytes, 0);
    let report = verify_os_layout(&program, &profile, &loops, &opt, &params, LINE);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn block_swap_fires_kv002() {
    let (program, profile, loops) = setup();
    let (opt, params) = opt_l(&program, &profile, &loops);
    // Swap two non-adjacent members of the longest sequence.
    let seq = opt
        .sequences
        .sequences()
        .iter()
        .max_by_key(|s| s.blocks.len())
        .expect("sequences exist");
    assert!(seq.blocks.len() >= 3, "need a 3+ block sequence to swap in");
    let a = seq.blocks[0].index();
    let b = seq.blocks[2].index();
    let mut view = LayoutView::from_layout(&opt.layout);
    view.swap_addrs(a, b);
    let report = verify_mutated(&program, &profile, &loops, &opt, &params, &view);
    assert!(
        report.has(DiagCode::SequenceOrder),
        "swap must fire KV002:\n{}",
        report.render()
    );
    assert!(report.errors() > 0);
}

#[test]
fn loop_area_shift_fires_kv004() {
    let (program, profile, loops) = setup();
    let (opt, params) = opt_l(&program, &profile, &loops);
    let loop_blocks = blocks_of_class(&opt, oslay_layout::BlockClass::Loop);
    assert!(!loop_blocks.is_empty(), "OptL extracts loops at this scale");
    let mut view = LayoutView::from_layout(&opt.layout);
    // Shift the whole loop area by 64 bytes: internal contiguity survives,
    // but the area no longer starts where the sequences end.
    view.shift_blocks(&loop_blocks, 64);
    let report = verify_mutated(&program, &profile, &loops, &opt, &params, &view);
    assert!(
        report.has(DiagCode::LoopArea),
        "loop shift must fire KV004:\n{}",
        report.render()
    );
}

#[test]
fn scf_overlap_fires_kv005() {
    let (program, profile, loops) = setup();
    let (opt, params) = opt_l(&program, &profile, &loops);
    assert!(opt.scf_bytes > 0);
    let hot = blocks_of_class(&opt, oslay_layout::BlockClass::MainSeq);
    // Re-aim a mid-stream hot block at offset 0 of logical cache 1 — the
    // window reserved to keep the SelfConfFree sets private.
    let victim = hot[hot.len() / 2];
    let mut view = LayoutView::from_layout(&opt.layout);
    view.set_addr(victim, u64::from(CACHE));
    let report = verify_mutated(&program, &profile, &loops, &opt, &params, &view);
    assert!(
        report.has(DiagCode::ScfConflict),
        "SCF overlap must fire KV005:\n{}",
        report.render()
    );
}

#[test]
fn displaced_scf_resident_fires_kv006() {
    let (program, profile, loops) = setup();
    let (opt, params) = opt_l(&program, &profile, &loops);
    let scf = blocks_of_class(&opt, oslay_layout::BlockClass::SelfConfFree);
    assert!(!scf.is_empty());
    let mut view = LayoutView::from_layout(&opt.layout);
    // Push one resident past the reserved window.
    view.set_addr(scf[0], opt.scf_bytes + u64::from(CACHE) * 4);
    let report = verify_mutated(&program, &profile, &loops, &opt, &params, &view);
    assert!(
        report.has(DiagCode::ScfResident),
        "displaced resident must fire KV006:\n{}",
        report.render()
    );
}

#[test]
fn executed_cold_class_fires_kv007_warning() {
    let (program, profile, loops) = setup();
    let (opt, params) = opt_l(&program, &profile, &loops);
    // Pick a sequence block (reclassifying an SCF resident would also be a
    // KV005 error; this test isolates the warning).
    let executed = profile
        .executed_blocks()
        .find(|&b| opt.classes[b.index()] == oslay_layout::BlockClass::MainSeq)
        .expect("executed main-sequence block");
    let mut classes = opt.classes.clone();
    classes[executed.index()] = oslay_layout::BlockClass::Cold;
    let view = LayoutView::from_layout(&opt.layout);
    let report = verify(&VerifyInput {
        program: &program,
        profile: &profile,
        view: &view,
        opt: Some(OptContext {
            classes: &classes,
            sequences: &opt.sequences,
            schedule: &params.schedule,
            loops: &loops,
            scf_bytes: opt.scf_bytes,
            cache_size: params.cache_size,
            line_size: LINE,
            min_loop_iters: params.min_loop_iters,
            check_loop_area: false,
        }),
    });
    let kv007: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagCode::ExecutedCold)
        .collect();
    assert!(!kv007.is_empty(), "{}", report.render());
    assert!(kv007.iter().all(|d| d.severity == Severity::Warning));
    assert!(!report.fails(false), "warnings alone pass by default");
    assert!(report.fails(true), "--deny warnings promotes them");
}

#[test]
fn zero_size_span_fires_kv008_warning() {
    let (program, _, _) = setup();
    let layout = base_layout(&program, 0);
    let mut view = LayoutView::from_layout(&layout);
    view.size[0] = 0;
    let report = verify_structural(&program, &view);
    assert!(report.has(DiagCode::ZeroSizeBlock), "{}", report.render());
    assert_eq!(report.errors(), 0, "KV008 is a warning");
}

#[test]
fn mismatched_schedule_fires_kv003() {
    let (program, profile, loops) = setup();
    let (opt, _) = opt_l(&program, &profile, &loops);
    // Verify paper-schedule sequences against a single-pass schedule: the
    // recorded ExecThresh values and pass indices cannot conform.
    let wrong = ThresholdSchedule::single_pass(0.5, 0.9);
    let view = LayoutView::from_layout(&opt.layout);
    let report = verify(&VerifyInput {
        program: &program,
        profile: &profile,
        view: &view,
        opt: Some(OptContext {
            classes: &opt.classes,
            sequences: &opt.sequences,
            schedule: &wrong,
            loops: &loops,
            scf_bytes: opt.scf_bytes,
            cache_size: CACHE,
            line_size: LINE,
            min_loop_iters: 6.0,
            check_loop_area: false,
        }),
    });
    assert!(
        report.has(DiagCode::ThresholdSchedule),
        "{}",
        report.render()
    );
}

#[test]
fn overlap_fires_kv001() {
    let (program, _, _) = setup();
    let layout = base_layout(&program, 0);
    let mut view = LayoutView::from_layout(&layout);
    // Slide block 1 halfway into block 0.
    let half = u64::from(view.size[0] / 2).max(1);
    let a0 = view.addr[0];
    view.set_addr(1, a0 + half);
    let report = verify_structural(&program, &view);
    assert!(report.has(DiagCode::BlockOverlap), "{}", report.render());
    assert!(report.errors() > 0);
}

#[test]
fn report_json_names_the_codes() {
    let (program, _, _) = setup();
    let layout = base_layout(&program, 0);
    let mut view = LayoutView::from_layout(&layout);
    view.set_addr(1, view.addr[0]);
    let report = verify_structural(&program, &view);
    let json = report.to_json();
    assert!(json.contains("\"code\":\"KV001\""));
    assert!(json.contains("\"layout\":\"Base\""));
}

/// The verifier must stay fast enough to run before every simulation:
/// sanity-bound it (debug build, tiny kernel) rather than benchmark it.
#[test]
fn verification_is_static_and_cheap() {
    let (program, profile, loops) = setup();
    let (opt, params) = opt_l(&program, &profile, &loops);
    let start = std::time::Instant::now();
    for _ in 0..10 {
        let report = verify_os_layout(&program, &profile, &loops, &opt, &params, LINE);
        assert!(report.is_clean());
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "10 verifications took {:?}",
        start.elapsed()
    );
}

/// KV001 must also catch a block placed on top of another via the raw view
/// even when the program-level builder would have refused it.
#[test]
fn unplaced_equivalent_duplicate_address_is_an_overlap() {
    let (program, _, _) = setup();
    let layout = base_layout(&program, 0);
    let mut view = LayoutView::from_layout(&layout);
    let last = view.num_blocks() - 1;
    view.set_addr(last, view.addr[BlockId::new(0).index()]);
    let report = verify_structural(&program, &view);
    assert!(report.has(DiagCode::BlockOverlap));
}
