//! Seeded property tests for the abstract-interpretation cache analysis.
//!
//! Over a spread of generated kernels, workloads and cache geometries:
//!
//! * **must ⊆ may** — the lattice-consistency counter (checked at every
//!   program point during the classification walk) stays zero;
//! * **termination** — the fixpoint's worklist pops stay within the
//!   structural bound `blocks x (join budget + 2)`;
//! * the classification accounts (point tallies, weights, coverage)
//!   stay internally consistent on every instance.

use oslay_cache::CacheConfig;
use oslay_layout::{base_layout, chang_hwu_layout};
use oslay_model::synth::{generate_kernel, KernelParams, Scale};
use oslay_model::Program;
use oslay_profile::Profile;
use oslay_trace::{standard_workloads, Engine, EngineConfig};
use oslay_verify::{classify_layout, AbsintParams, Classification, LayoutView, LineClass};

// The Shell workload is the one standard spec that runs without an
// application side; instance diversity comes from the kernel seed.
fn instance(seed: u64, events: u64) -> (Program, Profile) {
    let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, seed));
    let specs = standard_workloads(&k.tables);
    let t = Engine::new(&k.program, None, &specs[3], EngineConfig::new(16)).run(events);
    let p = Profile::collect(&k.program, &t);
    (k.program, p)
}

fn check_accounts(c: &Classification, tag: &str) {
    assert_eq!(
        c.count.iter().sum::<u64>(),
        c.points.len() as u64,
        "{tag}: counts"
    );
    assert_eq!(
        c.total_weight(),
        c.points.iter().map(|p| p.weight).sum::<u64>(),
        "{tag}: weights"
    );
    assert!((0.0..=1.0).contains(&c.coverage()), "{tag}: coverage");
}

#[test]
fn must_stays_within_may_across_seeds_and_geometries() {
    // Direct-mapped and associative geometries hit different aging rules
    // (must ages strictly-younger entries, may ages ties as well); both
    // must keep the lattice consistent everywhere.
    let geometries = [
        CacheConfig::paper_default(),
        CacheConfig::new(4096, 32, 2),
        CacheConfig::new(2048, 16, 4),
    ];
    for seed in [1u64, 7, 42, 1995] {
        let (program, profile) = instance(seed, 30_000);
        for (g, &config) in geometries.iter().enumerate() {
            for layout in [
                base_layout(&program, 0),
                chang_hwu_layout(&program, &profile, 0),
            ] {
                let view = LayoutView::from_layout(&layout);
                let c = classify_layout(&program, &profile, &view, &AbsintParams::new(config));
                let tag = format!("seed {seed} geometry {g} layout {}", view.name);
                assert_eq!(c.invariant_violations, 0, "{tag}: must ⊄ may");
                check_accounts(&c, &tag);
            }
        }
    }
}

#[test]
fn fixpoint_terminates_within_the_structural_bound() {
    for seed in [3u64, 11, 99, 4242] {
        let (program, profile) = instance(seed, 30_000);
        let view = LayoutView::from_layout(&base_layout(&program, 0));
        let params = AbsintParams::new(CacheConfig::paper_default());
        let c = classify_layout(&program, &profile, &view, &params);
        let bound = u64::from(c.analyzed_blocks) * (u64::from(params.join_bound) + 2);
        assert!(
            c.iterations <= bound,
            "seed {seed}: {} pops > bound {bound}",
            c.iterations
        );
    }
}

#[test]
fn tight_join_budget_still_terminates_and_stays_sound() {
    // Forcing the widening to fire (budget 0) must not break soundness
    // bookkeeping: havoc assumes nothing, so always-hit claims can only
    // shrink, and the lattice invariants still hold.
    let (program, profile) = instance(13, 40_000);
    let view = LayoutView::from_layout(&base_layout(&program, 0));
    let config = CacheConfig::paper_default();
    let mut tight = AbsintParams::new(config);
    tight.join_bound = 0;
    let hasty = classify_layout(&program, &profile, &view, &tight);
    let relaxed = classify_layout(&program, &profile, &view, &AbsintParams::new(config));
    assert_eq!(hasty.invariant_violations, 0);
    assert!(
        hasty.iterations <= u64::from(hasty.analyzed_blocks) * 2,
        "budget 0 must converge in at most two passes"
    );
    assert!(
        hasty.count[LineClass::AlwaysHit.index()] <= relaxed.count[LineClass::AlwaysHit.index()],
        "widening may only weaken always-hit claims"
    );
}

#[test]
fn merged_profile_classification_is_order_independent() {
    // Merging A then B and B then A must classify identically — the gate
    // relies on one merged-profile analysis covering every workload.
    let k = generate_kernel(&KernelParams::at_scale(Scale::Tiny, 77));
    let specs = standard_workloads(&k.tables);
    // Two distinct profiles over the same program: the same OS-only spec
    // run to different lengths covers different block/arc subsets.
    let traces: Vec<_> = [25_000u64, 60_000]
        .iter()
        .map(|&n| Engine::new(&k.program, None, &specs[3], EngineConfig::new(16)).run(n))
        .collect();
    let profiles: Vec<Profile> = traces
        .iter()
        .map(|t| Profile::collect(&k.program, t))
        .collect();
    let ab = Profile::merge_all(&[profiles[0].clone(), profiles[1].clone()]);
    let ba = Profile::merge_all(&[profiles[1].clone(), profiles[0].clone()]);
    let view = LayoutView::from_layout(&base_layout(&k.program, 0));
    let params = AbsintParams::new(CacheConfig::paper_default());
    let ca = classify_layout(&k.program, &ab, &view, &params);
    let cb = classify_layout(&k.program, &ba, &view, &params);
    assert_eq!(ca, cb);
}
