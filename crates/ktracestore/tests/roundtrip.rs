//! End-to-end store tests against real study traces: the archived stream
//! must equal the live stream event for event, and every corruption class
//! (payload bit-flip, truncated trailer, foreign magic) must be detected
//! with the offending block named where one exists.

use std::io::Cursor;
use std::sync::OnceLock;

use oslay::{Study, StudyConfig};
use oslay_trace::Trace;
use oslay_tracestore::{StoreError, TraceReader, TraceWriter, MAGIC};

/// One shared small study: generation dominates test time, the store
/// paths under test do not care how many events beyond "several blocks".
fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        let mut config = StudyConfig::tiny();
        config.os_blocks = 6_000;
        Study::generate(&config)
    })
}

/// Encodes a case's live stream into an in-memory store with a small
/// block capacity (to exercise multi-block paths) and returns the bytes.
fn encode_case(case_index: usize, block_events: u32) -> Vec<u8> {
    let s = study();
    let mut writer =
        TraceWriter::with_block_events(Vec::new(), block_events).expect("write header");
    s.stream_case(&s.cases()[case_index], &mut writer);
    let (buf, _) = writer.finish().expect("finish in-memory store");
    buf
}

#[test]
fn roundtrip_equals_live_stream_on_every_workload() {
    let s = study();
    for (i, case) in s.cases().iter().enumerate() {
        let mut live = Trace::default();
        s.stream_case(case, &mut live);

        let bytes = encode_case(i, 2_048);
        let mut reader = TraceReader::new(Cursor::new(&bytes)).expect("open store");
        assert!(reader.block_count() > 1, "want multi-block coverage");
        let mut decoded = Trace::default();
        let n = reader.replay_into(&mut decoded).expect("decode");

        assert_eq!(decoded, live, "decoded stream diverges for {}", case.name());
        assert_eq!(n, live.len() as u64);
        let summary = reader.verify().expect("verify");
        assert_eq!(summary.totals.events, live.len() as u64);
        assert_eq!(summary.totals.os_blocks, live.os_blocks());
        assert_eq!(summary.totals.app_blocks, live.app_blocks());
        assert!(
            summary.compression_ratio() >= 3.0,
            "{}: ratio {:.2} below the 3x floor",
            case.name(),
            summary.compression_ratio()
        );
    }
}

#[test]
fn file_roundtrip_through_create_and_open() {
    let s = study();
    let case = &s.cases()[0];
    let dir = std::env::temp_dir().join(format!("oslay_store_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("case0.otr");

    let mut writer = TraceWriter::create(&path).expect("create store file");
    s.stream_case(case, &mut writer);
    let (_, written) = writer.finish().expect("finish store file");

    let mut reader = TraceReader::open(&path).expect("open store file");
    assert_eq!(reader.summary().totals, written.totals);
    assert_eq!(reader.file_bytes(), std::fs::metadata(&path).unwrap().len());
    let mut live = Trace::default();
    s.stream_case(case, &mut live);
    let mut decoded = Trace::default();
    reader.replay_into(&mut decoded).expect("decode from disk");
    assert_eq!(decoded, live);

    std::fs::remove_dir_all(&dir).expect("clean temp dir");
}

#[test]
fn payload_bit_flips_name_the_offending_block() {
    let bytes = encode_case(3, 1_024);
    let reader = TraceReader::new(Cursor::new(&bytes)).expect("open store");
    let entries = reader.entries().to_vec();
    assert!(entries.len() > 2);
    drop(reader);

    for (block, entry) in entries.iter().enumerate() {
        let mut corrupt = bytes.clone();
        // Flip one payload bit mid-block (the 8-byte frame precedes the
        // payload at entry.offset).
        let pos = entry.offset as usize + 8 + entry.payload_len as usize / 2;
        corrupt[pos] ^= 0x10;

        let mut reader = TraceReader::new(Cursor::new(&corrupt)).expect("index still intact");
        let mut sink = Trace::default();
        let err = reader
            .replay_into(&mut sink)
            .expect_err("corrupt payload must not decode");
        match err {
            StoreError::CorruptBlock { block: named, .. } => {
                assert_eq!(named, block, "error must name the flipped block");
            }
            other => panic!("expected CorruptBlock, got {other}"),
        }
        assert!(err.to_string().contains(&format!("corrupt block {block}")));
    }
}

#[test]
fn truncated_footer_is_rejected() {
    let bytes = encode_case(0, 2_048);
    // Chop the trailer: the reader must refuse without panicking.
    for keep in [bytes.len() - 1, bytes.len() - 24, bytes.len() / 2, 10] {
        let err = TraceReader::new(Cursor::new(&bytes[..keep]))
            .err()
            .unwrap_or_else(|| panic!("store truncated to {keep} bytes must not open"));
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::CorruptFooter { .. }
            ),
            "unexpected error for {keep}-byte prefix: {err}"
        );
    }
}

#[test]
fn foreign_magic_is_rejected() {
    let mut bytes = encode_case(0, 2_048);
    bytes[..MAGIC.len()].copy_from_slice(b"NOTATRCE");
    match TraceReader::new(Cursor::new(&bytes)) {
        Err(StoreError::BadMagic { found }) => assert_eq!(&found, b"NOTATRCE"),
        other => panic!("expected BadMagic, got {:?}", other.err()),
    }
}

#[test]
fn footer_bit_flip_is_rejected() {
    let bytes = encode_case(0, 2_048);
    // The footer sits between the last block and the 24-byte trailer;
    // flip a byte inside it.
    let mut corrupt = bytes.clone();
    let pos = bytes.len() - 30;
    corrupt[pos] ^= 0x01;
    let err = TraceReader::new(Cursor::new(&corrupt));
    assert!(
        err.is_err(),
        "footer corruption must fail the open-time CRC"
    );
}
