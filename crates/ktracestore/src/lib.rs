//! Compressed on-disk trace store for the `oslay` reproduction.
//!
//! PR 3 made replay streaming and allocation-free, but every run still
//! regenerated its trace from the engine's seed. This crate gives traces a
//! durable form: a block-based container with a delta/varint codec
//! (LEB128 block-id deltas per domain, run-length coding of repeated
//! fetches, a one-byte opcode dictionary over [`oslay_trace::TraceEvent`]
//! variants including `Mark` epochs), per-block CRC-32 checksums, and a
//! footer index of event counts and byte offsets — so readers can seek,
//! verify, and shard an archive without decoding the whole file.
//!
//! Profile-guided layout pipelines live and die by reusable, verifiable
//! profiles; a stored trace turns one-shot simulations into an
//! archive-and-re-analyze workflow where every candidate layout replays
//! the *identical* event stream, bit for bit.
//!
//! The two halves:
//!
//! - [`TraceWriter`] implements [`oslay_trace::TraceSink`], so it sits
//!   under the live trace engine (alone, or teed next to a replayer via
//!   [`oslay_trace::TeeSink`]) and streams events straight to disk.
//! - [`TraceReader`] decodes blocks back into any sink — the cache
//!   replayer in `core`, a [`CountingSink`] for verification — and its
//!   [`BlockEntry`] index is the shard boundary for parallel verify.
//!
//! Corruption robustness: a flipped bit in a block body, a truncated
//! footer, or a foreign file all surface as a typed [`StoreError`] naming
//! the offending block; nothing decodes silently wrong.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
pub mod crc32;
mod format;
pub mod varint;

pub use format::{
    BlockEntry, CountingSink, StoreError, StoreSummary, StreamTotals, TraceReader, TraceWriter,
    DEFAULT_BLOCK_EVENTS, END_MAGIC, MAGIC, RAW_EVENT_BYTES,
};

/// The store's checksum, re-exported at the crate root so every consumer
/// shares the single table-driven implementation in [`mod@crc32`]
/// rather than growing private copies.
///
/// ```
/// // The canonical CRC-32 check value.
/// assert_eq!(oslay_tracestore::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub use crc32::crc32;
