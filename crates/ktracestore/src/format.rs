//! The on-disk container: header, CRC-framed blocks, footer index.
//!
//! ```text
//! offset 0   header    magic "OSLTRC01" (8) | version u16 | flags u16 |
//!                      block_events u32                        (16 bytes)
//! ...        blocks    payload_len u32 | event_count u32 |
//!                      payload bytes   | crc32(payload) u32
//! ...        footer    block_count u64 |
//!                      { offset u64, payload_len u32, event_count u32,
//!                        crc u32 } per block |
//!                      total_events u64 | os_blocks u64 | app_blocks u64 |
//!                      invocations[4] u64
//! EOF-24     trailer   footer_offset u64 | footer_len u32 |
//!                      crc32(footer) u32 | end magic "OSLTREND" (8)
//! ```
//!
//! All integers are little-endian. Each block payload decodes with no
//! outside state (the codec resets at block boundaries), so a reader can
//! seek to any [`BlockEntry`], CRC-check it, and decode it independently —
//! that is what `trace verify --threads N` fans out over.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use oslay_model::Domain;
use oslay_trace::{TraceEvent, TraceSink};

use crate::codec::{decode_payload_into, BlockEncoder};
use crate::crc32::crc32;

/// Leading file magic; the trailing two bytes version the container.
pub const MAGIC: [u8; 8] = *b"OSLTRC01";
/// Magic closing the trailer; its absence means a truncated file.
pub const END_MAGIC: [u8; 8] = *b"OSLTREND";
const VERSION: u16 = 1;
const HEADER_LEN: u64 = 16;
const TRAILER_LEN: u64 = 24;
const INDEX_ENTRY_LEN: usize = 20;
/// Bytes a fixed-width encoding needs per event: a one-byte kind
/// discriminant plus the widest payload (a `u32` block id or mark tag).
/// Compression ratios are quoted against this, not against the 8-byte
/// in-memory `TraceEvent`, so they do not flatter the codec.
pub const RAW_EVENT_BYTES: u64 = 5;

/// Default events per block: big enough to amortize framing to noise,
/// small enough that a shard or a corruption report stays fine-grained.
pub const DEFAULT_BLOCK_EVENTS: u32 = 1 << 16;

/// Everything that can go wrong opening, verifying, or decoding a store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The leading magic is wrong: not a trace store.
    BadMagic {
        /// The bytes found where [`MAGIC`] belongs.
        found: Vec<u8>,
    },
    /// The container version is newer than this reader.
    BadVersion(u16),
    /// The file ends before its structure does (missing or cut trailer).
    Truncated {
        /// What was being read when the bytes ran out.
        detail: String,
    },
    /// The footer index fails its CRC or does not parse.
    CorruptFooter {
        /// What disagreed.
        detail: String,
    },
    /// One block fails its CRC or does not decode. Names the block so a
    /// damaged archive can be triaged from the index alone.
    CorruptBlock {
        /// Zero-based index of the offending block.
        block: usize,
        /// Total blocks in the file.
        of: usize,
        /// What disagreed.
        detail: String,
    },
    /// Decoded stream totals disagree with the footer's counters.
    CountMismatch {
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}: not an oslay trace store")
            }
            StoreError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            StoreError::Truncated { detail } => write!(f, "truncated store: {detail}"),
            StoreError::CorruptFooter { detail } => write!(f, "corrupt footer: {detail}"),
            StoreError::CorruptBlock { block, of, detail } => {
                write!(f, "corrupt block {block} of {of}: {detail}")
            }
            StoreError::CountMismatch { detail } => write!(f, "count mismatch: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One row of the footer index: where a block lives and what it holds.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct BlockEntry {
    /// Byte offset of the block frame from the start of the file.
    pub offset: u64,
    /// Encoded payload length in bytes.
    pub payload_len: u32,
    /// Events the payload decodes to.
    pub events: u32,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
}

/// Event counters carried in the footer, mirroring
/// [`oslay_trace::Trace`]'s summary counters so `trace inspect` answers
/// without decoding.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct StreamTotals {
    /// Total events of any kind.
    pub events: u64,
    /// OS block executions.
    pub os_blocks: u64,
    /// Application block executions.
    pub app_blocks: u64,
    /// OS invocations per [`oslay_model::SeedKind`] index.
    pub invocations: [u64; 4],
}

impl StreamTotals {
    /// Adds another shard's counters into this one. Sharded verification
    /// counts disjoint block ranges independently and merges them before
    /// comparing against the footer.
    pub fn merge(&mut self, other: &StreamTotals) {
        self.events += other.events;
        self.os_blocks += other.os_blocks;
        self.app_blocks += other.app_blocks;
        for (slot, n) in self.invocations.iter_mut().zip(other.invocations) {
            *slot += n;
        }
    }

    fn note(&mut self, event: TraceEvent) {
        self.events += 1;
        match event {
            TraceEvent::Block { domain, .. } => match domain {
                Domain::Os => self.os_blocks += 1,
                Domain::App => self.app_blocks += 1,
            },
            TraceEvent::OsEnter(kind) => self.invocations[kind.index()] += 1,
            TraceEvent::OsExit | TraceEvent::Mark(_) => {}
        }
    }
}

/// A [`TraceSink`] that only counts, for verification passes that need to
/// decode without keeping events.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// The totals accumulated so far.
    pub totals: StreamTotals,
}

impl TraceSink for CountingSink {
    fn event(&mut self, event: TraceEvent) {
        self.totals.note(event);
    }
}

/// What a finished write (or a full verify) measured.
#[derive(Copy, Clone, Debug)]
pub struct StoreSummary {
    /// Blocks written.
    pub blocks: usize,
    /// Stream totals (events, os/app blocks, invocations).
    pub totals: StreamTotals,
    /// Encoded payload bytes, excluding framing.
    pub payload_bytes: u64,
    /// Total file size including header, framing, footer and trailer.
    pub file_bytes: u64,
}

impl StoreSummary {
    /// Bytes the same stream takes in the fixed-width reference encoding
    /// ([`RAW_EVENT_BYTES`] per event).
    #[must_use]
    pub fn raw_fixed_bytes(&self) -> u64 {
        self.totals.events * RAW_EVENT_BYTES
    }

    /// Compression ratio of the whole file (framing and footer included)
    /// over the fixed-width reference encoding.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.file_bytes == 0 {
            return 0.0;
        }
        self.raw_fixed_bytes() as f64 / self.file_bytes as f64
    }

    /// Mean encoded bytes per event, framing included.
    #[must_use]
    pub fn bytes_per_event(&self) -> f64 {
        if self.totals.events == 0 {
            return 0.0;
        }
        self.file_bytes as f64 / self.totals.events as f64
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?);
    *pos += 4;
    Some(v)
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(bytes.get(*pos..*pos + 8)?.try_into().ok()?);
    *pos += 8;
    Some(v)
}

/// Streams [`TraceEvent`]s into the compressed container.
///
/// Implements [`TraceSink`], so it can sit directly under the trace
/// engine (or on one arm of a [`oslay_trace::TeeSink`]) during a live
/// run. Sink delivery cannot surface errors, so I/O failures are held and
/// re-raised by [`TraceWriter::finish`] — nothing is silently dropped.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
    encoder: BlockEncoder,
    index: Vec<BlockEntry>,
    totals: StreamTotals,
    offset: u64,
    payload_bytes: u64,
    block_events: u32,
    deferred_error: Option<std::io::Error>,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a store at `path` (truncating any existing file).
    ///
    /// # Errors
    ///
    /// Returns any error from creating or writing the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `inner`, writing the container header immediately.
    ///
    /// # Errors
    ///
    /// Returns any error from writing the header.
    pub fn new(inner: W) -> std::io::Result<Self> {
        Self::with_block_events(inner, DEFAULT_BLOCK_EVENTS)
    }

    /// Like [`TraceWriter::new`] with a custom block capacity (events per
    /// block). Small capacities are only useful to exercise multi-block
    /// paths in tests.
    ///
    /// # Errors
    ///
    /// Returns any error from writing the header.
    ///
    /// # Panics
    ///
    /// Panics if `block_events` is zero.
    pub fn with_block_events(mut inner: W, block_events: u32) -> std::io::Result<Self> {
        assert!(block_events > 0, "block capacity must be positive");
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        push_u32(&mut header, block_events);
        inner.write_all(&header)?;
        Ok(Self {
            inner,
            encoder: BlockEncoder::default(),
            index: Vec::new(),
            totals: StreamTotals::default(),
            offset: HEADER_LEN,
            payload_bytes: 0,
            block_events,
            deferred_error: None,
        })
    }

    fn flush_block(&mut self) -> std::io::Result<()> {
        let (payload, events) = self.encoder.take_payload();
        if events == 0 {
            return Ok(());
        }
        // Flight-only: block cadence varies with buffering, so it must
        // never reach the deterministic span recorder.
        let _g = oslay_observe::flight::span_with_args(
            "tracestore.encode.block",
            &[("events", f64::from(events))],
        );
        let crc = crc32(&payload);
        let len = u32::try_from(payload.len()).expect("block payload fits u32");
        self.inner.write_all(&len.to_le_bytes())?;
        self.inner.write_all(&events.to_le_bytes())?;
        self.inner.write_all(&payload)?;
        self.inner.write_all(&crc.to_le_bytes())?;
        self.index.push(BlockEntry {
            offset: self.offset,
            payload_len: len,
            events,
            crc,
        });
        self.offset += 8 + u64::from(len) + 4;
        self.payload_bytes += u64::from(len);
        Ok(())
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Returns any error from flushing a filled block to the underlying
    /// writer.
    pub fn push(&mut self, event: TraceEvent) -> std::io::Result<()> {
        self.totals.note(event);
        self.encoder.push(event);
        if self.encoder.events() >= self.block_events {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Flushes the tail block, writes the footer index and trailer, and
    /// returns the underlying writer with the write summary.
    ///
    /// # Errors
    ///
    /// Re-raises any I/O error deferred from sink-path delivery, then any
    /// error from writing the tail.
    pub fn finish(mut self) -> std::io::Result<(W, StoreSummary)> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        self.flush_block()?;
        let mut footer = Vec::with_capacity(8 + self.index.len() * INDEX_ENTRY_LEN + 56);
        push_u64(&mut footer, self.index.len() as u64);
        for entry in &self.index {
            push_u64(&mut footer, entry.offset);
            push_u32(&mut footer, entry.payload_len);
            push_u32(&mut footer, entry.events);
            push_u32(&mut footer, entry.crc);
        }
        push_u64(&mut footer, self.totals.events);
        push_u64(&mut footer, self.totals.os_blocks);
        push_u64(&mut footer, self.totals.app_blocks);
        for &n in &self.totals.invocations {
            push_u64(&mut footer, n);
        }
        self.inner.write_all(&footer)?;
        let mut trailer = Vec::with_capacity(TRAILER_LEN as usize);
        push_u64(&mut trailer, self.offset);
        push_u32(
            &mut trailer,
            u32::try_from(footer.len()).expect("footer fits u32"),
        );
        push_u32(&mut trailer, crc32(&footer));
        trailer.extend_from_slice(&END_MAGIC);
        self.inner.write_all(&trailer)?;
        self.inner.flush()?;
        let summary = StoreSummary {
            blocks: self.index.len(),
            totals: self.totals,
            payload_bytes: self.payload_bytes,
            file_bytes: self.offset + footer.len() as u64 + TRAILER_LEN,
        };
        Ok((self.inner, summary))
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn event(&mut self, event: TraceEvent) {
        if self.deferred_error.is_some() {
            return;
        }
        if let Err(e) = self.push(event) {
            self.deferred_error = Some(e);
        }
    }
}

/// Reads a store: parses the footer index up front, then decodes blocks
/// on demand (in order for a replay, or individually for a sharded
/// verify).
#[derive(Debug)]
pub struct TraceReader<R> {
    inner: R,
    index: Vec<BlockEntry>,
    totals: StreamTotals,
    block_events: u32,
    file_bytes: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens the store at `path` and verifies its header, trailer, and
    /// footer index.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] naming what failed to parse or verify.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Wraps any seekable byte source holding a store.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] naming what failed to parse or verify.
    pub fn new(mut inner: R) -> Result<Self, StoreError> {
        let file_bytes = inner.seek(SeekFrom::End(0))?;
        if file_bytes < HEADER_LEN + TRAILER_LEN {
            return Err(StoreError::Truncated {
                detail: format!("file is {file_bytes} bytes, smaller than header + trailer"),
            });
        }
        inner.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; HEADER_LEN as usize];
        inner.read_exact(&mut header)?;
        if header[..8] != MAGIC {
            return Err(StoreError::BadMagic {
                found: header[..8].to_vec(),
            });
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let block_events = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);

        inner.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        inner.read_exact(&mut trailer)?;
        if trailer[16..24] != END_MAGIC {
            return Err(StoreError::Truncated {
                detail: "end magic missing (file cut before the trailer)".to_owned(),
            });
        }
        let mut pos = 0usize;
        let footer_offset = read_u64(&trailer, &mut pos).expect("trailer is 24 bytes");
        let footer_len = read_u32(&trailer, &mut pos).expect("trailer is 24 bytes");
        let footer_crc = read_u32(&trailer, &mut pos).expect("trailer is 24 bytes");
        let footer_fits = footer_offset >= HEADER_LEN
            && footer_offset
                .checked_add(u64::from(footer_len))
                .and_then(|end| end.checked_add(TRAILER_LEN))
                == Some(file_bytes);
        if !footer_fits {
            return Err(StoreError::CorruptFooter {
                detail: format!(
                    "footer span {footer_offset}+{footer_len} does not fit the {file_bytes}-byte file"
                ),
            });
        }
        inner.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; footer_len as usize];
        inner.read_exact(&mut footer)?;
        let computed = crc32(&footer);
        if computed != footer_crc {
            return Err(StoreError::CorruptFooter {
                detail: format!("CRC stored {footer_crc:#010x}, computed {computed:#010x}"),
            });
        }
        let bad_footer = |what: &str| StoreError::CorruptFooter {
            detail: format!("footer ends inside {what}"),
        };
        let mut pos = 0usize;
        let block_count = read_u64(&footer, &mut pos).ok_or_else(|| bad_footer("block count"))?;
        let block_count = usize::try_from(block_count).map_err(|_| bad_footer("block count"))?;
        let mut index = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            let offset = read_u64(&footer, &mut pos).ok_or_else(|| bad_footer("block index"))?;
            let payload_len =
                read_u32(&footer, &mut pos).ok_or_else(|| bad_footer("block index"))?;
            let events = read_u32(&footer, &mut pos).ok_or_else(|| bad_footer("block index"))?;
            let crc = read_u32(&footer, &mut pos).ok_or_else(|| bad_footer("block index"))?;
            if offset + 8 + u64::from(payload_len) + 4 > footer_offset {
                return Err(StoreError::CorruptFooter {
                    detail: format!(
                        "block {} claims bytes past the footer at {footer_offset}",
                        index.len()
                    ),
                });
            }
            index.push(BlockEntry {
                offset,
                payload_len,
                events,
                crc,
            });
        }
        let mut totals = StreamTotals {
            events: read_u64(&footer, &mut pos).ok_or_else(|| bad_footer("totals"))?,
            os_blocks: read_u64(&footer, &mut pos).ok_or_else(|| bad_footer("totals"))?,
            app_blocks: read_u64(&footer, &mut pos).ok_or_else(|| bad_footer("totals"))?,
            invocations: [0; 4],
        };
        for slot in &mut totals.invocations {
            *slot = read_u64(&footer, &mut pos).ok_or_else(|| bad_footer("totals"))?;
        }
        if pos != footer.len() {
            return Err(StoreError::CorruptFooter {
                detail: format!("{} trailing footer bytes", footer.len() - pos),
            });
        }
        let indexed: u64 = index.iter().map(|e| u64::from(e.events)).sum();
        if indexed != totals.events {
            return Err(StoreError::CorruptFooter {
                detail: format!(
                    "index sums to {indexed} events, totals claim {}",
                    totals.events
                ),
            });
        }
        Ok(Self {
            inner,
            index,
            totals,
            block_events,
            file_bytes,
        })
    }

    /// The footer's block index.
    #[must_use]
    pub fn entries(&self) -> &[BlockEntry] {
        &self.index
    }

    /// Number of blocks in the store.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Total events across all blocks, per the footer.
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.totals.events
    }

    /// The footer's stream totals.
    #[must_use]
    pub fn totals(&self) -> StreamTotals {
        self.totals
    }

    /// The writer's block capacity (events per block), from the header.
    #[must_use]
    pub fn block_capacity(&self) -> u32 {
        self.block_events
    }

    /// Total file size in bytes.
    #[must_use]
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// The store's summary as recorded in the footer — what the writer's
    /// [`TraceWriter::finish`] returned, reconstructed without decoding
    /// any payload (`trace inspect` answers from this alone).
    #[must_use]
    pub fn summary(&self) -> StoreSummary {
        StoreSummary {
            blocks: self.index.len(),
            totals: self.totals,
            payload_bytes: self.index.iter().map(|e| u64::from(e.payload_len)).sum(),
            file_bytes: self.file_bytes,
        }
    }

    /// Seeks to block `block`, verifies its frame and CRC against the
    /// index, decodes it, and streams its events into `sink`. Returns the
    /// number of events decoded.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptBlock`] naming `block` on any frame,
    /// CRC, or codec violation.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn decode_block_into<S: TraceSink + ?Sized>(
        &mut self,
        block: usize,
        sink: &mut S,
    ) -> Result<u32, StoreError> {
        let entry = self.index[block];
        let of = self.index.len();
        let _g = oslay_observe::flight::span_with_args(
            "tracestore.decode.block",
            &[("block", block as f64), ("events", f64::from(entry.events))],
        );
        let corrupt = |detail: String| StoreError::CorruptBlock { block, of, detail };
        self.inner.seek(SeekFrom::Start(entry.offset))?;
        let mut frame = [0u8; 8];
        self.inner.read_exact(&mut frame)?;
        let payload_len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let events = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if payload_len != entry.payload_len || events != entry.events {
            return Err(corrupt(format!(
                "frame header ({payload_len} bytes, {events} events) disagrees with the index \
                 ({} bytes, {} events)",
                entry.payload_len, entry.events
            )));
        }
        let mut payload = vec![0u8; payload_len as usize];
        self.inner.read_exact(&mut payload)?;
        let mut stored = [0u8; 4];
        self.inner.read_exact(&mut stored)?;
        let stored = u32::from_le_bytes(stored);
        let computed = crc32(&payload);
        if stored != entry.crc || computed != entry.crc {
            return Err(corrupt(format!(
                "CRC stored {stored:#010x}, computed {computed:#010x}, index {:#010x}",
                entry.crc
            )));
        }
        decode_payload_into(&payload, events, sink).map_err(corrupt)?;
        Ok(events)
    }

    /// Decodes every block in order into `sink` — the re-replay path.
    /// Returns the total events streamed.
    ///
    /// # Errors
    ///
    /// Returns the first [`StoreError`] hit, naming the offending block.
    pub fn replay_into<S: TraceSink + ?Sized>(&mut self, sink: &mut S) -> Result<u64, StoreError> {
        let _span = oslay_observe::span("store.replay");
        let mut events = 0u64;
        for block in 0..self.index.len() {
            events += u64::from(self.decode_block_into(block, sink)?);
        }
        Ok(events)
    }

    /// Fully verifies the store: every block's CRC and codec, then the
    /// decoded totals against the footer's counters.
    ///
    /// # Errors
    ///
    /// Returns the first violation, naming the offending block where one
    /// is at fault.
    pub fn verify(&mut self) -> Result<StoreSummary, StoreError> {
        let mut sink = CountingSink::default();
        self.replay_into(&mut sink)?;
        if sink.totals != self.totals {
            return Err(StoreError::CountMismatch {
                detail: format!(
                    "decoded totals {:?} disagree with footer totals {:?}",
                    sink.totals, self.totals
                ),
            });
        }
        Ok(StoreSummary {
            blocks: self.index.len(),
            totals: self.totals,
            payload_bytes: self.index.iter().map(|e| u64::from(e.payload_len)).sum(),
            file_bytes: self.file_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_model::{BlockId, SeedKind};
    use std::io::Cursor;

    fn sample_events(n: usize) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match i % 7 {
                0 => out.push(TraceEvent::OsEnter(SeedKind::from_index(i % 4))),
                6 => out.push(TraceEvent::OsExit),
                3 => out.push(TraceEvent::Block {
                    id: BlockId::new((i * 31) % 911),
                    domain: Domain::App,
                }),
                _ => out.push(TraceEvent::Block {
                    id: BlockId::new((i * 17) % 499),
                    domain: Domain::Os,
                }),
            }
        }
        out
    }

    fn write_store(events: &[TraceEvent], block_events: u32) -> (Vec<u8>, StoreSummary) {
        let mut w = TraceWriter::with_block_events(Vec::new(), block_events).unwrap();
        for &e in events {
            w.push(e).unwrap();
        }
        let (bytes, summary) = w.finish().unwrap();
        (bytes, summary)
    }

    struct Collect(Vec<TraceEvent>);
    impl TraceSink for Collect {
        fn event(&mut self, event: TraceEvent) {
            self.0.push(event);
        }
    }

    #[test]
    fn round_trips_across_multiple_blocks() {
        let events = sample_events(10_000);
        let (bytes, summary) = write_store(&events, 256);
        assert_eq!(summary.totals.events, events.len() as u64);
        assert!(summary.blocks >= 39, "blocks {}", summary.blocks);
        assert_eq!(summary.file_bytes, bytes.len() as u64);
        let mut reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.event_count(), events.len() as u64);
        let mut sink = Collect(Vec::new());
        let n = reader.replay_into(&mut sink).unwrap();
        assert_eq!(n, events.len() as u64);
        assert_eq!(sink.0, events);
        reader.verify().unwrap();
    }

    #[test]
    fn empty_store_round_trips() {
        let (bytes, summary) = write_store(&[], 64);
        assert_eq!(summary.blocks, 0);
        let mut reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.block_count(), 0);
        assert_eq!(reader.verify().unwrap().totals.events, 0);
    }

    #[test]
    fn body_bit_flip_names_the_block() {
        let events = sample_events(4_000);
        let (mut bytes, _) = write_store(&events, 256);
        let reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        let target = reader.entries()[5];
        let victim = target.offset as usize + 8 + target.payload_len as usize / 2;
        drop(reader);
        bytes[victim] ^= 0x40;
        let mut reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        let err = reader.verify().unwrap_err();
        match err {
            StoreError::CorruptBlock { block, .. } => assert_eq!(block, 5),
            other => panic!("expected CorruptBlock, got {other}"),
        }
        assert!(err.to_string().contains("block 5"), "{err}");
    }

    #[test]
    fn truncated_trailer_is_detected() {
        let (bytes, _) = write_store(&sample_events(500), 64);
        let cut = &bytes[..bytes.len() - 9];
        let err = TraceReader::new(Cursor::new(cut)).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }), "{err}");
    }

    #[test]
    fn bad_magic_is_detected() {
        let (mut bytes, _) = write_store(&sample_events(500), 64);
        bytes[0] = b'X';
        let err = TraceReader::new(Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn footer_corruption_is_detected() {
        let (bytes, _) = write_store(&sample_events(500), 64);
        let footer_offset = {
            let trailer = &bytes[bytes.len() - 24..];
            u64::from_le_bytes(trailer[..8].try_into().unwrap()) as usize
        };
        let mut corrupted = bytes.clone();
        corrupted[footer_offset + 3] ^= 0x01;
        let err = TraceReader::new(Cursor::new(&corrupted)).unwrap_err();
        assert!(matches!(err, StoreError::CorruptFooter { .. }), "{err}");
    }

    #[test]
    fn compression_beats_fixed_width_on_sequential_walks() {
        // A loopy, mostly-sequential walk — the shape real traces have.
        let mut events = Vec::new();
        for lap in 0..200 {
            events.push(TraceEvent::OsEnter(SeedKind::SysCall));
            for i in 0..50usize {
                events.push(TraceEvent::Block {
                    id: BlockId::new(100 + (i + lap % 3)),
                    domain: Domain::Os,
                });
            }
            events.push(TraceEvent::OsExit);
        }
        let (_, summary) = write_store(&events, DEFAULT_BLOCK_EVENTS);
        assert!(
            summary.compression_ratio() > 3.0,
            "ratio {:.2}",
            summary.compression_ratio()
        );
    }

    #[test]
    fn sink_path_defers_write_errors_to_finish() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::with_block_events(FailAfter(1), 4).unwrap();
        for _ in 0..64 {
            TraceSink::event(&mut w, TraceEvent::OsExit);
        }
        assert!(w.finish().is_err());
    }
}
