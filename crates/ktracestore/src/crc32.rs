//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Hand-rolled because the workspace builds with no external crates; the
//! 1 KB lookup table is generated at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (initial value `0xFFFF_FFFF`, final complement).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"oslay trace store block".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0x10;
            assert_ne!(crc32(&flipped), reference, "flip at byte {i}");
        }
    }
}
