//! LEB128 varints and zigzag signed mapping.
//!
//! Block-id deltas and mark tags are written as unsigned LEB128; signed
//! deltas go through the zigzag mapping first so small negative jumps
//! (backward branches) stay one byte.

/// Maps a signed value onto the unsigned line so small magnitudes of
/// either sign encode short: 0, -1, 1, -2, 2, ... → 0, 1, 2, 3, 4, ...
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends `value` to `out` as unsigned LEB128 (7 bits per byte, high bit
/// marks continuation).
pub fn write_leb(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 value from `bytes` starting at `*pos`, advancing
/// `*pos` past it.
///
/// # Errors
///
/// Returns a description if the input ends mid-varint or the value
/// overflows 64 bits (more than 10 bytes, or stray bits in the tenth).
pub fn read_leb(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err("varint truncated".to_owned());
        };
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return Err("varint overflows u64".to_owned());
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err("varint longer than 10 bytes".to_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 20,
            -(1 << 20),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn leb_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &values {
            write_leb(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_leb(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_leb(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_error() {
        let mut pos = 0;
        assert!(read_leb(&[0x80], &mut pos).is_err());
        let mut pos = 0;
        assert!(read_leb(&[0x80; 11], &mut pos).is_err());
        // 10 bytes whose tenth carries more than the one remaining bit.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x7f);
        let mut pos = 0;
        assert!(read_leb(&bytes, &mut pos).is_err());
    }
}
