//! The block payload codec: a one-byte opcode dictionary over
//! [`TraceEvent`] variants, zigzag/LEB128 block-id deltas, and run-length
//! coding of immediately repeated block fetches.
//!
//! Every opcode byte packs a 3-bit event tag with a 5-bit inline argument;
//! argument 31 escapes to a trailing LEB128 varint. Block-id deltas are
//! taken against the previous block id *of the same domain*, so an OS
//! invocation interleaved into an application burst does not destroy the
//! application walk's locality. All codec state resets at payload
//! boundaries: a payload decodes with no context but the bytes themselves,
//! which is what lets readers verify and shard blocks independently.

use oslay_model::{BlockId, Domain, SeedKind};
use oslay_trace::{TraceEvent, TraceSink};

use crate::varint::{read_leb, unzigzag, write_leb, zigzag};

const TAG_BLOCK_OS: u8 = 0;
const TAG_BLOCK_APP: u8 = 1;
const TAG_OS_ENTER: u8 = 2;
const TAG_OS_EXIT: u8 = 3;
const TAG_MARK: u8 = 4;
const TAG_REPEAT: u8 = 5;
/// Inline-argument value that escapes to a trailing LEB128 varint.
const ARG_ESCAPE: u8 = 31;

fn op(tag: u8, arg: u8) -> u8 {
    debug_assert!(tag < 8 && arg < 32);
    (arg << 3) | tag
}

/// Emits `tag` with `value` inline when it fits the 5-bit argument,
/// otherwise escaped into a varint.
fn push_op(out: &mut Vec<u8>, tag: u8, value: u64) {
    if value < u64::from(ARG_ESCAPE) {
        out.push(op(tag, value as u8));
    } else {
        out.push(op(tag, ARG_ESCAPE));
        write_leb(out, value);
    }
}

/// Encodes one stream of events into self-contained block payloads.
///
/// Feed events with [`BlockEncoder::push`]; cut a payload with
/// [`BlockEncoder::take_payload`] whenever [`BlockEncoder::events`]
/// reaches the writer's block capacity.
#[derive(Debug, Default)]
pub(crate) struct BlockEncoder {
    buf: Vec<u8>,
    events: u32,
    prev_os: i64,
    prev_app: i64,
    last_block: Option<(BlockId, Domain)>,
    pending_repeats: u64,
}

impl BlockEncoder {
    /// Events encoded into the current payload so far.
    pub(crate) fn events(&self) -> u32 {
        self.events
    }

    fn flush_repeats(&mut self) {
        if self.pending_repeats > 0 {
            push_op(&mut self.buf, TAG_REPEAT, self.pending_repeats);
            self.pending_repeats = 0;
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events += 1;
        match event {
            TraceEvent::Block { id, domain } => {
                if self.last_block == Some((id, domain)) {
                    self.pending_repeats += 1;
                    return;
                }
                self.flush_repeats();
                let (tag, prev) = match domain {
                    Domain::Os => (TAG_BLOCK_OS, &mut self.prev_os),
                    Domain::App => (TAG_BLOCK_APP, &mut self.prev_app),
                };
                let id_i64 = id.index() as i64;
                push_op(&mut self.buf, tag, zigzag(id_i64 - *prev));
                *prev = id_i64;
                self.last_block = Some((id, domain));
            }
            TraceEvent::OsEnter(kind) => {
                self.flush_repeats();
                self.last_block = None;
                self.buf.push(op(TAG_OS_ENTER, kind.index() as u8));
            }
            TraceEvent::OsExit => {
                self.flush_repeats();
                self.last_block = None;
                self.buf.push(op(TAG_OS_EXIT, 0));
            }
            TraceEvent::Mark(tag) => {
                self.flush_repeats();
                self.last_block = None;
                push_op(&mut self.buf, TAG_MARK, u64::from(tag));
            }
        }
    }

    /// Finishes the current payload, returning it with its event count,
    /// and resets all codec state for the next block.
    pub(crate) fn take_payload(&mut self) -> (Vec<u8>, u32) {
        self.flush_repeats();
        let payload = std::mem::take(&mut self.buf);
        let events = self.events;
        *self = Self::default();
        (payload, events)
    }
}

/// Decodes one self-contained payload, streaming every event into `sink`.
///
/// # Errors
///
/// Returns a description of the first malformed construct: truncated or
/// overlong varints, unknown tags, out-of-range seed kinds or block ids,
/// a repeat with no preceding block fetch, or an event count that
/// disagrees with `expect_events`.
pub(crate) fn decode_payload_into<S: TraceSink + ?Sized>(
    payload: &[u8],
    expect_events: u32,
    sink: &mut S,
) -> Result<(), String> {
    let mut pos = 0usize;
    let mut prev_os = 0i64;
    let mut prev_app = 0i64;
    let mut last_block: Option<TraceEvent> = None;
    let mut emitted = 0u64;
    let expect = u64::from(expect_events);
    while pos < payload.len() {
        let byte = payload[pos];
        pos += 1;
        let (tag, arg) = (byte & 0x07, byte >> 3);
        let value = if arg == ARG_ESCAPE
            && matches!(tag, TAG_BLOCK_OS | TAG_BLOCK_APP | TAG_MARK | TAG_REPEAT)
        {
            read_leb(payload, &mut pos).map_err(|e| format!("at byte {pos}: {e}"))?
        } else {
            u64::from(arg)
        };
        let event = match tag {
            TAG_BLOCK_OS | TAG_BLOCK_APP => {
                let (prev, domain) = if tag == TAG_BLOCK_OS {
                    (&mut prev_os, Domain::Os)
                } else {
                    (&mut prev_app, Domain::App)
                };
                let id = prev
                    .checked_add(unzigzag(value))
                    .filter(|&v| (0..=i64::from(u32::MAX)).contains(&v))
                    .ok_or_else(|| format!("at byte {pos}: block-id delta out of range"))?;
                *prev = id;
                let event = TraceEvent::Block {
                    id: BlockId::new(id as usize),
                    domain,
                };
                last_block = Some(event);
                event
            }
            TAG_OS_ENTER => {
                if value >= 4 {
                    return Err(format!("at byte {pos}: seed kind {value} out of range"));
                }
                last_block = None;
                TraceEvent::OsEnter(SeedKind::from_index(value as usize))
            }
            TAG_OS_EXIT => {
                if arg != 0 {
                    return Err(format!("at byte {pos}: OsExit carries argument {arg}"));
                }
                last_block = None;
                TraceEvent::OsExit
            }
            TAG_MARK => {
                if value > u64::from(u32::MAX) {
                    return Err(format!("at byte {pos}: mark tag {value} exceeds u32"));
                }
                last_block = None;
                TraceEvent::Mark(value as u32)
            }
            TAG_REPEAT => {
                let repeated =
                    last_block.ok_or_else(|| format!("at byte {pos}: repeat with no block"))?;
                if value == 0 {
                    return Err(format!("at byte {pos}: empty repeat run"));
                }
                emitted += value;
                if emitted > expect {
                    return Err(format!(
                        "decoded {emitted} events, block header promises {expect}"
                    ));
                }
                for _ in 0..value {
                    sink.event(repeated);
                }
                continue;
            }
            other => return Err(format!("at byte {pos}: unknown event tag {other}")),
        };
        emitted += 1;
        if emitted > expect {
            return Err(format!(
                "decoded {emitted} events, block header promises {expect}"
            ));
        }
        sink.event(event);
    }
    if emitted != expect {
        return Err(format!(
            "decoded {emitted} events, block header promises {expect}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: usize, domain: Domain) -> TraceEvent {
        TraceEvent::Block {
            id: BlockId::new(id),
            domain,
        }
    }

    fn round_trip(events: &[TraceEvent]) -> Vec<u8> {
        let mut enc = BlockEncoder::default();
        for &e in events {
            enc.push(e);
        }
        let (payload, n) = enc.take_payload();
        assert_eq!(n as usize, events.len());
        let mut out = Vec::new();
        decode_payload_into(&payload, n, &mut Collect(&mut out)).expect("decodes");
        assert_eq!(out, events);
        payload
    }

    struct Collect<'a>(&'a mut Vec<TraceEvent>);
    impl TraceSink for Collect<'_> {
        fn event(&mut self, event: TraceEvent) {
            self.0.push(event);
        }
    }

    #[test]
    fn mixed_stream_round_trips() {
        round_trip(&[
            TraceEvent::OsEnter(SeedKind::SysCall),
            block(10, Domain::Os),
            block(11, Domain::Os),
            block(9, Domain::Os),
            TraceEvent::OsExit,
            block(70_000, Domain::App),
            block(70_000, Domain::App),
            block(70_000, Domain::App),
            TraceEvent::Mark(3),
            TraceEvent::Mark(1_000_000),
            TraceEvent::OsEnter(SeedKind::Interrupt),
            block(4_000_000, Domain::Os),
            TraceEvent::OsExit,
            block(70_001, Domain::App),
        ]);
    }

    #[test]
    fn repeats_collapse_to_two_bytes() {
        let mut events = vec![block(5, Domain::Os)];
        events.extend(std::iter::repeat_n(block(5, Domain::Os), 25));
        let payload = round_trip(&events);
        // One block op + one repeat op.
        assert_eq!(payload.len(), 2);
    }

    #[test]
    fn long_repeat_runs_escape_to_varints() {
        let mut events = vec![block(5, Domain::Os)];
        events.extend(std::iter::repeat_n(block(5, Domain::Os), 1000));
        round_trip(&events);
    }

    #[test]
    fn per_domain_deltas_survive_interleaving() {
        // The OS invocation in the middle must not disturb the app delta
        // chain (and vice versa).
        round_trip(&[
            block(1000, Domain::App),
            block(1001, Domain::App),
            TraceEvent::OsEnter(SeedKind::PageFault),
            block(7, Domain::Os),
            block(8, Domain::Os),
            TraceEvent::OsExit,
            block(1002, Domain::App),
        ]);
    }

    #[test]
    fn sequential_blocks_encode_one_byte_each() {
        let events: Vec<TraceEvent> = (100..150).map(|i| block(i, Domain::Os)).collect();
        let mut enc = BlockEncoder::default();
        for &e in &events {
            enc.push(e);
        }
        let (payload, _) = enc.take_payload();
        // First delta needs an escape varint; the rest are +1 inline.
        assert!(payload.len() <= events.len() + 2, "len {}", payload.len());
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let mut sink = Vec::new();
        // Unknown tag 7.
        assert!(decode_payload_into(&[0x07], 1, &mut Collect(&mut sink)).is_err());
        // Repeat with no preceding block.
        assert!(decode_payload_into(&[op(TAG_REPEAT, 3)], 3, &mut Collect(&mut sink)).is_err());
        // Seed kind out of range.
        assert!(decode_payload_into(&[op(TAG_OS_ENTER, 9)], 1, &mut Collect(&mut sink)).is_err());
        // Event count mismatch (payload holds one event, header says two).
        assert!(decode_payload_into(&[op(TAG_OS_EXIT, 0)], 2, &mut Collect(&mut sink)).is_err());
        // Truncated escape varint.
        assert!(decode_payload_into(
            &[op(TAG_MARK, ARG_ESCAPE), 0x80],
            1,
            &mut Collect(&mut sink)
        )
        .is_err());
    }
}
