//! Access and miss accounting.

use oslay_model::Domain;

use crate::{AccessOutcome, MissKind};

/// Counters for one simulated cache (or cache complex).
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct MissStats {
    accesses: [u64; 2],
    hits: [u64; 2],
    misses_by_kind: [u64; 5],
}

impl MissStats {
    /// Assembles a stats block from already-accumulated counters (the
    /// multi-configuration simulator derives per-point hits as
    /// `accesses - misses-suffered` at the end of a pass instead of
    /// recording per access).
    pub(crate) fn from_parts(accesses: [u64; 2], hits: [u64; 2], misses_by_kind: [u64; 5]) -> Self {
        Self {
            accesses,
            hits,
            misses_by_kind,
        }
    }

    /// Records one access outcome.
    pub fn record(&mut self, domain: Domain, outcome: AccessOutcome) {
        self.accesses[domain.index()] += 1;
        match outcome {
            AccessOutcome::Hit => self.hits[domain.index()] += 1,
            AccessOutcome::Miss(kind) => self.misses_by_kind[kind.index()] += 1,
        }
    }

    /// Records `n` hits by `domain` in one step (the line-run fast path:
    /// words 2..k of a just-touched cache line cannot miss).
    pub fn record_hits(&mut self, domain: Domain, n: u64) {
        self.accesses[domain.index()] += n;
        self.hits[domain.index()] += n;
    }

    /// Fetches issued by a domain.
    #[must_use]
    pub fn accesses(&self, domain: Domain) -> u64 {
        self.accesses[domain.index()]
    }

    /// Total fetches.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Hits by a domain.
    #[must_use]
    pub fn hits(&self, domain: Domain) -> u64 {
        self.hits[domain.index()]
    }

    /// Misses of one kind.
    #[must_use]
    pub fn misses(&self, kind: MissKind) -> u64 {
        self.misses_by_kind[kind.index()]
    }

    /// All misses.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.misses_by_kind.iter().sum()
    }

    /// Misses suffered by a domain (any kind).
    #[must_use]
    pub fn domain_misses(&self, domain: Domain) -> u64 {
        self.accesses(domain) - self.hits(domain)
    }

    /// Overall miss rate (misses / accesses).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let acc = self.total_accesses();
        if acc == 0 {
            return 0.0;
        }
        self.total_misses() as f64 / acc as f64
    }

    /// Miss rate of one domain.
    #[must_use]
    pub fn domain_miss_rate(&self, domain: Domain) -> f64 {
        let acc = self.accesses(domain);
        if acc == 0 {
            return 0.0;
        }
        self.domain_misses(domain) as f64 / acc as f64
    }

    /// Merges another stats block into this one (used by composite caches).
    pub fn merge(&mut self, other: &MissStats) {
        for (a, b) in self.accesses.iter_mut().zip(&other.accesses) {
            *a += b;
        }
        for (a, b) in self.hits.iter_mut().zip(&other.hits) {
            *a += b;
        }
        for (a, b) in self.misses_by_kind.iter_mut().zip(&other.misses_by_kind) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_keeps_identities() {
        let mut s = MissStats::default();
        s.record(Domain::Os, AccessOutcome::Hit);
        s.record(Domain::Os, AccessOutcome::Miss(MissKind::OsSelf));
        s.record(Domain::App, AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.total_misses(), 2);
        assert_eq!(s.domain_misses(Domain::Os), 1);
        assert_eq!(s.domain_misses(Domain::App), 1);
        assert_eq!(s.misses(MissKind::OsSelf), 1);
        assert_eq!(s.misses(MissKind::Cold), 1);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.domain_miss_rate(Domain::Os) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hits_plus_misses_equal_accesses() {
        let mut s = MissStats::default();
        for i in 0..100u64 {
            let domain = if i % 3 == 0 { Domain::App } else { Domain::Os };
            let outcome = if i % 2 == 0 {
                AccessOutcome::Hit
            } else {
                AccessOutcome::Miss(MissKind::Cold)
            };
            s.record(domain, outcome);
        }
        let hits: u64 = s.hits(Domain::Os) + s.hits(Domain::App);
        assert_eq!(hits + s.total_misses(), s.total_accesses());
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = MissStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.domain_miss_rate(Domain::Os), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MissStats::default();
        a.record(Domain::Os, AccessOutcome::Miss(MissKind::OsSelf));
        let mut b = MissStats::default();
        b.record(Domain::Os, AccessOutcome::Hit);
        b.record(Domain::App, AccessOutcome::Miss(MissKind::AppByOs));
        a.merge(&b);
        assert_eq!(a.total_accesses(), 3);
        assert_eq!(a.misses(MissKind::AppByOs), 1);
        assert_eq!(a.hits(Domain::Os), 1);
    }
}
