//! The core set-associative LRU cache simulator.
//!
//! The hot path is dense and allocation-free: per-set tag/LRU arrays
//! indexed by a precomputed `(set, tag)` decomposition (shift + mask, no
//! division), and a bounded per-set [`EvictTable`] replacing the old
//! unbounded `HashMap<line, Domain>` for interference classification. A
//! map-based twin is preserved in [`crate::reference`] and the test suite
//! replays randomized traces through both, asserting identical per-access
//! outcomes.

use std::sync::Arc;

use oslay_model::Domain;
use oslay_observe::timeline::{self, CacheProbeSnapshot};
use oslay_observe::Probe;

use crate::{CacheConfig, InstructionCache, MissStats};

/// Why a miss happened.
///
/// This is the decomposition used throughout the paper's evaluation: cold
/// misses turn out to be negligible, operating-system *self*-interference
/// dominates (over 90% of OS misses in every workload studied), and the
/// optimizations attack exactly that component.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum MissKind {
    /// First-ever reference to the line.
    Cold,
    /// An OS line was evicted by other OS code and refetched.
    OsSelf,
    /// An OS line was evicted by application code and refetched.
    OsByApp,
    /// An application line was evicted by other application code.
    AppSelf,
    /// An application line was evicted by OS code.
    AppByOs,
}

impl MissKind {
    /// All kinds, in reporting order.
    pub const ALL: [MissKind; 5] = [
        MissKind::Cold,
        MissKind::OsSelf,
        MissKind::OsByApp,
        MissKind::AppSelf,
        MissKind::AppByOs,
    ];

    /// Dense index (`0..5`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            MissKind::Cold => 0,
            MissKind::OsSelf => 1,
            MissKind::OsByApp => 2,
            MissKind::AppSelf => 3,
            MissKind::AppByOs => 4,
        }
    }

    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MissKind::Cold => "cold",
            MissKind::OsSelf => "os-self",
            MissKind::OsByApp => "os-by-app",
            MissKind::AppSelf => "app-self",
            MissKind::AppByOs => "app-by-os",
        }
    }

    /// Metric name in the `cache.*` namespace counting misses of this
    /// kind.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            MissKind::Cold => "cache.miss.cold",
            MissKind::OsSelf => "cache.miss.os-self",
            MissKind::OsByApp => "cache.miss.os-by-app",
            MissKind::AppSelf => "cache.miss.app-self",
            MissKind::AppByOs => "cache.miss.app-by-os",
        }
    }

    /// Classifies a miss of `victim` domain given who evicted the line
    /// last (`None` = never cached).
    #[must_use]
    pub fn classify(victim: Domain, evictor: Option<Domain>) -> Self {
        match (victim, evictor) {
            (_, None) => MissKind::Cold,
            (Domain::Os, Some(Domain::Os)) => MissKind::OsSelf,
            (Domain::Os, Some(Domain::App)) => MissKind::OsByApp,
            (Domain::App, Some(Domain::App)) => MissKind::AppSelf,
            (Domain::App, Some(Domain::Os)) => MissKind::AppByOs,
        }
    }
}

/// Outcome of one fetch.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AccessOutcome {
    /// The word was in the cache.
    Hit,
    /// The word missed, for the stated reason.
    Miss(MissKind),
}

impl AccessOutcome {
    /// True for misses.
    #[must_use]
    pub fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss(_))
    }
}

/// Detailed outcome of one fetch: the classical outcome plus the cache
/// coordinates diagnostics need — which line and set the access touched
/// and, on a fill that displaced a valid line, which line was evicted.
///
/// Produced by [`Cache::access_detailed`]; the attribution engine
/// ([`crate::AttributedCache`]) consumes it to maintain evictor→victim
/// provenance without duplicating the replacement logic.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct AccessDetail {
    /// Hit, or miss with interference kind.
    pub outcome: AccessOutcome,
    /// The accessed (line-aligned) address.
    pub line: u64,
    /// The set the access mapped to.
    pub set: u32,
    /// The valid line displaced by this fill, if any.
    pub evicted: Option<u64>,
}

/// Sentinel tag marking an invalid (never filled) way. Line keys are
/// `addr >> line_shift`, so a real key can only collide with the sentinel
/// for addresses in the topmost line of the address space — which the
/// layouts never produce (debug-asserted on access).
const TAG_EMPTY: u64 = u64::MAX;

/// Bounded per-set store of "who last evicted this line", replacing the
/// old unbounded `HashMap<u64, Domain>` (which grew one entry per distinct
/// line ever evicted and was never pruned on re-fill).
///
/// Each set keeps its records sorted by line key for `O(log n)` lookup
/// and update. When a set reaches `cap` records, the *oldest inserted*
/// record is dropped round-robin; classification of a line whose record
/// was dropped degrades to `Cold`, exactly as if the line had never been
/// cached. The default cap (4096) is far above the distinct-lines-per-set
/// count of any paper-scale workload (~a few hundred), so results are
/// bit-identical to the unbounded map while memory stays bounded at
/// `O(sets × cap)` worst case.
#[derive(Clone, Debug)]
pub(crate) struct EvictTable {
    cap: usize,
    /// Per set: records `(line_key, evictor)` sorted by key, plus the
    /// round-robin drop cursor used when the set is at capacity.
    sets: Vec<(Vec<(u64, Domain)>, usize)>,
}

impl EvictTable {
    /// Default per-set record bound.
    pub(crate) const DEFAULT_CAP: usize = 4096;

    pub(crate) fn new(num_sets: usize, cap: usize) -> Self {
        assert!(cap > 0, "evict table needs capacity");
        Self {
            cap,
            sets: vec![(Vec::new(), 0); num_sets],
        }
    }

    pub(crate) fn lookup(&self, set: u32, key: u64) -> Option<Domain> {
        let records = &self.sets[set as usize].0;
        records
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| records[i].1)
    }

    pub(crate) fn record(&mut self, set: u32, key: u64, evictor: Domain) {
        let (records, cursor) = &mut self.sets[set as usize];
        match records.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => records[i].1 = evictor,
            Err(i) => {
                if records.len() >= self.cap {
                    // At capacity: drop one record round-robin to make
                    // room (its line reclassifies as cold if refetched).
                    let drop_at = *cursor % records.len();
                    *cursor = cursor.wrapping_add(1);
                    records.remove(drop_at);
                    let i = records
                        .binary_search_by_key(&key, |&(k, _)| k)
                        .expect_err("key was absent");
                    records.insert(i, (key, evictor));
                } else {
                    records.insert(i, (key, evictor));
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.sets.iter().map(|(r, _)| r.len()).sum()
    }

    fn clear(&mut self) {
        for (records, cursor) in &mut self.sets {
            records.clear();
            *cursor = 0;
        }
    }
}

/// A unified set-associative LRU instruction cache.
///
/// # Example
///
/// ```
/// use oslay_cache::{AccessOutcome, Cache, CacheConfig, InstructionCache, MissKind};
/// use oslay_model::Domain;
///
/// let mut cache = Cache::new(CacheConfig::paper_default());
/// assert_eq!(
///     cache.access(0x100, Domain::Os),
///     AccessOutcome::Miss(MissKind::Cold)
/// );
/// assert_eq!(cache.access(0x104, Domain::Os), AccessOutcome::Hit);
/// ```
#[derive(Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `log2(line)`: `addr >> line_shift` is the line key.
    line_shift: u32,
    /// `num_sets - 1`: `key & set_mask` is the set index.
    set_mask: u64,
    ways_per_set: usize,
    /// Line key per way, set-major ([`TAG_EMPTY`] = invalid).
    tags: Vec<u64>,
    /// Last-touch clock per way, parallel to `tags`.
    lru: Vec<u64>,
    /// Last evictor per line (bounded; absent = never evicted = cold).
    evicted_by: EvictTable,
    clock: u64,
    stats: MissStats,
    /// Consulted only on the miss path and in
    /// [`Cache::record_occupancy`], never on hits.
    probe: Option<Arc<dyn Probe + Send + Sync>>,
    /// Eviction-age histogram (log2 buckets of `clock - last_touch`),
    /// allocated only while the timeline has telemetry enabled.
    /// Touched only on the eviction path.
    evict_ages: Option<Box<[u64; timeline::AGE_BUCKETS]>>,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("cfg", &self.cfg)
            .field("clock", &self.clock)
            .field("stats", &self.stats)
            .field("probe", &self.probe.is_some())
            .finish_non_exhaustive()
    }
}

impl Cache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_evict_cap(cfg, EvictTable::DEFAULT_CAP)
    }

    /// Creates an empty cache with a custom per-set bound on eviction
    /// provenance records (tests use tiny caps to exercise the drop
    /// path; the default is `EvictTable::DEFAULT_CAP` via
    /// [`Cache::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `evict_cap` is zero.
    #[must_use]
    pub fn with_evict_cap(cfg: CacheConfig, evict_cap: usize) -> Self {
        let slots = (cfg.num_sets() * cfg.ways()) as usize;
        Self {
            cfg,
            line_shift: cfg.line_shift(),
            set_mask: cfg.set_mask(),
            ways_per_set: cfg.ways() as usize,
            tags: vec![TAG_EMPTY; slots],
            lru: vec![0; slots],
            evicted_by: EvictTable::new(cfg.num_sets() as usize, evict_cap),
            clock: 0,
            stats: MissStats::default(),
            probe: None,
            evict_ages: None,
        }
    }

    /// Total eviction-provenance records currently held (test hook for
    /// the boundedness guarantee).
    #[must_use]
    pub fn evict_records(&self) -> usize {
        self.evicted_by.len()
    }

    /// Creates an empty cache reporting metrics to `probe`: miss
    /// counters by kind (`cache.miss.*`) and evictions by evictor domain
    /// (`cache.evict.*`). The probe is touched only when an access
    /// misses, so hit-path cost is identical to [`Cache::new`].
    #[must_use]
    pub fn with_probe(cfg: CacheConfig, probe: Arc<dyn Probe + Send + Sync>) -> Self {
        let mut cache = Self::new(cfg);
        cache.probe = Some(probe);
        cache
    }

    /// Attaches (or with `None` detaches) a probe after construction.
    pub fn set_probe(&mut self, probe: Option<Arc<dyn Probe + Send + Sync>>) {
        self.probe = probe;
    }

    /// This cache's geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Reports the current fill state to the attached probe: one
    /// `cache.set_occupancy` histogram sample per set (number of valid
    /// ways) and the overall fill fraction as the `cache.occupancy`
    /// gauge. No-op without a probe.
    pub fn record_occupancy(&self) {
        let Some(probe) = &self.probe else { return };
        let mut valid_total = 0usize;
        for set in self.tags.chunks(self.ways_per_set) {
            let occupied = set.iter().filter(|&&tag| tag != TAG_EMPTY).count();
            valid_total += occupied;
            probe.histogram_record("cache.set_occupancy", occupied as u64);
        }
        probe.gauge_set(
            "cache.occupancy",
            valid_total as f64 / self.tags.len() as f64,
        );
    }

    /// Like [`InstructionCache::access`], but also reports the touched
    /// line, its set, and the line evicted by the fill (if any).
    ///
    /// The hit path is branch-light: one shift-and-mask decomposition, a
    /// scan of at most `ways` dense tags, one LRU stamp. Maps are only
    /// consulted on misses.
    #[inline]
    pub fn access_detailed(&mut self, addr: u64, domain: Domain) -> AccessDetail {
        self.clock += 1;
        let clock = self.clock;
        let key = addr >> self.line_shift;
        debug_assert_ne!(key, TAG_EMPTY, "address in the topmost line");
        let set = (key & self.set_mask) as u32;
        let line = key << self.line_shift;
        let base = set as usize * self.ways_per_set;
        let ways = base..base + self.ways_per_set;

        // Hit? (A key never equals TAG_EMPTY, so no validity check.)
        for i in ways.clone() {
            if self.tags[i] == key {
                self.lru[i] = clock;
                self.stats.record(domain, AccessOutcome::Hit);
                return AccessDetail {
                    outcome: AccessOutcome::Hit,
                    line,
                    set,
                    evicted: None,
                };
            }
        }

        // Miss: fill the first invalid way, else the first-least-recently
        // used one (matching the reference implementation's tie-break).
        let mut victim = base;
        let mut best = (self.tags[base] != TAG_EMPTY, self.lru[base]);
        for i in ways.skip(1) {
            let rank = (self.tags[i] != TAG_EMPTY, self.lru[i]);
            if rank < best {
                best = rank;
                victim = i;
            }
        }
        let evictee = self.tags[victim];
        let evicted_valid = evictee != TAG_EMPTY;
        // Victim's last-touch stamp, read before the fill overwrites it:
        // the eviction age is how long the line sat untouched.
        let victim_last = self.lru[victim];
        self.tags[victim] = key;
        self.lru[victim] = clock;
        if evicted_valid {
            self.evicted_by.record(set, evictee, domain);
            if let Some(ages) = self.evict_ages.as_deref_mut() {
                ages[(clock - victim_last).ilog2() as usize] += 1;
            }
        }
        // A line is non-cold iff it was ever evicted — residency implies a
        // prior fill, and every displacement of a valid line leaves a
        // provenance record — so the evict table doubles as the seen-set.
        let kind = MissKind::classify(domain, self.evicted_by.lookup(set, key));
        if let Some(probe) = &self.probe {
            probe.counter_add(kind.metric_name(), 1);
            if evicted_valid {
                probe.counter_add(
                    match domain {
                        Domain::Os => "cache.evict.by_os",
                        Domain::App => "cache.evict.by_app",
                    },
                    1,
                );
            }
        }
        let outcome = AccessOutcome::Miss(kind);
        self.stats.record(domain, outcome);
        AccessDetail {
            outcome,
            line,
            set,
            evicted: evicted_valid.then(|| evictee << self.line_shift),
        }
    }
}

impl InstructionCache for Cache {
    #[inline]
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome {
        self.access_detailed(addr, domain).outcome
    }

    fn access_words(&mut self, base: u64, words: u32, domain: Domain) -> u64 {
        let word = u64::from(oslay_model::WORD_BYTES);
        let line = u64::from(self.cfg.line());
        let mut missed = 0u64;
        let mut w = 0u32;
        while w < words {
            let addr = base + u64::from(w) * word;
            // Words left in this cache line, rounding up: block layouts are
            // byte-granular, so a fetch base need not be word-aligned and a
            // partial trailing word still belongs to (and ends) this line.
            let in_line = (line - (addr % line)).div_ceil(word) as u32;
            let run = in_line.min(words - w);
            if matches!(self.access(addr, domain), AccessOutcome::Miss(_)) {
                missed += 1;
            }
            // The remaining `run - 1` words of the line are guaranteed
            // hits: the line is resident and already MRU, so re-touching
            // it per word would not change any replacement state.
            self.stats.record_hits(domain, u64::from(run) - 1);
            w += run;
        }
        missed
    }

    fn stats(&self) -> &MissStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.tags.fill(TAG_EMPTY);
        self.lru.fill(0);
        self.evicted_by.clear();
        self.clock = 0;
        self.stats = MissStats::default();
        if let Some(ages) = self.evict_ages.as_deref_mut() {
            ages.fill(0);
        }
    }

    fn set_telemetry(&mut self, enabled: bool) {
        self.evict_ages = enabled.then(|| Box::new([0u64; timeline::AGE_BUCKETS]));
    }

    fn telemetry_snapshot(&self) -> Option<CacheProbeSnapshot> {
        // Occupancy histogram: how many sets hold exactly `n` valid ways
        // (fixed-size so the scan is one pass, no allocation per call).
        let mut counts = [0u64; 65];
        let mut valid_total = 0u64;
        for set in self.tags.chunks(self.ways_per_set) {
            let occupied = set.iter().filter(|&&tag| tag != TAG_EMPTY).count();
            valid_total += occupied as u64;
            counts[occupied.min(64)] += 1;
        }
        let sets = (self.tags.len() / self.ways_per_set) as u64;
        let quantile = |num: u64, den: u64| -> u32 {
            let target = (sets * num).div_ceil(den).max(1);
            let mut cum = 0u64;
            for (occ, &n) in counts.iter().enumerate() {
                cum += n;
                if cum >= target {
                    return occ as u32;
                }
            }
            self.ways_per_set as u32
        };
        Some(CacheProbeSnapshot {
            occ_p50: quantile(1, 2),
            occ_p95: quantile(19, 20),
            fill_ppm: (valid_total * 1_000_000 / self.tags.len() as u64) as u32,
            evict_ages: self
                .evict_ages
                .as_deref()
                .copied()
                .unwrap_or([0; timeline::AGE_BUCKETS]),
            attr: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm64() -> Cache {
        // 64-byte direct-mapped cache with 16-byte lines: 4 sets.
        Cache::new(CacheConfig::new(64, 16, 1))
    }

    #[test]
    fn telemetry_snapshot_tracks_occupancy_and_evict_ages() {
        let mut c = dm64();
        c.set_telemetry(true);
        // Empty cache: zero fill, zero quantiles, no evictions.
        let snap = c.telemetry_snapshot().expect("sim cache always samples");
        assert_eq!((snap.occ_p50, snap.occ_p95, snap.fill_ppm), (0, 0, 0));
        assert!(snap.evict_ages.iter().all(|&n| n == 0));
        assert_eq!(snap.attr, None);
        // Fill all four sets, then evict set 0's line after 4 more ticks.
        for set in 0..4u64 {
            c.access(set * 16, Domain::Os);
        }
        let full = c.telemetry_snapshot().unwrap();
        assert_eq!((full.occ_p50, full.occ_p95), (1, 1));
        assert_eq!(full.fill_ppm, 1_000_000);
        c.access(64, Domain::App); // maps to set 0, evicts line 0 at age 4
        let evicted = c.telemetry_snapshot().unwrap();
        assert_eq!(evicted.evict_ages.iter().sum::<u64>(), 1);
        assert_eq!(evicted.evict_ages[2], 1, "age 4 lands in bucket log2(4)");
        // reset() clears the histogram; set_telemetry(false) frees it
        // and zeros are reported thereafter.
        c.reset();
        assert!(c
            .telemetry_snapshot()
            .unwrap()
            .evict_ages
            .iter()
            .all(|&n| n == 0));
        c.set_telemetry(false);
        for set in 0..4u64 {
            c.access(set * 16, Domain::Os);
        }
        c.access(64, Domain::App);
        let off = c.telemetry_snapshot().unwrap();
        assert!(off.evict_ages.iter().all(|&n| n == 0), "disabled: no ages");
        assert_eq!(off.fill_ppm, 1_000_000, "occupancy still sampled");
    }

    #[test]
    fn cold_then_hit_within_line() {
        let mut c = dm64();
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(c.access(4, Domain::Os), AccessOutcome::Hit);
        assert_eq!(c.access(15, Domain::Os), AccessOutcome::Hit);
        assert_eq!(
            c.access(16, Domain::Os),
            AccessOutcome::Miss(MissKind::Cold)
        );
    }

    #[test]
    fn self_interference_classified() {
        let mut c = dm64();
        // 0 and 64 conflict in set 0.
        assert!(c.access(0, Domain::Os).is_miss()); // cold
        assert!(c.access(64, Domain::Os).is_miss()); // cold, evicts 0 by OS
        assert_eq!(
            c.access(0, Domain::Os),
            AccessOutcome::Miss(MissKind::OsSelf)
        );
    }

    #[test]
    fn cross_interference_classified_both_ways() {
        let mut c = dm64();
        assert!(c.access(0, Domain::Os).is_miss());
        assert!(c.access(64, Domain::App).is_miss()); // app evicts OS line
        assert_eq!(
            c.access(0, Domain::Os),
            AccessOutcome::Miss(MissKind::OsByApp)
        );
        // Now OS evicted the app line at 64.
        assert_eq!(
            c.access(64, Domain::App),
            AccessOutcome::Miss(MissKind::AppByOs)
        );
    }

    #[test]
    fn app_self_interference() {
        let mut c = dm64();
        assert!(c.access(0, Domain::App).is_miss());
        assert!(c.access(64, Domain::App).is_miss());
        assert_eq!(
            c.access(0, Domain::App),
            AccessOutcome::Miss(MissKind::AppSelf)
        );
    }

    #[test]
    fn two_way_cache_holds_both_conflicting_lines() {
        let mut c = Cache::new(CacheConfig::new(64, 16, 2));
        assert!(c.access(0, Domain::Os).is_miss());
        assert!(c.access(64, Domain::Os).is_miss());
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Hit);
        assert_eq!(c.access(64, Domain::Os), AccessOutcome::Hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 sets × 2 ways, 16B lines: set 0 holds lines 0, 32, 64, ...
        let mut c = Cache::new(CacheConfig::new(64, 16, 2));
        c.access(0, Domain::Os); // line 0
        c.access(32, Domain::Os); // line 32 (same set)
        c.access(0, Domain::Os); // touch line 0: 32 is now LRU
        c.access(64, Domain::Os); // evicts 32
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Hit);
        assert!(c.access(32, Domain::Os).is_miss());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut c = dm64();
        c.access(0, Domain::Os);
        c.access(0, Domain::Os);
        c.access(64, Domain::App);
        let s = c.stats();
        assert_eq!(s.accesses(Domain::Os), 2);
        assert_eq!(s.accesses(Domain::App), 1);
        assert_eq!(s.total_misses(), 2);
        c.reset();
        assert_eq!(c.stats().total_accesses(), 0);
        // After reset, previously-seen lines are cold again.
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Miss(MissKind::Cold));
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(MissKind::classify(Domain::Os, None), MissKind::Cold);
        assert_eq!(
            MissKind::classify(Domain::Os, Some(Domain::Os)),
            MissKind::OsSelf
        );
        assert_eq!(
            MissKind::classify(Domain::Os, Some(Domain::App)),
            MissKind::OsByApp
        );
        assert_eq!(
            MissKind::classify(Domain::App, Some(Domain::App)),
            MissKind::AppSelf
        );
        assert_eq!(
            MissKind::classify(Domain::App, Some(Domain::Os)),
            MissKind::AppByOs
        );
    }

    #[test]
    fn probe_sees_misses_evictions_and_occupancy() {
        use oslay_observe::MetricRegistry;

        let reg = Arc::new(MetricRegistry::new());
        let mut c = Cache::with_probe(CacheConfig::new(64, 16, 1), reg.clone());
        c.access(0, Domain::Os); // cold
        c.access(64, Domain::App); // cold; app evicts the OS line
        c.access(0, Domain::Os); // os-by-app; OS evicts the app line
        c.access(0, Domain::Os); // hit: must not touch the probe
        assert_eq!(reg.counter("cache.miss.cold"), 2);
        assert_eq!(reg.counter("cache.miss.os-by-app"), 1);
        assert_eq!(reg.counter("cache.evict.by_app"), 1);
        assert_eq!(reg.counter("cache.evict.by_os"), 1);

        c.record_occupancy();
        // 4 direct-mapped sets, exactly one holds a line.
        let occ = reg.histogram("cache.set_occupancy").expect("histogram");
        assert_eq!(occ.count(), 4);
        assert_eq!(occ.sum(), 1);
        assert_eq!(reg.gauge("cache.occupancy"), Some(0.25));
    }

    #[test]
    fn access_detailed_reports_line_set_and_eviction() {
        let mut c = dm64();
        let d = c.access_detailed(20, Domain::Os); // line 16, set 1
        assert_eq!(d.outcome, AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(d.line, 16);
        assert_eq!(d.set, 1);
        assert_eq!(d.evicted, None, "filling an invalid way evicts nothing");
        let d = c.access_detailed(16, Domain::Os);
        assert_eq!(d.outcome, AccessOutcome::Hit);
        assert_eq!(d.evicted, None);
        let d = c.access_detailed(80, Domain::Os); // line 80, also set 1
        assert!(d.outcome.is_miss());
        assert_eq!(d.evicted, Some(16));
    }

    #[test]
    fn eviction_attribution_updates_over_time() {
        let mut c = dm64();
        c.access(0, Domain::Os);
        c.access(64, Domain::App); // app evicts OS:0
        c.access(0, Domain::Os); // OsByApp; OS evicts App:64
        c.access(64, Domain::Os); // OS line now at 64; evicts OS:0 by OS
        assert_eq!(
            c.access(0, Domain::Os),
            AccessOutcome::Miss(MissKind::OsSelf)
        );
    }

    #[test]
    fn evict_records_stay_bounded_per_set() {
        // Regression: the old implementation kept one `evicted_by` entry
        // per distinct line ever evicted, forever. Thrash one set of a
        // direct-mapped cache with far more distinct lines than the cap
        // and check the table never exceeds it.
        let cap = 8;
        let mut c = Cache::with_evict_cap(CacheConfig::new(64, 16, 1), cap);
        for round in 0..4u64 {
            for i in 0..64u64 {
                // All map to set 0 (stride = 4 sets * 16B line).
                c.access(i * 64, Domain::Os);
                assert!(
                    c.evict_records() <= cap * 4,
                    "round {round}: {} records exceed bound",
                    c.evict_records()
                );
            }
        }
        assert!(c.evict_records() >= cap, "table should fill to its cap");
        // Reset clears provenance too.
        c.reset();
        assert_eq!(c.evict_records(), 0);
    }

    #[test]
    fn dropped_evict_record_degrades_to_cold() {
        // Under cap pressure, old provenance is forgotten: a refetch of a
        // line whose record was dropped classifies as cold — never
        // misattributed to the wrong domain.
        let mut c = Cache::with_evict_cap(CacheConfig::new(64, 16, 1), 2);
        c.access(0, Domain::Os);
        c.access(64, Domain::Os); // evicts line 0 (recorded: 0 <- Os)
        assert_eq!(
            c.access(0, Domain::Os), // evicts 64 (recorded: 64 <- Os)
            AccessOutcome::Miss(MissKind::OsSelf)
        );
        c.access(128, Domain::App); // evicts 0 (record updated in place)
        c.access(192, Domain::App); // evicts 128; set at cap, drops 0's record
        assert_eq!(
            c.access(64, Domain::Os), // its record survived the drops
            AccessOutcome::Miss(MissKind::OsSelf),
            "surviving record still classifies"
        );
        assert_eq!(
            c.access(0, Domain::Os), // 0's record was dropped at cap
            AccessOutcome::Miss(MissKind::Cold),
            "dropped record degrades to cold"
        );
    }

    #[test]
    fn access_words_matches_per_word_loop() {
        use oslay_model::rng::Rng;
        for ways in [1u32, 2, 4] {
            let cfg = CacheConfig::new(1024, 32, ways);
            let mut coalesced = Cache::new(cfg);
            let mut per_word = Cache::new(cfg);
            let mut rng = Rng::seed_from_u64(0xC0A1 + u64::from(ways));
            for _ in 0..5_000 {
                // Random (possibly line-straddling) block fetch at a
                // byte-granular, not necessarily word-aligned, base.
                let base = u64::from(rng.gen_range(0..4800u32));
                let words = 1 + rng.gen_range(0..24u32);
                let domain = if rng.gen_range(0..2u32) == 0 {
                    Domain::Os
                } else {
                    Domain::App
                };
                let fast = coalesced.access_words(base, words, domain);
                let mut slow = 0u64;
                for w in 0..words {
                    let addr = base + u64::from(w) * u64::from(oslay_model::WORD_BYTES);
                    if matches!(per_word.access(addr, domain), AccessOutcome::Miss(_)) {
                        slow += 1;
                    }
                }
                assert_eq!(fast, slow);
                assert_eq!(coalesced.stats(), per_word.stats());
            }
        }
    }

    #[test]
    fn matches_reference_cache_on_randomized_trace() {
        use crate::reference::ReferenceCache;
        use oslay_model::rng::Rng;

        // Several geometries, domains interleaved, addresses spanning many
        // sets with heavy conflict pressure.
        for (seed, cfg) in [
            (1u64, CacheConfig::new(64, 16, 1)),
            (2, CacheConfig::new(256, 16, 2)),
            (3, CacheConfig::new(1024, 32, 4)),
            (4, CacheConfig::paper_default()),
        ] {
            let mut dense = Cache::new(cfg);
            let mut reference = ReferenceCache::new(cfg);
            let mut rng = Rng::seed_from_u64(seed);
            for step in 0..50_000u32 {
                let addr = u64::from(rng.gen_range(0..8 * cfg.size()));
                let domain = if rng.gen_range(0..4u32) == 0 {
                    Domain::App
                } else {
                    Domain::Os
                };
                let got = dense.access_detailed(addr, domain);
                let want = reference.access_detailed(addr, domain);
                assert_eq!(got, want, "cfg {cfg} step {step} addr {addr:#x}");
            }
        }
    }
}
