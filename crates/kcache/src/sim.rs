//! The core set-associative LRU cache simulator.

use std::collections::HashMap;
use std::sync::Arc;

use oslay_model::Domain;
use oslay_observe::Probe;

use crate::{CacheConfig, InstructionCache, MissStats};

/// Why a miss happened.
///
/// This is the decomposition used throughout the paper's evaluation: cold
/// misses turn out to be negligible, operating-system *self*-interference
/// dominates (over 90% of OS misses in every workload studied), and the
/// optimizations attack exactly that component.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum MissKind {
    /// First-ever reference to the line.
    Cold,
    /// An OS line was evicted by other OS code and refetched.
    OsSelf,
    /// An OS line was evicted by application code and refetched.
    OsByApp,
    /// An application line was evicted by other application code.
    AppSelf,
    /// An application line was evicted by OS code.
    AppByOs,
}

impl MissKind {
    /// All kinds, in reporting order.
    pub const ALL: [MissKind; 5] = [
        MissKind::Cold,
        MissKind::OsSelf,
        MissKind::OsByApp,
        MissKind::AppSelf,
        MissKind::AppByOs,
    ];

    /// Dense index (`0..5`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            MissKind::Cold => 0,
            MissKind::OsSelf => 1,
            MissKind::OsByApp => 2,
            MissKind::AppSelf => 3,
            MissKind::AppByOs => 4,
        }
    }

    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MissKind::Cold => "cold",
            MissKind::OsSelf => "os-self",
            MissKind::OsByApp => "os-by-app",
            MissKind::AppSelf => "app-self",
            MissKind::AppByOs => "app-by-os",
        }
    }

    /// Metric name in the `cache.*` namespace counting misses of this
    /// kind.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            MissKind::Cold => "cache.miss.cold",
            MissKind::OsSelf => "cache.miss.os-self",
            MissKind::OsByApp => "cache.miss.os-by-app",
            MissKind::AppSelf => "cache.miss.app-self",
            MissKind::AppByOs => "cache.miss.app-by-os",
        }
    }

    /// Classifies a miss of `victim` domain given who evicted the line
    /// last (`None` = never cached).
    #[must_use]
    pub fn classify(victim: Domain, evictor: Option<Domain>) -> Self {
        match (victim, evictor) {
            (_, None) => MissKind::Cold,
            (Domain::Os, Some(Domain::Os)) => MissKind::OsSelf,
            (Domain::Os, Some(Domain::App)) => MissKind::OsByApp,
            (Domain::App, Some(Domain::App)) => MissKind::AppSelf,
            (Domain::App, Some(Domain::Os)) => MissKind::AppByOs,
        }
    }
}

/// Outcome of one fetch.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AccessOutcome {
    /// The word was in the cache.
    Hit,
    /// The word missed, for the stated reason.
    Miss(MissKind),
}

impl AccessOutcome {
    /// True for misses.
    #[must_use]
    pub fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss(_))
    }
}

/// Detailed outcome of one fetch: the classical outcome plus the cache
/// coordinates diagnostics need — which line and set the access touched
/// and, on a fill that displaced a valid line, which line was evicted.
///
/// Produced by [`Cache::access_detailed`]; the attribution engine
/// ([`crate::AttributedCache`]) consumes it to maintain evictor→victim
/// provenance without duplicating the replacement logic.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct AccessDetail {
    /// Hit, or miss with interference kind.
    pub outcome: AccessOutcome,
    /// The accessed (line-aligned) address.
    pub line: u64,
    /// The set the access mapped to.
    pub set: u32,
    /// The valid line displaced by this fill, if any.
    pub evicted: Option<u64>,
}

#[derive(Copy, Clone, Debug)]
struct Way {
    line: u64,
    lru: u64,
    valid: bool,
}

impl Way {
    const EMPTY: Way = Way {
        line: 0,
        lru: 0,
        valid: false,
    };
}

/// A unified set-associative LRU instruction cache.
///
/// # Example
///
/// ```
/// use oslay_cache::{AccessOutcome, Cache, CacheConfig, InstructionCache, MissKind};
/// use oslay_model::Domain;
///
/// let mut cache = Cache::new(CacheConfig::paper_default());
/// assert_eq!(
///     cache.access(0x100, Domain::Os),
///     AccessOutcome::Miss(MissKind::Cold)
/// );
/// assert_eq!(cache.access(0x104, Domain::Os), AccessOutcome::Hit);
/// ```
#[derive(Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    /// Last evictor per line address (absent = never evicted; paired with
    /// `seen` to distinguish cold misses).
    evicted_by: HashMap<u64, Domain>,
    seen: std::collections::HashSet<u64>,
    clock: u64,
    stats: MissStats,
    /// Consulted only on the miss path and in
    /// [`Cache::record_occupancy`], never on hits.
    probe: Option<Arc<dyn Probe + Send + Sync>>,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("cfg", &self.cfg)
            .field("clock", &self.clock)
            .field("stats", &self.stats)
            .field("probe", &self.probe.is_some())
            .finish_non_exhaustive()
    }
}

impl Cache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let slots = (cfg.num_sets() * cfg.ways()) as usize;
        Self {
            cfg,
            ways: vec![Way::EMPTY; slots],
            evicted_by: HashMap::new(),
            seen: std::collections::HashSet::new(),
            clock: 0,
            stats: MissStats::default(),
            probe: None,
        }
    }

    /// Creates an empty cache reporting metrics to `probe`: miss
    /// counters by kind (`cache.miss.*`) and evictions by evictor domain
    /// (`cache.evict.*`). The probe is touched only when an access
    /// misses, so hit-path cost is identical to [`Cache::new`].
    #[must_use]
    pub fn with_probe(cfg: CacheConfig, probe: Arc<dyn Probe + Send + Sync>) -> Self {
        let mut cache = Self::new(cfg);
        cache.probe = Some(probe);
        cache
    }

    /// Attaches (or with `None` detaches) a probe after construction.
    pub fn set_probe(&mut self, probe: Option<Arc<dyn Probe + Send + Sync>>) {
        self.probe = probe;
    }

    /// This cache's geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Reports the current fill state to the attached probe: one
    /// `cache.set_occupancy` histogram sample per set (number of valid
    /// ways) and the overall fill fraction as the `cache.occupancy`
    /// gauge. No-op without a probe.
    pub fn record_occupancy(&self) {
        let Some(probe) = &self.probe else { return };
        let w = self.cfg.ways() as usize;
        let mut valid_total = 0usize;
        for set in self.ways.chunks(w) {
            let occupied = set.iter().filter(|way| way.valid).count();
            valid_total += occupied;
            probe.histogram_record("cache.set_occupancy", occupied as u64);
        }
        probe.gauge_set(
            "cache.occupancy",
            valid_total as f64 / self.ways.len() as f64,
        );
    }

    fn set_slice(&mut self, set: u32) -> &mut [Way] {
        let w = self.cfg.ways() as usize;
        let base = set as usize * w;
        &mut self.ways[base..base + w]
    }

    /// Like [`InstructionCache::access`], but also reports the touched
    /// line, its set, and the line evicted by the fill (if any).
    pub fn access_detailed(&mut self, addr: u64, domain: Domain) -> AccessDetail {
        self.clock += 1;
        let clock = self.clock;
        let line = self.cfg.line_addr(addr);
        let set = self.cfg.set_of(addr);
        let ways = self.set_slice(set);

        // Hit?
        for way in ways.iter_mut() {
            if way.valid && way.line == line {
                way.lru = clock;
                self.stats.record(domain, AccessOutcome::Hit);
                return AccessDetail {
                    outcome: AccessOutcome::Hit,
                    line,
                    set,
                    evicted: None,
                };
            }
        }

        // Miss: classify, then fill the LRU (or an invalid) way.
        let victim_slot = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.lru))
            .map(|(i, _)| i)
            .expect("cache sets are never empty");
        let evictee = ways[victim_slot];
        ways[victim_slot] = Way {
            line,
            lru: clock,
            valid: true,
        };
        if evictee.valid {
            self.evicted_by.insert(evictee.line, domain);
        }
        let kind = if self.seen.insert(line) {
            MissKind::Cold
        } else {
            MissKind::classify(domain, self.evicted_by.get(&line).copied())
        };
        if let Some(probe) = &self.probe {
            probe.counter_add(kind.metric_name(), 1);
            if evictee.valid {
                probe.counter_add(
                    match domain {
                        Domain::Os => "cache.evict.by_os",
                        Domain::App => "cache.evict.by_app",
                    },
                    1,
                );
            }
        }
        let outcome = AccessOutcome::Miss(kind);
        self.stats.record(domain, outcome);
        AccessDetail {
            outcome,
            line,
            set,
            evicted: evictee.valid.then_some(evictee.line),
        }
    }
}

impl InstructionCache for Cache {
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome {
        self.access_detailed(addr, domain).outcome
    }

    fn stats(&self) -> &MissStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.ways.fill(Way::EMPTY);
        self.evicted_by.clear();
        self.seen.clear();
        self.clock = 0;
        self.stats = MissStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm64() -> Cache {
        // 64-byte direct-mapped cache with 16-byte lines: 4 sets.
        Cache::new(CacheConfig::new(64, 16, 1))
    }

    #[test]
    fn cold_then_hit_within_line() {
        let mut c = dm64();
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(c.access(4, Domain::Os), AccessOutcome::Hit);
        assert_eq!(c.access(15, Domain::Os), AccessOutcome::Hit);
        assert_eq!(
            c.access(16, Domain::Os),
            AccessOutcome::Miss(MissKind::Cold)
        );
    }

    #[test]
    fn self_interference_classified() {
        let mut c = dm64();
        // 0 and 64 conflict in set 0.
        assert!(c.access(0, Domain::Os).is_miss()); // cold
        assert!(c.access(64, Domain::Os).is_miss()); // cold, evicts 0 by OS
        assert_eq!(
            c.access(0, Domain::Os),
            AccessOutcome::Miss(MissKind::OsSelf)
        );
    }

    #[test]
    fn cross_interference_classified_both_ways() {
        let mut c = dm64();
        assert!(c.access(0, Domain::Os).is_miss());
        assert!(c.access(64, Domain::App).is_miss()); // app evicts OS line
        assert_eq!(
            c.access(0, Domain::Os),
            AccessOutcome::Miss(MissKind::OsByApp)
        );
        // Now OS evicted the app line at 64.
        assert_eq!(
            c.access(64, Domain::App),
            AccessOutcome::Miss(MissKind::AppByOs)
        );
    }

    #[test]
    fn app_self_interference() {
        let mut c = dm64();
        assert!(c.access(0, Domain::App).is_miss());
        assert!(c.access(64, Domain::App).is_miss());
        assert_eq!(
            c.access(0, Domain::App),
            AccessOutcome::Miss(MissKind::AppSelf)
        );
    }

    #[test]
    fn two_way_cache_holds_both_conflicting_lines() {
        let mut c = Cache::new(CacheConfig::new(64, 16, 2));
        assert!(c.access(0, Domain::Os).is_miss());
        assert!(c.access(64, Domain::Os).is_miss());
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Hit);
        assert_eq!(c.access(64, Domain::Os), AccessOutcome::Hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 sets × 2 ways, 16B lines: set 0 holds lines 0, 32, 64, ...
        let mut c = Cache::new(CacheConfig::new(64, 16, 2));
        c.access(0, Domain::Os); // line 0
        c.access(32, Domain::Os); // line 32 (same set)
        c.access(0, Domain::Os); // touch line 0: 32 is now LRU
        c.access(64, Domain::Os); // evicts 32
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Hit);
        assert!(c.access(32, Domain::Os).is_miss());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut c = dm64();
        c.access(0, Domain::Os);
        c.access(0, Domain::Os);
        c.access(64, Domain::App);
        let s = c.stats();
        assert_eq!(s.accesses(Domain::Os), 2);
        assert_eq!(s.accesses(Domain::App), 1);
        assert_eq!(s.total_misses(), 2);
        c.reset();
        assert_eq!(c.stats().total_accesses(), 0);
        // After reset, previously-seen lines are cold again.
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Miss(MissKind::Cold));
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(MissKind::classify(Domain::Os, None), MissKind::Cold);
        assert_eq!(
            MissKind::classify(Domain::Os, Some(Domain::Os)),
            MissKind::OsSelf
        );
        assert_eq!(
            MissKind::classify(Domain::Os, Some(Domain::App)),
            MissKind::OsByApp
        );
        assert_eq!(
            MissKind::classify(Domain::App, Some(Domain::App)),
            MissKind::AppSelf
        );
        assert_eq!(
            MissKind::classify(Domain::App, Some(Domain::Os)),
            MissKind::AppByOs
        );
    }

    #[test]
    fn probe_sees_misses_evictions_and_occupancy() {
        use oslay_observe::MetricRegistry;

        let reg = Arc::new(MetricRegistry::new());
        let mut c = Cache::with_probe(CacheConfig::new(64, 16, 1), reg.clone());
        c.access(0, Domain::Os); // cold
        c.access(64, Domain::App); // cold; app evicts the OS line
        c.access(0, Domain::Os); // os-by-app; OS evicts the app line
        c.access(0, Domain::Os); // hit: must not touch the probe
        assert_eq!(reg.counter("cache.miss.cold"), 2);
        assert_eq!(reg.counter("cache.miss.os-by-app"), 1);
        assert_eq!(reg.counter("cache.evict.by_app"), 1);
        assert_eq!(reg.counter("cache.evict.by_os"), 1);

        c.record_occupancy();
        // 4 direct-mapped sets, exactly one holds a line.
        let occ = reg.histogram("cache.set_occupancy").expect("histogram");
        assert_eq!(occ.count(), 4);
        assert_eq!(occ.sum(), 1);
        assert_eq!(reg.gauge("cache.occupancy"), Some(0.25));
    }

    #[test]
    fn access_detailed_reports_line_set_and_eviction() {
        let mut c = dm64();
        let d = c.access_detailed(20, Domain::Os); // line 16, set 1
        assert_eq!(d.outcome, AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(d.line, 16);
        assert_eq!(d.set, 1);
        assert_eq!(d.evicted, None, "filling an invalid way evicts nothing");
        let d = c.access_detailed(16, Domain::Os);
        assert_eq!(d.outcome, AccessOutcome::Hit);
        assert_eq!(d.evicted, None);
        let d = c.access_detailed(80, Domain::Os); // line 80, also set 1
        assert!(d.outcome.is_miss());
        assert_eq!(d.evicted, Some(16));
    }

    #[test]
    fn eviction_attribution_updates_over_time() {
        let mut c = dm64();
        c.access(0, Domain::Os);
        c.access(64, Domain::App); // app evicts OS:0
        c.access(0, Domain::Os); // OsByApp; OS evicts App:64
        c.access(64, Domain::Os); // OS line now at 64; evicts OS:0 by OS
        assert_eq!(
            c.access(0, Domain::Os),
            AccessOutcome::Miss(MissKind::OsSelf)
        );
    }
}
