//! Instruction-cache simulation for the `oslay` reproduction.
//!
//! A trace-driven set-associative cache with true-LRU replacement and the
//! miss classification the paper's evaluation rests on: every miss is
//! attributed to **first-time reference** (cold), **self-interference**
//! (evicted earlier by the same domain), or **cross-interference** (evicted
//! by the other domain) — the decomposition of Figures 1 and 12.
//!
//! Besides the standard unified cache ([`Cache`]), the crate implements the
//! two hardware alternatives evaluated in Section 5.5:
//!
//! * [`SplitCache`] ("Sep"): the cache is statically halved between
//!   operating system and application;
//! * [`ReservedCache`] ("Resv"): a small dedicated cache captures a
//!   reserved range of hot operating-system code, the rest shares the main
//!   cache.
//!
//! All three implement [`InstructionCache`], so the evaluation driver is
//! organization-agnostic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attribution;
mod census;
mod config;
mod multisim;
#[doc(hidden)]
pub mod reference;
mod reserved;
mod sim;
mod split;
mod stats;

pub use attribution::{
    census_label, diff_attribution, AddressMap, AttributedCache, AttributionDiff,
    AttributionReport, CodeClass, CodeRef, ConflictMatrix, ConflictPair, MatrixCell, PairDelta,
    RoutineKey, ShadowTags, CENSUS_SLOTS,
};
pub use census::SetCensus;
pub use config::CacheConfig;
pub use multisim::MultiSim;
pub use reserved::ReservedCache;
pub use sim::{AccessDetail, AccessOutcome, Cache, MissKind};
pub use split::SplitCache;
pub use stats::MissStats;

use oslay_model::{Domain, SeedKind};

/// A trace-driven instruction cache.
///
/// Implementations classify every access and accumulate [`MissStats`].
pub trait InstructionCache: std::fmt::Debug {
    /// Simulates one instruction-word fetch at byte address `addr` by
    /// `domain` and returns its outcome.
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome;

    /// Simulates `words` consecutive instruction-word fetches starting at
    /// `base` and returns the number that missed.
    ///
    /// Exactly equivalent to calling [`InstructionCache::access`] once per
    /// word (and this default does just that); implementations may exploit
    /// the sequentiality — after the first fetch of a cache line the
    /// remaining words of that line are guaranteed hits that leave the
    /// replacement state untouched, so they can be bulk-counted.
    fn access_words(&mut self, base: u64, words: u32, domain: Domain) -> u64 {
        let mut missed = 0u64;
        for w in 0..words {
            let addr = base + u64::from(w) * u64::from(oslay_model::WORD_BYTES);
            if matches!(self.access(addr, domain), AccessOutcome::Miss(_)) {
                missed += 1;
            }
        }
        missed
    }

    /// Statistics accumulated so far.
    fn stats(&self) -> &MissStats;

    /// Clears contents and statistics.
    fn reset(&mut self);

    /// Notes that the trace entered the operating system via `kind`.
    /// Diagnostic caches use this to attribute misses per entry class;
    /// the default is a no-op.
    fn note_os_enter(&mut self, kind: SeedKind) {
        let _ = kind;
    }

    /// Notes that the trace returned from the operating system.
    fn note_os_exit(&mut self) {}

    /// Notes a diagnostic phase marker (`TraceEvent::Mark`) with its tag.
    fn note_mark(&mut self, tag: u32) {
        let _ = tag;
    }

    /// Enables or disables telemetry collection (the timeline's
    /// eviction-age histogram). The default ignores the request;
    /// organizations without the bookkeeping simply report no probe
    /// data. Disabling frees any telemetry state.
    fn set_telemetry(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// A point-in-time telemetry sample — per-set occupancy quantiles,
    /// fill fraction, the eviction-age histogram, and (for attributing
    /// caches) the cumulative compulsory/capacity/conflict split. The
    /// default reports `None`; the timeline then records zeros for
    /// these fields.
    fn telemetry_snapshot(&self) -> Option<oslay_observe::timeline::CacheProbeSnapshot> {
        None
    }
}
