//! Per-set pressure census.
//!
//! The paper's whole argument is about *where* conflicts land: Base piles
//! the hot code onto a few cache sets (the sharp peaks of Figure 1), while
//! `OptS` spreads equally-hot code across sets and keeps the SelfConfFree
//! sets quiet. [`SetCensus`] instruments a simulation with per-set access
//! and miss counters so that claim can be measured directly (the
//! `ext_set_pressure` experiment binary does so).

use oslay_model::Domain;

use crate::{AccessOutcome, CacheConfig, InstructionCache, MissStats};

/// A wrapper that counts accesses and misses per cache set while
/// delegating to an inner cache.
#[derive(Debug)]
pub struct SetCensus<C> {
    inner: C,
    cfg: CacheConfig,
    accesses: Vec<u64>,
    misses: Vec<u64>,
}

impl<C: InstructionCache> SetCensus<C> {
    /// Wraps `inner`; `cfg` must describe the same set mapping the inner
    /// cache uses (for a plain [`crate::Cache`], its own config).
    #[must_use]
    pub fn new(inner: C, cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets() as usize;
        Self {
            inner,
            cfg,
            accesses: vec![0; sets],
            misses: vec![0; sets],
        }
    }

    /// Accesses per set.
    #[must_use]
    pub fn set_accesses(&self) -> &[u64] {
        &self.accesses
    }

    /// Misses per set.
    #[must_use]
    pub fn set_misses(&self) -> &[u64] {
        &self.misses
    }

    /// The inner cache.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner cache.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Fraction of all misses concentrated in the `k` worst sets — the
    /// set-level analogue of the paper's miss-peak concentration.
    #[must_use]
    pub fn miss_concentration(&self, k: usize) -> f64 {
        let total: u64 = self.misses.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut sorted = self.misses.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = sorted.iter().take(k).sum();
        top as f64 / total as f64
    }

    /// Coefficient of variation (σ/μ) of per-set miss counts: 0 means the
    /// pressure is perfectly even; large values mean a few sets thrash.
    #[must_use]
    pub fn miss_imbalance(&self) -> f64 {
        let n = self.misses.len() as f64;
        let mean = self.misses.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .misses
            .iter()
            .map(|&m| {
                let d = m as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

impl<C: InstructionCache> InstructionCache for SetCensus<C> {
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome {
        let set = self.cfg.set_of(addr) as usize;
        let outcome = self.inner.access(addr, domain);
        self.accesses[set] += 1;
        if outcome.is_miss() {
            self.misses[set] += 1;
        }
        outcome
    }

    fn stats(&self) -> &MissStats {
        self.inner.stats()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.accesses.fill(0);
        self.misses.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;

    fn census() -> SetCensus<Cache> {
        let cfg = CacheConfig::new(128, 16, 1); // 8 sets
        SetCensus::new(Cache::new(cfg), cfg)
    }

    #[test]
    fn counts_land_in_the_right_set() {
        let mut c = census();
        c.access(0, Domain::Os); // set 0, miss
        c.access(16, Domain::Os); // set 1, miss
        c.access(0, Domain::Os); // set 0, hit
        assert_eq!(c.set_accesses()[0], 2);
        assert_eq!(c.set_accesses()[1], 1);
        assert_eq!(c.set_misses()[0], 1);
        assert_eq!(c.set_misses()[1], 1);
    }

    #[test]
    fn concentration_of_single_hot_set() {
        let mut c = census();
        // Thrash set 0 only: lines 0 and 128 conflict.
        for _ in 0..10 {
            c.access(0, Domain::Os);
            c.access(128, Domain::Os);
        }
        assert!((c.miss_concentration(1) - 1.0).abs() < 1e-12);
        assert!(c.miss_imbalance() > 1.0, "imbalance {}", c.miss_imbalance());
    }

    #[test]
    fn even_pressure_has_low_imbalance() {
        let mut c = census();
        // Thrash every set equally.
        for round in 0..10u64 {
            for set in 0..8u64 {
                let conflict = if round % 2 == 0 { 0 } else { 128 };
                c.access(set * 16 + conflict, Domain::Os);
            }
        }
        assert!(c.miss_imbalance() < 0.2, "imbalance {}", c.miss_imbalance());
        assert!((c.miss_concentration(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_pass_through_and_reset() {
        let mut c = census();
        c.access(0, Domain::Os);
        assert_eq!(c.stats().total_accesses(), 1);
        c.reset();
        assert_eq!(c.stats().total_accesses(), 0);
        assert_eq!(c.set_accesses()[0], 0);
        assert_eq!(c.miss_concentration(1), 0.0);
        assert_eq!(c.miss_imbalance(), 0.0);
    }

    #[test]
    fn into_inner_returns_the_cache() {
        let mut c = census();
        c.access(0, Domain::Os);
        let inner = c.into_inner();
        assert_eq!(inner.stats().total_accesses(), 1);
    }
}
