//! Cache geometry.

use std::fmt;

/// Geometry of one cache: total size, line size, associativity.
///
/// The paper sweeps 4–32 KB total size (Figure 15), 16–128 byte lines
/// (Figure 17-a) and 1–8 way associativity (Figure 17-b); its default
/// evaluation cache is 8 KB direct-mapped with 32-byte lines.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct CacheConfig {
    size: u32,
    line: u32,
    ways: u32,
}

impl CacheConfig {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size`, `line` and `ways` are powers of two,
    /// `line <= size`, and `ways <= size / line`.
    #[must_use]
    pub fn new(size: u32, line: u32, ways: u32) -> Self {
        assert!(size.is_power_of_two(), "cache size must be a power of two");
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(
            ways.is_power_of_two(),
            "associativity must be a power of two"
        );
        assert!(line <= size, "line larger than cache");
        assert!(ways <= size / line, "more ways than lines");
        Self { size, line, ways }
    }

    /// The paper's default evaluation cache: 8 KB, direct-mapped, 32-byte
    /// lines.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(8 * 1024, 32, 1)
    }

    /// The Alliant FX/8's per-processor instruction cache: 16 KB
    /// direct-mapped (Figure 1 uses this geometry).
    #[must_use]
    pub fn alliant() -> Self {
        Self::new(16 * 1024, 32, 1)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Associativity (1 = direct-mapped).
    #[must_use]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> u32 {
        self.size / self.line / self.ways
    }

    /// Line-aligned address (the unit of caching and of miss
    /// classification).
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !u64::from(self.line - 1)
    }

    /// Set index of an address.
    #[must_use]
    pub fn set_of(&self, addr: u64) -> u32 {
        ((addr >> self.line_shift()) & u64::from(self.num_sets() - 1)) as u32
    }

    /// Shift that converts an address to its line key (`log2(line)`).
    ///
    /// The hot path precomputes this: `addr >> line_shift` is the line
    /// key, `key & set_mask` the set index, `key << line_shift` the
    /// line-aligned address — one decomposition, no division.
    #[must_use]
    pub fn line_shift(&self) -> u32 {
        self.line.trailing_zeros()
    }

    /// Mask extracting the set index from a line key
    /// (`num_sets - 1`; valid because set counts are powers of two).
    #[must_use]
    pub fn set_mask(&self) -> u64 {
        u64::from(self.num_sets() - 1)
    }

    /// Returns this geometry with a different total size.
    #[must_use]
    pub fn with_size(self, size: u32) -> Self {
        Self::new(size, self.line, self.ways.min(size / self.line))
    }

    /// Returns this geometry with a different line size.
    #[must_use]
    pub fn with_line(self, line: u32) -> Self {
        Self::new(self.size, line, self.ways.min(self.size / line))
    }

    /// Returns this geometry with a different associativity.
    #[must_use]
    pub fn with_ways(self, ways: u32) -> Self {
        Self::new(self.size, self.line, ways)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}KB/{}B/{}-way", self.size / 1024, self.line, self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.size(), 8192);
        assert_eq!(c.line(), 32);
        assert_eq!(c.ways(), 1);
        assert_eq!(c.num_sets(), 256);
        assert_eq!(c.to_string(), "8KB/32B/1-way");
    }

    #[test]
    fn alliant_geometry_matches_the_fx8() {
        let c = CacheConfig::alliant();
        assert_eq!(c.size(), 16 * 1024);
        assert_eq!(c.ways(), 1);
        assert_eq!(c.num_sets() * c.line(), c.size());
    }

    #[test]
    fn set_mapping_wraps_at_cache_size() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(31), 0);
        assert_eq!(c.set_of(32), 1);
        // Two addresses one cache-size apart conflict (direct-mapped).
        assert_eq!(c.set_of(100), c.set_of(100 + 8192));
    }

    #[test]
    fn line_addr_aligns_down() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.line_addr(0), 0);
        assert_eq!(c.line_addr(33), 32);
        assert_eq!(c.line_addr(63), 32);
    }

    #[test]
    fn with_ways_changes_sets() {
        let c = CacheConfig::paper_default().with_ways(4);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    fn with_size_clamps_ways() {
        let c = CacheConfig::new(8192, 32, 8).with_size(512);
        assert!(c.ways() <= c.size() / c.line());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = CacheConfig::new(3000, 32, 1);
    }

    #[test]
    #[should_panic(expected = "more ways than lines")]
    fn too_many_ways_rejected() {
        let _ = CacheConfig::new(64, 32, 4);
    }
}
