//! Bit-exact reference implementations of the pre-optimization cache and
//! shadow tag store, kept as fixtures for the equivalence test suite.
//!
//! The production hot path (`sim::Cache`, `attribution::ShadowTags`) was
//! rewritten for throughput — dense per-set tag arrays, a bounded evict
//! table, an intrusive O(1) LRU — under the contract that observable
//! results (stats, per-access outcomes, miss classifications, shadow
//! residency) are **identical** to these straightforward map-based
//! versions. The tests in `sim`, `attribution`, and
//! `tests/engine_equivalence.rs` replay randomized traces through both and
//! compare access-by-access.
//!
//! Not part of the supported API; do not use outside tests and benches.

use std::collections::{BTreeMap, HashMap, HashSet};

use oslay_model::Domain;

use crate::{AccessDetail, AccessOutcome, CacheConfig, MissKind};

#[derive(Copy, Clone, Debug)]
struct Way {
    line: u64,
    lru: u64,
    valid: bool,
}

impl Way {
    const EMPTY: Way = Way {
        line: 0,
        lru: 0,
        valid: false,
    };
}

/// The original map-based set-associative LRU cache: unbounded
/// `evicted_by` HashMap plus a `seen` HashSet for cold-miss detection.
#[derive(Clone, Debug, Default)]
pub struct ReferenceCache {
    cfg: Option<CacheConfig>,
    ways: Vec<Way>,
    evicted_by: HashMap<u64, Domain>,
    seen: HashSet<u64>,
    clock: u64,
}

impl ReferenceCache {
    /// Creates an empty reference cache.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let slots = (cfg.num_sets() * cfg.ways()) as usize;
        Self {
            cfg: Some(cfg),
            ways: vec![Way::EMPTY; slots],
            evicted_by: HashMap::new(),
            seen: HashSet::new(),
            clock: 0,
        }
    }

    /// One access, returning the same [`AccessDetail`] the production
    /// cache reports (statistics are the caller's concern here).
    pub fn access_detailed(&mut self, addr: u64, domain: Domain) -> AccessDetail {
        let cfg = self.cfg.expect("constructed via new");
        self.clock += 1;
        let clock = self.clock;
        let line = cfg.line_addr(addr);
        let set = cfg.set_of(addr);
        let w = cfg.ways() as usize;
        let base = set as usize * w;
        let ways = &mut self.ways[base..base + w];

        for way in ways.iter_mut() {
            if way.valid && way.line == line {
                way.lru = clock;
                return AccessDetail {
                    outcome: AccessOutcome::Hit,
                    line,
                    set,
                    evicted: None,
                };
            }
        }

        let victim_slot = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.lru))
            .map(|(i, _)| i)
            .expect("cache sets are never empty");
        let evictee = ways[victim_slot];
        ways[victim_slot] = Way {
            line,
            lru: clock,
            valid: true,
        };
        if evictee.valid {
            self.evicted_by.insert(evictee.line, domain);
        }
        let kind = if self.seen.insert(line) {
            MissKind::Cold
        } else {
            MissKind::classify(domain, self.evicted_by.get(&line).copied())
        };
        AccessDetail {
            outcome: AccessOutcome::Miss(kind),
            line,
            set,
            evicted: evictee.valid.then_some(evictee.line),
        }
    }
}

/// The original fully-associative LRU shadow tag store: per-line stamps in
/// a `HashMap` mirrored by a `BTreeMap` ordered on stamp, giving
/// `O(log n)` touch and evict.
#[derive(Clone, Debug)]
pub struct ReferenceShadowTags {
    capacity: usize,
    stamp: u64,
    stamps: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
}

impl ReferenceShadowTags {
    /// Creates a store tracking the `capacity` most recent lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shadow store needs capacity");
        Self {
            capacity,
            stamp: 0,
            stamps: HashMap::new(),
            by_stamp: BTreeMap::new(),
        }
    }

    /// Touches `line`: returns whether it was already resident, then marks
    /// it most-recently-used (evicting the LRU line if over capacity).
    pub fn touch(&mut self, line: u64) -> bool {
        self.stamp += 1;
        match self.stamps.insert(line, self.stamp) {
            Some(old) => {
                self.by_stamp.remove(&old);
                self.by_stamp.insert(self.stamp, line);
                true
            }
            None => {
                self.by_stamp.insert(self.stamp, line);
                if self.stamps.len() > self.capacity {
                    let (&coldest, &victim) =
                        self.by_stamp.iter().next().expect("store is non-empty");
                    self.by_stamp.remove(&coldest);
                    self.stamps.remove(&victim);
                }
                false
            }
        }
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }
}
