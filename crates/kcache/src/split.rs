//! The "Sep" organization: a cache statically partitioned between
//! operating system and application.
//!
//! Section 5.5: "we examine partitioning the on-chip cache into two halves:
//! one for the operating system and the other for the application. ...
//! while it will eliminate any cross interference, it will cause more
//! self-interference." The paper finds this setup undesirable; the
//! reproduction includes it to regenerate that negative result (Figure 18,
//! `Sep` bars).

use oslay_model::Domain;

use crate::{AccessOutcome, Cache, CacheConfig, InstructionCache, MissStats};

/// Two half-size caches, one per domain.
#[derive(Clone, Debug)]
pub struct SplitCache {
    os: Cache,
    app: Cache,
    stats: MissStats,
}

impl SplitCache {
    /// Splits `total` capacity evenly between the domains, keeping line
    /// size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the halves would be smaller than one line per way.
    #[must_use]
    pub fn halves_of(total: CacheConfig) -> Self {
        let half = total.with_size(total.size() / 2);
        Self {
            os: Cache::new(half),
            app: Cache::new(half),
            stats: MissStats::default(),
        }
    }

    /// The OS half geometry.
    #[must_use]
    pub fn os_config(&self) -> CacheConfig {
        self.os.config()
    }

    /// The application half geometry.
    #[must_use]
    pub fn app_config(&self) -> CacheConfig {
        self.app.config()
    }
}

impl InstructionCache for SplitCache {
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome {
        let outcome = match domain {
            Domain::Os => self.os.access(addr, domain),
            Domain::App => self.app.access(addr, domain),
        };
        self.stats.record(domain, outcome);
        outcome
    }

    fn stats(&self) -> &MissStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.os.reset();
        self.app.reset();
        self.stats = MissStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MissKind;

    #[test]
    fn cross_interference_is_impossible() {
        let mut c = SplitCache::halves_of(CacheConfig::new(128, 16, 1));
        // Per-domain halves are 64 bytes: addresses 0 and 64 conflict
        // within a half.
        c.access(0, Domain::Os);
        c.access(0, Domain::App);
        c.access(64, Domain::App); // evicts the app's line 0 only
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Hit);
        assert_eq!(
            c.access(0, Domain::App),
            AccessOutcome::Miss(MissKind::AppSelf)
        );
        assert_eq!(c.stats().misses(MissKind::OsByApp), 0);
        assert_eq!(c.stats().misses(MissKind::AppByOs), 0);
    }

    #[test]
    fn halving_increases_self_conflicts() {
        // In the full 128-byte cache, OS addresses 0 and 64 do not
        // conflict; in the 64-byte half they do.
        let mut full = Cache::new(CacheConfig::new(128, 16, 1));
        full.access(0, Domain::Os);
        full.access(64, Domain::Os);
        assert_eq!(full.access(0, Domain::Os), AccessOutcome::Hit);

        let mut split = SplitCache::halves_of(CacheConfig::new(128, 16, 1));
        split.access(0, Domain::Os);
        split.access(64, Domain::Os);
        assert!(split.access(0, Domain::Os).is_miss());
    }

    #[test]
    fn stats_cover_both_halves() {
        let mut c = SplitCache::halves_of(CacheConfig::new(128, 16, 1));
        c.access(0, Domain::Os);
        c.access(0, Domain::App);
        assert_eq!(c.stats().total_accesses(), 2);
        c.reset();
        assert_eq!(c.stats().total_accesses(), 0);
    }
}
