//! Single-pass multi-configuration simulation.
//!
//! [`MultiSim`] evaluates a whole family of cache organizations in one
//! pass over an access stream and reproduces, per configuration, exactly
//! what a dedicated [`crate::Cache`] would have measured: the same
//! [`MissStats`], the same per-kind miss classification (including the
//! bounded eviction-provenance table's cap behavior), the same eviction
//! counts and the same final set-occupancy snapshot.
//!
//! Two mechanisms make one pass suffice:
//!
//! * **Stack inclusion (Mattson).** All configurations sharing a line
//!   size are served by one bank of per-set LRU recency stacks. Under
//!   true-LRU, the residents of an `A`-way set are exactly the `A` most
//!   recently used lines mapping to it, and set index masks nest:
//!   configurations with more sets split each stack's coarse set into
//!   finer ones selected by low key bits. One walk down the stack
//!   therefore yields, for every `(sets, ways)` point at once, the hit /
//!   miss outcome (stack distance within the point's set vs. its
//!   associativity) and the evicted line on a miss (the point's LRU
//!   resident, i.e. the `A`-th same-set entry from the top).
//! * **Banked tag arrays.** Configurations with different line sizes
//!   cannot share a stack (their keys differ), so each line size gets
//!   its own bank and the banks run side by side on the same stream,
//!   each coalescing sequential fetches into line runs at its own line
//!   size.
//!
//! Stacks are bounded: a coarse set's stack only needs the union of every
//! configuration's residents — `sum(A_c * sets_c / coarse_sets)` entries —
//! plus one slot of slack. Entries below every configuration's residency
//! depth are dead (no future access outcome can depend on them, see
//! [`Bank::prune`]) and are discarded lazily when a stack overflows.

use oslay_model::Domain;
use oslay_observe::Probe;

use crate::sim::EvictTable;
use crate::{CacheConfig, MissKind, MissStats};

/// Sentinel for "no eviction recorded for this point in this access".
/// Line keys are `addr >> line_shift`; a real key collides with the
/// sentinel only for the topmost line of the address space, which layouts
/// never produce (the dense cache debug-asserts the same).
const NO_VICTIM: u64 = u64::MAX;

/// Per-configuration simulation state: everything a dedicated
/// [`crate::Cache`] would have accumulated, minus what is shared across
/// the group (word counts) or derivable from the bank stack (occupancy).
#[derive(Clone, Debug)]
struct PointState {
    cfg: CacheConfig,
    /// `num_sets - 1` for this point.
    set_mask: u64,
    ways: u32,
    /// Index of this point's set-bit count in the bank's `svals`.
    si: usize,
    /// Mirrors the dense cache's bounded provenance table bit for bit:
    /// same per-set capacity, same round-robin drop, same record-then-
    /// classify order, so classification degrades identically under cap
    /// pressure.
    evict: EvictTable,
    misses_by_kind: [u64; 5],
    /// Cold misses split by the accessing domain (needed to reconstruct
    /// per-domain hits: hits = accesses - misses suffered).
    cold_by_domain: [u64; 2],
    /// Evictions of valid lines, by evictor domain.
    evict_by_domain: [u64; 2],
}

/// One bank: every configuration sharing a line size, on per-coarse-set
/// LRU recency stacks.
#[derive(Clone, Debug)]
struct Bank {
    /// `log2(line)`: `addr >> line_shift` is the line key.
    line_shift: u32,
    /// Set bits of the coarsest configuration in the bank.
    s_min: u32,
    /// `2^s_min - 1`: `key & coarse_mask` selects the stack.
    coarse_mask: u64,
    /// Stack slots per coarse set: `cap + 1` (one slot of slack so an
    /// insert can complete before the lazy prune runs).
    region: usize,
    /// Maximum live entries per coarse set: the union bound over every
    /// configuration's residents.
    cap: usize,
    /// Current stack depth per coarse set; read only off the MRU fast
    /// path (the hot path needs exactly one load to test the top slot —
    /// unused slots hold [`NO_VICTIM`], which never equals a key).
    lens: Vec<u32>,
    /// Stack entries (line keys), coarse-set-major, most recent first.
    entries: Vec<u64>,
    /// Distinct set-bit counts in the bank, ascending.
    svals: Vec<u32>,
    /// Per distinct set-bit count: the largest associativity (liveness
    /// bound used by the prune pass).
    max_ways: Vec<u32>,
    /// Flat eviction thresholds, grouped by `svals` index: block `si`
    /// spans `thr_start[si]..thr_start[si + 1]` of `thr_ways` /
    /// `thr_point`, its associativities strictly ascending (within a
    /// bank `(sets, ways)` determines the configuration). Flat arrays
    /// keep the walk's inner loop free of nested-`Vec` pointer chasing.
    thr_start: Vec<u32>,
    /// Associativity at which each threshold fires.
    thr_ways: Vec<u32>,
    /// Point index whose victim each threshold records.
    thr_point: Vec<u32>,
    points: Vec<PointState>,
    // Walk scratch, persisted to keep the hot path allocation-free.
    /// Same-set entries seen so far, per distinct set-bit count.
    counts: Vec<u32>,
    /// Next unfired threshold per distinct set-bit count (absolute index
    /// into the flat threshold arrays).
    thr_ptr: Vec<u32>,
    /// Victim line recorded per point. Valid only for points whose
    /// eviction threshold fired in the current walk (equivalently:
    /// whose same-set count reached its ways); stale slots are never
    /// read, so no per-access reset is needed.
    victims: Vec<u64>,
    /// Prune scratch: per distinct set-bit count, one counter per fine
    /// set within a coarse set.
    prune_counts: Vec<Vec<u32>>,
}

impl Bank {
    fn new(line_shift: u32, cfgs: &[CacheConfig]) -> Self {
        debug_assert!(!cfgs.is_empty());
        let svals_of = |c: &CacheConfig| c.num_sets().trailing_zeros();
        let s_min = cfgs.iter().map(svals_of).min().expect("non-empty bank");
        let mut svals: Vec<u32> = cfgs.iter().map(svals_of).collect();
        svals.sort_unstable();
        svals.dedup();
        let mut max_ways = vec![0u32; svals.len()];
        let mut grouped: Vec<Vec<(u32, u32)>> = vec![Vec::new(); svals.len()];
        let mut cap = 0usize;
        let mut points = Vec::with_capacity(cfgs.len());
        for (pi, cfg) in cfgs.iter().enumerate() {
            let s = svals_of(cfg);
            let si = svals.iter().position(|&v| v == s).expect("s is listed");
            grouped[si].push((cfg.ways(), pi as u32));
            max_ways[si] = max_ways[si].max(cfg.ways());
            cap += (cfg.ways() as usize) << (s - s_min);
            points.push(PointState {
                cfg: *cfg,
                set_mask: cfg.set_mask(),
                ways: cfg.ways(),
                si,
                evict: EvictTable::new(cfg.num_sets() as usize, EvictTable::DEFAULT_CAP),
                misses_by_kind: [0; 5],
                cold_by_domain: [0; 2],
                evict_by_domain: [0; 2],
            });
        }
        let mut thr_start = Vec::with_capacity(svals.len() + 1);
        let mut thr_ways = Vec::with_capacity(cfgs.len());
        let mut thr_point = Vec::with_capacity(cfgs.len());
        for g in &mut grouped {
            g.sort_unstable();
            thr_start.push(thr_ways.len() as u32);
            for &(ways, pi) in g.iter() {
                thr_ways.push(ways);
                thr_point.push(pi);
            }
        }
        thr_start.push(thr_ways.len() as u32);
        let coarse_sets = 1usize << s_min;
        let region = cap + 1;
        let prune_counts = svals
            .iter()
            .map(|&s| vec![0u32; 1usize << (s - s_min)])
            .collect();
        Self {
            line_shift,
            s_min,
            coarse_mask: (coarse_sets - 1) as u64,
            region,
            cap,
            lens: vec![0; coarse_sets],
            entries: vec![NO_VICTIM; coarse_sets * region],
            counts: vec![0; svals.len()],
            thr_ptr: vec![0; svals.len()],
            victims: vec![NO_VICTIM; points.len()],
            prune_counts,
            svals,
            max_ways,
            thr_start,
            thr_ways,
            thr_point,
            points,
        }
    }

    /// Splits a `words`-long sequential fetch into line runs at this
    /// bank's line size and touches the stack once per run — after the
    /// first word of a line the rest of the run is guaranteed hits in
    /// every configuration of the bank (same line size), leaving all
    /// replacement state untouched, exactly as the dense cache's
    /// coalesced path reasons.
    fn access_run(&mut self, base: u64, words: u32, domain: Domain) {
        let word = u64::from(oslay_model::WORD_BYTES);
        let line = 1u64 << self.line_shift;
        let mut w = 0u32;
        while w < words {
            let addr = base + u64::from(w) * word;
            // Words left in this line, rounding up: fetch bases are
            // byte-granular, so a partial trailing word still belongs to
            // (and ends) the line. `line` is a power of two, so the
            // offset is a mask, not a division.
            let in_line = ((line - (addr & (line - 1))).div_ceil(word)) as u32;
            let run = in_line.min(words - w);
            self.access_line(addr >> self.line_shift, domain);
            w += run;
        }
    }

    /// One line-granular access: walk the coarse set's recency stack,
    /// settle every configuration's outcome, then move `key` to the top.
    fn access_line(&mut self, key: u64, domain: Domain) {
        debug_assert_ne!(key, NO_VICTIM, "address in the topmost line");
        let coarse = (key & self.coarse_mask) as usize;
        let base = coarse * self.region;
        // MRU fast path: the key already tops its stack, so it has zero
        // same-set predecessors in every configuration — a universal hit
        // (every `ways >= 1`) that moves nothing. Hits are derived from
        // the shared access counts, so there is nothing to record; an
        // empty stack's top slot holds [`NO_VICTIM`], which never equals
        // a key. This is the only load the 90%+ common case performs.
        if self.entries[base] == key {
            return;
        }
        let len = self.lens[coarse] as usize;

        // Walk top (MRU) down, counting same-set predecessors per
        // distinct set-bit count. An entry `e` shares `key`'s set in
        // every configuration whose set bits fit inside the common low
        // bits: `s <= trailing_zeros(e ^ key)`. The walk stops at `key`:
        // entries below it cannot change any outcome (a hit needs only
        // the predecessors; a miss at depth >= A means the set is full
        // and its victim was already seen at depth A). Once every
        // threshold has fired the counting is over too — every point's
        // outcome and victim are settled — and only the key's position
        // is still unknown, so the remainder degrades to a plain scan.
        let mut found = false;
        let mut pos = len;
        let mut fired = 0u32;
        let total = self.victims.len() as u32;
        {
            let Self {
                entries,
                counts,
                thr_ptr,
                thr_start,
                thr_ways,
                thr_point,
                victims,
                svals,
                ..
            } = self;
            counts.fill(0);
            thr_ptr.copy_from_slice(&thr_start[..svals.len()]);
            let stack = &entries[base..base + len];
            let mut p = 0;
            while p < len {
                let e = stack[p];
                if e == key {
                    found = true;
                    pos = p;
                    break;
                }
                let t = (e ^ key).trailing_zeros();
                for ((&sv, c), (ptr, &end)) in svals
                    .iter()
                    .zip(counts.iter_mut())
                    .zip(thr_ptr.iter_mut().zip(thr_start[1..].iter()))
                {
                    if sv > t {
                        break;
                    }
                    *c += 1;
                    let idx = *ptr as usize;
                    if idx < end as usize && thr_ways[idx] == *c {
                        // `e` is this point's LRU resident: the line a
                        // dedicated cache would evict if this access
                        // misses.
                        victims[thr_point[idx] as usize] = e;
                        *ptr += 1;
                        fired += 1;
                    }
                }
                p += 1;
                if fired == total {
                    if let Some(off) = stack[p..].iter().position(|&x| x == key) {
                        found = true;
                        pos = p + off;
                    }
                    break;
                }
            }
        }

        // Settle each missing point by replicating the dense miss path:
        // record the eviction first, then classify against the provenance
        // table (order matters under its cap). A found key with no
        // threshold fired is a hit for every point (each count stayed
        // below its smallest associativity) — nothing to settle.
        if !found {
            // Global miss: the key is in no configuration (the stack
            // holds a superset of every point's residents), so every
            // point misses; those whose set is full (count reached ways,
            // i.e. their threshold fired) also evict their victim.
            for pi in 0..self.points.len() {
                let point = &mut self.points[pi];
                let set = (key & point.set_mask) as u32;
                if self.counts[point.si] >= point.ways {
                    point.evict.record(set, self.victims[pi], domain);
                    point.evict_by_domain[domain.index()] += 1;
                }
                let kind = MissKind::classify(domain, point.evict.lookup(set, key));
                point.misses_by_kind[kind.index()] += 1;
                if kind == MissKind::Cold {
                    point.cold_by_domain[domain.index()] += 1;
                }
            }
        } else if fired > 0 {
            // Hit in some configurations: exactly the points whose
            // threshold fired saw `ways` same-set lines above the key —
            // a conflict miss with a full set. The fired thresholds are
            // the walk-front prefix of each set-bit count's block, so
            // the missing points are enumerated directly; every other
            // point is a hit and is never touched.
            for si in 0..self.svals.len() {
                for idx in self.thr_start[si] as usize..self.thr_ptr[si] as usize {
                    let pi = self.thr_point[idx] as usize;
                    let point = &mut self.points[pi];
                    let set = (key & point.set_mask) as u32;
                    point.evict.record(set, self.victims[pi], domain);
                    point.evict_by_domain[domain.index()] += 1;
                    let kind = MissKind::classify(domain, point.evict.lookup(set, key));
                    point.misses_by_kind[kind.index()] += 1;
                    if kind == MissKind::Cold {
                        point.cold_by_domain[domain.index()] += 1;
                    }
                }
            }
        }

        // Update the stack: hoist `key` to the top, preserving the
        // relative recency of everything above its old position.
        if found {
            self.entries.copy_within(base..base + pos, base + 1);
            self.entries[base] = key;
        } else {
            self.entries.copy_within(base..base + len, base + 1);
            self.entries[base] = key;
            let new_len = len + 1;
            self.lens[coarse] = new_len as u32;
            if new_len > self.cap {
                self.prune(coarse);
            }
        }
    }

    /// Lazy liveness prune: drops stack entries resident in no
    /// configuration. Such an entry has, for every set-bit count `s`, at
    /// least `max_ways(s)` same-set entries above it — so any future
    /// access that would have walked past it already sees a full set
    /// (hit/miss unchanged) with its victim above (eviction unchanged),
    /// and deeper same-set entries keep at least `max_ways(s)`
    /// predecessors (their outcomes unchanged too). Residents of some
    /// configuration are never dropped, so at most
    /// `sum(ways_c * 2^(s_c - s_min))` = `cap` entries are live; called
    /// at `cap + 1`, the pass always reclaims at least one slot.
    fn prune(&mut self, coarse: usize) {
        let base = coarse * self.region;
        for c in &mut self.prune_counts {
            c.fill(0);
        }
        let len = self.lens[coarse] as usize;
        let mut write = 0usize;
        for p in 0..len {
            let e = self.entries[base + p];
            let mut live = false;
            for si in 0..self.svals.len() {
                // Fine-set index within this coarse set: the key bits
                // between `s_min` and `s`.
                let fid =
                    ((e >> self.s_min) & ((1u64 << (self.svals[si] - self.s_min)) - 1)) as usize;
                let seen = self.prune_counts[si][fid];
                if seen < self.max_ways[si] {
                    live = true;
                }
                // Dead entries still count: residency depth is measured
                // over all same-set lines in the stack, dead or not.
                self.prune_counts[si][fid] = seen + 1;
            }
            if live {
                self.entries[base + write] = e;
                write += 1;
            }
        }
        debug_assert!(write <= self.cap, "prune must reclaim the slack slot");
        // Clear the reclaimed tail so the MRU fast path stays safe on
        // any slot the stack may shrink back onto.
        self.entries[base + write..base + len].fill(NO_VICTIM);
        self.lens[coarse] = write as u32;
    }

    /// Final per-set occupancy of one point, reconstructed from the
    /// stack: a set holds `min(same-set stack entries, ways)` valid
    /// lines (the stack keeps at least every resident, and a set with
    /// fewer than `ways` distinct lines ever accessed has never pruned).
    fn occupancy(&self, pi: usize) -> Vec<u32> {
        let point = &self.points[pi];
        let mut occ = vec![0u32; point.cfg.num_sets() as usize];
        for (&len, stack) in self.lens.iter().zip(self.entries.chunks_exact(self.region)) {
            for &e in &stack[..len as usize] {
                let set = (e & point.set_mask) as usize;
                if occ[set] < point.ways {
                    occ[set] += 1;
                }
            }
        }
        occ
    }

    /// Structural stack invariants (test hook): depth within the cap,
    /// entries unique, and every entry in its home coarse set. A
    /// violation means stack inclusion has been broken.
    fn check(&self) -> Result<(), String> {
        for (coarse, (&len, stack)) in self
            .lens
            .iter()
            .zip(self.entries.chunks_exact(self.region))
            .enumerate()
        {
            let len = len as usize;
            if len > self.cap {
                return Err(format!(
                    "coarse set {coarse}: depth {len} exceeds cap {}",
                    self.cap
                ));
            }
            let slice = &stack[..len];
            for (i, &e) in slice.iter().enumerate() {
                if (e & self.coarse_mask) as usize != coarse {
                    return Err(format!(
                        "coarse set {coarse}: entry {e:#x} belongs to set {}",
                        e & self.coarse_mask
                    ));
                }
                if slice[..i].contains(&e) {
                    return Err(format!("coarse set {coarse}: duplicate entry {e:#x}"));
                }
            }
        }
        Ok(())
    }
}

/// A multi-configuration instruction-cache simulator: one pass over an
/// access stream yields, per [`CacheConfig`] point, results identical to
/// a dedicated [`crate::Cache`] replaying the same stream.
///
/// Construction groups the points into banks by line size; within a bank,
/// duplicate configurations collapse onto one simulation point (queries
/// by original index are fanned back out).
///
/// # Example
///
/// ```
/// use oslay_cache::{CacheConfig, MultiSim};
/// use oslay_model::Domain;
///
/// let grid = [
///     CacheConfig::new(4096, 32, 1),
///     CacheConfig::new(8192, 32, 2),
///     CacheConfig::new(8192, 64, 1),
/// ];
/// let mut multi = MultiSim::new(&grid);
/// multi.access_words(0x100, 12, Domain::Os);
/// assert_eq!(multi.stats(0).total_accesses(), 12);
/// ```
#[derive(Clone, Debug)]
pub struct MultiSim {
    banks: Vec<Bank>,
    /// Original point index -> (bank, point-in-bank).
    point_map: Vec<(usize, usize)>,
    /// Word fetches by domain — identical for every point (the stream is
    /// shared), so accounted once for the whole group.
    accesses: [u64; 2],
}

impl MultiSim {
    /// Builds a simulator for the given configuration grid. Duplicate
    /// configurations share state; per-index queries still answer for
    /// every input position.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    #[must_use]
    pub fn new(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty(), "multisim needs at least one point");
        // Group by line size, deduplicating identical configurations.
        let mut bank_cfgs: Vec<(u32, Vec<CacheConfig>)> = Vec::new();
        let mut point_map = Vec::with_capacity(configs.len());
        for cfg in configs {
            let shift = cfg.line_shift();
            let bi = match bank_cfgs.iter().position(|&(s, _)| s == shift) {
                Some(bi) => bi,
                None => {
                    bank_cfgs.push((shift, Vec::new()));
                    bank_cfgs.len() - 1
                }
            };
            let within = &mut bank_cfgs[bi].1;
            let pi = match within.iter().position(|c| c == cfg) {
                Some(pi) => pi,
                None => {
                    within.push(*cfg);
                    within.len() - 1
                }
            };
            point_map.push((bi, pi));
        }
        let banks = bank_cfgs
            .into_iter()
            .map(|(shift, cfgs)| Bank::new(shift, &cfgs))
            .collect();
        Self {
            banks,
            point_map,
            accesses: [0; 2],
        }
    }

    /// Number of input points (including duplicates).
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.point_map.len()
    }

    /// The configuration of one input point.
    #[must_use]
    pub fn config(&self, point: usize) -> CacheConfig {
        let (bi, pi) = self.point_map[point];
        self.banks[bi].points[pi].cfg
    }

    /// Simulates one instruction-word fetch, for every point at once.
    pub fn access(&mut self, addr: u64, domain: Domain) {
        self.accesses[domain.index()] += 1;
        for bank in &mut self.banks {
            bank.access_line(addr >> bank.line_shift, domain);
        }
    }

    /// Simulates `words` consecutive instruction-word fetches starting
    /// at `base`, for every point at once — the multi-configuration
    /// equivalent of [`crate::InstructionCache::access_words`], with
    /// fetch coalescing at each bank's own line size.
    pub fn access_words(&mut self, base: u64, words: u32, domain: Domain) {
        if words == 0 {
            return;
        }
        self.accesses[domain.index()] += u64::from(words);
        for bank in &mut self.banks {
            bank.access_run(base, words, domain);
        }
    }

    /// The statistics a dedicated [`crate::Cache`] would report for this
    /// point after the same stream.
    #[must_use]
    pub fn stats(&self, point: usize) -> MissStats {
        let (bi, pi) = self.point_map[point];
        let p = &self.banks[bi].points[pi];
        let mk = p.misses_by_kind;
        let suffered = [
            // Misses suffered by the OS: its cold misses plus both
            // kinds where the OS is the victim.
            p.cold_by_domain[Domain::Os.index()]
                + mk[MissKind::OsSelf.index()]
                + mk[MissKind::OsByApp.index()],
            p.cold_by_domain[Domain::App.index()]
                + mk[MissKind::AppSelf.index()]
                + mk[MissKind::AppByOs.index()],
        ];
        let hits = [
            self.accesses[0] - suffered[0],
            self.accesses[1] - suffered[1],
        ];
        MissStats::from_parts(self.accesses, hits, mk)
    }

    /// Reports one point's cache events into `probe` exactly as a probed
    /// [`crate::Cache`] plus [`crate::Cache::record_occupancy`] would
    /// have: per-kind miss counters and per-evictor eviction counters
    /// (created only when nonzero, since a probed cache only touches a
    /// counter on an event), one `cache.set_occupancy` histogram sample
    /// per set in set order, and the `cache.occupancy` fill gauge.
    pub fn report_into(&self, point: usize, probe: &dyn Probe) {
        let (bi, pi) = self.point_map[point];
        let bank = &self.banks[bi];
        let p = &bank.points[pi];
        for kind in MissKind::ALL {
            let n = p.misses_by_kind[kind.index()];
            if n > 0 {
                probe.counter_add(kind.metric_name(), n);
            }
        }
        for (domain, name) in [
            (Domain::Os, "cache.evict.by_os"),
            (Domain::App, "cache.evict.by_app"),
        ] {
            let n = p.evict_by_domain[domain.index()];
            if n > 0 {
                probe.counter_add(name, n);
            }
        }
        let occ = bank.occupancy(pi);
        let mut valid_total = 0u64;
        for &o in &occ {
            valid_total += u64::from(o);
            probe.histogram_record("cache.set_occupancy", u64::from(o));
        }
        let slots = u64::from(p.cfg.num_sets()) * u64::from(p.ways);
        probe.gauge_set("cache.occupancy", valid_total as f64 / slots as f64);
    }

    /// Verifies the structural invariants of every bank stack (bounded
    /// depth, unique entries, correct coarse-set homing). Test hook for
    /// the property suite: any violation means the capped stack has lost
    /// inclusion.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_inclusion(&self) -> Result<(), String> {
        for (bi, bank) in self.banks.iter().enumerate() {
            bank.check().map_err(|e| format!("bank {bi}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use oslay_model::rng::Rng;
    use oslay_observe::MetricRegistry;

    use super::*;
    use crate::{Cache, InstructionCache};

    /// A grid mixing sizes, associativities, and line sizes (three
    /// banks), plus a duplicate point.
    fn grid() -> Vec<CacheConfig> {
        vec![
            CacheConfig::new(1024, 32, 1),
            CacheConfig::new(2048, 32, 2),
            CacheConfig::new(4096, 32, 4),
            CacheConfig::new(2048, 32, 1),
            CacheConfig::new(2048, 16, 2),
            CacheConfig::new(4096, 64, 1),
            CacheConfig::new(2048, 32, 2),
        ]
    }

    fn random_stream(seed: u64, steps: u32, span: u32, mut sink: impl FnMut(u64, u32, Domain)) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..steps {
            let base = u64::from(rng.gen_range(0..span));
            let words = 1 + rng.gen_range(0..24u32);
            let domain = if rng.gen_range(0..3u32) == 0 {
                Domain::App
            } else {
                Domain::Os
            };
            sink(base, words, domain);
        }
    }

    #[test]
    fn matches_dense_caches_on_randomized_stream() {
        let grid = grid();
        let mut multi = MultiSim::new(&grid);
        let mut dense: Vec<Cache> = grid.iter().map(|&c| Cache::new(c)).collect();
        random_stream(0x51EE7, 20_000, 6 * 1024, |base, words, domain| {
            multi.access_words(base, words, domain);
            for c in &mut dense {
                c.access_words(base, words, domain);
            }
        });
        for (pi, c) in dense.iter().enumerate() {
            assert_eq!(multi.stats(pi), *c.stats(), "point {pi} ({})", grid[pi]);
        }
        multi.check_inclusion().expect("stack invariants hold");
    }

    #[test]
    fn matches_dense_caches_per_single_access() {
        // Word-at-a-time API, checked at every step so any divergence
        // pinpoints the first mismatching access.
        let grid = grid();
        let mut multi = MultiSim::new(&grid);
        let mut dense: Vec<Cache> = grid.iter().map(|&c| Cache::new(c)).collect();
        let mut rng = Rng::seed_from_u64(0xACCE55);
        for step in 0..30_000u32 {
            let addr = u64::from(rng.gen_range(0..4 * 1024u32));
            let domain = if rng.gen_range(0..4u32) == 0 {
                Domain::App
            } else {
                Domain::Os
            };
            multi.access(addr, domain);
            for (pi, c) in dense.iter_mut().enumerate() {
                c.access(addr, domain);
                assert_eq!(
                    multi.stats(pi),
                    *c.stats(),
                    "step {step} addr {addr:#x} point {pi} ({})",
                    grid[pi]
                );
            }
        }
    }

    #[test]
    fn prune_pressure_preserves_equality() {
        // Tiny caches, address span far beyond every capacity: the
        // coarse stacks overflow constantly, exercising the lazy prune.
        let grid = vec![
            CacheConfig::new(64, 16, 1),
            CacheConfig::new(128, 16, 2),
            CacheConfig::new(256, 16, 1),
            CacheConfig::new(128, 32, 1),
        ];
        let mut multi = MultiSim::new(&grid);
        let mut dense: Vec<Cache> = grid.iter().map(|&c| Cache::new(c)).collect();
        random_stream(0x9B1D, 40_000, 64 * 1024, |base, words, domain| {
            multi.access_words(base, words, domain);
            for c in &mut dense {
                c.access_words(base, words, domain);
            }
            multi.check_inclusion().expect("capped stack stays sound");
        });
        for (pi, c) in dense.iter().enumerate() {
            assert_eq!(multi.stats(pi), *c.stats(), "point {pi} ({})", grid[pi]);
        }
    }

    #[test]
    fn report_matches_probed_cache_and_occupancy() {
        use std::sync::Arc;

        let grid = grid();
        let mut multi = MultiSim::new(&grid);
        let probed: Vec<(Arc<MetricRegistry>, Cache)> = grid
            .iter()
            .map(|&c| {
                let reg = Arc::new(MetricRegistry::new());
                let cache = Cache::with_probe(c, reg.clone());
                (reg, cache)
            })
            .collect();
        let mut probed = probed;
        random_stream(0x0CC, 15_000, 6 * 1024, |base, words, domain| {
            multi.access_words(base, words, domain);
            for (_, c) in &mut probed {
                c.access_words(base, words, domain);
            }
        });
        for (pi, (reg, c)) in probed.iter().enumerate() {
            c.record_occupancy();
            let mine = MetricRegistry::new();
            multi.report_into(pi, &mine);
            assert_eq!(
                mine.counters(),
                reg.counters(),
                "point {pi} ({}) counters",
                grid[pi]
            );
            assert_eq!(
                mine.gauges(),
                reg.gauges(),
                "point {pi} ({}) gauges",
                grid[pi]
            );
            assert_eq!(
                mine.histograms(),
                reg.histograms(),
                "point {pi} ({}) histograms",
                grid[pi]
            );
        }
    }

    #[test]
    fn duplicate_points_share_state_and_answer_independently() {
        let grid = grid();
        let multi = MultiSim::new(&grid);
        assert_eq!(multi.num_points(), grid.len());
        assert_eq!(multi.config(1), multi.config(6));
        let mut multi = multi;
        multi.access_words(0x40, 9, Domain::Os);
        assert_eq!(multi.stats(1), multi.stats(6));
    }

    #[test]
    fn matches_reference_caches_on_seeded_streams() {
        // Property check against the *map-based* reference model rather
        // than the optimized dense cache: N independent `ReferenceCache`
        // instances aggregate the same stream access-by-access, and every
        // grid point must agree, per seed.
        use crate::reference::ReferenceCache;

        let grid = grid();
        for seed in [0xA11CEu64, 0xB0B5EED, 0xF1F7EE17] {
            let mut multi = MultiSim::new(&grid);
            let mut refs: Vec<(ReferenceCache, MissStats)> = grid
                .iter()
                .map(|&c| (ReferenceCache::new(c), MissStats::default()))
                .collect();
            let mut rng = Rng::seed_from_u64(seed);
            for _ in 0..20_000u32 {
                let addr = u64::from(rng.gen_range(0..6 * 1024u32));
                let domain = if rng.gen_range(0..3u32) == 0 {
                    Domain::App
                } else {
                    Domain::Os
                };
                multi.access(addr, domain);
                for (r, stats) in &mut refs {
                    let detail = r.access_detailed(addr, domain);
                    stats.record(domain, detail.outcome);
                }
            }
            multi.check_inclusion().expect("stack invariants hold");
            for (pi, (_, stats)) in refs.iter().enumerate() {
                assert_eq!(
                    multi.stats(pi),
                    *stats,
                    "seed {seed:#x} point {pi} ({})",
                    grid[pi]
                );
            }
        }
    }

    #[test]
    fn matches_reference_caches_under_prune_pressure() {
        // Same property on the capped stack: tiny caches, an address span
        // far beyond every capacity, inclusion checked as the lazy prune
        // fires.
        use crate::reference::ReferenceCache;

        let grid = vec![
            CacheConfig::new(64, 16, 1),
            CacheConfig::new(128, 16, 2),
            CacheConfig::new(256, 16, 1),
            CacheConfig::new(128, 32, 1),
        ];
        let mut multi = MultiSim::new(&grid);
        let mut refs: Vec<(ReferenceCache, MissStats)> = grid
            .iter()
            .map(|&c| (ReferenceCache::new(c), MissStats::default()))
            .collect();
        let mut rng = Rng::seed_from_u64(0x9B1D5EED);
        for step in 0..30_000u32 {
            let addr = u64::from(rng.gen_range(0..16 * 1024u32));
            let domain = if rng.gen_range(0..4u32) == 0 {
                Domain::App
            } else {
                Domain::Os
            };
            multi.access(addr, domain);
            for (r, stats) in &mut refs {
                let detail = r.access_detailed(addr, domain);
                stats.record(domain, detail.outcome);
            }
            if step % 1024 == 0 {
                multi.check_inclusion().expect("capped stack stays sound");
            }
        }
        multi.check_inclusion().expect("capped stack stays sound");
        for (pi, (_, stats)) in refs.iter().enumerate() {
            assert_eq!(multi.stats(pi), *stats, "point {pi} ({})", grid[pi]);
        }
    }

    #[test]
    fn check_inclusion_detects_corrupted_stacks() {
        // `check_inclusion` is the property suite's oracle, so prove it
        // actually fires: plant each class of violation in a healthy
        // simulator and expect the matching report.
        let grid = grid();
        let filled = || {
            let mut m = MultiSim::new(&grid);
            random_stream(0x5EED, 3_000, 6 * 1024, |base, words, domain| {
                m.access_words(base, words, domain);
            });
            m.check_inclusion().expect("healthy after the stream");
            m
        };
        let deep_coarse = |m: &MultiSim| {
            m.banks[0]
                .lens
                .iter()
                .position(|&l| l >= 2)
                .expect("a stack at least two deep")
        };

        // A duplicated entry.
        let mut m = filled();
        let base = deep_coarse(&m) * m.banks[0].region;
        m.banks[0].entries[base + 1] = m.banks[0].entries[base];
        let err = m.check_inclusion().expect_err("duplicate goes undetected");
        assert!(err.contains("duplicate"), "{err}");

        // An entry homed to the wrong coarse set (flipping the lowest key
        // bit moves it: every grid bank has more than one coarse set).
        let mut m = filled();
        let base = deep_coarse(&m) * m.banks[0].region;
        m.banks[0].entries[base] ^= 1;
        let err = m.check_inclusion().expect_err("mis-homed entry undetected");
        assert!(err.contains("belongs to"), "{err}");

        // A stack deeper than the inclusion cap.
        let mut m = filled();
        let coarse = deep_coarse(&m);
        m.banks[0].lens[coarse] = m.banks[0].cap as u32 + 1;
        let err = m.check_inclusion().expect_err("over-deep stack undetected");
        assert!(err.contains("exceeds cap"), "{err}");
    }

    #[test]
    fn empty_stream_reports_zeros() {
        let multi = MultiSim::new(&grid());
        for pi in 0..multi.num_points() {
            assert_eq!(multi.stats(pi), MissStats::default());
        }
        multi.check_inclusion().expect("empty stacks are sound");
    }
}
