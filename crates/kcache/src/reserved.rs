//! The "Resv" organization: a small cache reserved for hot
//! operating-system code.
//!
//! Section 5.5 evaluates "a very small cache dedicated to the important
//! sections of the operating system only" (an idea from the VMP
//! multiprocessor): a 1 KB cache captures the most important parts of the
//! sequences while a 7 KB cache serves the application and the rest of the
//! operating system. The paper finds it no better than laying out a
//! SelfConfFree area in software; Figure 18's `Resv` bars reproduce that.

use std::ops::Range;

use oslay_model::Domain;
use oslay_observe::Probe;

use crate::{AccessOutcome, Cache, CacheConfig, InstructionCache, MissStats};

/// A small reserved OS cache in front of a main cache.
#[derive(Clone, Debug)]
pub struct ReservedCache {
    small: Cache,
    main: Cache,
    reserved: Range<u64>,
    stats: MissStats,
}

impl ReservedCache {
    /// Creates the complex. OS fetches whose address falls in `reserved`
    /// go to the small cache; everything else goes to the main cache.
    #[must_use]
    pub fn new(small: CacheConfig, main: CacheConfig, reserved: Range<u64>) -> Self {
        Self {
            small: Cache::new(small),
            main: Cache::new(main),
            reserved,
            stats: MissStats::default(),
        }
    }

    /// The paper's setup: a 1 KB reserved cache next to a main cache.
    ///
    /// The paper pairs 1 KB with a 7 KB main cache; 7 KB is not a power of
    /// two, so this constructor uses the largest power of two that fits in
    /// the remaining budget (`paired_with(8 KB)` → 1 KB + 4 KB). That makes
    /// the simulated `Resv` slightly *pessimistic*, which does not affect
    /// the paper's qualitative conclusion (Resv buys roughly nothing over
    /// laying out a SelfConfFree area in software).
    #[must_use]
    pub fn paired_with(total: CacheConfig, reserved: Range<u64>) -> Self {
        let small = CacheConfig::new(1024, total.line(), total.ways().min(1024 / total.line()));
        let main_size = (total.size() - 1024).next_power_of_two() / 2;
        let main = total.with_size(main_size.max(total.line()));
        Self::new(small, main, reserved)
    }

    /// The reserved address range.
    #[must_use]
    pub fn reserved_range(&self) -> Range<u64> {
        self.reserved.clone()
    }

    /// Geometry of the small reserved cache.
    #[must_use]
    pub fn small_config(&self) -> CacheConfig {
        self.small.config()
    }

    /// Geometry of the main cache.
    #[must_use]
    pub fn main_config(&self) -> CacheConfig {
        self.main.config()
    }

    /// Statistics of the small reserved cache alone.
    #[must_use]
    pub fn reserved_stats(&self) -> &MissStats {
        self.small.stats()
    }

    /// Hit rate inside the reserved area (0.0 before any reserved
    /// access). This is the number the paper's Resv evaluation hinges
    /// on: how much of the hot OS footprint the tiny cache captures.
    #[must_use]
    pub fn reserved_hit_rate(&self) -> f64 {
        let stats = self.small.stats();
        if stats.total_accesses() == 0 {
            return 0.0;
        }
        1.0 - stats.miss_rate()
    }

    /// Reports reserved-area effectiveness to `probe`: the
    /// `cache.reserved.hit_rate` gauge plus `cache.reserved.accesses`
    /// and `cache.reserved.misses` counters.
    pub fn record_reserved_metrics(&self, probe: &dyn Probe) {
        let stats = self.small.stats();
        if stats.total_accesses() == 0 {
            return;
        }
        probe.gauge_set("cache.reserved.hit_rate", self.reserved_hit_rate());
        probe.counter_add("cache.reserved.accesses", stats.total_accesses());
        probe.counter_add("cache.reserved.misses", stats.total_misses());
    }
}

impl InstructionCache for ReservedCache {
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome {
        let outcome = if domain == Domain::Os && self.reserved.contains(&addr) {
            self.small.access(addr, domain)
        } else {
            self.main.access(addr, domain)
        };
        self.stats.record(domain, outcome);
        outcome
    }

    fn stats(&self) -> &MissStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.small.reset();
        self.main.reset();
        self.stats = MissStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MissKind;

    fn complex() -> ReservedCache {
        ReservedCache::new(
            CacheConfig::new(64, 16, 1),
            CacheConfig::new(128, 16, 1),
            0..1024,
        )
    }

    #[test]
    fn reserved_os_code_is_immune_to_app_traffic() {
        let mut c = complex();
        c.access(0, Domain::Os); // reserved, small cache
                                 // App traffic that would conflict in a unified cache.
        for i in 0..32u64 {
            c.access(0x4000 + i * 16, Domain::App);
        }
        assert_eq!(c.access(0, Domain::Os), AccessOutcome::Hit);
    }

    #[test]
    fn unreserved_os_code_shares_the_main_cache() {
        let mut c = complex();
        c.access(0x2000, Domain::Os); // outside reserved range → main
        c.access(0x2000 + 128, Domain::App); // conflicts in 128B main
        assert_eq!(
            c.access(0x2000, Domain::Os),
            AccessOutcome::Miss(MissKind::OsByApp)
        );
    }

    #[test]
    fn app_never_touches_the_small_cache() {
        let mut c = complex();
        // An app access inside the "reserved" range still uses main.
        c.access(0x10, Domain::App);
        c.access(0x10, Domain::Os); // small cache: cold, not a hit
        assert_eq!(
            c.access(0x10, Domain::Os),
            AccessOutcome::Hit,
            "second OS access hits the small cache"
        );
        assert_eq!(c.access(0x10, Domain::App), AccessOutcome::Hit);
    }

    #[test]
    fn paired_with_keeps_budget_shape() {
        let c = ReservedCache::paired_with(CacheConfig::paper_default(), 0..1024);
        assert_eq!(c.small_config().size(), 1024);
        assert!(c.main_config().size() >= 4096);
        assert_eq!(c.reserved_range(), 0..1024);
    }

    #[test]
    fn reserved_hit_rate_and_metrics() {
        use oslay_observe::MetricRegistry;

        let mut c = complex();
        assert_eq!(c.reserved_hit_rate(), 0.0, "no reserved traffic yet");
        c.access(0, Domain::Os); // reserved: cold miss
        c.access(0, Domain::Os); // reserved: hit
        c.access(0x2000, Domain::Os); // main cache only
        assert!((c.reserved_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.reserved_stats().total_accesses(), 2);

        let reg = MetricRegistry::new();
        c.record_reserved_metrics(&reg);
        assert_eq!(reg.gauge("cache.reserved.hit_rate"), Some(0.5));
        assert_eq!(reg.counter("cache.reserved.accesses"), 2);
        assert_eq!(reg.counter("cache.reserved.misses"), 1);
    }

    #[test]
    fn reset_clears_both() {
        let mut c = complex();
        c.access(0, Domain::Os);
        c.access(0x2000, Domain::App);
        c.reset();
        assert_eq!(c.stats().total_accesses(), 0);
        assert!(c.access(0, Domain::Os).is_miss());
    }
}
