//! Miss attribution: *why* did each miss happen, and *who* caused it.
//!
//! The aggregate [`MissStats`] say how many misses a layout suffered; this
//! module explains them, reproducing the diagnostic views behind the
//! paper's evaluation:
//!
//! * **Three-way classification** ([`AttrClass`]): every miss is
//!   compulsory (first reference), capacity (an LRU *shadow tag store* of
//!   the same total capacity, fully associative, would also have missed),
//!   or conflict (the shadow store still held the line — only the set
//!   mapping evicted it). Conflict misses are the component code layout
//!   can remove, so the split tells you how much headroom a layout pass
//!   has left.
//! * **Per-set pressure** ([`AttributionReport::set_misses`]): the sharp
//!   per-set peaks of Figure 1 / Figure 14, measured instead of plotted
//!   from addresses.
//! * **Block-class census** ([`AttributionReport::census`]): references
//!   and misses keyed by the Figure 13 placement classes
//!   ([`CodeClass`]: MainSeq, SelfConfFree, Loops, OtherSeq, Cold).
//! * **Evictor→victim pairs and the routine×routine conflict matrix**
//!   ([`ConflictMatrix`]): when a conflict miss refetches a line, the
//!   engine charges the pair *(block that evicted it → block that
//!   missed)*, and rolls the pairs up per routine — the measured analogue
//!   of the static loop×routine matrix driving the Section 4.4 `Call`
//!   optimization.
//!
//! The engine is a wrapper cache ([`AttributedCache`]) so any experiment
//! can opt in without touching the simulation driver, and it streams
//! every classified miss through an optional
//! [`AttributionProbe`](oslay_observe::AttributionProbe) — strictly
//! zero-cost when absent. Two [`AttributionReport`]s from different
//! layouts diff against each other ([`diff_attribution`]): which pairs
//! stopped conflicting, which new conflicts appeared.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use oslay_model::{Domain, SeedKind};
use oslay_observe::{AttrClass, AttributionProbe};

use crate::{AccessOutcome, Cache, CacheConfig, InstructionCache, MissStats};

/// Placement class of a code address — the categories of the paper's
/// Figure 13 (mirrors the layout crate's block classes; the cache crate
/// cannot depend on it).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum CodeClass {
    /// In the SelfConfFree area.
    SelfConfFree,
    /// In a sequence with `ExecThresh ≥ 0.01%`.
    MainSeq,
    /// In a less popular sequence.
    OtherSeq,
    /// Extracted into a loop area / logical cache.
    Loop,
    /// Never executed under the layout's profile.
    Cold,
}

impl CodeClass {
    /// All classes, in reporting order.
    pub const ALL: [CodeClass; 5] = [
        CodeClass::SelfConfFree,
        CodeClass::MainSeq,
        CodeClass::OtherSeq,
        CodeClass::Loop,
        CodeClass::Cold,
    ];

    /// Dense index (`0..5`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CodeClass::SelfConfFree => 0,
            CodeClass::MainSeq => 1,
            CodeClass::OtherSeq => 2,
            CodeClass::Loop => 3,
            CodeClass::Cold => 4,
        }
    }

    /// Label matching the paper's Figure 13.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodeClass::SelfConfFree => "SelfConfFree",
            CodeClass::MainSeq => "MainSeq",
            CodeClass::OtherSeq => "OtherSeq",
            CodeClass::Loop => "Loops",
            CodeClass::Cold => "Cold",
        }
    }
}

/// Census slots: the five [`CodeClass`]es plus one for addresses the
/// [`AddressMap`] does not cover (layout gaps, stretch padding).
pub const CENSUS_SLOTS: usize = CodeClass::ALL.len() + 1;

/// Label of census slot `i` (`CodeClass` labels, then `"unmapped"`).
#[must_use]
pub fn census_label(i: usize) -> &'static str {
    CodeClass::ALL
        .get(i)
        .map_or("unmapped", |class| class.label())
}

/// What an address belongs to: which program, block, routine, and
/// placement class. Blocks and routines are dense indices into the
/// owning program (kept as raw `u32`s so the map is program-agnostic).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct CodeRef {
    /// Which program the code belongs to.
    pub domain: Domain,
    /// Block index within the program.
    pub block: u32,
    /// Routine index within the program.
    pub routine: u32,
    /// Placement class under the layout the map was built from.
    pub class: CodeClass,
}

impl CodeRef {
    /// The layout-independent identity of the code: `(domain, block)`.
    /// Pair diffs across layouts key on this, because the placement class
    /// and address change between layouts while the block does not.
    #[must_use]
    pub fn block_key(&self) -> (Domain, u32) {
        (self.domain, self.block)
    }

    /// The routine-level identity: `(domain, routine)`.
    #[must_use]
    pub fn routine_key(&self) -> (Domain, u32) {
        (self.domain, self.routine)
    }
}

/// Address → [`CodeRef`] reverse map for one layout pair.
///
/// Built once per layout from `(start, len, code)` spans (the layout
/// crate provides the builder for its `Layout` type), then queried on the
/// miss path by binary search. Spans must not overlap; gaps are allowed
/// and resolve to `None`.
#[derive(Clone, Debug, Default)]
pub struct AddressMap {
    /// Sorted, non-overlapping `(start, end, code)` spans.
    spans: Vec<(u64, u64, CodeRef)>,
}

impl AddressMap {
    /// Builds a map from spans, sorting them by start address.
    ///
    /// # Panics
    ///
    /// Panics if two spans overlap.
    #[must_use]
    pub fn build(spans: impl IntoIterator<Item = (u64, u64, CodeRef)>) -> Self {
        let mut spans: Vec<(u64, u64, CodeRef)> = spans
            .into_iter()
            .filter(|&(_, len, _)| len > 0)
            .map(|(start, len, code)| (start, start + len, code))
            .collect();
        spans.sort_unstable_by_key(|&(start, _, _)| start);
        for pair in spans.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "overlapping code spans at {:#x}",
                pair[1].0
            );
        }
        Self { spans }
    }

    /// The code containing `addr`, if any span covers it.
    #[must_use]
    pub fn lookup(&self, addr: u64) -> Option<CodeRef> {
        let i = self.spans.partition_point(|&(start, _, _)| start <= addr);
        let &(start, end, code) = self.spans.get(i.checked_sub(1)?)?;
        debug_assert!(start <= addr);
        (addr < end).then_some(code)
    }

    /// Like [`AddressMap::lookup`], but returns the half-open address
    /// range sharing `addr`'s answer: the containing span, or the gap
    /// between spans. Callers memoize the range so that the sequential
    /// fetches of one basic block cost a single binary search.
    #[must_use]
    pub fn lookup_span(&self, addr: u64) -> (u64, u64, Option<CodeRef>) {
        let i = self.spans.partition_point(|&(start, _, _)| start <= addr);
        let next_start = self.spans.get(i).map_or(u64::MAX, |&(start, _, _)| start);
        match i.checked_sub(1).and_then(|j| self.spans.get(j)) {
            Some(&(start, end, code)) if addr < end => (start, end, Some(code)),
            Some(&(_, end, _)) => (end, next_start, None),
            None => (0, next_start, None),
        }
    }

    /// Number of spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if the map covers nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// A fully-associative LRU stack over line addresses: the *shadow tag
/// store* behind the capacity/conflict split.
///
/// Holds at most `capacity` tags. [`ShadowTags::touch`] reports whether
/// the line was resident — i.e. whether a fully-associative LRU cache of
/// the same total capacity would have hit — and promotes it to
/// most-recently-used.
///
/// Touch and evict are O(1) and allocation-free after construction: an
/// intrusive doubly-linked LRU list threaded through a fixed slab of
/// nodes, found via a preallocated open-addressed hash index (linear
/// probing, backward-shift deletion, so no tombstones accumulate). The
/// map-based original survives as
/// [`crate::reference::ReferenceShadowTags`]; the equivalence tests drive
/// both with identical touch sequences.
#[derive(Clone, Debug)]
pub struct ShadowTags {
    capacity: usize,
    /// Slab: line tag per node.
    lines: Vec<u64>,
    /// Intrusive list links per node ([`SHADOW_NIL`] terminated).
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Most-recently-used node.
    head: u32,
    /// Least-recently-used node (the eviction candidate).
    tail: u32,
    len: usize,
    /// Open-addressed index: `(line, node)` pairs, node == [`SHADOW_NIL`]
    /// meaning empty. Power-of-two sized, ≥2× capacity, so load factor
    /// stays ≤ 0.5.
    index: Vec<(u64, u32)>,
}

/// Null node index for [`ShadowTags`]' intrusive list and hash index.
const SHADOW_NIL: u32 = u32::MAX;

impl ShadowTags {
    /// Creates a store holding `capacity` line tags.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shadow store needs capacity");
        let index_size = (capacity * 2).next_power_of_two();
        Self {
            capacity,
            lines: vec![0; capacity],
            prev: vec![SHADOW_NIL; capacity],
            next: vec![SHADOW_NIL; capacity],
            head: SHADOW_NIL,
            tail: SHADOW_NIL,
            len: 0,
            index: vec![(0, SHADOW_NIL); index_size],
        }
    }

    /// Fibonacci-hash home bucket of a line.
    #[inline]
    fn home(&self, line: u64) -> usize {
        let hash = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hash >> (64 - self.index.len().trailing_zeros())) as usize
    }

    /// Index position holding `line`, or the empty position where it
    /// would be inserted.
    #[inline]
    fn index_pos(&self, line: u64) -> usize {
        let mask = self.index.len() - 1;
        let mut i = self.home(line);
        loop {
            let (key, node) = self.index[i];
            if node == SHADOW_NIL || key == line {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes `line`'s index entry with backward-shift deletion (keeps
    /// probe chains contiguous without tombstones).
    fn index_remove(&mut self, line: u64) {
        let mask = self.index.len() - 1;
        let mut hole = self.index_pos(line);
        debug_assert_ne!(self.index[hole].1, SHADOW_NIL, "removing absent line");
        self.index[hole] = (0, SHADOW_NIL);
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            let (key, node) = self.index[j];
            if node == SHADOW_NIL {
                return;
            }
            // Move the entry back iff the hole lies within its probe
            // chain (i.e. between its home bucket and its position).
            let home = self.home(key);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.index[hole] = (key, node);
                self.index[j] = (0, SHADOW_NIL);
                hole = j;
            }
        }
    }

    /// Unlinks `node` from the LRU list.
    #[inline]
    fn unlink(&mut self, node: u32) {
        let (p, n) = (self.prev[node as usize], self.next[node as usize]);
        if p == SHADOW_NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == SHADOW_NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Links `node` at the MRU end.
    #[inline]
    fn push_front(&mut self, node: u32) {
        self.prev[node as usize] = SHADOW_NIL;
        self.next[node as usize] = self.head;
        if self.head != SHADOW_NIL {
            self.prev[self.head as usize] = node;
        }
        self.head = node;
        if self.tail == SHADOW_NIL {
            self.tail = node;
        }
    }

    /// Touches `line`, returning true if it was resident (an LRU-stack
    /// hit). Non-resident lines are inserted, evicting the coldest tag
    /// once the store is full.
    pub fn touch(&mut self, line: u64) -> bool {
        let pos = self.index_pos(line);
        let (_, node) = self.index[pos];
        if node != SHADOW_NIL {
            // Resident: promote to MRU.
            if self.head != node {
                self.unlink(node);
                self.push_front(node);
            }
            return true;
        }
        // Not resident: take a free slab slot, or recycle the LRU node.
        let slot = if self.len < self.capacity {
            self.len += 1;
            (self.len - 1) as u32
        } else {
            let victim = self.tail;
            self.unlink(victim);
            self.index_remove(self.lines[victim as usize]);
            victim
        };
        self.lines[slot as usize] = line;
        // The eviction above may have shifted entries; re-probe.
        let pos = self.index_pos(line);
        self.index[pos] = (line, slot);
        self.push_front(slot);
        false
    }

    /// Number of resident tags.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tag is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears all tags.
    pub fn clear(&mut self) {
        self.lines.fill(0);
        self.prev.fill(SHADOW_NIL);
        self.next.fill(SHADOW_NIL);
        self.head = SHADOW_NIL;
        self.tail = SHADOW_NIL;
        self.len = 0;
        self.index.fill((0, SHADOW_NIL));
    }
}

/// One evictor→victim conflict pair with its miss count.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ConflictPair {
    /// The block whose fill displaced the victim's line.
    pub evictor: CodeRef,
    /// The block that later missed on the displaced line.
    pub victim: CodeRef,
    /// Conflict misses charged to the pair.
    pub count: u64,
}

/// Layout-independent identity of a routine: `(domain, routine index)`.
/// The same shape also keys blocks ([`CodeRef::block_key`]).
pub type RoutineKey = (Domain, u32);

/// One conflict-matrix cell: `(evictor, victim, count)`.
pub type MatrixCell = (RoutineKey, RoutineKey, u64);

/// The routine×routine conflict matrix: entry `(evictor, victim)` counts
/// conflict misses where code of `evictor` displaced a line that code of
/// `victim` then refetched.
///
/// This is the measured analogue of the static loop×routine matrix the
/// Section 4.4 `Call` optimization builds from the call graph; the layout
/// crate can rank its rows to pick `Call` candidates from measurement
/// instead of structure.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConflictMatrix {
    entries: BTreeMap<(RoutineKey, RoutineKey), u64>,
}

impl ConflictMatrix {
    /// Adds `n` conflicts to entry `(evictor, victim)`.
    pub fn add(&mut self, evictor: (Domain, u32), victim: (Domain, u32), n: u64) {
        *self.entries.entry((evictor, victim)).or_insert(0) += n;
    }

    /// Count of entry `(evictor, victim)`.
    #[must_use]
    pub fn count(&self, evictor: (Domain, u32), victim: (Domain, u32)) -> u64 {
        self.entries.get(&(evictor, victim)).copied().unwrap_or(0)
    }

    /// Sum of all entries.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Number of non-zero entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no conflict was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries as `(evictor, victim, count)`, key order.
    pub fn entries(&self) -> impl Iterator<Item = MatrixCell> + '_ {
        self.entries.iter().map(|(&(e, v), &c)| (e, v, c))
    }

    /// The `k` heaviest entries, by count descending (ties by key).
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<MatrixCell> {
        let mut all: Vec<_> = self.entries().collect();
        all.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    /// Conflicts suffered *by* a routine (its victim row sum).
    #[must_use]
    pub fn victim_row_sum(&self, victim: (Domain, u32)) -> u64 {
        self.entries
            .iter()
            .filter(|&(&(_, v), _)| v == victim)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Conflicts caused *by* a routine (its evictor column sum).
    #[must_use]
    pub fn evictor_row_sum(&self, evictor: (Domain, u32)) -> u64 {
        self.entries
            .iter()
            .filter(|&(&(e, _), _)| e == evictor)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Asymmetry of the matrix: `Σ |c(a,b) − c(b,a)|` over unordered
    /// routine pairs, as a fraction of the total. Two routines ping-pong
    /// evicting each other in a direct-mapped set, so sustained thrash
    /// shows up as near-symmetric entries; a strongly one-sided matrix
    /// means transient (streaming) interference instead.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut defect = 0u64;
        for (&(e, v), &c) in &self.entries {
            if e < v {
                let back = self.count(v, e);
                defect += c.abs_diff(back);
            } else if e == v {
                // Self-conflict of one routine is its own mirror.
            } else if !self.entries.contains_key(&(v, e)) {
                // Counted once from the smaller-keyed side only when the
                // mirror entry exists; a one-sided entry lands here.
                defect += c;
            }
        }
        defect as f64 / total as f64
    }
}

/// Everything the attribution engine measured in one simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributionReport {
    /// Geometry of the attributed cache.
    pub config: CacheConfig,
    /// Total fetches observed.
    pub total_accesses: u64,
    /// Total misses observed.
    pub total_misses: u64,
    /// Misses per [`AttrClass`] (compulsory, capacity, conflict).
    pub class_misses: [u64; 3],
    /// Accesses per cache set.
    pub set_accesses: Vec<u64>,
    /// Misses per cache set (the per-set pressure histogram).
    pub set_misses: Vec<u64>,
    /// References per census slot (see [`census_label`]).
    pub census_refs: [u64; CENSUS_SLOTS],
    /// Misses per census slot.
    pub census_misses: [u64; CENSUS_SLOTS],
    /// Misses per OS entry class (`SeedKind` order), slot 4 = outside any
    /// OS invocation (application code, idle loop).
    pub entry_misses: [u64; 5],
    /// Conflict misses per [`TraceEvent::Mark`](oslay_model::Domain)
    /// epoch, as `(tag, conflicts)`; empty when the trace has no marks.
    pub epoch_conflicts: Vec<(u32, u64)>,
    /// Evictor→victim block pairs, heaviest first.
    pub pairs: Vec<ConflictPair>,
    /// The routine×routine conflict matrix.
    pub matrix: ConflictMatrix,
}

impl AttributionReport {
    /// Misses of one class.
    #[must_use]
    pub fn misses_of(&self, class: AttrClass) -> u64 {
        self.class_misses[class.index()]
    }

    /// Conflict misses as a fraction of all misses (0 if no misses).
    #[must_use]
    pub fn conflict_share(&self) -> f64 {
        if self.total_misses == 0 {
            return 0.0;
        }
        self.misses_of(AttrClass::Conflict) as f64 / self.total_misses as f64
    }

    /// Coefficient of variation (σ/μ) of the per-set miss counts — 0 for
    /// perfectly even pressure, large when a few sets thrash.
    #[must_use]
    pub fn set_imbalance(&self) -> f64 {
        let n = self.set_misses.len() as f64;
        let mean = self.set_misses.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .set_misses
            .iter()
            .map(|&m| {
                let d = m as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Fraction of all misses concentrated in the `k` worst sets.
    #[must_use]
    pub fn set_peak_share(&self, k: usize) -> f64 {
        let total: u64 = self.set_misses.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut sorted = self.set_misses.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.iter().take(k).sum::<u64>() as f64 / total as f64
    }

    /// The `k` heaviest evictor→victim pairs.
    #[must_use]
    pub fn top_pairs(&self, k: usize) -> &[ConflictPair] {
        &self.pairs[..k.min(self.pairs.len())]
    }

    /// Census rows as `(label, references, misses)`, paper order plus the
    /// unmapped slot.
    #[must_use]
    pub fn census(&self) -> Vec<(&'static str, u64, u64)> {
        (0..CENSUS_SLOTS)
            .map(|i| (census_label(i), self.census_refs[i], self.census_misses[i]))
            .collect()
    }

    /// Flattens the report into the numeric fields a
    /// [`RunReport`](oslay_observe::RunReport) section stores, so
    /// `compare()` can flag conflict-matrix regressions between runs.
    /// All fields are lower-is-better.
    #[must_use]
    pub fn section_fields(&self) -> Vec<(String, f64)> {
        let mut out = vec![
            ("misses".to_owned(), self.total_misses as f64),
            (
                "compulsory".to_owned(),
                self.misses_of(AttrClass::Compulsory) as f64,
            ),
            (
                "capacity".to_owned(),
                self.misses_of(AttrClass::Capacity) as f64,
            ),
            (
                "conflict".to_owned(),
                self.misses_of(AttrClass::Conflict) as f64,
            ),
            ("conflict_share".to_owned(), self.conflict_share()),
            ("set_imbalance".to_owned(), self.set_imbalance()),
            ("set_peak_share_5".to_owned(), self.set_peak_share(5)),
            // Note: the number of *distinct* matrix entries is deliberately
            // not a field — an optimization that spreads fewer conflicts
            // over more, lighter pairs would look like a regression.
            ("matrix_total".to_owned(), self.matrix.total() as f64),
            (
                "top_pair_count".to_owned(),
                self.pairs.first().map_or(0, |p| p.count) as f64,
            ),
        ];
        for i in 0..CENSUS_SLOTS {
            out.push((
                format!("census_miss.{}", census_label(i)),
                self.census_misses[i] as f64,
            ));
        }
        out
    }
}

/// A cache wrapper that attributes every miss.
///
/// Wraps a concrete [`Cache`] (it needs the eviction detail of
/// [`Cache::access_detailed`]), consults the shadow tag store on every
/// access, and keeps per-set, per-class, and per-pair rollups. Implements
/// [`InstructionCache`], so the standard simulation driver works
/// unchanged; call [`AttributedCache::report`] afterwards for the
/// rollups.
pub struct AttributedCache {
    inner: Cache,
    map: Arc<AddressMap>,
    shadow: ShadowTags,
    /// Last resolved map range `(start, end, code)` — sequential fetches
    /// of one block stay inside one span, so almost every access resolves
    /// here instead of binary-searching the map. Starts empty
    /// (`start > end`, matching nothing).
    span_memo: (u64, u64, Option<CodeRef>),
    /// victim line → line whose fill displaced it.
    last_evictor: HashMap<u64, u64>,
    set_accesses: Vec<u64>,
    set_misses: Vec<u64>,
    class_misses: [u64; 3],
    census_refs: [u64; CENSUS_SLOTS],
    census_misses: [u64; CENSUS_SLOTS],
    entry_misses: [u64; 5],
    /// Current OS entry class (None = outside the OS).
    context: Option<SeedKind>,
    /// Current mark epoch and per-epoch conflict counts.
    epoch: Option<u32>,
    epoch_conflicts: BTreeMap<u32, u64>,
    pairs: PairTable,
    matrix: ConflictMatrix,
    probe: Option<Arc<dyn AttributionProbe + Send + Sync>>,
}

/// Pair rollup keyed by the stable `(block, block)` identity; the value
/// keeps the first-seen [`CodeRef`]s alongside the count.
type PairTable = HashMap<(RoutineKey, RoutineKey), (CodeRef, CodeRef, u64)>;

impl std::fmt::Debug for AttributedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttributedCache")
            .field("inner", &self.inner)
            .field("class_misses", &self.class_misses)
            .field("pairs", &self.pairs.len())
            .field("probe", &self.probe.is_some())
            .finish_non_exhaustive()
    }
}

impl AttributedCache {
    /// Wraps `inner`, attributing through `map`.
    #[must_use]
    pub fn new(inner: Cache, map: Arc<AddressMap>) -> Self {
        let cfg = inner.config();
        let sets = cfg.num_sets() as usize;
        let lines = (cfg.size() / cfg.line()) as usize;
        Self {
            inner,
            map,
            shadow: ShadowTags::new(lines),
            span_memo: (1, 0, None),
            last_evictor: HashMap::new(),
            set_accesses: vec![0; sets],
            set_misses: vec![0; sets],
            class_misses: [0; 3],
            census_refs: [0; CENSUS_SLOTS],
            census_misses: [0; CENSUS_SLOTS],
            entry_misses: [0; 5],
            context: None,
            epoch: None,
            epoch_conflicts: BTreeMap::new(),
            pairs: HashMap::new(),
            matrix: ConflictMatrix::default(),
            probe: None,
        }
    }

    /// Like [`AttributedCache::new`], additionally streaming every
    /// classified miss into `probe`. The probe is touched only on misses.
    #[must_use]
    pub fn with_probe(
        inner: Cache,
        map: Arc<AddressMap>,
        probe: Arc<dyn AttributionProbe + Send + Sync>,
    ) -> Self {
        let mut cache = Self::new(inner, map);
        cache.probe = Some(probe);
        cache
    }

    /// The wrapped cache.
    #[must_use]
    pub fn inner(&self) -> &Cache {
        &self.inner
    }

    /// Extracts the measured rollups.
    #[must_use]
    pub fn report(&self) -> AttributionReport {
        let _g = oslay_observe::flight::span("cache.attr.report");
        let mut pairs: Vec<ConflictPair> = self
            .pairs
            .values()
            .map(|&(evictor, victim, count)| ConflictPair {
                evictor,
                victim,
                count,
            })
            .collect();
        pairs.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.evictor.block_key().cmp(&b.evictor.block_key()))
                .then(a.victim.block_key().cmp(&b.victim.block_key()))
        });
        AttributionReport {
            config: self.inner.config(),
            total_accesses: self.inner.stats().total_accesses(),
            total_misses: self.inner.stats().total_misses(),
            class_misses: self.class_misses,
            set_accesses: self.set_accesses.clone(),
            set_misses: self.set_misses.clone(),
            census_refs: self.census_refs,
            census_misses: self.census_misses,
            entry_misses: self.entry_misses,
            epoch_conflicts: self.epoch_conflicts.iter().map(|(&t, &c)| (t, c)).collect(),
            pairs,
            matrix: self.matrix.clone(),
        }
    }

    fn census_slot(code: Option<CodeRef>) -> usize {
        code.map_or(CENSUS_SLOTS - 1, |c| c.class.index())
    }
}

impl InstructionCache for AttributedCache {
    fn access(&mut self, addr: u64, domain: Domain) -> AccessOutcome {
        let detail = self.inner.access_detailed(addr, domain);
        self.set_accesses[detail.set as usize] += 1;
        let code = if self.span_memo.0 <= addr && addr < self.span_memo.1 {
            self.span_memo.2
        } else {
            self.span_memo = self.map.lookup_span(addr);
            self.span_memo.2
        };
        self.census_refs[Self::census_slot(code)] += 1;
        // The shadow stack sees every access (hits keep the LRU order
        // honest); its verdict is read before this touch takes effect.
        let was_resident = self.shadow.touch(detail.line);

        if let AccessOutcome::Miss(kind) = detail.outcome {
            self.set_misses[detail.set as usize] += 1;
            self.census_misses[Self::census_slot(code)] += 1;
            self.entry_misses[self.context.map_or(4, SeedKind::index)] += 1;
            let class = if kind == crate::MissKind::Cold {
                AttrClass::Compulsory
            } else if was_resident {
                AttrClass::Conflict
            } else {
                AttrClass::Capacity
            };
            self.class_misses[class.index()] += 1;
            let mut evictor_known = false;
            if class == AttrClass::Conflict {
                if let Some(tag) = self.epoch {
                    *self.epoch_conflicts.entry(tag).or_insert(0) += 1;
                }
                if let Some(&evictor_line) = self.last_evictor.get(&detail.line) {
                    evictor_known = true;
                    if let (Some(victim), Some(evictor)) = (code, self.map.lookup(evictor_line)) {
                        let entry = self
                            .pairs
                            .entry((evictor.block_key(), victim.block_key()))
                            .or_insert((evictor, victim, 0));
                        entry.2 += 1;
                        self.matrix
                            .add(evictor.routine_key(), victim.routine_key(), 1);
                    }
                }
            }
            if let Some(probe) = &self.probe {
                probe.miss_attributed(detail.set, class, evictor_known);
            }
        }
        if let Some(victim) = detail.evicted {
            self.last_evictor.insert(victim, detail.line);
        }
        detail.outcome
    }

    fn stats(&self) -> &MissStats {
        self.inner.stats()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.shadow.clear();
        self.span_memo = (1, 0, None);
        self.last_evictor.clear();
        self.set_accesses.fill(0);
        self.set_misses.fill(0);
        self.class_misses = [0; 3];
        self.census_refs = [0; CENSUS_SLOTS];
        self.census_misses = [0; CENSUS_SLOTS];
        self.entry_misses = [0; 5];
        self.context = None;
        self.epoch = None;
        self.epoch_conflicts.clear();
        self.pairs.clear();
        self.matrix = ConflictMatrix::default();
    }

    fn note_os_enter(&mut self, kind: SeedKind) {
        self.context = Some(kind);
    }

    fn note_os_exit(&mut self) {
        self.context = None;
    }

    fn note_mark(&mut self, tag: u32) {
        self.epoch = Some(tag);
        self.epoch_conflicts.entry(tag).or_insert(0);
    }

    fn set_telemetry(&mut self, enabled: bool) {
        self.inner.set_telemetry(enabled);
    }

    fn telemetry_snapshot(&self) -> Option<oslay_observe::timeline::CacheProbeSnapshot> {
        // The inner cache supplies occupancy and eviction ages; this
        // wrapper adds the attribution split the timeline uses for the
        // compulsory/capacity/conflict decomposition per window.
        self.inner.telemetry_snapshot().map(|mut snap| {
            snap.attr = Some(self.class_misses);
            snap
        })
    }
}

/// One pair's before/after counts in a layout diff.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PairDelta {
    /// The pair, with the [`CodeRef`]s of whichever side recorded it.
    pub evictor: CodeRef,
    /// Victim side of the pair.
    pub victim: CodeRef,
    /// Conflict count in the baseline report.
    pub base: u64,
    /// Conflict count in the current report.
    pub current: u64,
}

impl PairDelta {
    /// Signed change (`current − base`).
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.current as i64 - self.base as i64
    }
}

/// The difference between two layouts' attributions: which block pairs
/// stopped conflicting, which new conflicts the new layout introduced.
#[derive(Clone, Debug, Default)]
pub struct AttributionDiff {
    /// Pairs that conflicted under the baseline and no longer do (or far
    /// less), heaviest baseline count first.
    pub resolved: Vec<PairDelta>,
    /// Pairs the current layout introduced (or made heavier), heaviest
    /// current count first.
    pub introduced: Vec<PairDelta>,
    /// Per-class miss change (`current − base`, [`AttrClass`] order).
    pub class_delta: [i64; 3],
    /// Per-set miss change (`current − base`).
    pub set_delta: Vec<i64>,
    /// Matrix totals `(base, current)`.
    pub matrix_total: (u64, u64),
}

impl AttributionDiff {
    /// Net conflict-miss change.
    #[must_use]
    pub fn conflict_delta(&self) -> i64 {
        self.class_delta[AttrClass::Conflict.index()]
    }
}

/// Diffs two attributions of the *same workload* under different layouts.
/// Pairs are matched by `(domain, block)` identity, which is stable
/// across layouts.
///
/// # Panics
///
/// Panics if the two reports come from different cache geometries.
#[must_use]
pub fn diff_attribution(base: &AttributionReport, current: &AttributionReport) -> AttributionDiff {
    assert_eq!(
        base.config, current.config,
        "attribution diffs need identical cache geometry"
    );
    type Key = ((Domain, u32), (Domain, u32));
    let index = |r: &AttributionReport| -> BTreeMap<Key, ConflictPair> {
        r.pairs
            .iter()
            .map(|&p| ((p.evictor.block_key(), p.victim.block_key()), p))
            .collect()
    };
    let base_pairs = index(base);
    let current_pairs = index(current);

    let mut resolved = Vec::new();
    let mut introduced = Vec::new();
    for (key, p) in &base_pairs {
        let cur = current_pairs.get(key).map_or(0, |c| c.count);
        if cur < p.count {
            resolved.push(PairDelta {
                evictor: p.evictor,
                victim: p.victim,
                base: p.count,
                current: cur,
            });
        }
    }
    for (key, p) in &current_pairs {
        let was = base_pairs.get(key).map_or(0, |b| b.count);
        if p.count > was {
            introduced.push(PairDelta {
                evictor: p.evictor,
                victim: p.victim,
                base: was,
                current: p.count,
            });
        }
    }
    resolved.sort_by_key(|p| std::cmp::Reverse(p.base - p.current));
    introduced.sort_by_key(|p| std::cmp::Reverse(p.current - p.base));

    let mut class_delta = [0i64; 3];
    for (delta, (&cur, &was)) in class_delta
        .iter_mut()
        .zip(current.class_misses.iter().zip(&base.class_misses))
    {
        *delta = cur as i64 - was as i64;
    }
    let set_delta = base
        .set_misses
        .iter()
        .zip(&current.set_misses)
        .map(|(&b, &c)| c as i64 - b as i64)
        .collect();

    AttributionDiff {
        resolved,
        introduced,
        class_delta,
        set_delta,
        matrix_total: (base.matrix.total(), current.matrix.total()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(domain: Domain, block: u32, routine: u32, class: CodeClass) -> CodeRef {
        CodeRef {
            domain,
            block,
            routine,
            class,
        }
    }

    /// 64-byte direct-mapped cache, 16-byte lines (4 sets, 4 lines), with
    /// a map of one block per 16-byte line over the first 8 lines.
    fn rig() -> AttributedCache {
        let spans = (0..8u64).map(|i| {
            (
                i * 16,
                16,
                code(Domain::Os, i as u32, (i / 2) as u32, CodeClass::MainSeq),
            )
        });
        AttributedCache::new(
            Cache::new(CacheConfig::new(64, 16, 1)),
            Arc::new(AddressMap::build(spans)),
        )
    }

    #[test]
    fn address_map_lookup_hits_spans_and_gaps() {
        let map = AddressMap::build([
            (0, 16, code(Domain::Os, 0, 0, CodeClass::MainSeq)),
            (32, 8, code(Domain::Os, 1, 0, CodeClass::Cold)),
        ]);
        assert_eq!(map.len(), 2);
        assert_eq!(map.lookup(0).unwrap().block, 0);
        assert_eq!(map.lookup(15).unwrap().block, 0);
        assert_eq!(map.lookup(16), None, "gap");
        assert_eq!(map.lookup(32).unwrap().block, 1);
        assert_eq!(map.lookup(39).unwrap().block, 1);
        assert_eq!(map.lookup(40), None);
    }

    #[test]
    fn lookup_span_agrees_with_lookup_everywhere() {
        let map = AddressMap::build([
            (16, 16, code(Domain::Os, 0, 0, CodeClass::MainSeq)),
            (48, 8, code(Domain::Os, 1, 0, CodeClass::Cold)),
        ]);
        for addr in 0..80u64 {
            let (start, end, got) = map.lookup_span(addr);
            assert!(start <= addr && addr < end, "addr {addr}: [{start}, {end})");
            assert_eq!(got, map.lookup(addr), "addr {addr}");
            // The whole returned range must share the answer (that is the
            // memoization contract).
            for a in start..end.min(80) {
                assert_eq!(map.lookup(a), got, "addr {addr}, range member {a}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn address_map_rejects_overlap() {
        let _ = AddressMap::build([
            (0, 20, code(Domain::Os, 0, 0, CodeClass::MainSeq)),
            (16, 8, code(Domain::Os, 1, 0, CodeClass::MainSeq)),
        ]);
    }

    #[test]
    fn shadow_tags_track_lru_stack_residency() {
        let mut s = ShadowTags::new(2);
        assert!(!s.touch(1));
        assert!(!s.touch(2));
        assert!(s.touch(1), "still resident");
        assert!(!s.touch(3), "evicts 2 (LRU)");
        assert!(!s.touch(2), "2 was evicted");
        assert!(s.touch(3));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn shadow_tags_match_reference_on_randomized_touches() {
        use crate::reference::ReferenceShadowTags;
        use oslay_model::rng::Rng;

        // Capacities around and below the working-set size, line keys drawn
        // from a range a few times the capacity so hits, evictions and
        // re-fetches all occur constantly.
        for (seed, capacity) in [(1u64, 1usize), (2, 2), (3, 7), (4, 64), (5, 256)] {
            let mut fast = ShadowTags::new(capacity);
            let mut reference = ReferenceShadowTags::new(capacity);
            let mut rng = Rng::seed_from_u64(seed);
            let span = (capacity as u32) * 4 + 3;
            for step in 0..50_000u32 {
                let line = u64::from(rng.gen_range(0..span)) * 32;
                let got = fast.touch(line);
                let want = reference.touch(line);
                assert_eq!(got, want, "capacity {capacity} step {step} line {line}");
                assert_eq!(
                    fast.len(),
                    reference.len(),
                    "capacity {capacity} step {step}"
                );
            }
        }
    }

    #[test]
    fn conflict_miss_is_shadow_resident() {
        let mut c = rig();
        // Lines 0 and 64 share set 0; both fit the 4-line shadow store.
        c.access(0, Domain::Os); // compulsory
        c.access(64, Domain::Os); // compulsory, evicts 0
        c.access(0, Domain::Os); // conflict: shadow still holds line 0
        let r = c.report();
        assert_eq!(r.misses_of(AttrClass::Compulsory), 2);
        assert_eq!(r.misses_of(AttrClass::Conflict), 1);
        assert_eq!(r.misses_of(AttrClass::Capacity), 0);
        assert_eq!(r.total_misses, 3);
    }

    #[test]
    fn capacity_miss_is_shadow_evicted() {
        let mut c = rig();
        // Cycle through 5 distinct lines: one more than the shadow store
        // holds, so round-robin LRU keeps every line shadow-non-resident
        // on revisit. In the real 4-set cache only lines 0 and 4 collide
        // (set 0); their revisit misses must classify as capacity, never
        // conflict.
        for round in 0..3 {
            for line in 0..5u64 {
                c.access(line * 16, Domain::Os);
            }
            let _ = round;
        }
        let r = c.report();
        assert_eq!(r.misses_of(AttrClass::Compulsory), 5);
        assert_eq!(r.misses_of(AttrClass::Conflict), 0);
        assert_eq!(r.misses_of(AttrClass::Capacity), 4);
        assert_eq!(r.total_misses, 9);
    }

    #[test]
    fn classes_partition_total_misses() {
        let mut c = rig();
        // A mixed pattern: ping-pong plus a cycling sweep.
        for i in 0..200u64 {
            c.access((i % 7) * 16, Domain::Os);
            c.access(if i % 2 == 0 { 0 } else { 64 }, Domain::Os);
        }
        let r = c.report();
        assert_eq!(r.class_misses.iter().sum::<u64>(), r.total_misses);
        assert_eq!(
            r.misses_of(AttrClass::Compulsory),
            c.inner().stats().misses(crate::MissKind::Cold),
            "compulsory must equal the simulator's cold count"
        );
        assert_eq!(r.set_misses.iter().sum::<u64>(), r.total_misses);
        assert_eq!(r.set_accesses.iter().sum::<u64>(), r.total_accesses);
        assert_eq!(r.census_refs.iter().sum::<u64>(), r.total_accesses);
        assert_eq!(r.census_misses.iter().sum::<u64>(), r.total_misses);
        assert_eq!(r.entry_misses.iter().sum::<u64>(), r.total_misses);
    }

    #[test]
    fn evictor_victim_pairs_are_charged_on_conflicts() {
        let mut c = rig();
        // Blocks 0 (line 0) and 4 (line 64) ping-pong in set 0.
        for i in 0..21u64 {
            c.access(if i % 2 == 0 { 0 } else { 64 }, Domain::Os);
        }
        let r = c.report();
        // 21 accesses: 2 compulsory, 19 conflicts. The first conflict
        // (refetch of line 0) knows its evictor; every later one does too.
        assert_eq!(r.misses_of(AttrClass::Conflict), 19);
        let ab = r
            .pairs
            .iter()
            .find(|p| p.evictor.block == 4 && p.victim.block == 0)
            .expect("pair 4→0");
        let ba = r
            .pairs
            .iter()
            .find(|p| p.evictor.block == 0 && p.victim.block == 4)
            .expect("pair 0→4");
        assert_eq!(ab.count + ba.count, 19);
        // Alternation makes the pair nearly symmetric.
        assert!(ab.count.abs_diff(ba.count) <= 1);
        // Routine rollup: blocks 0 and 4 belong to routines 0 and 2.
        assert_eq!(r.matrix.total(), 19);
        assert_eq!(
            r.matrix.count((Domain::Os, 2), (Domain::Os, 0)),
            ab.count,
            "matrix mirrors the block pairs at routine granularity"
        );
        assert!(r.matrix.asymmetry() < 0.1);
    }

    #[test]
    fn matrix_row_sums_bound_known_conflicts() {
        let mut c = rig();
        for i in 0..50u64 {
            c.access(if i % 2 == 0 { 16 } else { 80 }, Domain::Os);
        }
        let r = c.report();
        let conflicts = r.misses_of(AttrClass::Conflict);
        assert!(r.matrix.total() <= conflicts);
        // Every matrix entry shows up in exactly one victim row sum.
        let victims: std::collections::BTreeSet<_> =
            r.matrix.entries().map(|(_, v, _)| v).collect();
        let by_rows: u64 = victims.iter().map(|&v| r.matrix.victim_row_sum(v)).sum();
        assert_eq!(by_rows, r.matrix.total());
        let evictors: std::collections::BTreeSet<_> =
            r.matrix.entries().map(|(e, _, _)| e).collect();
        let by_cols: u64 = evictors.iter().map(|&e| r.matrix.evictor_row_sum(e)).sum();
        assert_eq!(by_cols, r.matrix.total());
    }

    #[test]
    fn entry_context_attributes_misses_per_seed_class() {
        let mut c = rig();
        c.note_os_enter(SeedKind::SysCall);
        c.access(0, Domain::Os);
        c.access(64, Domain::Os);
        c.note_os_exit();
        c.access(0, Domain::Os); // conflict, but outside the OS context
        let r = c.report();
        assert_eq!(r.entry_misses[SeedKind::SysCall.index()], 2);
        assert_eq!(r.entry_misses[4], 1);
    }

    #[test]
    fn marks_segment_conflicts_into_epochs() {
        let mut c = rig();
        c.note_mark(0);
        c.access(0, Domain::Os);
        c.access(64, Domain::Os);
        c.note_mark(1);
        c.access(0, Domain::Os); // conflict in epoch 1
        c.access(64, Domain::Os); // conflict in epoch 1
        let r = c.report();
        assert_eq!(r.epoch_conflicts, vec![(0, 0), (1, 2)]);
    }

    #[test]
    fn diff_finds_resolved_and_introduced_pairs() {
        // Baseline: 0 and 64 ping-pong.
        let mut base = rig();
        for i in 0..20u64 {
            base.access(if i % 2 == 0 { 0 } else { 64 }, Domain::Os);
        }
        // "Optimized": blocks no longer collide; 16/80 collide instead.
        let mut cur = rig();
        for i in 0..20u64 {
            cur.access(if i % 2 == 0 { 16 } else { 80 }, Domain::Os);
        }
        let d = diff_attribution(&base.report(), &cur.report());
        assert!(!d.resolved.is_empty());
        assert!(!d.introduced.is_empty());
        assert!(d.resolved.iter().all(|p| p.current == 0));
        assert!(d.introduced.iter().all(|p| p.base == 0));
        assert_eq!(d.conflict_delta(), 0, "same volume, different pairs");
        assert_eq!(d.matrix_total.0, d.matrix_total.1);
        // Set pressure moved from set 0 to set 1.
        assert!(d.set_delta[0] < 0);
        assert!(d.set_delta[1] > 0);
    }

    #[test]
    fn reset_clears_all_rollups() {
        let mut c = rig();
        c.note_mark(3);
        c.note_os_enter(SeedKind::Interrupt);
        for i in 0..10u64 {
            c.access(if i % 2 == 0 { 0 } else { 64 }, Domain::Os);
        }
        c.reset();
        let r = c.report();
        assert_eq!(r.total_accesses, 0);
        assert_eq!(r.total_misses, 0);
        assert_eq!(r.class_misses, [0; 3]);
        assert!(r.pairs.is_empty());
        assert!(r.matrix.is_empty());
        assert!(r.epoch_conflicts.is_empty());
        // And the engine still classifies correctly afterwards.
        c.access(0, Domain::Os);
        assert_eq!(c.report().misses_of(AttrClass::Compulsory), 1);
    }

    #[test]
    fn probe_sees_every_classified_miss() {
        use oslay_observe::MetricRegistry;
        let reg = Arc::new(MetricRegistry::new());
        let spans = (0..8u64).map(|i| {
            (
                i * 16,
                16,
                code(Domain::Os, i as u32, 0, CodeClass::MainSeq),
            )
        });
        let mut c = AttributedCache::with_probe(
            Cache::new(CacheConfig::new(64, 16, 1)),
            Arc::new(AddressMap::build(spans)),
            reg.clone(),
        );
        for i in 0..11u64 {
            c.access(if i % 2 == 0 { 0 } else { 64 }, Domain::Os);
        }
        c.access(0, Domain::Os); // hit: must not touch the probe
        assert_eq!(reg.counter("cache.attr.compulsory"), 2);
        assert_eq!(reg.counter("cache.attr.conflict"), 9);
        assert_eq!(reg.counter("cache.attr.capacity"), 0);
        let sets = reg.histogram("cache.attr.set").expect("set histogram");
        assert_eq!(sets.count(), 11);
    }

    #[test]
    fn section_fields_expose_the_regression_surface() {
        let mut c = rig();
        for i in 0..30u64 {
            c.access(if i % 2 == 0 { 0 } else { 64 }, Domain::Os);
        }
        let fields = c.report().section_fields();
        let get = |k: &str| {
            fields
                .iter()
                .find(|(n, _)| n == k)
                .unwrap_or_else(|| panic!("missing field {k}"))
                .1
        };
        assert_eq!(get("misses"), 30.0);
        assert_eq!(get("compulsory") + get("capacity") + get("conflict"), 30.0);
        assert!(get("matrix_total") > 0.0);
        assert!(get("top_pair_count") > 0.0);
        assert!(get("census_miss.MainSeq") > 0.0);
    }
}
