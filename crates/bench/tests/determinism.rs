//! Determinism of the sharded experiment drivers: the same study replayed
//! at any worker count must produce identical results, identical
//! attribution reports, and an identical metric registry — the property
//! that makes `results/*.json` byte-stable regardless of `--threads`.

use std::sync::Arc;

use oslay::cache::CacheConfig;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{run_attributed_matrix, run_figure12_matrix};
use oslay_observe::MetricRegistry;

fn study() -> Study {
    Study::generate(&StudyConfig::tiny())
}

/// Everything a registry can report, in one comparable value.
fn registry_snapshot(r: &MetricRegistry) -> impl PartialEq + std::fmt::Debug {
    (r.counters(), r.gauges(), r.histograms())
}

#[test]
fn figure12_matrix_is_identical_at_any_worker_count() {
    let study = study();
    let cfg = CacheConfig::paper_default();
    let sim = SimConfig::fast();
    let baseline_registry = Arc::new(MetricRegistry::new());
    let baseline = run_figure12_matrix(&study, cfg, &sim, 1, &baseline_registry);
    for threads in [2, 8] {
        let registry = Arc::new(MetricRegistry::new());
        let matrix = run_figure12_matrix(&study, cfg, &sim, threads, &registry);
        assert_eq!(matrix.len(), baseline.len());
        for (rows, baseline_rows) in matrix.iter().zip(&baseline) {
            for (r, b) in rows.iter().zip(baseline_rows) {
                assert_eq!(r.stats, b.stats, "stats diverge at {threads} threads");
                assert_eq!(r.os_block_misses, b.os_block_misses);
            }
        }
        assert_eq!(
            registry_snapshot(&registry),
            registry_snapshot(&baseline_registry),
            "metric registry diverges at {threads} threads"
        );
    }
}

#[test]
fn attributed_matrix_reports_are_identical_across_threads() {
    let study = study();
    let cfg = CacheConfig::paper_default();
    let sim = SimConfig::full();
    let kinds = [OsLayoutKind::Base, OsLayoutKind::OptS];
    let baseline_registry = Arc::new(MetricRegistry::new());
    let baseline = run_attributed_matrix(&study, &kinds, cfg, &sim, 1, &baseline_registry);
    let registry = Arc::new(MetricRegistry::new());
    let matrix = run_attributed_matrix(&study, &kinds, cfg, &sim, 4, &registry);
    for (rows, baseline_rows) in matrix.iter().zip(&baseline) {
        for ((r, attr), (b, battr)) in rows.iter().zip(baseline_rows) {
            assert_eq!(r.stats, b.stats);
            // AttributionReport is PartialEq: conflict pairs, matrix,
            // per-set misses, census — the whole diagnosis must match.
            assert_eq!(attr, battr, "attribution reports diverge at 4 threads");
        }
    }
    assert_eq!(
        registry_snapshot(&registry),
        registry_snapshot(&baseline_registry)
    );
}

#[test]
fn same_seed_reruns_are_identical() {
    let cfg = CacheConfig::paper_default();
    let sim = SimConfig::fast();
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let study = Study::generate_with_threads(&StudyConfig::tiny(), 2);
            let registry = Arc::new(MetricRegistry::new());
            let matrix = run_figure12_matrix(&study, cfg, &sim, 2, &registry);
            let rates: Vec<Vec<f64>> = matrix
                .iter()
                .map(|row| row.iter().map(oslay::SimResult::miss_rate).collect())
                .collect();
            (rates, registry.counters(), registry.gauges())
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}

#[test]
fn threaded_study_generation_matches_sequential() {
    let sequential = Study::generate(&StudyConfig::tiny());
    let threaded = Study::generate_with_threads(&StudyConfig::tiny(), 8);
    for (a, b) in sequential.cases().iter().zip(threaded.cases()) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.engine_seed, b.engine_seed);
        assert_eq!(a.trace.events(), b.trace.events());
    }
}
