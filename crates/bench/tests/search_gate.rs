//! Gate for the layout-search pipeline ([`run_layout_search`]): the
//! replay-ranked winner must honor the selection guarantees the `search`
//! binary and `fig18_alternatives` rely on — never more total misses
//! than the OptS seed, no worse than the seed on more than half the
//! workloads, structurally clean, and byte-identical at any worker
//! count.

use oslay::cache::{Cache, CacheConfig};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::run_layout_search;
use oslay_search::SearchParams;

fn study() -> Study {
    Study::generate(&StudyConfig::tiny())
}

fn params() -> SearchParams {
    SearchParams {
        budget: 3_000,
        restarts: 2,
        ..SearchParams::default()
    }
}

#[test]
fn winner_matches_or_beats_the_seed_and_lints_clean() {
    let study = study();
    let cfg = CacheConfig::paper_default();
    let searched = run_layout_search(&study, cfg, &params(), &SimConfig::fast(), 2);

    let cases = study.cases().len();
    let sel = &searched.selection;
    assert_eq!(sel.misses.len(), searched.candidates.len());
    assert_eq!(sel.worse_cases[0], 0, "the seed is its own baseline");

    // The selection contract: never more total misses than the seed,
    // and better-or-equal on at least half the workloads.
    let seed_total: u64 = sel.misses[0].iter().sum();
    let chosen_total: u64 = sel.misses[sel.chosen].iter().sum();
    assert!(chosen_total <= seed_total, "{chosen_total} > {seed_total}");
    assert!(sel.worse_cases[sel.chosen] * 2 <= cases);

    // The materialized winner lints clean and replays to exactly the
    // miss counts the selection ranked it by.
    let program = &study.kernel().program;
    let view = &searched.candidates[sel.chosen];
    assert!(oslay_verify::verify_structural(program, view).is_clean());
    for (c, case) in study.cases().iter().enumerate() {
        let app = study.app_base_layout(case);
        let mut cache = Cache::new(cfg);
        let r = study.simulate(
            case,
            &searched.os.layout,
            app.as_ref(),
            &mut cache,
            &SimConfig::fast(),
        );
        assert_eq!(r.stats.total_misses(), sel.misses[sel.chosen][c]);
    }
}

#[test]
fn seed_misses_equal_a_direct_opt_s_replay() {
    let study = study();
    let cfg = CacheConfig::paper_default();
    let searched = run_layout_search(&study, cfg, &params(), &SimConfig::fast(), 1);
    let opts = study.os_layout(OsLayoutKind::OptS, cfg.size());
    for (c, case) in study.cases().iter().enumerate() {
        let app = study.app_base_layout(case);
        let mut cache = Cache::new(cfg);
        let r = study.simulate(
            case,
            &opts.layout,
            app.as_ref(),
            &mut cache,
            &SimConfig::fast(),
        );
        assert_eq!(
            r.stats.total_misses(),
            searched.selection.misses[0][c],
            "candidate 0 must be the untouched OptS seed (case {c})"
        );
    }
}

#[test]
fn pipeline_is_thread_invariant() {
    let study = study();
    let cfg = CacheConfig::paper_default();
    let a = run_layout_search(&study, cfg, &params(), &SimConfig::fast(), 1);
    let b = run_layout_search(&study, cfg, &params(), &SimConfig::fast(), 3);
    assert_eq!(a.outcome.winner, b.outcome.winner);
    assert_eq!(a.selection.chosen, b.selection.chosen);
    assert_eq!(a.selection.misses, b.selection.misses);
    for i in 0..a.os.layout.num_blocks() {
        let block = oslay::model::BlockId::new(i);
        assert_eq!(a.os.layout.addr(block), b.os.layout.addr(block));
        assert_eq!(
            a.os.layout.effective_size(block),
            b.os.layout.effective_size(block)
        );
    }
}
