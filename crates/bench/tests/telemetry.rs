//! Acceptance test for the simulated-time telemetry contract:
//!
//! 1. Telemetry is inert — enabling it does not perturb simulation
//!    results (same stats with telemetry off, on at 1 worker, and on at
//!    2 workers).
//! 2. Telemetry is deterministic — the serialized document from a
//!    1-worker run is byte-identical to the document from a 2-worker
//!    run of the same matrix.
//! 3. The document validates against the `oslay.telemetry.v1` schema.

use std::sync::Arc;

use oslay::cache::CacheConfig;
use oslay::{SimConfig, Study, StudyConfig};
use oslay_bench::run_figure12_matrix;
use oslay_observe::timeline::{self, validate_telemetry};
use oslay_observe::MetricRegistry;

/// Per-run fingerprint of the matrix: every cell's access/miss totals.
fn run_matrix(study: &Study, threads: usize) -> Vec<(u64, u64)> {
    let cfg = CacheConfig::paper_default();
    let sim = SimConfig::fast();
    let registry = Arc::new(MetricRegistry::new());
    let matrix = run_figure12_matrix(study, cfg, &sim, threads, &registry);
    matrix
        .iter()
        .flatten()
        .map(|r| (r.stats.total_accesses(), r.stats.total_misses()))
        .collect()
}

#[test]
fn telemetry_is_inert_and_worker_count_invariant() {
    let study = Study::generate(&StudyConfig::tiny());

    // Baseline: telemetry disabled records nothing.
    timeline::reset();
    let baseline = run_matrix(&study, 2);
    assert_eq!(timeline::runs_recorded(), 0, "disabled telemetry is off");

    // Telemetry on, one worker.
    timeline::reset();
    timeline::enable();
    let stats_1t = run_matrix(&study, 1);
    let doc_1t = timeline::document().to_json();
    timeline::disable();

    // Telemetry on, two workers.
    timeline::reset();
    timeline::enable();
    let stats_2t = run_matrix(&study, 2);
    let doc_2t = timeline::document().to_json();
    timeline::disable();
    timeline::reset();

    // (1) Inert: the simulated results never change.
    assert_eq!(baseline, stats_1t, "telemetry must not perturb results");
    assert_eq!(baseline, stats_2t, "telemetry must not perturb results");

    // (2) Deterministic: worker count does not leak into the document.
    assert_eq!(
        doc_1t, doc_2t,
        "telemetry document must be byte-identical at any worker count"
    );

    // (3) Valid: schema, monotonicity, miss-split, and phase-coverage
    // invariants all hold; one run per matrix cell.
    let stats = validate_telemetry(&doc_1t).expect("document validates");
    assert_eq!(stats.runs, 20, "4 cases x 5 ladder levels");
    assert!(stats.frames > 0, "frames were sampled");
    assert!(stats.events > 0, "events were counted");
}
