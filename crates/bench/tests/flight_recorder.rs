//! Acceptance test for the flight recorder: tracing must never perturb
//! results — the Figure-12 matrix and its deterministic report are
//! identical at any worker count, recorder on or off — while the
//! recorded span tree is well-formed (children nest inside parents,
//! spans carry per-worker attribution, the Chrome export validates).

use std::sync::Arc;

use oslay::cache::CacheConfig;
use oslay::{SimConfig, Study, StudyConfig};
use oslay_bench::run_figure12_matrix;
use oslay_observe::flight;
use oslay_observe::{MetricRegistry, RunReport};

/// Runs the full Figure-12 matrix and reduces it to two comparable
/// fingerprints: the per-cell miss statistics and the deterministic
/// JSON of the merged metric registry.
fn matrix_fingerprint(study: &Study, threads: usize) -> (String, String) {
    let registry = Arc::new(MetricRegistry::new());
    let matrix = run_figure12_matrix(
        study,
        CacheConfig::paper_default(),
        &SimConfig::fast(),
        threads,
        &registry,
    );
    let stats: Vec<_> = matrix.iter().flatten().map(|r| r.stats).collect();
    let mut report = RunReport::new("flight_acceptance");
    report.add_metrics(&registry);
    (
        format!("{stats:?}"),
        report.to_json_deterministic().to_json(),
    )
}

#[test]
fn tracing_preserves_results_and_records_wellformed_span_trees() {
    let study = Study::generate(&StudyConfig::tiny());

    // Baseline: recorder off, two workers.
    let (stats_off, report_off) = matrix_fingerprint(&study, 2);

    flight::reset();
    flight::enable();
    flight::set_thread_track("main");
    oslay_perf::alloc::install_flight_probe();

    // Recorder on: results must be byte-identical at any worker count.
    let (stats_t1, report_t1) = matrix_fingerprint(&study, 1);
    let spans_after_t1 = flight::span_events().len();
    let (stats_t2, report_t2) = matrix_fingerprint(&study, 2);
    let spans = flight::span_events();
    flight::disable();

    assert_eq!(stats_t1, stats_off, "threads=1 + tracing changed results");
    assert_eq!(stats_t2, stats_off, "threads=2 + tracing changed results");
    assert_eq!(
        report_t1, report_off,
        "tracing changed the deterministic report"
    );
    assert_eq!(
        report_t2, report_off,
        "tracing changed the deterministic report"
    );

    // One exec.job flight span per matrix job, independent of the worker
    // count: the two runs contributed the same number each.
    let jobs_t1 = spans[..spans_after_t1]
        .iter()
        .filter(|s| s.name == "exec.job")
        .count();
    let jobs_t2 = spans[spans_after_t1..]
        .iter()
        .filter(|s| s.name == "exec.job")
        .count();
    assert!(jobs_t1 > 0, "no exec.job spans recorded");
    assert_eq!(jobs_t1, jobs_t2, "job span count depends on worker count");

    // Per-worker attribution: the threads=2 run put its jobs on
    // worker-<w> tracks; the threads=1 run ran inline on main.
    assert!(
        spans[spans_after_t1..]
            .iter()
            .any(|s| s.name == "exec.job" && s.track.starts_with("worker-")),
        "no exec.job span attributed to a worker track"
    );
    assert!(
        spans[..spans_after_t1]
            .iter()
            .all(|s| s.name != "exec.job" || s.track == "main"),
        "inline jobs must stay on the main track"
    );

    // Hierarchy: exec.job nests under exec.parallel_map on the inline
    // path, so parent ids are populated and non-trivial.
    assert!(
        spans.iter().any(|s| s.parent != 0),
        "no span recorded a parent id"
    );
    let by_id: std::collections::HashMap<u64, _> = spans.iter().map(|s| (s.id, s)).collect();
    for s in &spans {
        if s.parent == 0 {
            continue;
        }
        let p = by_id
            .get(&s.parent)
            .unwrap_or_else(|| panic!("span {} has dangling parent {}", s.name, s.parent));
        assert_eq!(
            p.track, s.track,
            "child {} on a different track than parent",
            s.name
        );
        assert!(
            s.start_ns >= p.start_ns && s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns,
            "child {} [{}, {}] escapes parent {} [{}, {}]",
            s.name,
            s.start_ns,
            s.start_ns + s.dur_ns,
            p.name,
            p.start_ns,
            p.start_ns + p.dur_ns
        );
    }

    // The Chrome export of everything above passes the schema checker
    // (balanced events, monotonic timestamps, nesting) and parses back.
    let json = flight::chrome_trace().to_json();
    let tstats = flight::validate_chrome_trace(&json).expect("trace validates");
    assert!(tstats.spans >= spans.len(), "export dropped spans");
    assert!(tstats.tracks >= 3, "expected main + 2 worker tracks");
    assert!(tstats.max_depth >= 2, "expected nested spans");
    let trace = flight::ChromeTrace::parse(&json).expect("export parses back");
    assert!(
        trace
            .thread_names
            .iter()
            .any(|(_, name)| name.starts_with("worker-")),
        "export lost worker track names"
    );

    flight::reset();
}
