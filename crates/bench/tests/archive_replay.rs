//! Archived re-replay must be bit-exact: the Figure-12 matrix computed
//! from recorded `.otr` stores has to match the live matrix — results and
//! metric registry both — at any worker count.

use std::sync::Arc;

use oslay::cache::CacheConfig;
use oslay::{SimConfig, Study, StudyConfig};
use oslay_bench::archive::{archive_file_name, record_archive, run_archived_figure12_matrix};
use oslay_bench::run_figure12_matrix;
use oslay_observe::{MetricRegistry, RunReport};

/// Serializes a registry's full contents (counters, gauges, histograms)
/// deterministically, for whole-registry equality checks.
fn registry_fingerprint(registry: &MetricRegistry) -> String {
    let mut report = RunReport::new("fingerprint");
    report.add_metrics(registry);
    report.to_json_deterministic().to_json_pretty()
}

#[test]
fn archived_matrix_matches_live_at_one_and_two_workers() {
    let mut config = StudyConfig::tiny();
    config.os_blocks = 6_000;
    let study = Study::generate(&config);
    let dir = std::env::temp_dir().join(format!("oslay_archive_eq_{}", std::process::id()));
    let recorded = record_archive(&study, &dir, 2).expect("record archive");
    assert_eq!(recorded.len(), study.cases().len());
    for ((file, summary), case) in recorded.iter().zip(study.cases()) {
        assert_eq!(file, &archive_file_name(case));
        assert!(
            summary.compression_ratio() >= 3.0,
            "{file}: ratio {:.2} below the 3x floor",
            summary.compression_ratio()
        );
    }

    let cache = CacheConfig::paper_default();
    let sim = SimConfig::fast();
    let live_registry = Arc::new(MetricRegistry::new());
    let live = run_figure12_matrix(&study, cache, &sim, 1, &live_registry);
    let live_fingerprint = registry_fingerprint(&live_registry);

    for threads in [1, 2] {
        let registry = Arc::new(MetricRegistry::new());
        let archived = run_archived_figure12_matrix(&study, &dir, cache, &sim, threads, &registry)
            .expect("archived replay");
        for (case, (archived_row, live_row)) in study.cases().iter().zip(archived.iter().zip(&live))
        {
            for (a, l) in archived_row.iter().zip(live_row) {
                assert_eq!(
                    a.stats,
                    l.stats,
                    "archived stats diverge for {} at {threads} workers",
                    case.name()
                );
            }
        }
        assert_eq!(
            registry_fingerprint(&registry),
            live_fingerprint,
            "registry diverges at {threads} workers"
        );
    }

    std::fs::remove_dir_all(&dir).expect("clean temp dir");
}
