//! Cross-validation gates for the static layout tooling: the conflict
//! predictor's ranking must agree with the measured attribution matrix,
//! and the `Study` layouts must keep passing the invariant checker.

use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{run_case_attributed, AppSide};
use oslay_cache::CacheConfig;
use oslay_model::Domain;
use oslay_verify::{measured_pair_ranking, predict_conflicts, ranking_overlap, LayoutView};

/// The static predictor never simulates, yet its top-10 routine-pair
/// ranking must overlap the *measured* conflict matrix's top-10 by at
/// least 60% on the default workload (the issue's acceptance gate).
#[test]
fn predictor_top10_overlaps_measured_ranking() {
    let study = Study::generate(&StudyConfig::tiny());
    // Shell is the OS-only workload: every measured conflict involves
    // kernel routines, matching the predictor's OS-side span model.
    let case = &study.cases()[3];
    let cfg = CacheConfig::paper_default();
    let (_, attr) = run_case_attributed(
        &study,
        case,
        OsLayoutKind::Base,
        AppSide::Base,
        cfg,
        &SimConfig::fast(),
        None,
    );
    assert!(
        !attr.matrix.is_empty(),
        "base layout must measure some conflicts"
    );

    let base = study.os_layout(OsLayoutKind::Base, cfg.size());
    let view = LayoutView::from_layout(&base.layout);
    let predicted = predict_conflicts(
        &study.kernel().program,
        &case.os_profile,
        &view,
        Domain::Os,
        &cfg,
    );
    let overlap = ranking_overlap(&predicted, &attr.matrix, 10);
    let measured_top: Vec<_> = measured_pair_ranking(&attr.matrix)
        .into_iter()
        .take(10)
        .collect();
    assert!(
        overlap >= 0.6,
        "predicted top-10 overlaps measured by {overlap:.2} (< 0.60)\n\
         measured top-10: {measured_top:?}\n\
         predicted top-10: {:?}",
        predicted.top_pairs(10)
    );
}

/// Every OS layout the Study hands to a simulation re-verifies clean when
/// verification is forced on (the release-mode `--verify` path).
#[test]
fn study_layouts_pass_forced_verification() {
    oslay::set_layout_verify(true);
    let study = Study::generate(&StudyConfig::tiny());
    for kind in OsLayoutKind::ALL {
        // os_layout panics on a failed report, so building is the assert.
        let l = study.os_layout(kind, 8192);
        assert!(l.layout.num_blocks() > 0);
    }
    oslay::set_layout_verify(false);
}
