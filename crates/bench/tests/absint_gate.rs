//! Integration tests for the abstract-interpretation soundness gate:
//! thread invariance of the classification and the replay checks.

use oslay::cache::CacheConfig;
use oslay::{OsLayout, OsLayoutKind, Study, StudyConfig};
use oslay_bench::absint_gate::{classify_study_layout, run_absint_gate};
use oslay_verify::LayoutView;

fn tiny_study(threads: usize) -> Study {
    Study::generate_with_threads(&StudyConfig::tiny().with_os_blocks(6_000), threads)
}

#[test]
fn classification_is_invariant_under_threads() {
    let cfg = CacheConfig::paper_default();
    let a = tiny_study(1);
    let b = tiny_study(4);
    for kind in [OsLayoutKind::Base, OsLayoutKind::OptS] {
        let va = LayoutView::from_layout(&a.os_layout(kind, cfg.size()).layout);
        let vb = LayoutView::from_layout(&b.os_layout(kind, cfg.size()).layout);
        let ca = classify_study_layout(&a, &va, cfg);
        let cb = classify_study_layout(&b, &vb, cfg);
        assert_eq!(ca, cb, "{kind:?} classification diverges across threads");
    }
}

#[test]
fn gate_rows_are_invariant_under_threads_and_sound() {
    let cfg = CacheConfig::paper_default();
    let study = tiny_study(2);
    let layouts: Vec<(String, OsLayout)> = [OsLayoutKind::Base, OsLayoutKind::ChangHwu]
        .iter()
        .map(|&k| (k.name().to_owned(), study.os_layout(k, cfg.size())))
        .collect();
    let one = run_absint_gate(&study, &layouts, cfg, 1);
    let four = run_absint_gate(&study, &layouts, cfg, 4);
    assert_eq!(one.rows, four.rows, "gate rows diverge across threads");
    assert!(one.ok(), "tiny-scale gate must be sound");
    // Every workload x layout pair is replayed.
    assert_eq!(one.rows.len(), 2 * study.cases().len());
}
