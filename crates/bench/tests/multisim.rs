//! Differential gate for the single-pass sweep engine: on every committed
//! sweep grid shape (Figures 15, 16 and 17), [`run_sweep_single_pass`]
//! must produce exactly what the per-point [`run_sweep`] produces — the
//! `SimResult` stream and the folded metric registry both — at 1 and 2
//! workers.

use std::sync::Arc;

use oslay::cache::CacheConfig;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{run_sweep, run_sweep_single_pass, AppSide, SweepPoint};
use oslay_layout::Layout;
use oslay_observe::{MetricRegistry, RunReport};

const KINDS: [OsLayoutKind; 3] = [
    OsLayoutKind::Base,
    OsLayoutKind::ChangHwu,
    OsLayoutKind::OptS,
];

fn study() -> Study {
    Study::generate(&StudyConfig::tiny())
}

/// Serializes a registry's full contents deterministically. Counters,
/// gauges and histograms are the registry's whole surface — the
/// nondeterministic report parts (span timings, allocator counters) never
/// enter it — so equal fingerprints mean byte-identical report metrics.
fn registry_fingerprint(registry: &MetricRegistry) -> String {
    let mut report = RunReport::new("fingerprint");
    report.add_metrics(registry);
    report.to_json_deterministic().to_json_pretty()
}

/// Replays `grid` through both sweep drivers and asserts the single-pass
/// results and registry match the per-point baseline at 1 and 2 workers.
fn assert_modes_agree(study: &Study, grid: &dyn Fn() -> Vec<SweepPoint>, what: &str) {
    let sim = SimConfig::fast();
    let baseline_registry = Arc::new(MetricRegistry::new());
    let baseline = run_sweep(study, grid(), &sim, 1, &baseline_registry);
    let baseline_fingerprint = registry_fingerprint(&baseline_registry);
    assert!(
        baseline.iter().all(|r| r.stats.total_accesses() > 0),
        "{what}: baseline grid replayed nothing"
    );
    for threads in [1, 2] {
        let registry = Arc::new(MetricRegistry::new());
        let got = run_sweep_single_pass(study, grid(), &sim, threads, &registry);
        assert_eq!(got.len(), baseline.len(), "{what}: point count");
        for (pi, (g, b)) in got.iter().zip(&baseline).enumerate() {
            assert_eq!(
                g.stats, b.stats,
                "{what}: point {pi} diverges at {threads} workers"
            );
        }
        assert_eq!(
            registry_fingerprint(&registry),
            baseline_fingerprint,
            "{what}: registry diverges at {threads} workers"
        );
    }
}

/// The Figure-15 grid: 4–32 KB direct-mapped, 32-byte lines, three OS
/// layouts per size — four stacked shadow-tag sizes in one bank.
fn fig15_grid(study: &Study) -> Vec<SweepPoint> {
    let sizes = [4096u32, 8192, 16384, 32768];
    let layouts: Vec<((OsLayoutKind, u32), Arc<Layout>)> = sizes
        .iter()
        .flat_map(|&size| KINDS.map(|kind| (kind, size)))
        .map(|key| (key, Arc::new(study.os_layout(key.0, key.1).layout)))
        .collect();
    let mut points = Vec::new();
    for &size in &sizes {
        let cfg = CacheConfig::new(size, 32, 1);
        for wi in 0..study.cases().len() {
            for kind in KINDS {
                let os = &layouts
                    .iter()
                    .find(|&&(k, _)| k == (kind, size))
                    .expect("memoized")
                    .1;
                points.push(SweepPoint {
                    case: wi,
                    os: Arc::clone(os),
                    app: AppSide::Base,
                    cache: cfg,
                });
            }
        }
    }
    points
}

/// The Figure-16 grid: Base plus four SelfConfFree cut-offs per cache
/// size — five lanes per (case, size), all direct-mapped 32-byte lines.
fn fig16_grid(study: &Study) -> Vec<SweepPoint> {
    let cutoffs = [None, Some(376u32), Some(1286), Some(2514)];
    let sizes = [4096u32, 8192, 16384];
    let mut points = Vec::new();
    for &size in &sizes {
        let base = Arc::new(study.os_layout(OsLayoutKind::Base, size).layout);
        let mut layouts = vec![Arc::clone(&base)];
        for &cutoff in &cutoffs {
            layouts.push(Arc::new(study.os_opt_s_with_scf(size, cutoff).layout));
        }
        for wi in 0..study.cases().len() {
            for os in &layouts {
                points.push(SweepPoint {
                    case: wi,
                    os: Arc::clone(os),
                    app: AppSide::Base,
                    cache: CacheConfig::new(size, 32, 1),
                });
            }
        }
    }
    points
}

/// One Figure-17 sub-grid: a fixed 8 KB capacity swept across `configs`,
/// three OS layouts each — the line sweep exercises banked tag arrays,
/// the associativity sweep one shared stack per layout.
fn fig17_grid(study: &Study, configs: &[CacheConfig]) -> Vec<SweepPoint> {
    let layouts: Vec<Arc<Layout>> = KINDS
        .iter()
        .map(|&kind| Arc::new(study.os_layout(kind, configs[0].size()).layout))
        .collect();
    let mut points = Vec::new();
    for wi in 0..study.cases().len() {
        for &cfg in configs {
            for os in &layouts {
                points.push(SweepPoint {
                    case: wi,
                    os: Arc::clone(os),
                    app: AppSide::Base,
                    cache: cfg,
                });
            }
        }
    }
    points
}

#[test]
fn fig15_grid_single_pass_matches_per_point() {
    let study = study();
    assert_modes_agree(&study, &|| fig15_grid(&study), "fig15");
}

#[test]
fn fig16_grid_single_pass_matches_per_point() {
    let study = study();
    assert_modes_agree(&study, &|| fig16_grid(&study), "fig16");
}

#[test]
fn fig17_grids_single_pass_matches_per_point() {
    let study = study();
    let lines: Vec<CacheConfig> = [16u32, 32, 64, 128]
        .iter()
        .map(|&l| CacheConfig::new(8192, l, 1))
        .collect();
    assert_modes_agree(&study, &|| fig17_grid(&study, &lines), "fig17a");
    let ways: Vec<CacheConfig> = [1u32, 2, 4, 8]
        .iter()
        .map(|&w| CacheConfig::new(8192, 32, w))
        .collect();
    assert_modes_agree(&study, &|| fig17_grid(&study, &ways), "fig17b");
}

#[test]
fn detailed_sim_config_falls_back_to_per_point() {
    // A config requesting miss maps cannot be settled in one pass;
    // `run_sweep_single_pass` must silently take the per-point path and
    // return the full detailed results.
    let study = study();
    let ways: Vec<CacheConfig> = [1u32, 4]
        .iter()
        .map(|&w| CacheConfig::new(8192, 32, w))
        .collect();
    let sim = SimConfig::full();
    let baseline_registry = Arc::new(MetricRegistry::new());
    let baseline = run_sweep(
        &study,
        fig17_grid(&study, &ways),
        &sim,
        1,
        &baseline_registry,
    );
    let registry = Arc::new(MetricRegistry::new());
    let got = run_sweep_single_pass(&study, fig17_grid(&study, &ways), &sim, 2, &registry);
    assert_eq!(got.len(), baseline.len());
    for (g, b) in got.iter().zip(&baseline) {
        assert_eq!(g.stats, b.stats);
        assert_eq!(g.os_miss_map, b.os_miss_map);
        assert!(g.os_miss_map.is_some(), "full config keeps its miss maps");
        assert_eq!(g.os_block_misses, b.os_block_misses);
    }
    assert_eq!(
        registry_fingerprint(&registry),
        registry_fingerprint(&baseline_registry)
    );
}
