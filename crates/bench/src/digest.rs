//! One-shot digest of the whole evaluation: generates a single study and
//! prints the headline number of every table and figure next to the
//! paper's value. This is the fastest way to see the reproduction state
//! end to end; the per-artifact binaries print the full detail.
//!
//! The `all_experiments` binaries (one in this crate, one in the root
//! package so `cargo run --bin all_experiments` works from the
//! repository root) are thin forwarders to [`run`].

use oslay::analysis::arcs::ArcDeterminism;
use oslay::analysis::loops::loop_shape;
use oslay::analysis::refchar::{ref_characteristics, union_footprint};
use oslay::analysis::report::{f, pct, TextTable};
use oslay::analysis::temporal::{InvocationSkew, ReuseDistance};
use oslay::cache::CacheConfig;
use oslay::model::ProgramStats;
use oslay::perf::ExecTimeModel;
use oslay::{OsLayoutKind, SimConfig, Study};

use crate::{
    banner, figure12_ladder, run_args, run_case_attributed, run_figure12_matrix, AppSide, Reporter,
};
use oslay_observe::AttrClass;

/// Runs the full digest: parses the common CLI arguments, evaluates every
/// headline number, prints the tables, and writes
/// `results/all_experiments.json`.
pub fn run() {
    let args = run_args();
    let config = args.config;
    banner("All experiments: one-page digest", &config);
    let mut reporter = Reporter::new("all_experiments");
    let registry = reporter.registry();
    let study = Study::generate_with_threads(&config, args.threads);
    let program = &study.kernel().program;
    let cfg = CacheConfig::paper_default();

    println!("Kernel: {}", ProgramStats::compute(program));
    println!();

    // --- characterization -------------------------------------------------
    let mut table = TextTable::new(["Section 3 metric", "paper", "measured"]);
    let d = ArcDeterminism::measure(study.averaged_os_profile());
    table.row([
        "fig03: arcs with P >= 0.99".to_owned(),
        "73.6%".to_owned(),
        pct(d.fraction_ge_99()),
    ]);
    table.row([
        "fig03: arcs with P <= 0.01".to_owned(),
        "6.9%".to_owned(),
        pct(d.fraction_le_01()),
    ]);
    let profiles: Vec<_> = study.cases().iter().map(|c| c.os_profile.clone()).collect();
    let union = union_footprint(program, &profiles);
    table.row([
        "tab01: union code footprint".to_owned(),
        "18%".to_owned(),
        pct(union.code_fraction),
    ]);
    let rc_range: Vec<f64> = study
        .cases()
        .iter()
        .map(|c| ref_characteristics(program, &c.os_profile, &c.trace).executed_code_fraction)
        .collect();
    table.row([
        "tab01: per-workload footprint".to_owned(),
        "3.4-13.1%".to_owned(),
        format!(
            "{}-{}",
            pct(rc_range.iter().copied().fold(f64::INFINITY, f64::min)),
            pct(rc_range.iter().copied().fold(0.0, f64::max))
        ),
    ]);
    let free = loop_shape(study.os_loops().executed_loops().filter(|l| !l.has_calls));
    let call = loop_shape(study.os_loops().executed_loops().filter(|l| l.has_calls));
    table.row([
        "fig04: call-free loops <= 300B".to_owned(),
        "100%".to_owned(),
        pct(free.sizes.cumulative_fraction(300.0)),
    ]);
    table.row([
        "fig05: call-loop median span".to_owned(),
        "2 KB".to_owned(),
        format!("{:.1} KB", call.median_size / 1024.0),
    ]);
    let skew = InvocationSkew::measure(program, study.averaged_os_profile());
    table.row([
        "fig06: top-10 routine share".to_owned(),
        "most".to_owned(),
        pct(skew.top_share(10) / 100.0),
    ]);
    let mut reuse = 0.0;
    for case in study.cases() {
        reuse +=
            ReuseDistance::measure(program, &case.os_profile, &case.trace, 10).reuse_within(1000.0);
    }
    table.row([
        "fig07: reuse within 1000 words".to_owned(),
        "~70%".to_owned(),
        pct(reuse / study.cases().len() as f64),
    ]);
    print!("{}", table.render());
    println!();

    // --- evaluation ---------------------------------------------------------
    println!("Figure 12 (misses normalized to Base = 100, 8KB DM):");
    let mut table = TextTable::new(["Workload", "C-H", "OptS", "OptL", "OptA"]);
    let mut opts_rates = Vec::new();
    let mut base_rates = Vec::new();
    let matrix = run_figure12_matrix(&study, cfg, &SimConfig::fast(), args.threads, &registry);
    for (case, row) in study.cases().iter().zip(&matrix) {
        let mut cells = vec![case.name().to_owned()];
        let mut base = None;
        let mut level_rates = Vec::new();
        for ((name, _, _), r) in figure12_ladder().into_iter().zip(row) {
            let total = r.stats.total_misses();
            let b = *base.get_or_insert(total);
            if name != "Base" {
                cells.push(format!("{:.1}", total as f64 / b as f64 * 100.0));
            }
            if name == "Base" {
                base_rates.push(r.miss_rate());
            }
            if name == "OptS" {
                opts_rates.push(r.miss_rate());
            }
            level_rates.push((name, r.miss_rate()));
        }
        reporter.add_section(&format!("fig12.{}", case.name()), level_rates);
        table.row(cells);
    }
    print!("{}", table.render());
    println!("paper: C-H 43-62, OptS 24-53, OptL ~OptS, OptA = OptS -4..-19%");
    println!();

    let model = ExecTimeModel::paper(30.0);
    let mean_speedup: f64 = base_rates
        .iter()
        .zip(&opts_rates)
        .map(|(&b, &o)| model.time_reduction_percent(b, o))
        .sum::<f64>()
        / base_rates.len() as f64;
    println!(
        "Figure 15-b: mean execution-time reduction of OptS over Base at a 30-cycle \
         penalty: {:.1}% (paper: \"in the order of 10-25%\")",
        mean_speedup
    );
    reporter.add_section("fig15b", [("mean_time_reduction_pct", mean_speedup)]);
    println!();

    // Miss attribution digest: why Base misses and what OptS removed.
    // The `attr.*` sections make `compare()` catch conflict-structure
    // regressions (conflict count, matrix weight, set imbalance) that the
    // aggregate miss rate can hide.
    let shell = &study.cases()[3];
    println!("Miss attribution on Shell (8KB DM, compulsory/capacity/conflict):");
    let mut table = TextTable::new(["layout", "compulsory", "capacity", "conflict", "set CV"]);
    let mut attr_reports = Vec::new();
    for (label, kind) in [("base", OsLayoutKind::Base), ("opt_s", OsLayoutKind::OptS)] {
        let (_, attr) = run_case_attributed(
            &study,
            shell,
            kind,
            AppSide::Base,
            cfg,
            &SimConfig::fast(),
            Some(&registry),
        );
        table.row([
            label.to_owned(),
            format!(
                "{} ({})",
                attr.misses_of(AttrClass::Compulsory),
                pct(attr.misses_of(AttrClass::Compulsory) as f64 / attr.total_misses.max(1) as f64)
            ),
            format!(
                "{} ({})",
                attr.misses_of(AttrClass::Capacity),
                pct(attr.misses_of(AttrClass::Capacity) as f64 / attr.total_misses.max(1) as f64)
            ),
            format!(
                "{} ({})",
                attr.misses_of(AttrClass::Conflict),
                pct(attr.conflict_share())
            ),
            format!("{:.2}", attr.set_imbalance()),
        ]);
        reporter.add_section(&format!("attr.{label}"), attr.section_fields());
        attr_reports.push(attr);
    }
    print!("{}", table.render());
    let diff = oslay::cache::diff_attribution(&attr_reports[0], &attr_reports[1]);
    println!(
        "OptS resolves {} conflict pairs and introduces {} \
         (net conflict misses: {:+}); run `--bin diag` for the ranked list.",
        diff.resolved.len(),
        diff.introduced.len(),
        diff.conflict_delta()
    );
    reporter.add_section(
        "attr.diff",
        [
            ("introduced_pairs", diff.introduced.len() as f64),
            ("conflict_delta", diff.conflict_delta() as f64),
        ],
    );
    println!();

    // Dynamic code growth of the OptS layout (Section 4.3).
    let opts = study.os_layout(OsLayoutKind::OptS, cfg.size());
    let growth = opts
        .layout
        .dynamic_overhead(program, study.averaged_os_profile());
    println!(
        "Section 4.3: dynamic code growth of OptS: {} (paper: ~2.0%)",
        pct(growth)
    );
    reporter.add_section("growth", [("opt_s_dynamic_overhead", growth)]);
    println!();

    // Beyond the paper: the metaheuristic layout search (ksearch), seeded
    // from OptS and validated by replay. The `search` binary prints the
    // full ranking; the digest records the headline so regression compare
    // catches a search that stops beating its seed.
    let searched = crate::run_layout_search(
        &study,
        cfg,
        &oslay_search::SearchParams {
            seed: config.seed,
            ..oslay_search::SearchParams::default()
        },
        &SimConfig::fast(),
        args.threads,
    );
    let outcome = &searched.outcome;
    let best = outcome.restarts[outcome.winner as usize].best;
    let seed_misses: u64 = searched.selection.misses[0].iter().sum();
    let chosen_misses: u64 = searched.selection.misses[searched.selection.chosen]
        .iter()
        .sum();
    let beats = searched.selection.misses[searched.selection.chosen]
        .iter()
        .zip(&searched.selection.misses[0])
        .filter(|(s, o)| s <= o)
        .count();
    println!(
        "Beyond the paper: searched OS layout (ksearch): objective {} -> {} \
         ({:.1}% lower), misses {} -> {} vs OptS, better-or-equal on {}/{} workloads",
        outcome.initial,
        best,
        (outcome.initial - best) as f64 / outcome.initial.max(1) as f64 * 100.0,
        seed_misses,
        chosen_misses,
        beats,
        study.cases().len()
    );
    reporter.add_section(
        "search",
        [
            ("initial_objective", outcome.initial as f64),
            ("best_objective", best as f64),
            ("seed_misses", seed_misses as f64),
            ("chosen_misses", chosen_misses as f64),
            ("beats_or_ties_opt_s", beats as f64),
        ],
    );
    println!();

    // Beyond the paper: the abstract-interpretation classification of
    // every layout — what fraction of weighted fetches is *provably*
    // always-hit / persistent / always-miss, with no trace. The `analyze`
    // binary prints per-point detail and replays the soundness gate.
    println!("Beyond the paper: static classification (abstract interpretation, weighted):");
    let mut table = TextTable::new([
        "layout",
        "always-hit",
        "persistent",
        "always-miss",
        "unclassified",
        "coverage",
    ]);
    let mut absint_layouts: Vec<(&str, oslay_verify::LayoutView)> = [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
        OsLayoutKind::OptL,
    ]
    .iter()
    .map(|&kind| {
        (
            kind.name(),
            oslay_verify::LayoutView::from_layout(&study.os_layout(kind, cfg.size()).layout),
        )
    })
    .collect();
    absint_layouts.push((
        "Search",
        oslay_verify::LayoutView::from_layout(&searched.os.layout),
    ));
    for (name, view) in &absint_layouts {
        let c = crate::absint_gate::classify_study_layout(&study, view, cfg);
        assert_eq!(c.invariant_violations, 0, "{name}: absint lattice violated");
        table.row([
            (*name).to_owned(),
            pct(c.weighted_share(oslay_verify::LineClass::AlwaysHit)),
            pct(c.weighted_share(oslay_verify::LineClass::Persistent)),
            pct(c.weighted_share(oslay_verify::LineClass::AlwaysMiss)),
            pct(c.weighted_share(oslay_verify::LineClass::Unclassified)),
            pct(c.coverage()),
        ]);
        reporter.add_section(
            &format!("absint.{name}"),
            [
                (
                    "weighted_always_hit",
                    c.weighted_share(oslay_verify::LineClass::AlwaysHit),
                ),
                (
                    "weighted_persistent",
                    c.weighted_share(oslay_verify::LineClass::Persistent),
                ),
                (
                    "weighted_always_miss",
                    c.weighted_share(oslay_verify::LineClass::AlwaysMiss),
                ),
                ("coverage", c.coverage()),
            ],
        );
    }
    print!("{}", table.render());
    println!("(run `--bin analyze -- --gate` to replay-validate these classes)");
    println!();
    println!(
        "Full details per artifact: the fig*/tab* binaries in crates/bench/src/bin \
         (see EXPERIMENTS.md). Digest scale factor: {} OS blocks per workload.",
        f(config.os_blocks as f64, 0)
    );
    let path = reporter.finish();
    println!("Run report: {}", path.display());
}
