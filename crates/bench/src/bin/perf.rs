//! Offline viewer for flight-recorder traces (`--trace-out` output).
//!
//! ```text
//! perf check    --in trace.json            # schema-validate, exit 0/1
//! perf top      --in trace.json [--n 15]   # hottest spans by total time
//! perf timeline --in trace.json [--width 72]  # ASCII per-track density
//! perf summary  --in trace.json            # stats + top + timeline
//! ```
//!
//! `check` is the CI gate: it exits non-zero on any trace-event schema
//! violation (missing phase, unbalanced `B`/`E`, backwards timestamps,
//! spans escaping their parents). The other subcommands render a quick
//! terminal view of the same file Perfetto/`chrome://tracing` would load.

use std::process::ExitCode;

use oslay_observe::flight::{validate_chrome_trace, ChromeTrace};

struct Args {
    cmd: String,
    input: std::path::PathBuf,
    n: usize,
    width: usize,
}

fn usage() -> ! {
    eprintln!("usage: perf <check|top|timeline|summary> --in TRACE.json [--n N] [--width W]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv: std::collections::VecDeque<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.pop_front() else { usage() };
    if !matches!(cmd.as_str(), "check" | "top" | "timeline" | "summary") {
        usage();
    }
    let mut args = Args {
        cmd,
        input: std::path::PathBuf::new(),
        n: 15,
        width: 72,
    };
    let mut have_input = false;
    while let Some(arg) = argv.pop_front() {
        match arg.as_str() {
            "--in" => {
                args.input = argv.pop_front().unwrap_or_else(|| usage()).into();
                have_input = true;
            }
            "--n" => {
                args.n = argv
                    .pop_front()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--width" => {
                args.width = argv
                    .pop_front()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if !have_input {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let text = match std::fs::read_to_string(&args.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf: cannot read {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    let stats = match validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf: INVALID trace {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    if args.cmd == "check" {
        println!(
            "OK {}: {} events ({} spans, {} counters) on {} tracks, max depth {}",
            args.input.display(),
            stats.events,
            stats.spans,
            stats.counters,
            stats.tracks,
            stats.max_depth
        );
        return ExitCode::SUCCESS;
    }
    let trace = match ChromeTrace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf: cannot parse {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    match args.cmd.as_str() {
        "top" => print!("{}", trace.render_top(args.n)),
        "timeline" => print!("{}", trace.render_timeline(args.width)),
        "summary" => {
            println!(
                "{}: {} spans on {} tracks, {:.3} ms wall, max depth {}",
                args.input.display(),
                stats.spans,
                stats.tracks,
                trace.wall_us() / 1e3,
                stats.max_depth
            );
            println!();
            print!("{}", trace.render_top(args.n));
            println!();
            print!("{}", trace.render_timeline(args.width));
        }
        _ => unreachable!("subcommand validated in parse_args"),
    }
    ExitCode::SUCCESS
}
