//! Ablation of the OptS design choices (not a paper artifact; the design
//! decisions it isolates are the ones DESIGN.md calls out):
//!
//! * **full** — sequences with the staggered descending schedule, plus the
//!   SelfConfFree area (the shipped `OptS`);
//! * **no-scf** — same sequences, no SelfConfFree area;
//! * **flat-schedule** — a single `(0, 0)` pass: one greedy sweep per seed
//!   with no threshold descent (every executed block captured in one go,
//!   so hot and cold code interleave within the sequence region);
//! * **routine-local** — sequences that may not cross routine boundaries
//!   (the Chang–Hwu restriction) but keep the SCF area, isolating how much
//!   of OptS's win comes from interprocedural chaining.
//!
//! Expected ordering: full ≤ no-scf ≤ flat-schedule, and routine-local
//! between C-H and full.

use oslay::analysis::report::TextTable;
use oslay::cache::{Cache, CacheConfig};
use oslay::layout::{optimize_os, OptParams, ThresholdSchedule};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Ablation: OptS design choices (8KB direct-mapped)", &config);
    let study = Study::generate(&config);
    let program = &study.kernel().program;
    let profile = study.averaged_os_profile();
    let loops = study.os_loops();
    let cfg = CacheConfig::paper_default();

    let variants: Vec<(&str, OptParams)> = vec![
        ("full", OptParams::opt_s(cfg.size())),
        ("no-scf", OptParams::opt_s(cfg.size()).with_scf_budget(None)),
        (
            "flat-schedule",
            OptParams {
                schedule: ThresholdSchedule::single_pass(0.0, 0.0),
                ..OptParams::opt_s(cfg.size())
            },
        ),
    ];

    let mut table = TextTable::new(["Workload", "Base", "C-H", "full", "no-scf", "flat-schedule"]);
    for case in study.cases() {
        let app = study.app_base_layout(case);
        let run = |layout: &oslay::layout::Layout| {
            let mut cache = Cache::new(cfg);
            study
                .simulate(case, layout, app.as_ref(), &mut cache, &SimConfig::fast())
                .stats
                .total_misses()
        };
        let base = run(&study.os_layout(OsLayoutKind::Base, cfg.size()).layout);
        let ch = run(&study.os_layout(OsLayoutKind::ChangHwu, cfg.size()).layout);
        let mut cells = vec![
            case.name().to_owned(),
            "100.0".to_owned(),
            format!("{:.1}", ch as f64 / base as f64 * 100.0),
        ];
        for (_, params) in &variants {
            let opt = optimize_os(program, profile, loops, params);
            let m = run(&opt.layout);
            cells.push(format!("{:.1}", m as f64 / base as f64 * 100.0));
        }
        table.row(cells);
    }
    print!("{}", table.render());
    println!();
    println!("(cells: total misses normalized to Base = 100)");
    println!(
        "full = staggered schedule + SCF; no-scf drops the SelfConfFree area; \
         flat-schedule replaces the descending threshold ladder with one (0,0) sweep."
    );
    oslay_bench::flush_trace();
}
