//! Figure 16: effect of the SelfConfFree-area size on the total number of
//! misses, for 4, 8 and 16 KB direct-mapped caches (32-byte lines). The
//! layouts compared are Base, no SelfConfFree area (`None`), and SCF areas
//! admitting blocks above 3.0%, 2.0% and 1.0% of the flattened executions.
//!
//! Paper shape: the 2.0% cut-off (≈ 1 KB of SCF) wins or ties in over half
//! the experiments; the 4 KB cache prefers the larger 1.0% area, the 16 KB
//! cache the smaller 3.0% one; paper SCF sizes: 0 / 376 / 1286 / 2514
//! bytes.

use oslay::analysis::report::TextTable;
use oslay::cache::{Cache, CacheConfig};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Figure 16: SelfConfFree-area size sweep", &config);
    let study = Study::generate(&config);
    // The paper's 3.0% / 2.0% / 1.0% frequency cut-offs correspond to
    // SelfConfFree areas of 376 / 1286 / 2514 bytes on its kernel; the
    // sweep uses those byte budgets directly.
    let cutoffs: [(&str, Option<u32>); 4] = [
        ("None", None),
        ("3.0%", Some(376)),
        ("2.0%", Some(1286)),
        ("1.0%", Some(2514)),
    ];

    for &size in &[4096u32, 8192, 16384] {
        println!("{}KB cache:", size / 1024);
        // Report the SCF sizes once per cache size.
        let scf_sizes: Vec<String> = cutoffs
            .iter()
            .map(|&(_, c)| {
                let l = study.os_opt_s_with_scf(size, c);
                format!("{}B", l.scf_bytes)
            })
            .collect();
        println!(
            "  SCF area bytes: None={} 3%={} 2%={} 1%={}  (paper: 0/376/1286/2514)",
            scf_sizes[0], scf_sizes[1], scf_sizes[2], scf_sizes[3]
        );
        let mut table = TextTable::new(["Workload", "Base", "None", "3.0%", "2.0%", "1.0%"]);
        for case in study.cases() {
            let app = study.app_base_layout(case);
            let mut cells = vec![case.name().to_owned()];
            let base = {
                let os = study.os_layout(OsLayoutKind::Base, size);
                let mut cache = Cache::new(CacheConfig::new(size, 32, 1));
                study
                    .simulate(
                        case,
                        &os.layout,
                        app.as_ref(),
                        &mut cache,
                        &SimConfig::fast(),
                    )
                    .stats
                    .total_misses()
            };
            cells.push("100.0".into());
            for &(_, cutoff) in &cutoffs {
                let os = study.os_opt_s_with_scf(size, cutoff);
                let mut cache = Cache::new(CacheConfig::new(size, 32, 1));
                let misses = study
                    .simulate(
                        case,
                        &os.layout,
                        app.as_ref(),
                        &mut cache,
                        &SimConfig::fast(),
                    )
                    .stats
                    .total_misses();
                cells.push(format!("{:.1}", misses as f64 / base as f64 * 100.0));
            }
            table.row(cells);
        }
        print!("{}", table.render());
        println!();
    }
    println!("(cells: misses normalized to Base = 100)");
}
