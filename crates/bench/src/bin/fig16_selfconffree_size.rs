//! Figure 16: effect of the SelfConfFree-area size on the total number of
//! misses, for 4, 8 and 16 KB direct-mapped caches (32-byte lines). The
//! layouts compared are Base, no SelfConfFree area (`None`), and SCF areas
//! admitting blocks above 3.0%, 2.0% and 1.0% of the flattened executions.
//!
//! Paper shape: the 2.0% cut-off (≈ 1 KB of SCF) wins or ties in over half
//! the experiments; the 4 KB cache prefers the larger 1.0% area, the 16 KB
//! cache the smaller 3.0% one; paper SCF sizes: 0 / 376 / 1286 / 2514
//! bytes.
//!
//! Extra flags: `--single-pass` (default) evaluates the whole grid in one
//! trace pass per workload; `--per-point` replays each point separately.
//! Output is byte-identical either way.

use std::sync::Arc;

use oslay::analysis::report::TextTable;
use oslay::cache::CacheConfig;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{banner, run_args_with, run_sweep_mode, sweep_mode_arg, AppSide, SweepPoint};
use oslay_observe::MetricRegistry;

fn main() {
    let mut single_pass = true;
    let args = run_args_with(StudyConfig::paper(), |arg, _| {
        sweep_mode_arg(arg, &mut single_pass)
    });
    let config = args.config;
    banner("Figure 16: SelfConfFree-area size sweep", &config);
    let study = Study::generate_with_threads(&config, args.threads);
    // The paper's 3.0% / 2.0% / 1.0% frequency cut-offs correspond to
    // SelfConfFree areas of 376 / 1286 / 2514 bytes on its kernel; the
    // sweep uses those byte budgets directly.
    let cutoffs: [(&str, Option<u32>); 4] = [
        ("None", None),
        ("3.0%", Some(376)),
        ("2.0%", Some(1286)),
        ("1.0%", Some(2514)),
    ];
    let sizes = [4096u32, 8192, 16384];

    // Memoize per cache size: the Base layout plus one OptS layout per
    // SCF cut-off, then fan every (case x layout) replay out as one
    // sweep. This binary keeps no run report, so the sweep's registry is
    // a throwaway.
    let mut points = Vec::new();
    let mut scf_notes = Vec::new();
    for &size in &sizes {
        let base = Arc::new(study.os_layout(OsLayoutKind::Base, size).layout);
        let mut layouts = vec![Arc::clone(&base)];
        let mut scf_bytes = Vec::new();
        for &(_, cutoff) in &cutoffs {
            let l = study.os_opt_s_with_scf(size, cutoff);
            scf_bytes.push(l.scf_bytes);
            layouts.push(Arc::new(l.layout));
        }
        scf_notes.push(scf_bytes);
        for wi in 0..study.cases().len() {
            for os in &layouts {
                points.push(SweepPoint {
                    case: wi,
                    os: Arc::clone(os),
                    app: AppSide::Base,
                    cache: CacheConfig::new(size, 32, 1),
                });
            }
        }
    }
    let registry = Arc::new(MetricRegistry::new());
    let results = run_sweep_mode(
        &study,
        points,
        &SimConfig::fast(),
        args.threads,
        &registry,
        single_pass,
    );

    let mut results = results.into_iter();
    for (si, &size) in sizes.iter().enumerate() {
        println!("{}KB cache:", size / 1024);
        let scf = &scf_notes[si];
        println!(
            "  SCF area bytes: None={}B 3%={}B 2%={}B 1%={}B  (paper: 0/376/1286/2514)",
            scf[0], scf[1], scf[2], scf[3]
        );
        let mut table = TextTable::new(["Workload", "Base", "None", "3.0%", "2.0%", "1.0%"]);
        for case in study.cases() {
            let base = results
                .next()
                .expect("one result per point")
                .stats
                .total_misses();
            let mut cells = vec![case.name().to_owned(), "100.0".into()];
            for _ in &cutoffs {
                let misses = results
                    .next()
                    .expect("one result per point")
                    .stats
                    .total_misses();
                cells.push(format!("{:.1}", misses as f64 / base as f64 * 100.0));
            }
            table.row(cells);
        }
        print!("{}", table.render());
        println!();
    }
    println!("(cells: misses normalized to Base = 100)");
    oslay_bench::flush_trace();
}
