//! Figure 8: number of times each operating-system basic block is invoked
//! (union of all four workloads), ranked and normalized, with loops
//! flattened to one iteration per invocation to remove their distortion.
//!
//! Paper: of ~8,500 executed blocks, 22 are executed more than 3.0% of the
//! total invocations each, 157 more than 1.0%, while nearly 6,000 are
//! executed less than 0.01%; the top block reaches 5%.

use oslay::analysis::report::bar_chart;
use oslay::analysis::temporal::BlockSkew;
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner(
        "Figure 8: basic-block invocation skew (loops flattened)",
        &config,
    );
    let study = Study::generate(&config);
    let skew = BlockSkew::measure(study.averaged_os_profile(), study.os_loops());

    let n = skew.ranked.len();
    println!("Executed blocks (union): {n} (paper: ~8,500)");
    println!(
        "Top block share: {:.1}% (paper: ~5%)",
        skew.ranked.first().map_or(0.0, |&(_, p)| p)
    );
    println!(
        "Blocks above 3.0%: {} (paper: 22); above 1.0%: {} (paper: 157)",
        skew.blocks_above(3.0),
        skew.blocks_above(1.0)
    );
    let below = skew.ranked.iter().filter(|&&(_, p)| p < 0.01).count();
    println!("Blocks below 0.01%: {below} (paper: ~6,000 of 8,500)");
    println!();

    println!("Top 20 blocks (share of flattened invocations):");
    let program = &study.kernel().program;
    let items: Vec<(String, f64)> = skew
        .ranked
        .iter()
        .take(20)
        .map(|&(b, p)| {
            let routine = program.routine(program.block(b).routine()).name();
            (format!("{b} ({routine})"), p)
        })
        .collect();
    print!("{}", bar_chart(&items, 40));
    oslay_bench::flush_trace();
}
