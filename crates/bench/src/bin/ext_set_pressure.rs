//! Extension experiment: per-set conflict pressure.
//!
//! The paper argues spatially — its Figures 1 and 14 show miss peaks over
//! *code addresses*. The cache-side view of the same phenomenon is per-set
//! pressure: under `Base`, a few cache sets thrash (the peaks); under
//! `OptS`, equally-hot code is spread across sets and the SelfConfFree
//! sets go quiet. This binary measures per-set miss concentration and
//! imbalance for each layout.

use oslay::analysis::report::{f, pct, TextTable};
use oslay::cache::{Cache, CacheConfig, SetCensus};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner(
        "Extension: per-set conflict pressure (8KB direct-mapped)",
        &config,
    );
    let study = Study::generate(&config);
    let cfg = CacheConfig::paper_default();

    for case in study.cases() {
        println!("{}:", case.name());
        let mut table = TextTable::new([
            "layout",
            "misses",
            "top-8 sets hold",
            "top-32 sets hold",
            "imbalance (cv)",
            "SCF-set misses",
        ]);
        for kind in [
            OsLayoutKind::Base,
            OsLayoutKind::ChangHwu,
            OsLayoutKind::OptS,
        ] {
            let os = study.os_layout(kind, cfg.size());
            let app = study.app_base_layout(case);
            let mut cache = SetCensus::new(Cache::new(cfg), cfg);
            let r = study.simulate(
                case,
                &os.layout,
                app.as_ref(),
                &mut cache,
                &SimConfig::fast(),
            );
            // Misses landing in the sets covered by the SelfConfFree area
            // (offsets [0, scf_bytes) of each frame).
            let scf_sets = (os.scf_bytes / u64::from(cfg.line())) as usize;
            let scf_misses: u64 = cache.set_misses()[..scf_sets].iter().sum();
            table.row([
                kind.name().to_owned(),
                r.stats.total_misses().to_string(),
                pct(cache.miss_concentration(8)),
                pct(cache.miss_concentration(32)),
                f(cache.miss_imbalance(), 2),
                if os.scf_bytes == 0 {
                    "n/a".to_owned()
                } else {
                    scf_misses.to_string()
                },
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    println!(
        "Expected shape: Base concentrates its misses in few sets (high cv, high top-8 \
         share); OptS spreads them (lower cv) and its SelfConfFree sets see almost no misses."
    );
    oslay_bench::flush_trace();
}
