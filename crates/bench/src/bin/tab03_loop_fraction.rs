//! Table 3: fraction of the operating-system instructions that belong to
//! loops without procedure calls, per workload.
//!
//! Paper: dynamically 28.9–39.4% of OS instructions; statically ~3% of the
//! executed code and 0.1–0.4% of all code.

use oslay::analysis::loops::loop_fractions;
use oslay::analysis::report::{pct, TextTable};
use oslay::profile::LoopAnalysis;
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner(
        "Table 3: OS instructions in loops without procedure calls",
        &config,
    );
    let study = Study::generate(&config);
    let program = &study.kernel().program;

    let mut table = TextTable::new([
        "Workload",
        "Dyn Loops/Dyn OS",
        "Static Loops/Exec'd OS",
        "Static Loops/Static OS",
        "#loops (no-call)",
        "#loops (call)",
    ]);
    for case in study.cases() {
        let la = LoopAnalysis::analyze(program, &case.os_profile);
        let fr = loop_fractions(program, &case.os_profile, &la);
        table.row([
            case.name().to_owned(),
            pct(fr.dynamic_fraction),
            pct(fr.static_executed_fraction),
            format!("{:.2}%", fr.static_total_fraction * 100.0),
            fr.num_call_free.to_string(),
            fr.num_with_calls.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("Paper: 28.9-39.4% dynamic; ~3% of executed code; 0.1-0.4% of all code.");
    println!("Paper loop census (union): 156 loops without calls, 71 with calls.");
    oslay_bench::flush_trace();
}
