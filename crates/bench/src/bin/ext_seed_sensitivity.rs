//! Extension experiment: seed sensitivity / per-processor variation.
//!
//! The paper's machine has four processors and "for most of the
//! experiments, we take the average of the four processors". In this
//! reproduction, a "processor" corresponds to one stochastic interleaving
//! of the same workload — a trace seed. This binary re-runs the Figure 12
//! headline comparison across several seeds and reports the mean and
//! spread of the normalized miss counts, establishing that the
//! reproduction's conclusions are not one-seed artifacts.

use oslay::analysis::report::{f, TextTable};
use oslay::cache::CacheConfig;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{config_from_args, run_case, AppSide};

const SEEDS: [u64; 4] = [0x05_1995, 0xBEEF, 0x1234_5678, 0xFEED_F00D];

fn main() {
    let mut config = config_from_args();
    // Keep the multi-seed sweep affordable: a quarter of the usual trace
    // per seed still leaves ~300k OS blocks each at paper scale.
    config.os_blocks /= 4;
    println!("== Extension: seed sensitivity of the Figure 12 comparison ==");
    println!(
        "   scale: {:?}, OS blocks/workload/seed: {}, {} seeds",
        config.scale,
        config.os_blocks,
        SEEDS.len()
    );
    println!();

    let cfg = CacheConfig::paper_default();
    let kinds = [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
    ];

    // norms[workload][layout] -> per-seed normalized misses.
    let mut norms = vec![vec![Vec::new(); kinds.len()]; 4];
    for &seed in &SEEDS {
        let study = Study::generate(&StudyConfig {
            seed,
            ..config.clone()
        });
        for (wi, case) in study.cases().iter().enumerate() {
            let mut base = None;
            for (li, &kind) in kinds.iter().enumerate() {
                let misses = run_case(&study, case, kind, AppSide::Base, cfg, &SimConfig::fast())
                    .stats
                    .total_misses();
                let b = *base.get_or_insert(misses);
                norms[wi][li].push(misses as f64 / b as f64 * 100.0);
            }
        }
    }

    let mut table = TextTable::new([
        "Workload",
        "C-H mean",
        "C-H min..max",
        "OptS mean",
        "OptS min..max",
    ]);
    let names = ["TRFD_4", "TRFD+Make", "ARC2D+Fsck", "Shell"];
    let mut opts_always_beats_base = true;
    for (wi, name) in names.iter().enumerate() {
        let stats = |v: &Vec<f64>| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let min = v.iter().copied().fold(f64::INFINITY, f64::min);
            let max = v.iter().copied().fold(0.0f64, f64::max);
            (mean, min, max)
        };
        let (chm, chlo, chhi) = stats(&norms[wi][1]);
        let (om, olo, ohi) = stats(&norms[wi][2]);
        opts_always_beats_base &= ohi < 100.0;
        table.row([
            (*name).to_owned(),
            f(chm, 1),
            format!("{}..{}", f(chlo, 1), f(chhi, 1)),
            f(om, 1),
            format!("{}..{}", f(olo, 1), f(ohi, 1)),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "(normalized misses, Base = 100; spread over {} trace seeds)",
        SEEDS.len()
    );
    println!(
        "OptS beats Base under every seed: {}",
        if opts_always_beats_base { "yes" } else { "NO" }
    );
    oslay_bench::flush_trace();
}
