//! Figure 13: classification of the operating-system references and misses
//! by placement class — MainSeq (sequences with `ExecThresh ≥ 0.01%`),
//! SelfConfFree, Loops, OtherSeq — for Base, C-H, OptS and OptL on the
//! 8 KB direct-mapped cache.
//!
//! Paper shape: MainSeq + SelfConfFree hold 50–65% of the references for
//! three workloads (Shell is OtherSeq-dominated), and 67–83% of the Base
//! misses (33% for Shell); loops cause practically no misses; OptS pushes
//! the MainSeq misses below C-H and eliminates the SelfConfFree misses.
//!
//! Every simulation runs through the attribution engine, so
//! `results/fig13_block_classes.json` additionally carries the
//! compulsory/capacity/conflict split and the measured census per layout
//! (sections `fig13.<workload>.<layout>`).

use oslay::analysis::classify::class_breakdown;
use oslay::analysis::report::{pct, TextTable};
use oslay::cache::CacheConfig;
use oslay::layout::{optimize_os, OptParams};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, run_args, run_attributed_matrix, Reporter};

fn main() {
    let args = run_args();
    let config = args.config;
    banner("Figure 13: references and misses by block class", &config);
    let study = Study::generate_with_threads(&config, args.threads);
    let program = &study.kernel().program;
    let mut reporter = Reporter::new("fig13_block_classes");
    let registry = reporter.registry();

    // Classes are fixed by the block's type in OptL, as in the paper.
    let reference = optimize_os(
        program,
        study.averaged_os_profile(),
        study.os_loops(),
        &OptParams::opt_l(8192),
    );

    let kinds = [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
        OsLayoutKind::OptL,
    ];
    let matrix = run_attributed_matrix(
        &study,
        &kinds,
        CacheConfig::paper_default(),
        &SimConfig::full(),
        args.threads,
        &registry,
    );
    for (case, row) in study.cases().iter().zip(&matrix) {
        println!("{}:", case.name());
        let mut table = TextTable::new([
            "layout",
            "MainSeq refs",
            "SCF refs",
            "Loop refs",
            "OtherSeq refs",
            "MainSeq miss",
            "SCF miss",
            "Loop miss",
            "OtherSeq miss",
        ]);
        for (&kind, (r, attr)) in kinds.iter().zip(row) {
            let bd = class_breakdown(
                program,
                &case.os_profile,
                &reference,
                r.os_block_misses.as_ref().unwrap(),
            );
            let mut cells = vec![kind.name().to_owned()];
            cells.extend(bd.rows.iter().map(|&(_, refs, _)| pct(refs)));
            cells.extend(bd.rows.iter().map(|&(_, _, miss)| pct(miss)));
            table.row(cells);
            reporter.add_section(
                &format!("fig13.{}.{}", case.name(), kind.name()),
                attr.section_fields(),
            );
        }
        print!("{}", table.render());
        println!();
    }
    let path = reporter.finish();
    println!("Run report: {}", path.display());
    oslay_bench::flush_trace();
}
