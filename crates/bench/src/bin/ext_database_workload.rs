//! Extension experiment (beyond the paper's artifacts): a database-like
//! workload.
//!
//! The paper could not run a database load but notes that `Shell` "has
//! some similarity with database loads in that both loads have heavy
//! system call activity". This experiment constructs an OLTP-flavoured
//! workload — transaction processing = read/write/lseek-dominated syscall
//! traffic plus device interrupts, with a checker-style application doing
//! the user-level work — and asks whether the paper's conclusions carry
//! over: does the layout built from the *standard* profile (which never
//! saw this workload) still help it?

use std::collections::BTreeMap;

use oslay::analysis::report::{pct, TextTable};
use oslay::cache::{Cache, CacheConfig};
use oslay::model::synth::{generate_app_mix, AppKind, AppParams};
use oslay::profile::Profile;
use oslay::trace::{Engine, EngineConfig, SyscallProfile, WorkloadSpec};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Extension: database-like (OLTP) workload", &config);
    let study = Study::generate(&config);
    let kernel = study.kernel();

    // OLTP: syscall-bound with disk-interrupt pressure and some paging.
    let tables = &kernel.tables;
    let mut dispatch_weights = BTreeMap::new();
    dispatch_weights.insert(
        tables.interrupt,
        normalize(
            vec![0.35, 0.05, 0.10, 0.05, 0.40, 0.05],
            tables.interrupt_arity,
        ),
    );
    dispatch_weights.insert(
        tables.fault,
        normalize(vec![0.55, 0.05, 0.25, 0.05, 0.10], tables.fault_arity),
    );
    dispatch_weights.insert(
        tables.other,
        normalize(vec![0.70, 0.05, 0.10, 0.15], tables.other_arity),
    );
    dispatch_weights.insert(
        tables.syscall,
        SyscallProfile::ScientificIo.weights(tables.syscall_arity),
    );
    let spec = WorkloadSpec {
        name: "OLTP".into(),
        invocation_mix: [0.35, 0.10, 0.52, 0.03],
        dispatch_weights,
        app_burst_mean: 180.0,
    };
    let app = generate_app_mix(
        &[(AppKind::Utility, 0.7), (AppKind::Compiler, 0.3)],
        &AppParams::new(config.seed ^ 0xD8).with_scale(config.app_scale),
    );
    let mut engine = Engine::new(
        &kernel.program,
        Some(&app),
        &spec,
        EngineConfig::new(config.seed ^ 0xD87),
    );
    let trace = engine.run(config.os_blocks);
    let os_profile = Profile::collect(&kernel.program, &trace);
    println!(
        "OLTP trace: {} OS blocks, OS share {}, executed footprint {} bytes",
        trace.os_blocks(),
        pct(trace.os_blocks() as f64 / trace.total_blocks() as f64),
        os_profile.executed_bytes(&kernel.program),
    );
    println!();

    // Replay the OLTP trace against layouts built from the four *standard*
    // workloads' averaged profile — the cross-workload generalization
    // question.
    let cfg = CacheConfig::paper_default();
    let app_base = oslay::layout::base_layout(&app, oslay::layout::APP_BASE);
    let mut table = TextTable::new(["layout", "misses", "miss rate", "norm"]);
    let mut base_misses = None;
    for kind in [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
    ] {
        let os = study.os_layout(kind, cfg.size());
        let mut cache = Cache::new(cfg);
        let mut misses = 0u64;
        let mut accesses = 0u64;
        for (addr, domain) in
            oslay::layout::fetch_stream(trace.events(), &os.layout, Some(&app_base))
        {
            accesses += 1;
            if oslay::cache::InstructionCache::access(&mut cache, addr, domain).is_miss() {
                misses += 1;
            }
        }
        let base = *base_misses.get_or_insert(misses);
        table.row([
            kind.name().to_owned(),
            misses.to_string(),
            pct(misses as f64 / accesses as f64),
            format!("{:.1}%", misses as f64 / base as f64 * 100.0),
        ]);
        let _ = SimConfig::fast();
    }
    print!("{}", table.render());
    println!();
    println!(
        "The layouts were built from the four standard workloads only; the OLTP mix was \
         never profiled. The paper's claim that the popular kernel paths are shared across \
         workloads predicts the optimized layouts still help — the table above tests that."
    );
    oslay_bench::flush_trace();
}

fn normalize(mut w: Vec<f64>, arity: usize) -> Vec<f64> {
    let min = w.iter().copied().fold(f64::INFINITY, f64::min).max(1e-6);
    w.resize(arity, min);
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}
