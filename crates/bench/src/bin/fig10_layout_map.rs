//! Figure 10: the optimized layout of the code in memory — printed from
//! the actual `OptL` layout rather than drawn as a diagram.
//!
//! Paper structure to verify: the SelfConfFree area occupies the bottom of
//! logical cache 0 and holds the hottest blocks; sequences fill the rest
//! of the logical caches in decreasing popularity, skipping every later
//! logical cache's SelfConfFree window (which holds seldom-executed code);
//! the loop area sits at the end of the sequences; the rest of memory is
//! rarely- or never-executed code.

use oslay::analysis::report::{kb, pct};
use oslay::layout::{layout_regions, optimize_os, render_regions, BlockClass, OptParams};
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner(
        "Figure 10: optimized memory layout (OptL, 8KB logical caches)",
        &config,
    );
    let study = Study::generate(&config);
    let program = &study.kernel().program;
    let opt = optimize_os(
        program,
        study.averaged_os_profile(),
        study.os_loops(),
        &OptParams::opt_l(8192),
    );

    let regions = layout_regions(program, &opt);
    println!(
        "SelfConfFree area: {} ({} blocks)",
        kb(opt.scf_bytes),
        regions
            .iter()
            .filter(|r| r.class == BlockClass::SelfConfFree)
            .map(|r| r.blocks)
            .sum::<usize>()
    );
    let hot_end = regions
        .iter()
        .filter(|r| {
            matches!(
                r.class,
                BlockClass::MainSeq | BlockClass::OtherSeq | BlockClass::Loop
            )
        })
        .map(|r| r.end)
        .max()
        .unwrap_or(0);
    println!(
        "Hot region (SCF + sequences + loop area): {} spanning {} logical caches",
        kb(hot_end),
        hot_end.div_ceil(8192)
    );
    let total: u64 = regions
        .iter()
        .map(oslay::layout::RegionSummary::bytes)
        .sum();
    let cold: u64 = regions
        .iter()
        .filter(|r| r.class == BlockClass::Cold)
        .map(oslay::layout::RegionSummary::bytes)
        .sum();
    println!(
        "Cold code: {} of the image ({}) — fills the SCF windows and the tail",
        pct(cold as f64 / total as f64),
        kb(cold)
    );
    println!();

    // Print the first 40 regions (the interesting hot structure) and a
    // tail summary.
    let head: Vec<_> = regions.iter().take(40).cloned().collect();
    print!("{}", render_regions(&head));
    if regions.len() > 40 {
        println!(
            "... {} more regions (cold bulk up to {:#x})",
            regions.len() - 40,
            regions.last().unwrap().end
        );
    }
    oslay_bench::flush_trace();
}
