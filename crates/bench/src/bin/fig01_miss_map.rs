//! Figure 1: operating-system misses as a function of code address for
//! TRFD+Make on a 16 KB direct-mapped cache (the Alliant FX/8 geometry),
//! under the Base layout.
//!
//! Chart (a) total misses, (b) the self-interference component, (c) the
//! interference-with-application component, one data point per 1 KB of
//! code. Paper shape: misses cluster in a few sharp peaks, dominated by
//! self-interference (over 90% of OS misses); the two highest peaks are
//! the timer/multiply-divide conflict and the user-system-transition /
//! syscall-prologue conflict.

use oslay::analysis::figures::render_address_map;
use oslay::analysis::report::{bar_chart, pct};
use oslay::cache::{Cache, CacheConfig};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args};
use oslay_cache::MissKind;

fn main() {
    let config = config_from_args();
    banner(
        "Figure 1: OS misses vs code address (TRFD+Make, 16KB direct-mapped, Base)",
        &config,
    );
    let study = Study::generate(&config);
    let case = &study.cases()[1]; // TRFD+Make
    let base = study.os_layout(OsLayoutKind::Base, CacheConfig::alliant().size());
    let app = study.app_base_layout(case);
    let mut cache = Cache::new(CacheConfig::alliant());
    let r = study.simulate(
        case,
        &base.layout,
        app.as_ref(),
        &mut cache,
        &SimConfig::full(),
    );

    let total = r.os_miss_map.as_ref().unwrap();
    let selfm = r.os_self_miss_map.as_ref().unwrap();
    let cross = r.os_cross_miss_map.as_ref().unwrap();

    let os_misses = r.stats.domain_misses(oslay::model::Domain::Os);
    println!(
        "OS misses: {os_misses}  (self-interference {}, app-interference {}, cold {})",
        pct(r.stats.misses(MissKind::OsSelf) as f64 / os_misses as f64),
        pct(r.stats.misses(MissKind::OsByApp) as f64 / os_misses as f64),
        pct(r.stats.misses(MissKind::Cold) as f64 / os_misses as f64),
    );
    println!(
        "Miss concentration: top 5 one-KB ranges hold {} of all OS misses (paper: the two \
         dominant peaks alone hold 20-35%).",
        pct(total.peak_concentration(5)),
    );
    println!();

    for (label, map) in [
        ("(a) total OS misses", total),
        ("(b) self-interference", selfm),
        ("(c) interference with application", cross),
    ] {
        println!("{label}: {} misses", map.total());
        print!("{}", render_address_map(map, 96, 8));
        println!("top peaks:");
        let items: Vec<(String, f64)> = map
            .peaks(12)
            .into_iter()
            .map(|(addr, count)| (format!("{:#08x}", addr), count as f64))
            .collect();
        print!("{}", bar_chart(&items, 48));
        println!();
    }
    oslay_bench::flush_trace();
}
