//! Table 2: predictability and weight of the core (≈ 8 KB) and regular
//! (≈ 16 KB) sequence families, per workload.
//!
//! Paper: core sequences (471 BBs over 61 routines, ~7.8 KB) have
//! P(stay in family) 0.95–0.99 and P(go to the next block of the same
//! sequence) 0.71–0.77; they hold 7–28% of executed blocks, 23–67% of
//! references and 35–75% of misses. Regular sequences (832 BBs, 89
//! routines, ~14.5 KB): 0.96–0.98 / 0.77–0.79, 13–38% of blocks, 38–74%
//! of references, 57–88% of misses.

use oslay::analysis::report::{f, pct, TextTable};
use oslay::analysis::spatial::{characterize_sequences, sequences_within_budget};
use oslay::cache::{Cache, CacheConfig};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Table 2: sequence predictability and weight", &config);
    let study = Study::generate(&config);
    let program = &study.kernel().program;
    let avg = study.averaged_os_profile();

    // Miss counts per workload under the Base layout (8 KB DM, 32 B).
    let base = study.os_layout(OsLayoutKind::Base, 8192);
    let miss_counts: Vec<Vec<u64>> = study
        .cases()
        .iter()
        .map(|case| {
            let app = study.app_base_layout(case);
            let mut cache = Cache::new(CacheConfig::paper_default());
            study
                .simulate(
                    case,
                    &base.layout,
                    app.as_ref(),
                    &mut cache,
                    &SimConfig::full(),
                )
                .os_block_misses
                .expect("block misses requested")
        })
        .collect();

    for (label, budget) in [("Core", 8 * 1024_u64), ("Regular", 16 * 1024_u64)] {
        let family = sequences_within_budget(program, avg, budget);
        let probe = characterize_sequences(program, avg, &family, None);
        println!(
            "{label} sequences: {} BBs spanning {} routines, {:.1} KB",
            probe.num_blocks,
            probe.num_routines,
            probe.bytes as f64 / 1024.0
        );
        let mut table = TextTable::new([
            "Workload",
            "P(any in seq)",
            "P(next in seq)",
            "Static BBs (%)",
            "Refs (%)",
            "Misses (%)",
        ]);
        for (case, misses) in study.cases().iter().zip(&miss_counts) {
            let c = characterize_sequences(program, &case.os_profile, &family, Some(misses));
            table.row([
                case.name().to_owned(),
                f(c.prob_any_in_seq, 2),
                f(c.prob_next_in_seq, 2),
                pct(c.static_block_fraction),
                pct(c.reference_fraction),
                pct(c.miss_fraction),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    oslay_bench::flush_trace();
}
