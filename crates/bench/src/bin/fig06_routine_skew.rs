//! Figure 6: number of times each operating-system routine is invoked,
//! ranked most-to-least frequent and normalized to 100 invocations, per
//! workload.
//!
//! Paper: of ~600 routines executed, a few absorb most invocations —
//! tiny routines like lock handling, timer management, state save/restore,
//! TLB invalidation, block zeroing.

use oslay::analysis::report::{pct, TextTable};
use oslay::analysis::temporal::InvocationSkew;
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Figure 6: routine invocation skew", &config);
    let study = Study::generate(&config);
    let program = &study.kernel().program;

    let mut table = TextTable::new(["Workload", "#invoked", "top-1", "top-5", "top-10", "top-20"]);
    for case in study.cases() {
        let skew = InvocationSkew::measure(program, &case.os_profile);
        table.row([
            case.name().to_owned(),
            skew.num_invoked().to_string(),
            pct(skew.top_share(1) / 100.0),
            pct(skew.top_share(5) / 100.0),
            pct(skew.top_share(10) / 100.0),
            pct(skew.top_share(20) / 100.0),
        ]);
    }
    print!("{}", table.render());
    println!();

    // Name the heavy hitters of the averaged profile, as the paper does.
    let skew = InvocationSkew::measure(program, study.averaged_os_profile());
    println!("Most invoked routines (averaged profile):");
    for (r, share) in skew.ranked.iter().take(12) {
        println!("  {:>5.1}%  {}", share, program.routine(*r).name());
    }
    oslay_bench::flush_trace();
}
