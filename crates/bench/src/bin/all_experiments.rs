//! One-shot digest of the whole evaluation; see `oslay_bench::digest`.

fn main() {
    oslay_bench::digest::run();
}
