//! Figure 15: (a) total instruction miss rates for 4–32 KB direct-mapped
//! caches with 32-byte lines under Base, C-H and OptS; (b) estimated
//! execution speed increase of OptS over Base under the simple model of
//! Section 5.2 (miss penalties of 10, 30 and 50 cycles).
//!
//! Paper shape: Base miss rate 0.87–6.75%; C-H removes 39–60% of it; OptS
//! removes a further 19–38% of C-H's remainder for 4–16 KB caches and ties
//! C-H at 32 KB (the cache then holds the working set); with a 30-cycle
//! penalty the speedups are in the 10–25% range, peaking at 8 KB.
//!
//! Extra flags: `--single-pass` (default) evaluates the whole grid in one
//! trace pass per workload; `--per-point` replays each point separately.
//! Output is byte-identical either way.

use std::sync::Arc;

use oslay::analysis::report::{f, pct, TextTable};
use oslay::cache::CacheConfig;
use oslay::perf::ExecTimeModel;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{
    banner, run_args_with, run_sweep_mode, sweep_mode_arg, AppSide, Reporter, SweepPoint,
};

fn main() {
    let mut single_pass = true;
    let args = run_args_with(StudyConfig::paper(), |arg, _| {
        sweep_mode_arg(arg, &mut single_pass)
    });
    let config = args.config.clone();
    banner("Figure 15: miss rate vs cache size; speedup model", &config);
    let mut reporter = Reporter::new("fig15_cache_size_speedup");
    let registry = reporter.registry();
    let study = Study::generate_with_threads(&config, args.threads);
    let sizes = [4096u32, 8192, 16384, 32768];
    let kinds = [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
    ];

    // One memoized OS layout per (kind, size); building a layout costs
    // far more than replaying through it.
    let layouts: Vec<((OsLayoutKind, u32), Arc<oslay_layout::Layout>)> = sizes
        .iter()
        .flat_map(|&size| kinds.map(|kind| (kind, size)))
        .map(|key| (key, Arc::new(study.os_layout(key.0, key.1).layout)))
        .collect();
    let layout_for = |kind, size| {
        Arc::clone(
            &layouts
                .iter()
                .find(|&&(k, _)| k == (kind, size))
                .expect("every (kind, size) is memoized")
                .1,
        )
    };
    let mut points = Vec::new();
    for &size in &sizes {
        let cfg = CacheConfig::new(size, 32, 1);
        for wi in 0..study.cases().len() {
            for kind in kinds {
                points.push(SweepPoint {
                    case: wi,
                    os: layout_for(kind, size),
                    app: AppSide::Base,
                    cache: cfg,
                });
            }
        }
    }
    let results = run_sweep_mode(
        &study,
        points,
        &SimConfig::fast(),
        args.threads,
        &registry,
        single_pass,
    );

    // miss_rate[size][workload][layout]
    let mut rates = vec![vec![[0.0f64; 3]; study.cases().len()]; sizes.len()];
    let mut results = results.into_iter();
    for (si, &size) in sizes.iter().enumerate() {
        for (wi, case) in study.cases().iter().enumerate() {
            for slot in rates[si][wi].iter_mut() {
                *slot = results.next().expect("one result per point").miss_rate();
            }
            let [b, ch, opt] = rates[si][wi];
            reporter.add_section(
                &format!("fig15a.{}.{}KB", case.name(), size / 1024),
                [("Base", b), ("C-H", ch), ("OptS", opt)],
            );
        }
    }

    println!("(a) Total instruction miss rates:");
    let mut table = TextTable::new([
        "Workload/size",
        "Base",
        "C-H",
        "OptS",
        "C-H/Base",
        "OptS/C-H",
    ]);
    for (wi, case) in study.cases().iter().enumerate() {
        for (si, &size) in sizes.iter().enumerate() {
            let [b, ch, opt] = rates[si][wi];
            table.row([
                format!("{} {}KB", case.name(), size / 1024),
                pct(b),
                pct(ch),
                pct(opt),
                f(ch / b, 2),
                f(opt / ch, 2),
            ]);
        }
    }
    print!("{}", table.render());
    println!();

    println!("(b) Estimated speed increase of OptS over Base (Section 5.2 model):");
    let mut table = TextTable::new([
        "Workload/size",
        "10-cycle penalty",
        "30-cycle penalty",
        "50-cycle penalty",
    ]);
    for (wi, case) in study.cases().iter().enumerate() {
        for (si, &size) in sizes.iter().enumerate() {
            let [b, _, opt] = rates[si][wi];
            let mut cells = vec![format!("{} {}KB", case.name(), size / 1024)];
            let mut fields = Vec::new();
            for p in ExecTimeModel::PAPER_PENALTIES {
                let m = ExecTimeModel::paper(p);
                let gain = (m.speedup(b, opt) - 1.0) * 100.0;
                cells.push(format!("+{gain:.1}%"));
                fields.push((format!("penalty{p:.0}_pct"), gain));
            }
            reporter.add_section(&format!("fig15b.{}.{}KB", case.name(), size / 1024), fields);
            table.row(cells);
        }
    }
    print!("{}", table.render());
    println!();
    let path = reporter.finish();
    println!("Run report: {}", path.display());
    oslay_bench::flush_trace();
}
