//! Beyond the paper: static classification vs the measured Figure-13
//! block classes.
//!
//! Figure 13 decomposes each workload's OS references and misses by the
//! block's *placement class* in the reference OptL layout (MainSeq,
//! SelfConfFree, Loop, OtherSeq). This experiment puts the
//! abstract-interpretation classifier next to those measurements: per
//! placement class, the share of weighted fetches the analysis *proves*
//! always-hit or persistent, against the share of measured misses the
//! attributed replay actually observed there.
//!
//! The two views must cohere: measured misses can only land in the
//! statically *unguaranteed* share (always-miss + unclassified, plus one
//! first-miss per persistent line), so a class whose guaranteed share is
//! high must show few measured misses. As a hard cross-check, blocks
//! whose every access point is proven always-hit are asserted to measure
//! zero misses in every workload — the soundness gate's claim at block
//! granularity.
//!
//! Writes `results/ext_absint_vs_measured.json` with sections
//! `absint_fig13.<layout>.<class>`.

use std::collections::HashMap;

use oslay::analysis::classify::FIG13_CLASSES;
use oslay::analysis::report::{pct, TextTable};
use oslay::cache::CacheConfig;
use oslay::layout::{optimize_os, BlockClass, OptParams};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::absint_gate::classify_study_layout;
use oslay_bench::{banner, run_args, run_attributed_matrix, Reporter};
use oslay_verify::{LayoutView, LineClass};

fn class_label(c: BlockClass) -> &'static str {
    match c {
        BlockClass::MainSeq => "MainSeq",
        BlockClass::SelfConfFree => "SelfConfFree",
        BlockClass::Loop => "Loop",
        BlockClass::OtherSeq => "OtherSeq",
        BlockClass::Cold => "Cold",
    }
}

fn main() {
    let args = run_args();
    let config = args.config;
    banner(
        "Ext: static classification vs measured Figure-13 classes",
        &config,
    );
    let study = Study::generate_with_threads(&config, args.threads);
    let program = &study.kernel().program;
    let mut reporter = Reporter::new("ext_absint_vs_measured");
    let registry = reporter.registry();
    let cfg = CacheConfig::paper_default();

    // Placement classes are fixed by the block's type in the reference
    // OptL layout, exactly as Figure 13 does.
    let reference = optimize_os(
        program,
        study.averaged_os_profile(),
        study.os_loops(),
        &OptParams::opt_l(cfg.size()),
    );

    let kinds = [OsLayoutKind::Base, OsLayoutKind::OptS];
    let matrix = run_attributed_matrix(
        &study,
        &kinds,
        cfg,
        &SimConfig::full(),
        args.threads,
        &registry,
    );

    for (k, &kind) in kinds.iter().enumerate() {
        let view = LayoutView::from_layout(&study.os_layout(kind, cfg.size()).layout);
        let c = classify_study_layout(&study, &view, cfg);
        assert_eq!(c.invariant_violations, 0, "absint lattice violated");

        // Static weighted tallies per placement class, and the set of
        // blocks whose every point is proven always-hit.
        let mut static_guaranteed: HashMap<BlockClass, u64> = HashMap::new();
        let mut static_total: HashMap<BlockClass, u64> = HashMap::new();
        let mut block_points: HashMap<u32, (u64, u64)> = HashMap::new(); // (ah points, points)
        for p in &c.points {
            let class = reference.class(oslay_model::BlockId::new(p.block as usize));
            *static_total.entry(class).or_insert(0) += p.weight;
            if matches!(p.class, LineClass::AlwaysHit | LineClass::Persistent) {
                *static_guaranteed.entry(class).or_insert(0) += p.weight;
            }
            let entry = block_points.entry(p.block).or_insert((0, 0));
            entry.1 += 1;
            if p.class == LineClass::AlwaysHit {
                entry.0 += 1;
            }
        }
        let fully_ah: Vec<u32> = block_points
            .iter()
            .filter(|&(_, &(ah, n))| n > 0 && ah == n)
            .map(|(&b, _)| b)
            .collect();

        // Measured misses per placement class, summed over workloads —
        // plus the hard zero-miss cross-check on fully always-hit blocks.
        let mut measured: HashMap<BlockClass, u64> = HashMap::new();
        let mut measured_total = 0u64;
        let mut fully_ah_misses = 0u64;
        for row in &matrix {
            let (r, _) = &row[k];
            let misses = r.os_block_misses.as_ref().expect("attributed replay");
            for (b, &m) in misses.iter().enumerate() {
                let class = reference.class(oslay_model::BlockId::new(b));
                *measured.entry(class).or_insert(0) += m;
                measured_total += m;
            }
            for &b in &fully_ah {
                fully_ah_misses += misses[b as usize];
            }
        }
        assert_eq!(
            fully_ah_misses,
            0,
            "{}: measured misses on fully always-hit blocks",
            kind.name()
        );

        println!(
            "{} — {} block(s) fully proven always-hit, 0 measured misses on them:",
            kind.name(),
            fully_ah.len()
        );
        let mut table = TextTable::new([
            "class",
            "static guaranteed",
            "static unguaranteed",
            "measured miss share",
        ]);
        for &class in &FIG13_CLASSES {
            let total = static_total.get(&class).copied().unwrap_or(0);
            let guaranteed = static_guaranteed.get(&class).copied().unwrap_or(0);
            let gshare = if total == 0 {
                0.0
            } else {
                guaranteed as f64 / total as f64
            };
            let mshare = if measured_total == 0 {
                0.0
            } else {
                measured.get(&class).copied().unwrap_or(0) as f64 / measured_total as f64
            };
            table.row([
                class_label(class).to_owned(),
                pct(gshare),
                pct(1.0 - gshare),
                pct(mshare),
            ]);
            reporter.add_section(
                &format!("absint_fig13.{}.{}", kind.name(), class_label(class)),
                [
                    ("static_guaranteed_share", gshare),
                    ("measured_miss_share", mshare),
                ],
            );
        }
        print!("{}", table.render());
        reporter.add_section(
            &format!("absint_fig13.{}.check", kind.name()),
            [
                ("fully_always_hit_blocks", fully_ah.len() as f64),
                ("fully_always_hit_measured_misses", fully_ah_misses as f64),
            ],
        );
        println!();
    }

    println!(
        "Reading: measured misses can only fall in the statically unguaranteed share \
         (plus one first-miss per persistent line); OptS shrinks both together."
    );
    let path = reporter.finish();
    println!("Run report: {}", path.display());
}
