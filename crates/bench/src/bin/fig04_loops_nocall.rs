//! Figure 4: behaviour of the operating-system loops that do *not* call
//! procedures (union of all workloads): distribution of iterations per
//! invocation (left chart) and of the static size of the executed part
//! (right chart).
//!
//! Paper: 156 such loops; 50% execute ≤ 6 iterations per invocation and
//! ~75% execute ≤ 25; the largest spans only 300 bytes — caches have no
//! problem holding them, barring conflicts.

use oslay::analysis::loops::loop_shape;
use oslay::analysis::report::{bar_chart, pct};
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Figure 4: loops without procedure calls", &config);
    let study = Study::generate(&config);
    let shape = loop_shape(study.os_loops().executed_loops().filter(|l| !l.has_calls));

    println!("Executed call-free loops: {} (paper: 156)", shape.count);
    println!(
        "Median iterations/invocation: {:.1}; fraction <= 6: {}; fraction <= 25: {}",
        shape.median_iterations,
        pct(shape.iterations.cumulative_fraction(6.0)),
        pct(shape.iterations.cumulative_fraction(25.0)),
    );
    println!(
        "Median executed size: {:.0} bytes; fraction <= 300 bytes: {}",
        shape.median_size,
        pct(shape.sizes.cumulative_fraction(300.0)),
    );
    println!();

    println!("Iterations per invocation:");
    let items: Vec<(String, f64)> = shape
        .iterations
        .rows()
        .map(|(l, c, _)| (l, c as f64))
        .collect();
    print!("{}", bar_chart(&items, 40));
    println!();
    println!("Executed static size (bytes):");
    let items: Vec<(String, f64)> = shape.sizes.rows().map(|(l, c, _)| (l, c as f64)).collect();
    print!("{}", bar_chart(&items, 40));
    oslay_bench::flush_trace();
}
