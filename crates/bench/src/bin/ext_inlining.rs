//! Extension experiment: function inlining vs sequences (Section 4.1's
//! rejected alternative).
//!
//! "A possible alternative to our scheme could be function inlining. ...
//! Function inlining, however, expands the active code size and may
//! increase the chance of conflicts. Indeed, while Chen et al. limited
//! inlining to frequent routines only, their results revealed that
//! inlining may not be a stable and effective scheme."
//!
//! This binary inlines the kernel's hot call sites (like Chen et al.,
//! only frequent ones), re-traces the same workloads on the expanded
//! kernel, and compares C-H and OptS layouts of the inlined kernel
//! against plain OptS of the original.

use oslay::analysis::report::{pct, TextTable};
use oslay::cache::{Cache, CacheConfig, InstructionCache};
use oslay::layout::{chang_hwu_layout, fetch_stream, optimize_os, OptParams};
use oslay::model::transform::inline_calls;
use oslay::model::BlockId;
use oslay::profile::{LoopAnalysis, Profile};
use oslay::trace::{Engine, EngineConfig};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args, run_case, AppSide};

fn main() {
    let config = config_from_args();
    banner(
        "Extension: function inlining vs sequences (8KB direct-mapped)",
        &config,
    );
    let study = Study::generate(&config);
    let program = &study.kernel().program;
    let profile = study.averaged_os_profile();
    let cfg = CacheConfig::paper_default();

    // Hot call sites: executed at least 0.05% of all block executions
    // ("limited inlining to frequent routines only").
    let total = profile.total_node_weight() as f64;
    let sites: Vec<BlockId> = program
        .blocks()
        .filter(|(id, blk)| {
            blk.terminator().callee().is_some() && profile.node_weight(*id) as f64 / total >= 0.0005
        })
        .map(|(id, _)| id)
        .collect();
    let (inlined, added) = inline_calls(program, &sites).expect("inlined kernel validates");
    println!(
        "Inlined {} hot call sites: +{} blocks, static size {} -> {} (+{}).",
        sites.len(),
        added,
        program.total_size(),
        inlined.total_size(),
        pct(inlined.total_size() as f64 / program.total_size() as f64 - 1.0),
    );
    println!();

    // Re-trace the inlined kernel under the same (OS-only) workloads and
    // collect its own profiles; then lay it out and replay.
    let mut table = TextTable::new([
        "Workload",
        "OptS (orig)",
        "C-H (inlined)",
        "OptS (inlined)",
        "active-size growth",
    ]);
    for (i, case) in study.cases().iter().enumerate() {
        if case.app.is_some() {
            continue; // compare on the OS-only workload for a clean read
        }
        // Plain OptS baseline on the original kernel.
        let orig = run_case(
            &study,
            case,
            OsLayoutKind::OptS,
            AppSide::Base,
            cfg,
            &SimConfig::fast(),
        );

        // Trace the inlined kernel with the same spec and engine seed.
        let mut engine = Engine::new(
            &inlined,
            None,
            &case.spec,
            EngineConfig::new(study.config().seed ^ (0x7_0000 + i as u64)),
        );
        let trace = engine.run(study.config().os_blocks);
        let iprofile = Profile::collect(&inlined, &trace);
        let iloops = LoopAnalysis::analyze(&inlined, &iprofile);

        let replay = |layout: &oslay::layout::Layout| {
            let mut cache = Cache::new(cfg);
            let mut misses = 0u64;
            for (addr, domain) in fetch_stream(trace.events(), layout, None) {
                if cache.access(addr, domain).is_miss() {
                    misses += 1;
                }
            }
            (misses, cache.stats().miss_rate())
        };
        let (ch_m, _) = replay(&chang_hwu_layout(&inlined, &iprofile, 0));
        let opt = optimize_os(&inlined, &iprofile, &iloops, &OptParams::opt_s(cfg.size()));
        let (opt_m, _) = replay(&opt.layout);
        let growth = iprofile.executed_bytes(&inlined) as f64
            / case.os_profile.executed_bytes(program) as f64
            - 1.0;
        table.row([
            case.name().to_owned(),
            orig.stats.total_misses().to_string(),
            ch_m.to_string(),
            opt_m.to_string(),
            pct(growth),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "The paper's expectation: inlining grows the active code size, so the inlined \
         kernel's optimized layouts should not beat — and may lose to — plain OptS, whose \
         sequences interleave only the *hot* callee blocks at no size cost."
    );
    oslay_bench::flush_trace();
}
