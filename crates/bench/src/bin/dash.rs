//! Zero-dependency run-report dashboard.
//!
//! Aggregates three artifact families into one view:
//!
//! * simulated-time telemetry documents (`--telemetry-out` output),
//! * `results/*.json` run reports, and
//! * the `results/bench_history.jsonl` perf trajectory,
//!
//! rendered as a single self-contained HTML+SVG page (no external
//! scripts, fonts, or network), an ASCII terminal view (`--term`), or a
//! strict validator (`--check`, the CI gate: exit 0 iff every telemetry
//! file passes schema and monotonicity validation).
//!
//! ```text
//! dash --check --telemetry results/telemetry.json
//! dash --term  --telemetry results/telemetry.json
//! dash --telemetry results/telemetry.json --results results \
//!      --history results/bench_history.jsonl --out dash.html
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use oslay_analysis::dash::{html_escape, svg_heat_strip, svg_sparkline, text_sparkline, Band};
use oslay_observe::json::JsonValue;
use oslay_observe::timeline::{validate_telemetry, TelemetryDoc, TelemetryRun};
use oslay_observe::RunReport;
use oslay_perf::history::{self, HistoryEntry};

struct Args {
    telemetry: Vec<PathBuf>,
    results: PathBuf,
    history: PathBuf,
    out: PathBuf,
    term: bool,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dash [--check|--term] [--telemetry FILE]... [--results DIR] \
         [--history FILE] [--out FILE]\n\
         \x20 --telemetry FILE  telemetry document(s) from --telemetry-out (repeatable)\n\
         \x20 --results DIR     run-report directory (default: results)\n\
         \x20 --history FILE    bench trajectory (default: results/bench_history.jsonl)\n\
         \x20 --out FILE        HTML output path (default: dash.html)\n\
         \x20 --check           validate telemetry files; exit 0 iff all pass\n\
         \x20 --term            render to the terminal instead of HTML"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv: std::collections::VecDeque<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        telemetry: Vec::new(),
        results: PathBuf::from("results"),
        history: PathBuf::from("results/bench_history.jsonl"),
        out: PathBuf::from("dash.html"),
        term: false,
        check: false,
    };
    while let Some(arg) = argv.pop_front() {
        match arg.as_str() {
            "--telemetry" => match argv.pop_front() {
                Some(v) => args.telemetry.push(PathBuf::from(v)),
                None => usage(),
            },
            "--results" => match argv.pop_front() {
                Some(v) => args.results = PathBuf::from(v),
                None => usage(),
            },
            "--history" => match argv.pop_front() {
                Some(v) => args.history = PathBuf::from(v),
                None => usage(),
            },
            "--out" => match argv.pop_front() {
                Some(v) => args.out = PathBuf::from(v),
                None => usage(),
            },
            "--term" => args.term = true,
            "--check" => args.check = true,
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.check {
        return check(&args);
    }
    let docs = load_docs(&args);
    if args.term {
        render_term(&docs);
        return ExitCode::SUCCESS;
    }
    let html = render_html(&args, &docs);
    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&args.out, html) {
        Ok(()) => {
            println!("dashboard written: {}", args.out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dash: cannot write {}: {e}", args.out.display());
            ExitCode::FAILURE
        }
    }
}

/// The `--check` gate: every telemetry file must read and validate.
fn check(args: &Args) -> ExitCode {
    if args.telemetry.is_empty() {
        eprintln!("dash --check: no --telemetry files given");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &args.telemetry {
        match std::fs::read_to_string(path) {
            Ok(text) => match validate_telemetry(&text) {
                Ok(stats) => println!(
                    "{}: ok — {} run(s), {} frame(s), {} phase(s), {} event(s)",
                    path.display(),
                    stats.runs,
                    stats.frames,
                    stats.phases,
                    stats.events
                ),
                Err(e) => {
                    eprintln!("{}: INVALID — {e}", path.display());
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("{}: unreadable — {e}", path.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Loads every telemetry document, skipping unreadable/invalid files
/// with a warning (rendering is best-effort; `--check` is the gate).
fn load_docs(args: &Args) -> Vec<(PathBuf, TelemetryDoc)> {
    let mut docs = Vec::new();
    for path in &args.telemetry {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match TelemetryDoc::parse(&text) {
                Ok(doc) => docs.push((path.clone(), doc)),
                Err(e) => eprintln!("dash: skipping {}: {e}", path.display()),
            },
            Err(e) => eprintln!("dash: skipping {}: {e}", path.display()),
        }
    }
    docs
}

fn phase_bands(run: &TelemetryRun) -> Vec<Band> {
    run.phases
        .iter()
        .map(|p| Band {
            start: p.start_frame,
            end: p.end_frame,
        })
        .collect()
}

/// Per-frame fill fraction (`0..=1`) for the heat strip.
fn fill_series(run: &TelemetryRun) -> Vec<f64> {
    run.rows.iter().map(|r| r[9] as f64 / 1e6).collect()
}

fn render_term(docs: &[(PathBuf, TelemetryDoc)]) {
    if docs.is_empty() {
        println!("no telemetry loaded (pass --telemetry FILE)");
        return;
    }
    for (path, doc) in docs {
        println!("== {} ==", path.display());
        for run in &doc.runs {
            let rates = run.miss_rates();
            println!();
            println!(
                "{}  ({} frames @ 2^{} events, {} phases)",
                run.label,
                run.rows.len(),
                run.window_log2,
                run.phases.len()
            );
            println!("  miss rate |{}|", text_sparkline(&rates));
            println!("  fill      |{}|", text_sparkline(&fill_series(run)));
            println!(
                "  {:>5} {:>12} {:>14} {:>10} {:>26}",
                "phase", "frames", "events", "miss ppm", "comp/cap/conf"
            );
            for p in &run.phases {
                println!(
                    "  {:>5} {:>12} {:>14} {:>10} {:>26}",
                    p.id,
                    format!("{}..{}", p.start_frame, p.end_frame),
                    format!("{}..{}", p.events_start, p.events_end),
                    p.miss_rate_ppm,
                    format!("{}/{}/{}", p.compulsory, p.capacity, p.conflict)
                );
            }
        }
        println!();
    }
}

/// Walks a run report's `sections` object into HTML tables.
fn report_sections_html(report: &RunReport) -> String {
    let mut out = String::new();
    let JsonValue::Object(members) = report.to_json() else {
        return out;
    };
    let Some(JsonValue::Object(sections)) = members
        .into_iter()
        .find(|(k, _)| k == "sections")
        .map(|(_, v)| v)
    else {
        return out;
    };
    for (name, fields) in sections {
        if name.starts_with("perf.") {
            continue; // machine-local self-measurement, not content
        }
        let JsonValue::Object(fields) = fields else {
            continue;
        };
        let _ = write!(out, "<h4>{}</h4><table>", html_escape(&name));
        for (field, value) in fields {
            let v = value.as_f64().unwrap_or(f64::NAN);
            let _ = write!(
                out,
                "<tr><td>{}</td><td class=\"num\">{v:.6}</td></tr>",
                html_escape(&field)
            );
        }
        out.push_str("</table>");
    }
    out
}

/// Bench-history trend: per case, the throughput series and the latest
/// run's delta against the rolling median of the prior ten.
fn history_html(entries: &[HistoryEntry]) -> String {
    let mut out = String::new();
    if entries.is_empty() {
        return "<p>no bench history.</p>".to_owned();
    }
    let mut case_names: Vec<String> = Vec::new();
    for e in entries {
        for c in &e.cases {
            if !case_names.contains(&c.name) {
                case_names.push(c.name.clone());
            }
        }
    }
    for name in &case_names {
        let series: Vec<f64> = entries
            .iter()
            .filter_map(|e| e.events_per_sec(name))
            .collect();
        let Some((&last, prior)) = series.split_last() else {
            continue;
        };
        let mut window: Vec<f64> = prior.iter().rev().take(10).copied().collect();
        window.sort_by(f64::total_cmp);
        let delta = if window.is_empty() {
            "no baseline".to_owned()
        } else {
            let median = window[window.len() / 2];
            format!("{:+.1}% vs rolling median", 100.0 * (last / median - 1.0))
        };
        let _ = write!(
            out,
            "<div class=\"trend\"><span class=\"lbl\">{}</span> {} \
             <span class=\"delta\">{} ev/s, {}</span></div>",
            html_escape(name),
            svg_sparkline(&series, &[], 240, 28),
            fmt_rate(last),
            html_escape(&delta)
        );
    }
    out
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

fn render_html(args: &Args, docs: &[(PathBuf, TelemetryDoc)]) -> String {
    let mut html = String::from(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>oslay run dashboard</title><style>\
         body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:72em;\
         padding:0 1em;color:#1a2233}\
         h1{font-size:1.5em}h2{border-bottom:1px solid #ccd;padding-bottom:.2em}\
         h3{margin:1.2em 0 .3em}h4{margin:.8em 0 .2em;color:#456}\
         table{border-collapse:collapse;margin:.3em 0}\
         td,th{border:1px solid #dde;padding:.15em .6em}\
         td.num{text-align:right;font-variant-numeric:tabular-nums}\
         .spark,.heat{vertical-align:middle;border:1px solid #eef}\
         .trend{margin:.4em 0}.lbl{display:inline-block;min-width:10em;font-weight:600}\
         .delta{color:#456;margin-left:.6em}\
         .meta{color:#678;font-size:.9em}\
         </style></head><body><h1>oslay run dashboard</h1>",
    );

    // — Telemetry —
    html.push_str("<h2>Simulated-time telemetry</h2>");
    if docs.is_empty() {
        html.push_str("<p>no telemetry documents loaded.</p>");
    }
    for (path, doc) in docs {
        let _ = write!(
            html,
            "<h3>{}</h3><p class=\"meta\">{} run(s)</p>",
            html_escape(&path.display().to_string()),
            doc.runs.len()
        );
        for run in &doc.runs {
            let rates = run.miss_rates();
            let bands = phase_bands(run);
            let peak = rates.iter().cloned().fold(0.0f64, f64::max);
            let _ = write!(
                html,
                "<h4>{}</h4><p class=\"meta\">{} frames @ 2^{} events/frame, \
                 {} phases, peak window miss rate {:.2}%</p>\
                 <div>miss rate {}</div><div>fill {}</div>",
                html_escape(&run.label),
                run.rows.len(),
                run.window_log2,
                run.phases.len(),
                100.0 * peak,
                svg_sparkline(&rates, &bands, 560, 60),
                svg_heat_strip(&fill_series(run), 560, 10)
            );
            html.push_str(
                "<table><tr><th>phase</th><th>frames</th><th>events</th>\
                 <th>miss ppm</th><th>compulsory</th><th>capacity</th>\
                 <th>conflict</th></tr>",
            );
            for p in &run.phases {
                let _ = write!(
                    html,
                    "<tr><td class=\"num\">{}</td><td class=\"num\">{}..{}</td>\
                     <td class=\"num\">{}..{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td></tr>",
                    p.id,
                    p.start_frame,
                    p.end_frame,
                    p.events_start,
                    p.events_end,
                    p.miss_rate_ppm,
                    p.compulsory,
                    p.capacity,
                    p.conflict
                );
            }
            html.push_str("</table>");
        }
    }

    // — Run reports —
    html.push_str("<h2>Run reports</h2>");
    let mut report_files: Vec<PathBuf> = std::fs::read_dir(&args.results)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "json"))
                .collect()
        })
        .unwrap_or_default();
    report_files.sort();
    if report_files.is_empty() {
        let _ = write!(
            html,
            "<p>no run reports under {}.</p>",
            html_escape(&args.results.display().to_string())
        );
    }
    for path in &report_files {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let Ok(report) = RunReport::from_json(&text) else {
            continue; // not a run report (e.g. BENCH_sim.json)
        };
        let _ = write!(html, "<h3>{}</h3>", html_escape(report.name()));
        html.push_str(&report_sections_html(&report));
    }

    // — Bench trend —
    html.push_str("<h2>Bench trend</h2>");
    let entries = history::load(&args.history).unwrap_or_default();
    html.push_str(&history_html(&entries));

    html.push_str("</body></html>");
    html
}
