//! `lint` — static layout verification CLI.
//!
//! Builds the study's layouts and runs the `oslay-verify` invariant
//! checker over each one, with no simulation. Exit-code contract: `0`
//! when every report is clean (warnings allowed unless `--deny warnings`),
//! `1` when any diagnostic fails.
//!
//! ```text
//! lint [--scale tiny|small|paper] [--blocks N] [--seed N]
//!      [--layout base|ch|opts|optl|opta|call|all]   # default: all
//!      [--layout-file FILE]     # lint an external OS layout written by
//!                               # `search --layout-out` (JSON with
//!                               # "name"/"addr"/"size"); replaces the
//!                               # default layout set
//!      [--json]                 # machine-readable reports
//!      [--deny warnings]        # promote warnings to failures
//!      [--mutate block-swap|loop-shift|scf-overlap]
//!                               # corrupt the OptL layout first (CI uses
//!                               # this to prove the checker fires)
//!      [--predict] [--top K]    # also print the static conflict
//!                               # prediction for the OS layouts
//!      [--absint]               # also run the abstract-interpretation
//!                               # classification on every OS layout
//! ```
//!
//! External layouts (`--layout-file`) always get the full static
//! treatment: structural invariants, the conflict prediction, *and* the
//! abstract-interpretation classification — they come from outside the
//! builders, so nothing else has vetted them.

use std::collections::VecDeque;
use std::process::ExitCode;

use oslay::{Study, StudyConfig};
use oslay_bench::parse_run_args;
use oslay_cache::CacheConfig;
use oslay_layout::{optimize_os, BlockClass, OptLayout, OptParams};
use oslay_model::{Domain, Program, RoutineId};
use oslay_verify::{
    predict_conflicts, verify, verify_structural, LayoutView, OptContext, VerifyInput, VerifyReport,
};

#[derive(Clone, Debug)]
struct LintArgs {
    config: StudyConfig,
    layouts: Vec<String>,
    layout_file: Option<std::path::PathBuf>,
    json: bool,
    deny_warnings: bool,
    mutate: Option<String>,
    predict: bool,
    absint: bool,
    top: usize,
}

const ALL_LAYOUTS: [&str; 6] = ["base", "ch", "opts", "optl", "opta", "call"];

fn parse_args() -> LintArgs {
    let mut layouts: Vec<String> = Vec::new();
    let mut layout_file: Option<std::path::PathBuf> = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut mutate: Option<String> = None;
    let mut predict = false;
    let mut absint = false;
    let mut top = 10usize;
    let argv: VecDeque<String> = std::env::args().skip(1).collect();
    let args = parse_run_args(argv, StudyConfig::small(), |arg, rest| match arg {
        "--layout" => {
            let v = rest.pop_front().expect("--layout needs a value");
            if v == "all" {
                layouts = ALL_LAYOUTS.iter().map(|s| (*s).to_owned()).collect();
            } else {
                assert!(
                    ALL_LAYOUTS.contains(&v.as_str()),
                    "unknown layout {v:?} (base|ch|opts|optl|opta|call|all)"
                );
                layouts.push(v);
            }
            true
        }
        "--layout-file" => {
            let v = rest.pop_front().expect("--layout-file needs a path");
            layout_file = Some(v.into());
            true
        }
        "--json" => {
            json = true;
            true
        }
        "--deny" => {
            let v = rest.pop_front().expect("--deny needs a value");
            assert_eq!(v, "warnings", "only `--deny warnings` is supported");
            deny_warnings = true;
            true
        }
        "--mutate" => {
            let v = rest.pop_front().expect("--mutate needs a value");
            assert!(
                ["block-swap", "loop-shift", "scf-overlap"].contains(&v.as_str()),
                "unknown mutation {v:?} (block-swap|loop-shift|scf-overlap)"
            );
            mutate = Some(v);
            true
        }
        "--predict" => {
            predict = true;
            true
        }
        "--absint" => {
            absint = true;
            true
        }
        "--top" => {
            let v = rest.pop_front().expect("--top needs a value");
            top = v.parse().expect("--top must be an integer");
            true
        }
        _ => false,
    });
    oslay_bench::apply_run_args(&args);
    // An explicit --layout-file lints only that file unless named
    // layouts were also requested.
    if layouts.is_empty() && layout_file.is_none() {
        layouts = ALL_LAYOUTS.iter().map(|s| (*s).to_owned()).collect();
    }
    LintArgs {
        config: args.config,
        layouts,
        layout_file,
        json,
        deny_warnings,
        mutate,
        predict,
        absint,
        top,
    }
}

/// Verifies a mutated (or pristine) OptL-style layout with full context.
fn verify_opt_view(
    study: &Study,
    opt: &OptLayout,
    params: &OptParams,
    view: &LayoutView,
    line: u32,
) -> VerifyReport {
    verify(&VerifyInput {
        program: &study.kernel().program,
        profile: study.averaged_os_profile(),
        view,
        opt: Some(OptContext {
            classes: &opt.classes,
            sequences: &opt.sequences,
            schedule: &params.schedule,
            loops: study.os_loops(),
            scf_bytes: opt.scf_bytes,
            cache_size: params.cache_size,
            line_size: line,
            min_loop_iters: params.min_loop_iters,
            check_loop_area: params.extract_loops,
        }),
    })
}

/// Applies one named corruption to an OptL layout view.
fn apply_mutation(opt: &OptLayout, view: &mut LayoutView, cache_size: u32, which: &str) {
    let of_class = |class: BlockClass| -> Vec<usize> {
        (0..opt.classes.len())
            .filter(|&i| opt.classes[i] == class)
            .collect()
    };
    match which {
        "block-swap" => {
            // Swap two non-adjacent retained members of one sequence.
            let seq = opt
                .sequences
                .sequences()
                .iter()
                .find(|s| {
                    s.blocks
                        .iter()
                        .filter(|&&b| {
                            matches!(
                                opt.classes[b.index()],
                                BlockClass::MainSeq | BlockClass::OtherSeq
                            )
                        })
                        .count()
                        >= 3
                })
                .expect("a sequence with 3+ retained blocks");
            let retained: Vec<usize> = seq
                .blocks
                .iter()
                .map(|b| b.index())
                .filter(|&i| matches!(opt.classes[i], BlockClass::MainSeq | BlockClass::OtherSeq))
                .collect();
            view.swap_addrs(retained[0], retained[2]);
        }
        "loop-shift" => {
            let loops = of_class(BlockClass::Loop);
            assert!(!loops.is_empty(), "OptL extracted no loops at this scale");
            view.shift_blocks(&loops, 64);
        }
        "scf-overlap" => {
            let hot = of_class(BlockClass::MainSeq);
            let victim = hot[hot.len() / 2];
            // Offset 0 of logical cache 1: inside the reserved window.
            view.set_addr(victim, u64::from(cache_size));
        }
        other => unreachable!("unknown mutation {other}"),
    }
}

/// Loads an external layout file (`search --layout-out` format: a JSON
/// object with `"name"`, `"addr"` and `"size"` arrays) as a
/// [`LayoutView`].
fn load_layout_view(path: &std::path::Path) -> LayoutView {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--layout-file {}: {e}", path.display()));
    let doc = oslay_observe::json::parse(&text)
        .unwrap_or_else(|e| panic!("--layout-file {}: not JSON: {e}", path.display()));
    let field = |key: &str| {
        doc.get(key)
            .unwrap_or_else(|| panic!("--layout-file {}: missing {key:?}", path.display()))
    };
    let list = |key: &str| {
        field(key)
            .as_array()
            .unwrap_or_else(|| panic!("--layout-file {}: {key:?} must be an array", path.display()))
    };
    let name = field("name")
        .as_str()
        .unwrap_or_else(|| {
            panic!(
                "--layout-file {}: \"name\" must be a string",
                path.display()
            )
        })
        .to_owned();
    let addr: Vec<u64> = list("addr")
        .iter()
        .map(|v| {
            v.as_u64().unwrap_or_else(|| {
                panic!(
                    "--layout-file {}: \"addr\" entries must be non-negative integers",
                    path.display()
                )
            })
        })
        .collect();
    let size: Vec<u32> = list("size")
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .unwrap_or_else(|| {
                    panic!(
                        "--layout-file {}: \"size\" entries must be u32 integers",
                        path.display()
                    )
                })
        })
        .collect();
    assert_eq!(
        addr.len(),
        size.len(),
        "--layout-file {}: addr and size lengths differ",
        path.display()
    );
    LayoutView { name, addr, size }
}

fn print_report(report: &VerifyReport, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
}

fn routine_name(program: &Program, key: (Domain, u32)) -> String {
    if key.0 == program.domain() {
        program
            .routine(RoutineId::new(key.1 as usize))
            .name()
            .to_owned()
    } else {
        format!("{:?}:{}", key.0, key.1)
    }
}

fn print_prediction(study: &Study, name: &str, view: &LayoutView, top: usize) {
    let cfg = CacheConfig::paper_default();
    let program = &study.kernel().program;
    let p = predict_conflicts(program, study.averaged_os_profile(), view, Domain::Os, &cfg);
    println!("-- static conflict prediction: {name} --");
    println!("top {top} contended sets (set: weight / excess):");
    for s in p.top_sets(top) {
        if s.excess <= 0.0 {
            break;
        }
        println!(
            "  set {:>4}: {:>12.0} / {:>12.0}",
            s.set, s.weight, s.excess
        );
    }
    println!("top {top} predicted routine pairs:");
    for &(a, b, score) in p.top_pairs(top) {
        println!(
            "  {:<24} x {:<24} {:>12.0}",
            routine_name(program, a),
            routine_name(program, b),
            score
        );
    }
}

/// Runs the abstract-interpretation classification on one OS layout view
/// and prints the one-line summary. Returns `true` when the lattice
/// invariants were violated (a checker bug, never a layout property).
fn print_absint(study: &Study, view: &LayoutView, cfg: CacheConfig) -> bool {
    let c = oslay_bench::absint_gate::classify_study_layout(study, view, cfg);
    println!("-- absint classification: {} --", view.name);
    println!(
        "  always-hit {:>5.1}%  persistent {:>5.1}%  always-miss {:>5.1}%  \
         unclassified {:>5.1}%  coverage {:>5.1}%",
        100.0 * c.weighted_share(oslay_verify::LineClass::AlwaysHit),
        100.0 * c.weighted_share(oslay_verify::LineClass::Persistent),
        100.0 * c.weighted_share(oslay_verify::LineClass::AlwaysMiss),
        100.0 * c.weighted_share(oslay_verify::LineClass::Unclassified),
        100.0 * c.coverage(),
    );
    if c.invariant_violations > 0 {
        eprintln!(
            "lint: {}: {} absint lattice violation(s)",
            view.name, c.invariant_violations
        );
        return true;
    }
    false
}

fn main() -> ExitCode {
    let args = parse_args();
    let study = Study::generate(&args.config);
    let program = &study.kernel().program;
    let cache_cfg = CacheConfig::paper_default();
    let cache_size = cache_cfg.size();
    let line = cache_cfg.line();

    let mut reports: Vec<VerifyReport> = Vec::new();
    // OS-layout views the optional absint pass runs over.
    let mut os_views: Vec<LayoutView> = Vec::new();

    if let Some(mutation) = &args.mutate {
        // Mutation mode: corrupt the OptL layout and verify only it.
        let params = OptParams::opt_l(cache_size);
        let opt = optimize_os(
            program,
            study.averaged_os_profile(),
            study.os_loops(),
            &params,
        );
        let mut view = LayoutView::from_layout(&opt.layout);
        view.name = format!("OptL+{mutation}");
        apply_mutation(&opt, &mut view, cache_size, mutation);
        reports.push(verify_opt_view(&study, &opt, &params, &view, line));
    } else {
        for which in &args.layouts {
            match which.as_str() {
                "base" => {
                    let layout = oslay_layout::base_layout(program, 0);
                    let view = LayoutView::from_layout(&layout);
                    reports.push(verify_structural(program, &view));
                    os_views.push(view);
                }
                "ch" => {
                    let layout =
                        oslay_layout::chang_hwu_layout(program, study.averaged_os_profile(), 0);
                    let view = LayoutView::from_layout(&layout);
                    reports.push(verify_structural(program, &view));
                    os_views.push(view);
                }
                "opts" | "optl" => {
                    let params = if which == "optl" {
                        OptParams::opt_l(cache_size)
                    } else {
                        OptParams::opt_s(cache_size)
                    };
                    let opt = optimize_os(
                        program,
                        study.averaged_os_profile(),
                        study.os_loops(),
                        &params,
                    );
                    let view = LayoutView::from_layout(&opt.layout);
                    reports.push(verify_opt_view(&study, &opt, &params, &view, line));
                    if args.predict {
                        print_prediction(&study, &view.name.clone(), &view, args.top);
                    }
                    os_views.push(view);
                }
                "call" => {
                    // Per-loop logical caches deliberately reuse SCF
                    // offsets (the paper's negative result): structural
                    // checks only.
                    let opt = oslay_layout::call_opt_layout(
                        program,
                        study.averaged_os_profile(),
                        study.os_loops(),
                        &oslay_layout::CallOptParams::new(cache_size),
                    );
                    let view = LayoutView::from_layout(&opt.layout);
                    reports.push(verify_structural(program, &view));
                    os_views.push(view);
                }
                "opta" => {
                    // The application half of OptA, per workload that has
                    // an app (the OS half is `opts`).
                    for case in study.cases() {
                        let (Some(app), Some(layout)) =
                            (case.app.as_ref(), study.app_opt_layout(case, cache_size))
                        else {
                            continue;
                        };
                        let mut view = LayoutView::from_layout(&layout);
                        view.name = format!("{}/{}", view.name, case.name());
                        reports.push(verify_structural(app, &view));
                    }
                }
                other => unreachable!("unknown layout {other}"),
            }
        }
        if let Some(path) = &args.layout_file {
            // External layouts (e.g. `search --layout-out`) must both
            // re-assemble against the kernel program — which checks
            // block count, span validity and stretch accounting — and
            // pass the structural invariants on the view itself.
            let view = load_layout_view(path);
            if view.addr.len() != program.num_blocks() {
                eprintln!(
                    "lint: {}: {} block(s) but the kernel has {} — wrong --scale/--blocks/--seed?",
                    path.display(),
                    view.addr.len(),
                    program.num_blocks()
                );
                oslay_bench::flush_trace();
                return ExitCode::FAILURE;
            }
            match oslay_layout::Layout::assemble(program, view.name.clone(), &view.addr, &view.size)
            {
                Ok(_) => reports.push(verify_structural(program, &view)),
                Err(e) => {
                    eprintln!("lint: {}: does not assemble: {e}", path.display());
                    oslay_bench::flush_trace();
                    return ExitCode::FAILURE;
                }
            }
            // External layouts always get the full static treatment —
            // nothing else has vetted them.
            print_prediction(&study, &view.name.clone(), &view, args.top);
            if print_absint(&study, &view, cache_cfg) {
                oslay_bench::flush_trace();
                return ExitCode::FAILURE;
            }
        }
        if args.predict && args.layouts.iter().any(|l| l == "base") {
            let layout = oslay_layout::base_layout(program, 0);
            print_prediction(&study, "Base", &LayoutView::from_layout(&layout), args.top);
        }
    }

    let mut failed = false;
    if args.absint {
        for view in &os_views {
            failed |= print_absint(&study, view, cache_cfg);
        }
    }
    for report in &reports {
        print_report(report, args.json);
        failed |= report.fails(args.deny_warnings);
    }
    if !args.json {
        let total_errors: usize = reports.iter().map(VerifyReport::errors).sum();
        let total_warnings: usize = reports.iter().map(VerifyReport::warnings).sum();
        println!(
            "lint: {} layout(s), {total_errors} error(s), {total_warnings} warning(s)",
            reports.len()
        );
    }
    oslay_bench::flush_trace();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
