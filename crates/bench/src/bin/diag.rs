//! Conflict diagnosis CLI; the implementation lives in
//! [`oslay_bench::diag`] so the root package can forward to it too.

fn main() {
    oslay_bench::diag::run();
}
