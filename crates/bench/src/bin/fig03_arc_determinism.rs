//! Figure 3: distribution of the probability that an outgoing arc is
//! taken, over all measured arcs of the operating system (union of the
//! four workloads).
//!
//! Paper: 73.6% of the arcs have probability ≥ 0.99 and 6.9% have
//! probability ≤ 0.01 — control transfer is bimodal, hence sequences of
//! executed blocks are highly deterministic.

use oslay::analysis::arcs::ArcDeterminism;
use oslay::analysis::report::{bar_chart, pct};
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Figure 3: arc taken-probability distribution", &config);
    let study = Study::generate(&config);
    let d = ArcDeterminism::measure(study.averaged_os_profile());

    println!("Measured arcs: {}", d.total);
    println!(
        "Arcs with probability >= 0.99: {}   (paper: 73.6%)",
        pct(d.fraction_ge_99())
    );
    println!(
        "Arcs with probability <= 0.01: {}   (paper: 6.9%)",
        pct(d.fraction_le_01())
    );
    println!();

    let fractions = d.bucket_fractions();
    let items: Vec<(String, f64)> = fractions
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            (
                format!("({:.2},{:.2}]", i as f64 * 0.05, (i + 1) as f64 * 0.05),
                f,
            )
        })
        .collect();
    print!("{}", bar_chart(&items, 50));
    oslay_bench::flush_trace();
}
