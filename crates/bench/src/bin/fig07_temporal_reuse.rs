//! Figure 7: number of operating-system instruction words fetched between
//! two consecutive calls to the same routine within one OS invocation, for
//! the 10 most frequently invoked routines, averaged over the four
//! workloads.
//!
//! Paper: ≈ 25% probability of re-invocation within 100 instruction words,
//! ≈ 70% within 1,000; ≈ 9% of calls are the last in their invocation.

use oslay::analysis::report::{bar_chart, pct};
use oslay::analysis::temporal::ReuseDistance;
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner(
        "Figure 7: reuse distance of the 10 hottest routines",
        &config,
    );
    let study = Study::generate(&config);
    let program = &study.kernel().program;

    let mut total_within_100 = 0.0;
    let mut total_within_1000 = 0.0;
    let mut total_last = 0.0;
    let mut per_workload = Vec::new();
    for case in study.cases() {
        let rd = ReuseDistance::measure(program, &case.os_profile, &case.trace, 10);
        total_within_100 += rd.reuse_within(100.0);
        total_within_1000 += rd.reuse_within(1000.0);
        total_last += rd.last_invocation_fraction();
        per_workload.push((case.name(), rd));
    }
    let n = per_workload.len() as f64;
    println!(
        "Average over workloads: reuse within 100 words {}, within 1000 words {}, last-in-invocation {}",
        pct(total_within_100 / n),
        pct(total_within_1000 / n),
        pct(total_last / n),
    );
    println!("Paper: ~25% within 100 words, ~70% within 1000 words, ~9% last-in-invocation.");
    println!();

    for (name, rd) in &per_workload {
        println!(
            "{name}: {} calls measured; distance histogram (instruction words):",
            rd.total_calls
        );
        let mut items: Vec<(String, f64)> =
            rd.histogram.rows().map(|(l, c, _)| (l, c as f64)).collect();
        items.push(("Last Inv".to_owned(), rd.last_in_invocation as f64));
        print!("{}", bar_chart(&items, 40));
        println!();
    }
    oslay_bench::flush_trace();
}
