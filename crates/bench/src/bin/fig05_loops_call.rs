//! Figure 5: behaviour of the operating-system loops that *do* call
//! procedures (union of all workloads): iterations per invocation and the
//! static size of the executed part *including* the routines they call and
//! their descendants.
//!
//! Paper: 71 such loops; usually ≤ 10 iterations per invocation; median
//! executed span 2 KB, a few exceeding 16 KB — too large for small caches
//! to hold across iterations.

use oslay::analysis::loops::loop_shape;
use oslay::analysis::report::{bar_chart, pct};
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Figure 5: loops with procedure calls", &config);
    let study = Study::generate(&config);
    let shape = loop_shape(study.os_loops().executed_loops().filter(|l| l.has_calls));

    println!("Executed loops with calls: {} (paper: 71)", shape.count);
    println!(
        "Median iterations/invocation: {:.1}; fraction <= 10: {}",
        shape.median_iterations,
        pct(shape.iterations.cumulative_fraction(10.0)),
    );
    println!(
        "Median executed span (incl. callees): {:.1} KB; fraction > 16 KB: {}",
        shape.median_size / 1024.0,
        pct(1.0 - shape.sizes.cumulative_fraction(16384.0)),
    );
    println!();

    println!("Iterations per invocation:");
    let items: Vec<(String, f64)> = shape
        .iterations
        .rows()
        .map(|(l, c, _)| (l, c as f64))
        .collect();
    print!("{}", bar_chart(&items, 40));
    println!();
    println!("Executed span including callee closure (bytes):");
    let items: Vec<(String, f64)> = shape.sizes.rows().map(|(l, c, _)| (l, c as f64)).collect();
    print!("{}", bar_chart(&items, 40));
    oslay_bench::flush_trace();
}
