//! Figure 18: architectural and algorithmic alternatives at a fixed 8 KB
//! total budget (32-byte lines): `Sep` (cache split between OS and app),
//! `Resv` (1 KB reserved OS cache + main cache), and `Call` (the
//! Section 4.4 loops-with-callees placement), compared against Base and
//! OptA — plus the two software alternatives: `C-H` (Chang–Hwu applied
//! to both sides) and `Search` (the metaheuristic searched OS layout,
//! beyond the paper).
//!
//! Paper shape: Sep *increases* misses over OptA (halving capacity costs
//! more self-interference than cross-interference saved); Resv is roughly
//! a wash at much higher hardware cost; Call increases OS misses by
//! 20–100% over OptA (callee routines pulled out of the sequences lose
//! their spatial locality). The searched layout should land at or below
//! OptA's OS-side behavior on most workloads.

use oslay::analysis::report::TextTable;
use oslay::cache::{Cache, CacheConfig, InstructionCache, ReservedCache, SplitCache};
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, run_args, run_layout_search};
use oslay_search::SearchParams;

fn main() {
    let args = run_args();
    let config = args.config;
    banner(
        "Figure 18: C-H / Sep / Resv / Call / Search alternatives (8KB budget)",
        &config,
    );
    let study = Study::generate_with_threads(&config, args.threads);
    let cfg = CacheConfig::paper_default();

    let base_os = study.os_layout(OsLayoutKind::Base, cfg.size());
    let opts_os = study.os_layout(OsLayoutKind::OptS, cfg.size());
    let ch_os = study.os_layout(OsLayoutKind::ChangHwu, cfg.size());
    let call_os = study.os_layout(OsLayoutKind::Call, cfg.size());
    // For Resv, the OS is laid out without a SelfConfFree area and the
    // hottest `scf_bytes`-sized prefix of the hot region is held by the
    // reserved cache.
    let resv_os = study.os_opt_s_with_scf(cfg.size(), None);
    let reserved_range = 0..1024u64;
    // The searched OS layout: same engine and defaults as the `search`
    // binary, seeded by the study seed.
    let searched = run_layout_search(
        &study,
        cfg,
        &SearchParams {
            seed: config.seed,
            ..SearchParams::default()
        },
        &SimConfig::fast(),
        args.threads,
    );

    let mut table = TextTable::new([
        "Workload", "Base", "OptA", "C-H", "Search", "Sep", "Resv", "Call",
    ]);
    for case in study.cases() {
        let app_base = study.app_base_layout(case);
        let app_ch = study.app_ch_layout(case);
        let app_opt = study.app_opt_layout(case, cfg.size());
        let mut cells = vec![case.name().to_owned()];

        let run = |os: &oslay::layout::Layout,
                   app: Option<&oslay::layout::Layout>,
                   cache: &mut dyn InstructionCache| {
            study
                .simulate(case, os, app, cache, &SimConfig::fast())
                .stats
                .total_misses()
        };

        let base = run(&base_os.layout, app_base.as_ref(), &mut Cache::new(cfg));
        cells.push("100.0".into());
        let norm = |m: u64| format!("{:.1}", m as f64 / base as f64 * 100.0);

        let opta = run(&opts_os.layout, app_opt.as_ref(), &mut Cache::new(cfg));
        cells.push(norm(opta));

        let ch = run(&ch_os.layout, app_ch.as_ref(), &mut Cache::new(cfg));
        cells.push(norm(ch));

        let search = run(&searched.os.layout, app_opt.as_ref(), &mut Cache::new(cfg));
        cells.push(norm(search));

        let sep = run(
            &opts_os.layout,
            app_opt.as_ref(),
            &mut SplitCache::halves_of(cfg),
        );
        cells.push(norm(sep));

        let resv = run(
            &resv_os.layout,
            app_opt.as_ref(),
            &mut ReservedCache::paired_with(cfg, reserved_range.clone()),
        );
        cells.push(norm(resv));

        let call = run(&call_os.layout, app_opt.as_ref(), &mut Cache::new(cfg));
        cells.push(norm(call));

        table.row(cells);
    }
    print!("{}", table.render());
    println!();
    println!(
        "(cells: total misses normalized to Base = 100; OptA = OptS kernel + optimized app;\n\
         \x20C-H = Chang-Hwu on both sides; Search = searched OS kernel + optimized app)"
    );
    oslay_bench::flush_trace();
}
