//! Table 4: the descending `(ExecThresh, BranchThresh)` schedule and the
//! sequences it generates — for each pass and seed, the number of basic
//! blocks and bytes captured.
//!
//! Paper shape: the first pass (1.4%, 40%) captures a ~0.8 KB interrupt
//! sequence; successive passes lower both thresholds a decade at a time
//! and capture progressively larger, colder segments, until the (0,0)
//! pass sweeps up the remaining executed code.

use oslay::analysis::report::TextTable;
use oslay::layout::{build_sequences, ThresholdSchedule};
use oslay::model::SeedKind;
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner(
        "Table 4: threshold schedule and resulting sequences",
        &config,
    );
    let study = Study::generate(&config);
    let schedule = ThresholdSchedule::paper();
    let seqs = build_sequences(
        &study.kernel().program,
        study.averaged_os_profile(),
        &schedule,
    );

    let mut table = TextTable::new(["ExecThresh", "Interrupt", "PageFault", "SysCall", "Other"]);
    for (pass_idx, pass) in schedule.passes.iter().enumerate() {
        // Row 1: branch thresholds; Row 2: blocks; Row 3: bytes.
        let mut bt_cells = vec![format!("{:.4}%", pass.exec * 100.0)];
        let mut bb_cells = vec!["  #BBs".to_owned()];
        let mut by_cells = vec!["  #Bytes".to_owned()];
        for kind in SeedKind::ALL {
            match pass.branch[kind.index()] {
                None => {
                    bt_cells.push("-".into());
                    bb_cells.push("-".into());
                    by_cells.push("-".into());
                }
                Some(bt) => {
                    let (blocks, bytes) = seqs
                        .sequences()
                        .iter()
                        .filter(|s| s.pass == pass_idx && s.seed == kind)
                        .fold((0usize, 0u64), |(b, y), s| {
                            (b + s.blocks.len(), y + s.bytes)
                        });
                    bt_cells.push(format!("BranchThresh {bt}"));
                    bb_cells.push(blocks.to_string());
                    by_cells.push(bytes.to_string());
                }
            }
        }
        table.row(bt_cells);
        table.row(bb_cells);
        table.row(by_cells);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Total captured: {} blocks in {} sequences.",
        seqs.num_captured(),
        seqs.sequences().len()
    );
    oslay_bench::flush_trace();
}
