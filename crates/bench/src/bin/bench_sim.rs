//! Simulation-engine throughput harness: events/sec and a peak-RSS proxy
//! for Base vs OptS replay, written to `BENCH_sim.json` at the repo root.
//!
//! ```text
//! cargo run --release -p oslay-bench --bin bench_sim -- --scale small --threads 8
//! cargo run --release -p oslay-bench --bin bench_sim -- --smoke --out /tmp/BENCH_sim.json
//! ```
//!
//! Measured cases:
//! - `replay_base` / `replay_opt_s`: buffered (`Vec`) replay of the Shell
//!   workload through the plain cache.
//! - `stream_base` / `stream_opt_s`: streaming replay — the trace engine
//!   feeds the replayer directly, no event vector.
//! - `attr_base`: attributed replay (shadow-store path).
//! - `trace_encode` / `trace_decode`: the `oslay-tracestore` codec over
//!   an in-memory buffer — Shell's stream compressed to the on-disk
//!   format and decoded back; the achieved `trace_compression_ratio` and
//!   `trace_bytes_per_event` land in the derived section.
//! - `matrix_1t` / `matrix_nt`: the Figure-12 style 4-case × 5-level
//!   simulation matrix at 1 vs `--threads` workers; their ratio is the
//!   `parallel_speedup` derived field.
//! - `sweep_per_point` / `sweep_single_pass`: the committed design-space
//!   grid (4 KB–256 KB at 1–8 ways on 32-byte lines, plus 64/128-byte
//!   lines at 8 KB, under Base/C-H/OptS) replayed point by point vs
//!   evaluated in one trace pass per workload (`oslay_cache::MultiSim`);
//!   their ratio is the `sweep_speedup` derived field, recorded at every
//!   scale but smoke (a ~1k-block trace measures only setup overhead).
//! - `search_score`: the layout-search inner loop in isolation — a
//!   single hill-climbing walk from the OptS seed; `events` counts
//!   incremental objective evaluations (trial applies), so the rate is
//!   predictor evaluations/sec. Gated by the simbench validator floor.
//! - `search_walk`: the end-to-end `run_search` fan-out (propose, gate,
//!   score, anneal, restart bookkeeping); `events` counts proposed
//!   candidates, so the rate is candidates/sec. Also floor-gated.
//! - `absint_classify`: the abstract-interpretation cache classifier
//!   over the OptS layout (fixpoint + classification walk); `events`
//!   counts classified line access points. Also floor-gated.
//!
//! The counting allocator is installed process-wide, so `allocs` /
//! `peak_bytes` columns are real measurements, not estimates.

use std::sync::Arc;
use std::time::Instant;

use oslay::cache::{Cache, CacheConfig};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{
    run_args_with, run_figure12_matrix, run_sweep_mode, scale_name, AppSide, SweepPoint,
};
use oslay_observe::MetricRegistry;
use oslay_perf::alloc;
use oslay_perf::history::{self, HistoryEntry};
use oslay_perf::simbench::{validate, BenchCase, BenchReport};
use oslay_tracestore::{CountingSink, TraceReader, TraceWriter};

// The counting allocator is installed by the `oslay_bench` library crate,
// process-wide for every experiment binary.

struct Args {
    config: StudyConfig,
    threads: usize,
    out: std::path::PathBuf,
    history: Option<std::path::PathBuf>,
    gate: bool,
    gate_tolerance: f64,
    gate_window: usize,
}

fn parse_args() -> Args {
    let mut out = std::path::PathBuf::from("BENCH_sim.json");
    let mut smoke = false;
    let mut history = Some(std::path::PathBuf::from("results/bench_history.jsonl"));
    let mut gate = false;
    let mut gate_tolerance = 0.2;
    let mut gate_window = 10;
    let common = run_args_with(StudyConfig::small(), |arg, rest| match arg {
        "--out" => {
            out = rest.pop_front().expect("--out needs a path").into();
            true
        }
        "--smoke" => {
            smoke = true;
            true
        }
        "--history" => {
            history = Some(rest.pop_front().expect("--history needs a path").into());
            true
        }
        "--no-history" => {
            history = None;
            true
        }
        "--gate" => {
            gate = true;
            true
        }
        "--gate-tolerance" => {
            gate_tolerance = rest
                .pop_front()
                .expect("--gate-tolerance needs a value")
                .parse()
                .expect("--gate-tolerance must be a number in (0, 1)");
            assert!(
                gate_tolerance > 0.0 && gate_tolerance < 1.0,
                "--gate-tolerance must be in (0, 1)"
            );
            true
        }
        "--gate-window" => {
            gate_window = rest
                .pop_front()
                .expect("--gate-window needs a value")
                .parse()
                .expect("--gate-window must be an integer");
            true
        }
        _ => false,
    });
    let mut args = Args {
        config: common.config,
        threads: common.threads,
        out,
        history,
        gate,
        gate_tolerance,
        gate_window,
    };
    if smoke {
        // CI smoke: a trace of ~1k OS blocks (overrides --scale/--blocks).
        args.config = StudyConfig::tiny();
        args.config.os_blocks = 1_000;
    }
    args
}

/// Times `f`, bracketing it with allocator snapshots, and returns the
/// finished case. `events` comes from the closure's return value.
fn measure(name: &str, f: impl FnOnce() -> u64) -> BenchCase {
    alloc::reset_peak();
    let before = alloc::snapshot();
    let start = Instant::now();
    let events = f();
    let secs = start.elapsed().as_secs_f64();
    let delta = alloc::snapshot().delta_from(&before);
    let case = BenchCase {
        name: name.to_owned(),
        events,
        secs,
        allocs: delta.calls,
        alloc_bytes: delta.bytes,
        peak_bytes: delta.peak_bytes,
    };
    println!(
        "{:<16} {:>12} events {:>9.3}s {:>14.0} ev/s {:>10} allocs {:>12} B peak",
        case.name,
        case.events,
        case.secs,
        case.events_per_sec(),
        case.allocs,
        case.peak_bytes
    );
    case
}

/// The Figure-12 style matrix: every workload × every ladder level, on a
/// shared registry, at the given worker count. Returns total accesses.
fn run_matrix(study: &Study, sim: &SimConfig, threads: usize) -> u64 {
    let cfg = CacheConfig::paper_default();
    let registry = Arc::new(MetricRegistry::new());
    let matrix = run_figure12_matrix(study, cfg, sim, threads, &registry);
    matrix
        .iter()
        .flatten()
        .map(|r| r.stats.total_accesses())
        .sum()
}

/// The committed design-space grid: every (size, associativity) point in
/// the 4 KB – 256 KB x 1–8 way plane at 32-byte lines — all 28 share one
/// Mattson stack bank per trace — plus two longer line sizes at 8 KB
/// direct-mapped (one banked tag array each), each under Base, C-H and
/// OptS, for every workload. This is the plane the figure sweeps draw
/// from (fig15 spans the sizes, fig17 the lines and ways) and the shape
/// the single-pass engine exists for: 90 per-point trace replays
/// collapse to 3 (one per OS layout), and widening the plane with
/// rarely-missing large configurations costs the stack walk almost
/// nothing while the per-point baseline pays one full replay each.
fn sweep_grid(study: &Study) -> Vec<SweepPoint> {
    let kinds = [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
    ];
    let layouts: Vec<Arc<oslay_layout::Layout>> = kinds
        .iter()
        .map(|&kind| Arc::new(study.os_layout(kind, 8192).layout))
        .collect();
    let sizes = [4096u32, 8192, 16384, 32768, 65536, 131072, 262144];
    let ways = [1u32, 2, 4, 8];
    let configs: Vec<CacheConfig> = sizes
        .iter()
        .flat_map(|&s| ways.iter().map(move |&w| CacheConfig::new(s, 32, w)))
        .chain([64u32, 128].iter().map(|&l| CacheConfig::new(8192, l, 1)))
        .collect();
    let mut points = Vec::new();
    for wi in 0..study.cases().len() {
        for &cfg in &configs {
            for os in &layouts {
                points.push(SweepPoint {
                    case: wi,
                    os: Arc::clone(os),
                    app: AppSide::Base,
                    cache: cfg,
                });
            }
        }
    }
    points
}

/// One full sweep of the grid in the given mode; returns total accesses
/// summed over every grid point (the per-point replay touches each
/// access once per point, so both modes report the same event count).
fn run_sweep_bench(study: &Study, sim: &SimConfig, threads: usize, single_pass: bool) -> u64 {
    let registry = Arc::new(MetricRegistry::new());
    let results = run_sweep_mode(
        study,
        sweep_grid(study),
        sim,
        threads,
        &registry,
        single_pass,
    );
    results.iter().map(|r| r.stats.total_accesses()).sum()
}

fn main() {
    let args = parse_args();
    println!(
        "== bench_sim: engine throughput ({}, {} OS blocks, {} threads) ==",
        scale_name(args.config.scale),
        args.config.os_blocks,
        args.threads
    );

    let study = Study::generate_with_threads(&args.config, args.threads);
    let shell = &study.cases()[3];
    let cfg = CacheConfig::paper_default();
    let sim = SimConfig::fast();
    let os_base = study.os_layout(OsLayoutKind::Base, cfg.size());
    let os_opt = study.os_layout(OsLayoutKind::OptS, cfg.size());
    let app = study.app_base_layout(shell);

    let mut report = BenchReport::new(scale_name(args.config.scale), args.threads);

    // Buffered replay: the pre-existing Vec path, kept as the shim.
    for (name, os) in [("replay_base", &os_base), ("replay_opt_s", &os_opt)] {
        report.push_case(measure(name, || {
            let mut cache = Cache::new(cfg);
            let r = study.simulate(shell, &os.layout, app.as_ref(), &mut cache, &sim);
            r.stats.total_accesses()
        }));
    }

    // Streaming replay: regenerate the trace straight into the replayer —
    // no event vector is ever materialized.
    for (name, os) in [("stream_base", &os_base), ("stream_opt_s", &os_opt)] {
        report.push_case(measure(name, || {
            let mut cache = Cache::new(cfg);
            let r = study.replay_streaming(shell, &os.layout, app.as_ref(), &mut cache, &sim);
            r.stats.total_accesses()
        }));
    }

    // Attributed replay: exercises the shadow-store (conflict/capacity) path.
    report.push_case(measure("attr_base", || {
        let (r, _) = oslay_bench::run_attributed_on(
            &study,
            shell,
            &os_base,
            app.as_ref(),
            cfg,
            &SimConfig::fast(),
            None,
        );
        r.stats.total_accesses()
    }));

    // The tracestore codec, isolated from disk: encode Shell's stream
    // into an in-memory store, then decode it back. The summary's
    // compression figures are recorded as derived fields (and gated
    // against the 3x floor by the report validator).
    let mut encoded: Vec<u8> = Vec::new();
    let mut store_summary = None;
    report.push_case(measure("trace_encode", || {
        let mut writer = TraceWriter::new(Vec::new()).expect("in-memory store header");
        study.stream_case(shell, &mut writer);
        let (buf, summary) = writer.finish().expect("in-memory store finish");
        encoded = buf;
        store_summary = Some(summary);
        summary.totals.events
    }));
    report.push_case(measure("trace_decode", || {
        let mut reader =
            TraceReader::new(std::io::Cursor::new(&encoded)).expect("open in-memory store");
        let mut sink = CountingSink::default();
        reader
            .replay_into(&mut sink)
            .expect("decode archived stream")
    }));
    let store_summary = store_summary.expect("encode case ran");
    report.push_derived("trace_compression_ratio", store_summary.compression_ratio());
    report.push_derived("trace_bytes_per_event", store_summary.bytes_per_event());

    // The sharded experiment matrix at one worker vs the requested count.
    let one = measure("matrix_1t", || run_matrix(&study, &sim, 1));
    let many = measure(&format!("matrix_{}t", args.threads), || {
        run_matrix(&study, &sim, args.threads)
    });
    let speedup = if many.secs > 0.0 {
        one.secs / many.secs
    } else {
        0.0
    };
    report.push_case(one);
    report.push_case(many);
    report.push_derived("parallel_speedup", speedup);

    // The committed design-space grid, replayed per point vs in one
    // pass per workload. Both run at the requested worker count; the
    // derived ratio is the single-pass engine's wall-clock advantage.
    // Tiny traces are all constant overhead — no consolidation to
    // measure — so the gated derived field is only recorded at real
    // scales (the smoke run still prints the observed ratio).
    let per_point = measure("sweep_per_point", || {
        run_sweep_bench(&study, &sim, args.threads, false)
    });
    let single_pass = measure("sweep_single_pass", || {
        run_sweep_bench(&study, &sim, args.threads, true)
    });
    let sweep_speedup = if single_pass.secs > 0.0 {
        per_point.secs / single_pass.secs
    } else {
        0.0
    };
    report.push_case(per_point);
    report.push_case(single_pass);
    if scale_name(args.config.scale) != "tiny" {
        report.push_derived("sweep_speedup", sweep_speedup);
    }

    // The layout-search engine (oslay-search). `search_score` isolates
    // the incremental objective: one deterministic hill-climbing walk,
    // events = trial evaluations (`scored`), so the rate is predictor
    // evaluations/sec. `search_walk` runs the whole restart fan-out and
    // counts every proposed candidate (gate-rejected ones included —
    // rejecting cheaply is part of the engine's job). Both rates are
    // gated by absolute floors in `oslay_perf::simbench::validate`, set
    // far below any measured machine so only a real algorithmic
    // regression (e.g. an accidental full rescore per step) trips them.
    let program = &study.kernel().program;
    let profile = study.averaged_os_profile();
    let seed_view = oslay_verify::LayoutView::from_layout(&os_opt.layout);
    report.push_case(measure("search_score", || {
        let mut state = oslay_search::SearchState::new(
            program,
            profile,
            &seed_view,
            &cfg,
            oslay_search::ObjectiveWeights::default(),
            2,
        );
        let mut rng = oslay_model::rng::Rng::seed_from_u64(args.config.seed);
        for _ in 0..200_000u64 {
            state.step(&mut rng, 0.0);
        }
        state.stats().scored
    }));
    report.push_case(measure("search_walk", || {
        let params = oslay_search::SearchParams {
            budget: 40_000,
            restarts: 2,
            seed: args.config.seed,
            ..oslay_search::SearchParams::default()
        };
        let outcome =
            oslay_search::run_search(program, profile, &seed_view, &cfg, &params, args.threads);
        outcome.restarts.iter().map(|r| r.stats.proposed).sum()
    }));
    // The abstract-interpretation classifier: one full must/may/
    // persistence fixpoint plus the classification walk over OptS.
    // `events` counts classified line access points, so the rate is
    // points/sec — floor-gated by the simbench validator.
    report.push_case(measure("absint_classify", || {
        let c = oslay_bench::absint_gate::classify_study_layout(&study, &seed_view, cfg);
        assert_eq!(c.invariant_violations, 0, "absint lattice violated");
        c.points.len() as u64
    }));

    report.push_derived(
        "stream_vs_replay_base",
        report.events_per_sec("stream_base").unwrap_or(0.0)
            / report
                .events_per_sec("replay_base")
                .unwrap_or(f64::INFINITY),
    );

    for case in &report.cases {
        assert!(
            case.events_per_sec() > 0.0,
            "case {} measured zero throughput",
            case.name
        );
    }
    report.write(&args.out).expect("write bench report");
    let text = std::fs::read_to_string(&args.out).expect("re-read bench report");
    validate(&text).expect("bench report validates against schema");
    println!();
    println!(
        "parallel speedup at {} thread(s): {:.2}x",
        args.threads, speedup
    );
    println!("single-pass sweep speedup: {sweep_speedup:.2}x");
    println!(
        "trace store: {:.2}x over fixed-width ({:.2} B/event)",
        store_summary.compression_ratio(),
        store_summary.bytes_per_event()
    );
    println!("Bench report: {}", args.out.display());

    if let Some(history_path) = &args.history {
        let gate_ok = record_history(&report, history_path, &args);
        oslay_bench::flush_trace();
        if !gate_ok {
            std::process::exit(1);
        }
    } else {
        oslay_bench::flush_trace();
    }
}

/// Appends this run to the bench history and checks it against the
/// rolling median of prior comparable runs. Returns `false` when the
/// trend gate should fail the process (`--gate` and a regression).
fn record_history(report: &BenchReport, path: &std::path::Path, args: &Args) -> bool {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let git_rev = history::read_git_rev(std::path::Path::new(".")).unwrap_or_default();
    let entry =
        HistoryEntry::from_bench(report, unix_secs, git_rev, history::machine_fingerprint());
    let prior = history::load(path).expect("read bench history");
    history::append(path, &entry).expect("append bench history");
    println!();
    println!(
        "bench history: {} prior entries at {} ({})",
        prior.len(),
        path.display(),
        entry.fingerprint
    );
    // On a fresh clone (or first run on this machine/scale/threads)
    // there is nothing to gate against: this run *seeds* the trajectory
    // rather than being judged by an empty one. Say so explicitly and
    // pass — the gate becomes effective from the next comparable run.
    let comparable = prior
        .iter()
        .filter(|h| {
            h.fingerprint == entry.fingerprint
                && h.scale == entry.scale
                && h.threads == entry.threads
        })
        .count();
    if comparable == 0 {
        println!(
            "  no comparable baseline ({}, scale {}, {} thread(s)) — seeded {} with this run; \
             the trend gate takes effect from the next run",
            entry.fingerprint,
            entry.scale,
            entry.threads,
            path.display()
        );
        return true;
    }
    match history::trend_gate(&prior, &entry, args.gate_tolerance, args.gate_window) {
        Ok(lines) => {
            for line in lines {
                println!("  {line}");
            }
            true
        }
        Err(regressions) => {
            for line in regressions {
                println!("  REGRESSION: {line}");
            }
            if args.gate {
                eprintln!(
                    "trend gate FAILED: throughput fell more than {:.0}% below the rolling median",
                    args.gate_tolerance * 100.0
                );
                false
            } else {
                println!("  (informational: pass --gate to fail the run on regressions)");
                true
            }
        }
    }
}
