//! Figure 12: normalized references and misses for the five optimization
//! levels (Base, C-H, OptS, OptL, OptA) on an 8 KB direct-mapped cache
//! with 32-byte lines.
//!
//! Paper shape: most misses are OS self-interference; C-H cuts total
//! misses to 43–62% of Base; OptS cuts further to 24–53% (≈ 25% below
//! C-H); OptL is a wash; OptA shaves another 4–19% where there is an
//! application.

use oslay::cache::CacheConfig;
use oslay::cache::MissKind;
use oslay::model::Domain;
use oslay::{SimConfig, Study};
use oslay_bench::{banner, figure12_ladder, run_args, run_figure12_matrix, Reporter};

fn main() {
    let args = run_args();
    let config = args.config;
    banner(
        "Figure 12: miss breakdown by optimization level (8KB direct-mapped, 32B lines)",
        &config,
    );
    let mut reporter = Reporter::new("fig12_optimization_levels");
    let registry = reporter.registry();
    let study = Study::generate_with_threads(&config, args.threads);
    let cache = CacheConfig::paper_default();
    let matrix = run_figure12_matrix(&study, cache, &SimConfig::fast(), args.threads, &registry);

    // Left chart: reference breakdown.
    println!("References (fraction OS vs App):");
    for case in study.cases() {
        let os = case.trace.os_blocks() as f64;
        let total = case.trace.total_blocks() as f64;
        println!(
            "  {:<11} OS {:>5.1}%  App {:>5.1}%",
            case.name(),
            os / total * 100.0,
            (1.0 - os / total) * 100.0
        );
    }
    println!();

    // Right chart: misses per layout, normalized to Base, decomposed.
    for (case, row) in study.cases().iter().zip(&matrix) {
        println!("{}:", case.name());
        println!(
            "  {:<6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>6}",
            "layout", "misses", "os-self", "os-byapp", "app-self", "app-byos", "norm"
        );
        let mut base_misses = None;
        let mut level_rates = Vec::new();
        for ((name, _, _), r) in figure12_ladder().into_iter().zip(row) {
            let total = r.stats.total_misses();
            let base = *base_misses.get_or_insert(total);
            println!(
                "  {:<6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>5.1}%",
                name,
                total,
                r.stats.misses(MissKind::OsSelf),
                r.stats.misses(MissKind::OsByApp),
                r.stats.misses(MissKind::AppSelf),
                r.stats.misses(MissKind::AppByOs),
                total as f64 / base as f64 * 100.0,
            );
            level_rates.push((name, r.miss_rate()));
            let _ = Domain::Os;
        }
        reporter.add_section(&format!("fig12.{}", case.name()), level_rates);
        println!();
    }
    let path = reporter.finish();
    println!("Run report: {}", path.display());
    oslay_bench::flush_trace();
}
