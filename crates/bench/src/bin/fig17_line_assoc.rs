//! Figure 17: cache miss rates for (a) line sizes of 16–128 bytes and
//! (b) associativities of 1–8 ways, at a fixed 8 KB capacity, under Base,
//! C-H and OptS.
//!
//! Paper shape: the optimized layouts win everywhere; their relative gain
//! *grows* with line size (they expose spatial locality longer lines can
//! exploit: OptS removes 59% of the misses at 16-byte lines and 70% at
//! 128-byte lines) and *shrinks* with associativity (hardware removes some
//! of the same conflicts: 55% at direct-mapped, 41% at 8-way) — yet
//! direct-mapped OptS still beats 8-way Base.

use oslay::analysis::report::{pct, TextTable};
use oslay::cache::CacheConfig;
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args, run_case, AppSide};

fn sweep(study: &Study, configs: &[(String, CacheConfig)]) {
    let mut table = TextTable::new(["Workload/config", "Base", "C-H", "OptS", "OptS/Base"]);
    for case in study.cases() {
        for (label, cfg) in configs {
            let rate = |kind| {
                run_case(study, case, kind, AppSide::Base, *cfg, &SimConfig::fast()).miss_rate()
            };
            let b = rate(OsLayoutKind::Base);
            let ch = rate(OsLayoutKind::ChangHwu);
            let o = rate(OsLayoutKind::OptS);
            table.row([
                format!("{} {label}", case.name()),
                pct(b),
                pct(ch),
                pct(o),
                format!("{:.2}", o / b),
            ]);
        }
    }
    print!("{}", table.render());
}

fn main() {
    let config = config_from_args();
    banner(
        "Figure 17: line-size and associativity sweeps (8KB)",
        &config,
    );
    let study = Study::generate(&config);

    println!("(a) Line size (direct-mapped):");
    let lines: Vec<(String, CacheConfig)> = [16u32, 32, 64, 128]
        .iter()
        .map(|&l| (format!("{l}B-line"), CacheConfig::new(8192, l, 1)))
        .collect();
    sweep(&study, &lines);
    println!();

    println!("(b) Associativity (32B lines):");
    let ways: Vec<(String, CacheConfig)> = [1u32, 2, 4, 8]
        .iter()
        .map(|&w| (format!("{w}-way"), CacheConfig::new(8192, 32, w)))
        .collect();
    sweep(&study, &ways);
}
