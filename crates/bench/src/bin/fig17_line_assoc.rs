//! Figure 17: cache miss rates for (a) line sizes of 16–128 bytes and
//! (b) associativities of 1–8 ways, at a fixed 8 KB capacity, under Base,
//! C-H and OptS.
//!
//! Paper shape: the optimized layouts win everywhere; their relative gain
//! *grows* with line size (they expose spatial locality longer lines can
//! exploit: OptS removes 59% of the misses at 16-byte lines and 70% at
//! 128-byte lines) and *shrinks* with associativity (hardware removes some
//! of the same conflicts: 55% at direct-mapped, 41% at 8-way) — yet
//! direct-mapped OptS still beats 8-way Base.
//!
//! Extra flags: `--single-pass` (default) evaluates each sweep's grid in
//! one trace pass per workload — sub-figure (a) spans four line sizes
//! (four banked tag arrays side by side), sub-figure (b) four
//! associativities sharing one stack per layout; `--per-point` replays
//! each point separately. Output is byte-identical either way.

use std::sync::Arc;

use oslay::analysis::report::{pct, TextTable};
use oslay::cache::CacheConfig;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{banner, run_args_with, run_sweep_mode, sweep_mode_arg, AppSide, SweepPoint};
use oslay_layout::Layout;
use oslay_observe::MetricRegistry;

const KINDS: [OsLayoutKind; 3] = [
    OsLayoutKind::Base,
    OsLayoutKind::ChangHwu,
    OsLayoutKind::OptS,
];

fn sweep(study: &Study, configs: &[(String, CacheConfig)], threads: usize, single_pass: bool) {
    // Every config here keeps the same 8 KB capacity, so one memoized
    // layout per kind serves the whole grid.
    let layouts: Vec<Arc<Layout>> = KINDS
        .iter()
        .map(|&kind| Arc::new(study.os_layout(kind, configs[0].1.size()).layout))
        .collect();
    let mut points = Vec::new();
    for wi in 0..study.cases().len() {
        for (_, cfg) in configs {
            for os in &layouts {
                points.push(SweepPoint {
                    case: wi,
                    os: Arc::clone(os),
                    app: AppSide::Base,
                    cache: *cfg,
                });
            }
        }
    }
    let registry = Arc::new(MetricRegistry::new());
    let results = run_sweep_mode(
        study,
        points,
        &SimConfig::fast(),
        threads,
        &registry,
        single_pass,
    );

    let mut results = results.into_iter();
    let mut table = TextTable::new(["Workload/config", "Base", "C-H", "OptS", "OptS/Base"]);
    for case in study.cases() {
        for (label, _) in configs {
            let mut rate = || results.next().expect("one result per point").miss_rate();
            let b = rate();
            let ch = rate();
            let o = rate();
            table.row([
                format!("{} {label}", case.name()),
                pct(b),
                pct(ch),
                pct(o),
                format!("{:.2}", o / b),
            ]);
        }
    }
    print!("{}", table.render());
}

fn main() {
    let mut single_pass = true;
    let args = run_args_with(StudyConfig::paper(), |arg, _| {
        sweep_mode_arg(arg, &mut single_pass)
    });
    let config = args.config;
    banner(
        "Figure 17: line-size and associativity sweeps (8KB)",
        &config,
    );
    let study = Study::generate_with_threads(&config, args.threads);

    println!("(a) Line size (direct-mapped):");
    let lines: Vec<(String, CacheConfig)> = [16u32, 32, 64, 128]
        .iter()
        .map(|&l| (format!("{l}B-line"), CacheConfig::new(8192, l, 1)))
        .collect();
    sweep(&study, &lines, args.threads, single_pass);
    println!();

    println!("(b) Associativity (32B lines):");
    let ways: Vec<(String, CacheConfig)> = [1u32, 2, 4, 8]
        .iter()
        .map(|&w| (format!("{w}-way"), CacheConfig::new(8192, 32, w)))
        .collect();
    sweep(&study, &ways, args.threads, single_pass);
    oslay_bench::flush_trace();
}
