//! Figure 14: distribution of operating-system misses as a function of the
//! code address (sum of all workloads, 8 KB direct-mapped cache), under
//! Base, C-H and OptS. For comparability across layouts, misses are mapped
//! back to the *Base* address of the missing block, exactly as the paper
//! plots routines "in the same sequence as they were in Base".
//!
//! Paper shape: C-H reduces the Base miss peaks; OptS flattens them
//! further, leaving only small peaks.

use oslay::analysis::figures::render_address_map;
use oslay::analysis::missmap::AddressHistogram;
use oslay::analysis::report::{bar_chart, pct};
use oslay::cache::{Cache, CacheConfig};
use oslay::model::BlockId;
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner(
        "Figure 14: OS miss distribution under Base, C-H, OptS",
        &config,
    );
    let study = Study::generate(&config);
    let base = study.os_layout(OsLayoutKind::Base, 8192);

    for kind in [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
    ] {
        let os = study.os_layout(kind, 8192);
        let mut map = AddressHistogram::paper();
        let mut total_misses = 0u64;
        for case in study.cases() {
            let app = study.app_base_layout(case);
            let mut cache = Cache::new(CacheConfig::paper_default());
            let r = study.simulate(
                case,
                &os.layout,
                app.as_ref(),
                &mut cache,
                &SimConfig::full(),
            );
            let misses = r.os_block_misses.as_ref().unwrap();
            for (i, &m) in misses.iter().enumerate() {
                if m > 0 {
                    // Plot at the block's Base address.
                    map.add_n(base.layout.addr(BlockId::new(i)), m);
                }
            }
            total_misses += r.stats.domain_misses(oslay::model::Domain::Os);
        }
        println!(
            "{}: {} OS misses; peak 1-KB range {} misses; top-5 ranges hold {}:",
            kind.name(),
            total_misses,
            map.max_count(),
            pct(map.peak_concentration(5)),
        );
        print!("{}", render_address_map(&map, 96, 8));
        let items: Vec<(String, f64)> = map
            .peaks(10)
            .into_iter()
            .map(|(addr, count)| (format!("{addr:#08x}"), count as f64))
            .collect();
        print!("{}", bar_chart(&items, 48));
        println!();
    }
}
