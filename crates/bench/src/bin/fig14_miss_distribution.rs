//! Figure 14: distribution of operating-system misses as a function of the
//! code address (sum of all workloads, 8 KB direct-mapped cache), under
//! Base, C-H and OptS. For comparability across layouts, misses are mapped
//! back to the *Base* address of the missing block, exactly as the paper
//! plots routines "in the same sequence as they were in Base".
//!
//! Paper shape: C-H reduces the Base miss peaks; OptS flattens them
//! further, leaving only small peaks.
//!
//! Every simulation runs through the attribution engine; besides the
//! address-space chart this prints the per-set pressure heatmap (the
//! cache-index view of the same peaks) and writes the aggregated
//! compulsory/capacity/conflict split per layout to
//! `results/fig14_miss_distribution.json` (sections `fig14.<layout>`).

use oslay::analysis::figures::{render_address_map, render_set_heatmap};
use oslay::analysis::missmap::AddressHistogram;
use oslay::analysis::report::{bar_chart, pct};
use oslay::cache::CacheConfig;
use oslay::model::BlockId;
use oslay::{OsLayoutKind, SimConfig, Study};
use oslay_bench::{banner, run_args, run_attributed_matrix, Reporter};
use oslay_observe::AttrClass;

fn main() {
    let args = run_args();
    let config = args.config;
    banner(
        "Figure 14: OS miss distribution under Base, C-H, OptS",
        &config,
    );
    let study = Study::generate_with_threads(&config, args.threads);
    let base = study.os_layout(OsLayoutKind::Base, 8192);
    let mut reporter = Reporter::new("fig14_miss_distribution");
    let registry = reporter.registry();

    let kinds = [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
    ];
    let matrix = run_attributed_matrix(
        &study,
        &kinds,
        CacheConfig::paper_default(),
        &SimConfig::full(),
        args.threads,
        &registry,
    );
    for (ki, &kind) in kinds.iter().enumerate() {
        let mut map = AddressHistogram::paper();
        let mut total_misses = 0u64;
        let mut class_misses = [0u64; 3];
        let mut set_misses: Option<Vec<u64>> = None;
        let mut matrix_total = 0u64;
        for (ci, _case) in study.cases().iter().enumerate() {
            let (r, attr) = &matrix[ci][ki];
            let misses = r.os_block_misses.as_ref().unwrap();
            for (i, &m) in misses.iter().enumerate() {
                if m > 0 {
                    // Plot at the block's Base address.
                    map.add_n(base.layout.addr(BlockId::new(i)), m);
                }
            }
            total_misses += r.stats.domain_misses(oslay::model::Domain::Os);
            for class in AttrClass::ALL {
                class_misses[class.index()] += attr.misses_of(class);
            }
            matrix_total += attr.matrix.total();
            match set_misses.as_mut() {
                Some(acc) => {
                    for (slot, &m) in acc.iter_mut().zip(&attr.set_misses) {
                        *slot += m;
                    }
                }
                None => set_misses = Some(attr.set_misses.clone()),
            }
        }
        println!(
            "{}: {} OS misses; peak 1-KB range {} misses; top-5 ranges hold {}:",
            kind.name(),
            total_misses,
            map.max_count(),
            pct(map.peak_concentration(5)),
        );
        print!("{}", render_address_map(&map, 96, 8));
        let items: Vec<(String, f64)> = map
            .peaks(10)
            .into_iter()
            .map(|(addr, count)| (format!("{addr:#08x}"), count as f64))
            .collect();
        print!("{}", bar_chart(&items, 48));
        let all_misses: u64 = class_misses.iter().sum();
        println!(
            "attribution (all domains): compulsory {}, capacity {}, conflict {} ({})",
            class_misses[AttrClass::Compulsory.index()],
            class_misses[AttrClass::Capacity.index()],
            class_misses[AttrClass::Conflict.index()],
            pct(class_misses[AttrClass::Conflict.index()] as f64 / all_misses.max(1) as f64),
        );
        if let Some(sets) = &set_misses {
            print!("{}", render_set_heatmap(sets, 96));
        }
        println!();
        let mut fields: Vec<(String, f64)> = AttrClass::ALL
            .iter()
            .map(|&c| (c.label().to_owned(), class_misses[c.index()] as f64))
            .collect();
        fields.push(("os_misses".to_owned(), total_misses as f64));
        fields.push(("matrix_total".to_owned(), matrix_total as f64));
        reporter.add_section(&format!("fig14.{}", kind.name()), fields);
    }
    let path = reporter.finish();
    println!("Run report: {}", path.display());
    oslay_bench::flush_trace();
}
