//! `analyze` — abstract-interpretation cache classification CLI.
//!
//! Runs the trace-free must/may/persistence analysis
//! (`oslay_verify::absint`) over the study's OS layouts, prints the
//! per-layout classification tables, and — with `--gate` — replays every
//! workload against every layout to prove the classes sound against
//! measured misses (zero on always-hit points, at most one per
//! persistent line, exactly one per execution on always-miss points).
//!
//! ```text
//! analyze [--scale tiny|small|paper] [--blocks N] [--seed N] [--threads N]
//!         [--layout base|ch|opts|optl|search|all]   # default: all
//!         [--gate]                 # replay-validate the classes (the
//!                                  # soundness gate; exit 1 on violation)
//!         [--search-budget N]      # proposals for the `search` layout
//!         [--class-out FILE]       # export the classifications as JSON
//!         [--check FILE]           # re-validate an exported JSON; exit 1
//!                                  # if it is internally inconsistent
//!         [--mutate block-swap]    # swap a proven always-hit block into
//!                                  # the most contended set and require
//!                                  # the analysis to withdraw >= 1
//!                                  # always-hit guarantee (exit 1 if the
//!                                  # mutation goes unnoticed)
//! ```
//!
//! Exit-code contract: `0` when the analysis is internally consistent
//! (and, with `--gate`, every replay check passes; with `--mutate`, the
//! mutation degrades at least one guarantee), `1` otherwise.

use std::collections::{HashMap, VecDeque};
use std::process::ExitCode;

use oslay::{OsLayout, OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::absint_gate::{classify_study_layout, run_absint_gate, AbsintGateOutcome};
use oslay_bench::{banner, parse_run_args, run_layout_search, Reporter};
use oslay_cache::CacheConfig;
use oslay_verify::{Classification, LayoutView, LineClass};

#[derive(Clone, Debug)]
struct AnalyzeArgs {
    config: StudyConfig,
    threads: usize,
    layouts: Vec<String>,
    gate: bool,
    search_budget: u64,
    class_out: Option<std::path::PathBuf>,
    check: Option<std::path::PathBuf>,
    mutate: Option<String>,
}

const ALL_LAYOUTS: [&str; 5] = ["base", "ch", "opts", "optl", "search"];

fn parse_args() -> AnalyzeArgs {
    let mut layouts: Vec<String> = Vec::new();
    let mut gate = false;
    let mut search_budget = 8_000u64;
    let mut class_out = None;
    let mut check = None;
    let mut mutate = None;
    let argv: VecDeque<String> = std::env::args().skip(1).collect();
    let args = parse_run_args(argv, StudyConfig::small(), |arg, rest| match arg {
        "--layout" => {
            let v = rest.pop_front().expect("--layout needs a value");
            if v == "all" {
                layouts = ALL_LAYOUTS.iter().map(|s| (*s).to_owned()).collect();
            } else {
                assert!(
                    ALL_LAYOUTS.contains(&v.as_str()),
                    "unknown layout {v:?} (base|ch|opts|optl|search|all)"
                );
                layouts.push(v);
            }
            true
        }
        "--gate" => {
            gate = true;
            true
        }
        "--search-budget" => {
            let v = rest.pop_front().expect("--search-budget needs a value");
            search_budget = v.parse().expect("--search-budget must be an integer");
            true
        }
        "--class-out" => {
            let v = rest.pop_front().expect("--class-out needs a path");
            class_out = Some(v.into());
            true
        }
        "--check" => {
            let v = rest.pop_front().expect("--check needs a path");
            check = Some(v.into());
            true
        }
        "--mutate" => {
            let v = rest.pop_front().expect("--mutate needs a value");
            assert_eq!(v, "block-swap", "only `--mutate block-swap` is supported");
            mutate = Some(v);
            true
        }
        _ => false,
    });
    oslay_bench::apply_run_args(&args);
    if layouts.is_empty() {
        layouts = ALL_LAYOUTS.iter().map(|s| (*s).to_owned()).collect();
    }
    AnalyzeArgs {
        config: args.config,
        threads: args.threads,
        layouts,
        gate,
        search_budget,
        class_out,
        check,
        mutate,
    }
}

/// Builds the requested layouts in a stable display order.
fn build_layouts(study: &Study, args: &AnalyzeArgs, cfg: CacheConfig) -> Vec<(String, OsLayout)> {
    args.layouts
        .iter()
        .map(|which| match which.as_str() {
            "base" => (
                "Base".to_owned(),
                study.os_layout(OsLayoutKind::Base, cfg.size()),
            ),
            "ch" => (
                "ChangHwu".to_owned(),
                study.os_layout(OsLayoutKind::ChangHwu, cfg.size()),
            ),
            "opts" => (
                "OptS".to_owned(),
                study.os_layout(OsLayoutKind::OptS, cfg.size()),
            ),
            "optl" => (
                "OptL".to_owned(),
                study.os_layout(OsLayoutKind::OptL, cfg.size()),
            ),
            "search" => {
                let params = oslay_search::SearchParams {
                    budget: args.search_budget,
                    restarts: 1,
                    ..oslay_search::SearchParams::default()
                };
                let searched =
                    run_layout_search(study, cfg, &params, &SimConfig::fast(), args.threads);
                ("Search".to_owned(), searched.os)
            }
            other => unreachable!("unknown layout {other}"),
        })
        .collect()
}

fn print_classification_table(classifications: &[(String, Classification)]) {
    println!(
        "{:<10} {:>10} {:>10} {:>11} {:>12} {:>9} {:>8} {:>6}",
        "layout",
        "always-hit",
        "persistent",
        "always-miss",
        "unclassified",
        "coverage",
        "iters",
        "havoc"
    );
    for (name, c) in classifications {
        println!(
            "{:<10} {:>9.1}% {:>9.1}% {:>10.1}% {:>11.1}% {:>8.1}% {:>8} {:>6}",
            name,
            100.0 * c.weighted_share(LineClass::AlwaysHit),
            100.0 * c.weighted_share(LineClass::Persistent),
            100.0 * c.weighted_share(LineClass::AlwaysMiss),
            100.0 * c.weighted_share(LineClass::Unclassified),
            100.0 * c.coverage(),
            c.iterations,
            c.havocked,
        );
    }
    println!();
    println!("point counts (block x line slot):");
    for (name, c) in classifications {
        println!(
            "  {:<10} ah {:>7}  persist {:>7}  miss {:>7}  unclass {:>7}  (blocks {:>6})",
            name, c.count[0], c.count[1], c.count[2], c.count[3], c.analyzed_blocks
        );
    }
}

fn print_gate_table(outcome: &AbsintGateOutcome) {
    println!();
    println!("soundness gate (measured replay vs static classes):");
    println!(
        "  {:<10} {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  verdict",
        "layout", "workload", "ah-pts", "ah-miss", "pers-ln", "pers-ex", "am-pts", "am-bad", "mcov"
    );
    for row in &outcome.rows {
        println!(
            "  {:<10} {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8.1}%  {}",
            row.layout,
            row.workload,
            row.ah_points,
            row.ah_misses,
            row.persistent_lines,
            row.persistent_excess,
            row.am_points,
            row.am_mismatch,
            100.0 * row.measured_coverage,
            if row.ok() { "ok" } else { "VIOLATION" }
        );
    }
}

/// Renders the classifications as the `--class-out` JSON document.
fn classifications_json(classifications: &[(String, Classification)]) -> String {
    let mut out = String::from("{\"version\":1,\"layouts\":[");
    for (i, (name, c)) in classifications.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"layout\":{:?},\"count\":[{}],\"weighted\":[{}],\"analyzed_blocks\":{},\"points\":[",
            name,
            c.count.map(|n| n.to_string()).join(","),
            c.weighted.map(|n| n.to_string()).join(","),
            c.analyzed_blocks,
        ));
        for (j, p) in c.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},{},{},{},{},{}]",
                p.block,
                p.slot,
                p.line_addr,
                p.set,
                p.weight,
                p.class.index()
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Re-validates an exported classification JSON: the per-class count and
/// weight tallies must match the points list exactly. Returns the number
/// of layouts checked, or an error message.
fn check_classification_file(path: &std::path::Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = oslay_observe::json::parse(&text)
        .map_err(|e| format!("{}: not JSON: {e}", path.display()))?;
    let layouts = doc
        .get("layouts")
        .and_then(|v| v.as_array())
        .ok_or("missing \"layouts\" array")?;
    if layouts.is_empty() {
        return Err("empty \"layouts\" array".to_owned());
    }
    for entry in layouts {
        let name = entry
            .get("layout")
            .and_then(|v| v.as_str())
            .ok_or("layout entry without a name")?;
        let quad = |key: &str| -> Result<[u64; 4], String> {
            let arr = entry
                .get(key)
                .and_then(|v| v.as_array())
                .ok_or_else(|| format!("{name}: missing {key:?}"))?;
            if arr.len() != 4 {
                return Err(format!("{name}: {key:?} must have 4 entries"));
            }
            let mut out = [0u64; 4];
            for (i, v) in arr.iter().enumerate() {
                out[i] = v
                    .as_u64()
                    .ok_or_else(|| format!("{name}: {key:?}[{i}] not a u64"))?;
            }
            Ok(out)
        };
        let count = quad("count")?;
        let weighted = quad("weighted")?;
        let points = entry
            .get("points")
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("{name}: missing \"points\""))?;
        let mut tally_count = [0u64; 4];
        let mut tally_weight = [0u64; 4];
        for (i, p) in points.iter().enumerate() {
            let fields = p
                .as_array()
                .ok_or_else(|| format!("{name}: point {i} not an array"))?;
            if fields.len() != 6 {
                return Err(format!("{name}: point {i} must have 6 fields"));
            }
            let num = |j: usize| -> Result<u64, String> {
                fields[j]
                    .as_u64()
                    .ok_or_else(|| format!("{name}: point {i} field {j} not a u64"))
            };
            let class = num(5)? as usize;
            if class >= 4 {
                return Err(format!("{name}: point {i} has class index {class}"));
            }
            tally_count[class] += 1;
            tally_weight[class] += num(4)?;
        }
        if tally_count != count {
            return Err(format!(
                "{name}: \"count\" {count:?} does not match the points tally {tally_count:?}"
            ));
        }
        if tally_weight != weighted {
            return Err(format!(
                "{name}: \"weighted\" {weighted:?} does not match the points tally {tally_weight:?}"
            ));
        }
    }
    Ok(layouts.len())
}

/// Mutation mode: swap the heaviest proven always-hit block of OptS into
/// the most contended set and count withdrawn always-hit guarantees.
/// Returns `(degraded points, table printed)`.
fn run_mutation(study: &Study, cfg: CacheConfig) -> u64 {
    let os = study.os_layout(OsLayoutKind::OptS, cfg.size());
    let view = LayoutView::from_layout(&os.layout);
    let before = classify_study_layout(study, &view, cfg);

    // The victim: the heaviest always-hit point's block.
    let victim = before
        .points
        .iter()
        .filter(|p| p.class == LineClass::AlwaysHit)
        .max_by_key(|p| (p.weight, p.block))
        .expect("OptS has at least one always-hit point")
        .block as usize;
    // The target: any other block with a point in the set holding the
    // most distinct lines (the most contended set).
    let mut set_lines: HashMap<u32, u64> = HashMap::new();
    for p in &before.points {
        *set_lines.entry(p.set).or_insert(0) += 1;
    }
    let hot_set = set_lines
        .iter()
        .max_by_key(|&(set, n)| (*n, *set))
        .map(|(&set, _)| set)
        .expect("classification has points");
    let target = before
        .points
        .iter()
        .filter(|p| p.set == hot_set && p.block as usize != victim)
        .max_by_key(|p| (p.weight, p.block))
        .expect("the contended set has another block")
        .block as usize;

    let mut mutated = view.clone();
    mutated.name = format!("{}+block-swap", view.name);
    mutated.swap_addrs(victim, target);
    let after = classify_study_layout(study, &mutated, cfg);

    let after_class: HashMap<(u32, u32), LineClass> = after
        .points
        .iter()
        .map(|p| ((p.block, p.slot), p.class))
        .collect();
    let mut degraded = 0u64;
    for p in &before.points {
        if p.class != LineClass::AlwaysHit {
            continue;
        }
        match after_class.get(&(p.block, p.slot)) {
            Some(LineClass::AlwaysHit) => {}
            // Withdrawn (weaker class) or gone (fewer slots after the
            // swap changed the block's line span): both count.
            _ => degraded += 1,
        }
    }
    println!(
        "mutation block-swap: block {victim} <-> block {target} (set {hot_set}): \
         {degraded} always-hit guarantee(s) withdrawn"
    );
    println!(
        "  before: ah {:>7}  coverage {:>5.1}%   after: ah {:>7}  coverage {:>5.1}%",
        before.count[0],
        100.0 * before.coverage(),
        after.count[0],
        100.0 * after.coverage(),
    );
    degraded
}

fn main() -> ExitCode {
    let args = parse_args();

    // `--check` is standalone: validate the file and exit.
    if let Some(path) = &args.check {
        return match check_classification_file(path) {
            Ok(n) => {
                println!("analyze --check: {n} layout(s) internally consistent");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("analyze --check: {e}");
                ExitCode::FAILURE
            }
        };
    }

    banner(
        "analyze: abstract-interpretation cache classification",
        &args.config,
    );
    let study = Study::generate_with_threads(&args.config, args.threads);
    let cfg = CacheConfig::paper_default();

    if args.mutate.is_some() {
        let degraded = run_mutation(&study, cfg);
        oslay_bench::flush_trace();
        return if degraded >= 1 {
            ExitCode::SUCCESS
        } else {
            eprintln!("analyze: mutation went unnoticed (0 guarantees withdrawn)");
            ExitCode::FAILURE
        };
    }

    let layouts = build_layouts(&study, &args, cfg);
    let mut reporter = Reporter::new("analyze");
    let mut failed = false;

    let (classifications, gate) = if args.gate {
        let outcome = run_absint_gate(&study, &layouts, cfg, args.threads);
        (outcome.classifications.clone(), Some(outcome))
    } else {
        let c = layouts
            .iter()
            .map(|(name, os)| {
                let mut view = LayoutView::from_layout(&os.layout);
                view.name.clone_from(name);
                (name.clone(), classify_study_layout(&study, &view, cfg))
            })
            .collect();
        (c, None)
    };

    print_classification_table(&classifications);
    for (name, c) in &classifications {
        if c.invariant_violations > 0 {
            eprintln!(
                "analyze: {name}: {} lattice invariant violation(s)",
                c.invariant_violations
            );
            failed = true;
        }
        reporter.add_section(
            &format!("absint.{name}"),
            LineClass::ALL
                .iter()
                .flat_map(|&cl| {
                    [
                        (format!("points_{}", cl.label()), c.count[cl.index()] as f64),
                        (
                            format!("weighted_{}", cl.label()),
                            c.weighted[cl.index()] as f64,
                        ),
                    ]
                })
                .chain([
                    ("coverage".to_owned(), c.coverage()),
                    ("iterations".to_owned(), c.iterations as f64),
                    ("havocked".to_owned(), f64::from(c.havocked)),
                    ("analyzed_blocks".to_owned(), f64::from(c.analyzed_blocks)),
                ]),
        );
    }

    if let Some(outcome) = &gate {
        print_gate_table(outcome);
        for row in &outcome.rows {
            reporter.add_section(
                &format!("absint_gate.{}.{}", row.layout, row.workload),
                [
                    ("ah_points", row.ah_points as f64),
                    ("ah_misses", row.ah_misses as f64),
                    ("persistent_lines", row.persistent_lines as f64),
                    ("persistent_excess", row.persistent_excess as f64),
                    ("am_points", row.am_points as f64),
                    ("am_mismatch", row.am_mismatch as f64),
                    ("measured_coverage", row.measured_coverage),
                    ("ok", f64::from(u8::from(row.ok()))),
                ],
            );
            failed |= !row.ok();
        }
        println!();
        if outcome.ok() {
            println!("soundness gate: PASS ({} replays)", outcome.rows.len());
        } else {
            println!("soundness gate: FAIL");
        }
    }

    if let Some(path) = &args.class_out {
        std::fs::write(path, classifications_json(&classifications))
            .unwrap_or_else(|e| panic!("--class-out {}: {e}", path.display()));
        println!("classifications written: {}", path.display());
    }

    let report_path = reporter.finish();
    println!("report written: {}", report_path.display());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
