//! Figure 2: number of references to operating-system code as a function
//! of the code's address (Base layout), one data point per 1 KB, for all
//! four workloads.
//!
//! Paper shape: references are very unevenly distributed; each workload
//! touches a small fraction of the kernel; the peaks sit at similar
//! addresses across workloads (the popular routines are shared).

use oslay::analysis::missmap::AddressHistogram;
use oslay::analysis::report::{bar_chart, pct};
use oslay::model::fetch_words;
use oslay::{OsLayoutKind, Study};
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner(
        "Figure 2: OS references vs code address (Base layout)",
        &config,
    );
    let study = Study::generate(&config);
    let base = study.os_layout(OsLayoutKind::Base, 8192);
    let program = &study.kernel().program;

    let mut maps = Vec::new();
    for case in study.cases() {
        let mut map = AddressHistogram::paper();
        for (id, block) in program.blocks() {
            let n = case.os_profile.node_weight(id);
            if n > 0 {
                map.add_n(
                    base.layout.addr(id),
                    n * u64::from(fetch_words(block.size())),
                );
            }
        }
        maps.push(map);
    }

    for (case, map) in study.cases().iter().zip(&maps) {
        println!(
            "{} — {} references across {} touched 1-KB ranges; top 10 ranges hold {}:",
            case.name(),
            map.total(),
            map.ranges().len(),
            pct(map.peak_concentration(10)),
        );
        let items: Vec<(String, f64)> = map
            .peaks(10)
            .into_iter()
            .map(|(addr, count)| (format!("{:#08x}", addr), count as f64))
            .collect();
        print!("{}", bar_chart(&items, 48));
        println!();
    }

    // Shared popular ranges: how many of each workload's top-10 ranges
    // appear in every other workload's touched set (the paper's "peaks are
    // in similar positions in the different charts").
    let mut shared = 0;
    let mut considered = 0;
    for (i, map) in maps.iter().enumerate() {
        for (addr, _) in map.peaks(10) {
            considered += 1;
            if maps
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .all(|(_, m)| m.ranges().iter().any(|&(a, _)| a == addr))
            {
                shared += 1;
            }
        }
    }
    println!(
        "Of the {considered} top-10 ranges across workloads, {shared} are touched by every \
         workload (popular routines are common to all)."
    );
    oslay_bench::flush_trace();
}
