//! Table 1: characteristics of the operating-system instruction
//! references, per workload, plus the all-workload union footprint.
//!
//! Paper values for comparison: executed OS code 31,866–122,710 bytes
//! (3.4–13.1% of the kernel, 3.6–13.4% of the basic blocks); union over
//! all workloads 18% of the code and 26% of the routines; invocation
//! mixes per Section 2.3 / Table 1.

use oslay::analysis::refchar::{mix_rows, ref_characteristics, union_footprint};
use oslay::analysis::report::{pct, TextTable};
use oslay::Study;
use oslay_bench::{banner, config_from_args};

fn main() {
    let config = config_from_args();
    banner("Table 1: OS instruction-reference characteristics", &config);
    let study = Study::generate(&config);
    let program = &study.kernel().program;

    let mut table = TextTable::new([
        "OS Code Characteristics",
        "TRFD_4",
        "TRFD+Make",
        "ARC2D+Fsck",
        "Shell",
    ]);

    let rcs: Vec<_> = study
        .cases()
        .iter()
        .map(|c| ref_characteristics(program, &c.os_profile, &c.trace))
        .collect();

    let row = |label: &str, f: &dyn Fn(usize) -> String| {
        let mut cells = vec![label.to_owned()];
        cells.extend((0..4).map(f));
        cells
    };
    table.row(row("Size of Executed OS Code (Bytes)", &|i| {
        format!("{}", rcs[i].executed_bytes)
    }));
    table.row(row("Size of Executed OS Code (%)", &|i| {
        pct(rcs[i].executed_code_fraction)
    }));
    table.row(row("Number of Executed OS BBs (%)", &|i| {
        pct(rcs[i].executed_block_fraction)
    }));
    table.row(row("Invoked OS Routines (%)", &|i| {
        pct(rcs[i].invoked_routine_fraction)
    }));
    table.row(row("OS Share of References (%)", &|i| {
        pct(rcs[i].os_reference_share)
    }));
    for (k, kind) in oslay_model::SeedKind::ALL.iter().enumerate() {
        table.row(row(&format!("{kind} Invoc. (% of Total Invoc.)"), &|i| {
            format!("{:.1}%", mix_rows(rcs[i].invocation_mix)[k].1)
        }));
    }
    print!("{}", table.render());

    let profiles: Vec<_> = study.cases().iter().map(|c| c.os_profile.clone()).collect();
    let union = union_footprint(program, &profiles);
    println!();
    println!(
        "Union of all workloads: {} of the OS code referenced, {} of the routines invoked ({} executed blocks).",
        pct(union.code_fraction),
        pct(union.routine_fraction),
        union.executed_blocks,
    );
    println!(
        "Paper: 18% of the code referenced, 26% of the routines invoked (~8,500 executed blocks)."
    );
    oslay_bench::flush_trace();
}
