//! `trace`: record, inspect, verify, and replay archived trace stores.
//!
//! ```text
//! trace record  [--scale S] [--blocks N] [--seed N] [--threads N] [--dir DIR]
//! trace inspect [--dir DIR | --file FILE ...]
//! trace verify  [--threads N] [--dir DIR | --file FILE ...]
//! trace replay  [--scale S] [--blocks N] [--seed N] [--threads N]
//!               [--dir DIR] [--live] [--out FILE]
//! ```
//!
//! `record` regenerates every workload trace from its engine seed and
//! writes one `.otr` store per case into the archive directory. `inspect`
//! answers from footers alone (no payload decode); `verify` decodes every
//! block — sharded across `--threads` workers via the footer index — and
//! exits non-zero naming the first corrupt block. `replay` reproduces the
//! Figure-12 matrix from the archive (or from a live regeneration with
//! `--live`); its stdout and `--out` report are byte-identical between
//! the two sources and at any worker count, which is what the CI
//! reproducibility gate diffs.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use oslay::cache::{CacheConfig, MissKind};
use oslay::{SimConfig, SimResult, Study, StudyConfig};
use oslay_bench::archive::{record_archive, run_archived_figure12_matrix};
use oslay_bench::{
    apply_run_args, banner, figure12_ladder, parse_run_args, run_figure12_matrix, RunArgs,
};
use oslay_observe::{MetricRegistry, RunReport};
use oslay_tracestore::{CountingSink, StoreError, StoreSummary, StreamTotals, TraceReader};

const USAGE: &str = "usage: trace <record|inspect|verify|replay> \
[--scale tiny|small|paper] [--blocks N] [--seed N] [--threads N] \
[--dir DIR] [--file FILE] [--live] [--out FILE]";

fn main() -> ExitCode {
    let mut argv: VecDeque<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.pop_front() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let mut dir = PathBuf::from("results/traces");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut live = false;
    let mut out: Option<PathBuf> = None;
    let args = parse_run_args(argv, StudyConfig::paper(), |arg, rest| match arg {
        "--dir" => {
            dir = PathBuf::from(rest.pop_front().expect("--dir needs a value"));
            true
        }
        "--file" => {
            files.push(PathBuf::from(
                rest.pop_front().expect("--file needs a value"),
            ));
            true
        }
        "--live" => {
            live = true;
            true
        }
        "--out" => {
            out = Some(PathBuf::from(
                rest.pop_front().expect("--out needs a value"),
            ));
            true
        }
        _ => false,
    });

    apply_run_args(&args);

    let code = match cmd.as_str() {
        "record" => record(&args, &dir),
        "inspect" => inspect(&dir, &files),
        "verify" => verify(&args, &dir, &files),
        "replay" => replay(&args, &dir, live, out.as_deref()),
        other => {
            eprintln!("unknown subcommand {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    };
    oslay_bench::flush_trace();
    code
}

/// The archive files to operate on: the explicit `--file` list, or every
/// `.otr` under `--dir`, name-sorted for stable output.
fn target_files(dir: &Path, files: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    if !files.is_empty() {
        return Ok(files.to_vec());
    }
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read archive directory {}: {e}", dir.display()))?;
    let mut found: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "otr"))
        .collect();
    found.sort();
    if found.is_empty() {
        return Err(format!(
            "no .otr files in {} (run `trace record` first)",
            dir.display()
        ));
    }
    Ok(found)
}

fn summary_header() {
    println!(
        "{:<16} {:>7} {:>12} {:>12} {:>8} {:>7}",
        "file", "blocks", "events", "bytes", "B/event", "ratio"
    );
}

fn summary_row(file: &str, s: &StoreSummary) {
    println!(
        "{:<16} {:>7} {:>12} {:>12} {:>8.2} {:>6.2}x",
        file,
        s.blocks,
        s.totals.events,
        s.file_bytes,
        s.bytes_per_event(),
        s.compression_ratio()
    );
}

fn record(args: &RunArgs, dir: &Path) -> ExitCode {
    banner("Trace record: archive workload event streams", &args.config);
    let study = Study::generate_with_threads(&args.config, args.threads);
    match record_archive(&study, dir, args.threads) {
        Ok(entries) => {
            summary_header();
            for (file, s) in &entries {
                summary_row(file, s);
            }
            println!();
            println!("Archive: {}", dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace record: {e}");
            ExitCode::FAILURE
        }
    }
}

fn inspect(dir: &Path, files: &[PathBuf]) -> ExitCode {
    let targets = match target_files(dir, files) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace inspect: {e}");
            return ExitCode::FAILURE;
        }
    };
    summary_header();
    for path in &targets {
        let name = path.file_name().map_or_else(
            || path.display().to_string(),
            |n| n.to_string_lossy().into(),
        );
        match TraceReader::open(path) {
            Ok(reader) => summary_row(&name, &reader.summary()),
            Err(e) => {
                eprintln!("trace inspect: {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Fully decodes a store with block ranges sharded over `threads`
/// workers (the footer index makes every block independently seekable
/// and checkable), then cross-checks the merged counts against the
/// footer totals.
fn verify_file(path: &Path, threads: usize) -> Result<StoreSummary, StoreError> {
    let reader = TraceReader::open(path)?;
    let blocks = reader.block_count();
    let summary = reader.summary();
    let expected = reader.totals();
    drop(reader);

    let shards = threads.min(blocks).max(1);
    let ranges: Vec<(usize, usize)> = (0..shards)
        .map(|i| (blocks * i / shards, blocks * (i + 1) / shards))
        .collect();
    let parts = oslay::exec::parallel_map(threads, ranges, |_, (start, end)| {
        let mut reader = TraceReader::open(path)?;
        let mut sink = CountingSink::default();
        for block in start..end {
            reader.decode_block_into(block, &mut sink)?;
        }
        Ok::<_, StoreError>(sink.totals)
    });
    let mut totals = StreamTotals::default();
    for part in parts {
        totals.merge(&part?);
    }
    if totals != expected {
        return Err(StoreError::CountMismatch {
            detail: format!("decoded totals {totals:?} disagree with footer totals {expected:?}"),
        });
    }
    Ok(summary)
}

fn verify(args: &RunArgs, dir: &Path, files: &[PathBuf]) -> ExitCode {
    let targets = match target_files(dir, files) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace verify: {e}");
            return ExitCode::FAILURE;
        }
    };
    for path in &targets {
        let name = path.file_name().map_or_else(
            || path.display().to_string(),
            |n| n.to_string_lossy().into(),
        );
        match verify_file(path, args.threads) {
            Ok(s) => println!(
                "{name}: OK ({} blocks, {} events, {:.2}x over fixed-width)",
                s.blocks,
                s.totals.events,
                s.compression_ratio()
            ),
            Err(e) => {
                eprintln!("trace verify: {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_matrix(study: &Study, matrix: &[Vec<SimResult>], report: &mut RunReport) {
    for (case, row) in study.cases().iter().zip(matrix) {
        println!("{}:", case.name());
        println!(
            "  {:<6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>6}",
            "layout", "misses", "os-self", "os-byapp", "app-self", "app-byos", "norm"
        );
        let mut base_misses = None;
        let mut level_rates = Vec::new();
        for ((name, _, _), r) in figure12_ladder().into_iter().zip(row) {
            let total = r.stats.total_misses();
            let base = *base_misses.get_or_insert(total);
            println!(
                "  {:<6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>5.1}%",
                name,
                total,
                r.stats.misses(MissKind::OsSelf),
                r.stats.misses(MissKind::OsByApp),
                r.stats.misses(MissKind::AppSelf),
                r.stats.misses(MissKind::AppByOs),
                total as f64 / base as f64 * 100.0,
            );
            level_rates.push((name, r.miss_rate()));
        }
        report.add_section(&format!("replay.{}", case.name()), level_rates);
        println!();
    }
}

fn replay(args: &RunArgs, dir: &Path, live: bool, out: Option<&Path>) -> ExitCode {
    banner(
        "Trace replay: Figure-12 matrix from archived streams",
        &args.config,
    );
    let study = Study::generate_with_threads(&args.config, args.threads);
    let registry = Arc::new(MetricRegistry::new());
    let cache = CacheConfig::paper_default();
    let sim = SimConfig::fast();

    // The source note goes to stderr: stdout must be byte-identical
    // between an archived replay and a live one, so the CI gate can
    // diff the two captures directly.
    let matrix = if live {
        eprintln!("source: live regeneration from engine seeds");
        run_figure12_matrix(&study, cache, &sim, args.threads, &registry)
    } else {
        eprintln!("source: archive {}", dir.display());
        match run_archived_figure12_matrix(&study, dir, cache, &sim, args.threads, &registry) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("trace replay: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut report = RunReport::new("trace_replay");
    print_matrix(&study, &matrix, &mut report);
    report.add_metrics(&registry);
    if let Some(path) = out {
        // Deterministic serialization (no wall-clock fields): archived
        // and live runs of the same study write identical bytes.
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("trace replay: cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(path, report.to_json_deterministic().to_json_pretty()) {
            eprintln!("trace replay: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        // Stderr, like the source note: stdout carries only the
        // deterministic table, so captures diff clean across modes.
        eprintln!("replay report: {}", path.display());
    }
    ExitCode::SUCCESS
}
