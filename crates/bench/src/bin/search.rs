//! Beyond the paper: metaheuristic layout search seeded from OptS.
//!
//! Fans out hill-climbing + simulated-annealing restarts over
//! `LayoutView` atom mutations, scored by the trace-free conflict
//! predictor plus an ext-TSP distance term, then validates the winner
//! end-to-end with full attributed replay against Base, Chang–Hwu,
//! OptS, and OptL. Writes `results/search.json` (objective trace,
//! best-so-far curve, per-workload replay ranking) for `dash` and
//! regression compare.
//!
//! Additional flags on top of the common set:
//!
//! ```text
//! --budget N         candidate proposals per restart (default 100000)
//! --restarts N       independent restarts (default 6)
//! --w-conflict N     weight of the predicted-conflict objective half
//! --w-distance N     weight of the arc-distance objective half
//! --w-absint N       re-rank restart winners by the abstract-
//!                    interpretation term: objective + N x statically
//!                    unguaranteed weight (default 0 = off)
//! --layout-out FILE  write the winning layout as JSON {name, addr, size}
//! ```
//!
//! Output is byte-identical at any `--threads N`.

use std::path::PathBuf;

use oslay::analysis::report::TextTable;
use oslay::cache::CacheConfig;
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::{
    banner, run_args_with, run_attributed_matrix, run_attributed_row, run_layout_search, Reporter,
};
use oslay_search::{ObjectiveWeights, SearchParams};

fn numeric<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let v = v.unwrap_or_else(|| panic!("{flag} needs a value\n{}", oslay_bench::usage_text()));
    v.parse().unwrap_or_else(|_| {
        panic!(
            "{flag} must be an integer, got {v:?}\n{}",
            oslay_bench::usage_text()
        )
    })
}

fn main() {
    let mut budget: u64 = 100_000;
    let mut restarts: u32 = 6;
    let mut weights = ObjectiveWeights::default();
    let mut w_absint: u64 = 0;
    let mut layout_out: Option<PathBuf> = None;
    let args = run_args_with(StudyConfig::small(), |arg, rest| match arg {
        "--budget" => {
            budget = numeric(arg, rest.pop_front());
            true
        }
        "--restarts" => {
            restarts = numeric(arg, rest.pop_front());
            true
        }
        "--w-conflict" => {
            weights.conflict = numeric(arg, rest.pop_front());
            true
        }
        "--w-distance" => {
            weights.distance = numeric(arg, rest.pop_front());
            true
        }
        "--w-absint" => {
            w_absint = numeric(arg, rest.pop_front());
            true
        }
        "--layout-out" => {
            layout_out = rest.pop_front().map(PathBuf::from);
            assert!(
                layout_out.is_some(),
                "--layout-out needs a file path\n{}",
                oslay_bench::usage_text()
            );
            true
        }
        _ => false,
    });
    let config = args.config;
    banner(
        "Layout search: metaheuristic vs the hand-derived layouts",
        &config,
    );
    let mut reporter = Reporter::new("search");
    let registry = reporter.registry();
    let study = Study::generate_with_threads(&config, args.threads);
    let cfg = CacheConfig::paper_default();
    let sim = SimConfig::fast();
    let params = SearchParams {
        budget,
        restarts,
        seed: config.seed,
        weights,
        w_absint,
        ..SearchParams::default()
    };

    println!(
        "search: budget {budget} x {restarts} restart(s), weights conflict={} distance={} \
         absint={w_absint}, seed {:#x}",
        weights.conflict, weights.distance, config.seed
    );
    let searched = run_layout_search(&study, cfg, &params, &sim, args.threads);
    let outcome = &searched.outcome;

    let mut table = TextTable::new([
        "restart", "initial", "best", "gain", "proposed", "gate-rej", "accepted",
    ]);
    for r in &outcome.restarts {
        table.row([
            format!(
                "{}{}",
                r.restart,
                if r.restart == 0 { " (climb)" } else { "" }
            ),
            r.initial.to_string(),
            r.best.to_string(),
            format!(
                "{:.2}%",
                (r.initial - r.best) as f64 / r.initial.max(1) as f64 * 100.0
            ),
            r.stats.proposed.to_string(),
            r.stats.gate_rejected.to_string(),
            r.stats.accepted.to_string(),
        ]);
        reporter.add_section(
            &format!("search.restart.{}", r.restart),
            [
                ("initial", r.initial as f64),
                ("best", r.best as f64),
                ("proposed", r.stats.proposed as f64),
                ("gate_rejected", r.stats.gate_rejected as f64),
                ("scored", r.stats.scored as f64),
                ("accepted", r.stats.accepted as f64),
                ("accepted_worse", r.stats.accepted_worse as f64),
                ("rejected_worse", r.stats.rejected_worse as f64),
            ],
        );
    }
    print!("{}", table.render());
    let best = outcome.restarts[outcome.winner as usize].best;
    println!(
        "objective: initial {} -> best {} (restart {}, {:.2}% lower)",
        outcome.initial,
        best,
        outcome.winner,
        (outcome.initial - best) as f64 / outcome.initial.max(1) as f64 * 100.0
    );
    let chosen = searched.selection.chosen;
    let seed_misses: u64 = searched.selection.misses[0].iter().sum();
    println!(
        "replay selection: candidate {} of {} ({}; {} of {} candidates matched or beat \
         the seed's total misses)",
        chosen,
        searched.candidates.len(),
        if chosen == 0 {
            "seed retained".to_owned()
        } else {
            format!("restart {}", chosen - 1)
        },
        searched
            .selection
            .misses
            .iter()
            .skip(1)
            .filter(|row| row.iter().sum::<u64>() <= seed_misses)
            .count(),
        searched.candidates.len() - 1,
    );
    let mut table = TextTable::new(["candidate", "objective", "replay misses", "worse than seed"]);
    for (k, row) in searched.selection.misses.iter().enumerate() {
        table.row([
            if k == 0 {
                "seed (OptS)".to_owned()
            } else {
                format!("restart {}", k - 1)
            },
            if k == 0 {
                outcome.initial.to_string()
            } else {
                outcome.restarts[k - 1].best.to_string()
            },
            row.iter().sum::<u64>().to_string(),
            format!("{} case(s)", searched.selection.worse_cases[k]),
        ]);
    }
    print!("{}", table.render());
    println!();
    reporter.add_section(
        "search.meta",
        [
            ("budget", budget as f64),
            ("restarts", f64::from(restarts)),
            ("winner_restart", f64::from(outcome.winner)),
            ("chosen_candidate", chosen as f64),
            ("initial_objective", outcome.initial as f64),
            ("best_objective", best as f64),
        ],
    );
    reporter.add_section(
        "search.curve",
        outcome.restarts[outcome.winner as usize]
            .curve
            .iter()
            .map(|&(step, obj)| (format!("s{step:07}"), obj as f64)),
    );

    // End-to-end validation: full attributed replay, searched layout
    // ranked against the named kinds.
    let kinds = [
        OsLayoutKind::Base,
        OsLayoutKind::ChangHwu,
        OsLayoutKind::OptS,
        OsLayoutKind::OptL,
    ];
    let matrix = run_attributed_matrix(&study, &kinds, cfg, &sim, args.threads, &registry);
    let row = run_attributed_row(&study, &searched.os, cfg, &sim, args.threads, &registry);
    println!("Attributed replay, miss rate % (8KB direct-mapped, app side Base):");
    let mut table = TextTable::new(["Workload", "Base", "C-H", "OptS", "OptL", "Search"]);
    let mut beats = 0usize;
    for (c, case) in study.cases().iter().enumerate() {
        let mut cells = vec![case.name().to_owned()];
        let mut fields = Vec::new();
        for (k, kind) in kinds.iter().enumerate() {
            let r = &matrix[c][k].0;
            cells.push(format!("{:.3}", r.miss_rate() * 100.0));
            fields.push((kind.name().to_lowercase().replace('-', "_"), r.miss_rate()));
        }
        let (search_result, _) = &row[c];
        cells.push(format!("{:.3}", search_result.miss_rate() * 100.0));
        fields.push(("search".to_owned(), search_result.miss_rate()));
        let opts = &matrix[c][2].0;
        if search_result.stats.total_misses() <= opts.stats.total_misses() {
            beats += 1;
        }
        reporter.add_section(&format!("search.replay.{}", case.name()), fields);
        table.row(cells);
    }
    print!("{}", table.render());
    println!(
        "search vs OptS (attributed replay): better-or-equal on {}/{} workloads",
        beats,
        study.cases().len()
    );
    reporter.add_section("search.acceptance", [("beats_or_ties_opt_s", beats as f64)]);

    if let Some(path) = &layout_out {
        let view = &searched.candidates[chosen];
        let fmt_list = |it: &mut dyn Iterator<Item = String>| it.collect::<Vec<_>>().join(", ");
        let json = format!(
            "{{\n  \"name\": \"{}\",\n  \"addr\": [{}],\n  \"size\": [{}]\n}}\n",
            view.name,
            fmt_list(&mut view.addr.iter().map(u64::to_string)),
            fmt_list(&mut view.size.iter().map(u32::to_string)),
        );
        std::fs::write(path, json).expect("write --layout-out file");
        eprintln!("search layout written: {}", path.display());
    }
    let path = reporter.finish();
    println!("Run report: {}", path.display());
}
