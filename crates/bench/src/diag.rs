//! Conflict diagnosis: attribute every miss of a workload, render per-set
//! pressure heatmaps, and diff the conflict structure of two layouts.
//!
//! ```text
//! # Why does OptS beat Base? Which conflicts did it remove?
//! cargo run --release --bin diag -- --compare base opts
//!
//! # Same, on a specific workload and scale:
//! cargo run --release --bin diag -- --compare base ch --case Shell --scale small
//!
//! # Sanity-check every results/*.json against the report schema:
//! cargo run --release --bin diag -- --check-results
//! ```
//!
//! For each layout the tool prints the compulsory/capacity/conflict
//! split, the Figure 13 block-class census, the per-set miss heatmap, and
//! the heaviest evictor→victim block pairs; then the diff: which pairs
//! the second layout resolved, which it introduced. A machine-readable
//! copy lands in `results/diag_<a>_vs_<b>.json`.

use crate::{banner, run_case_attributed, AppSide, Reporter};
use oslay::analysis::figures::render_set_heatmap;
use oslay::analysis::report::{pct, TextTable};
use oslay::cache::{AttributionReport, CacheConfig, CodeRef};
use oslay::model::{Domain, RoutineId};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_observe::{AttrClass, RunReport};

fn parse_kind(token: &str) -> OsLayoutKind {
    match token.to_ascii_lowercase().as_str() {
        "base" => OsLayoutKind::Base,
        "ch" | "c-h" | "changhwu" | "chang-hwu" => OsLayoutKind::ChangHwu,
        "opts" => OsLayoutKind::OptS,
        "optl" => OsLayoutKind::OptL,
        "call" => OsLayoutKind::Call,
        other => panic!("unknown layout {other:?} (base|ch|opts|optl|call)"),
    }
}

struct Args {
    config: StudyConfig,
    threads: usize,
    compare: Option<(OsLayoutKind, OsLayoutKind, String, String)>,
    case: String,
    check_results: bool,
}

fn parse_args() -> Args {
    let mut compare = None;
    let mut case = "Shell".to_owned();
    let mut check_results = false;
    let common = crate::run_args_with(StudyConfig::paper(), |arg, rest| match arg {
        "--compare" => {
            let a = rest.pop_front().expect("--compare needs two layout names");
            let b = rest.pop_front().expect("--compare needs two layout names");
            compare = Some((
                parse_kind(&a),
                parse_kind(&b),
                a.to_ascii_lowercase(),
                b.to_ascii_lowercase(),
            ));
            true
        }
        "--case" => {
            case = rest.pop_front().expect("--case needs a workload name");
            true
        }
        "--check-results" => {
            check_results = true;
            true
        }
        _ => false,
    });
    Args {
        config: common.config,
        threads: common.threads,
        compare,
        case,
        check_results,
    }
}

/// Human label of a code reference: routine name (for OS code), block id,
/// and placement class.
fn code_label(study: &Study, code: &CodeRef) -> String {
    match code.domain {
        Domain::Os => {
            let routine = study
                .kernel()
                .program
                .routine(RoutineId::new(code.routine as usize));
            format!(
                "{}/b{} [{}]",
                routine.name(),
                code.block,
                code.class.label()
            )
        }
        Domain::App => format!(
            "app r{}/b{} [{}]",
            code.routine,
            code.block,
            code.class.label()
        ),
    }
}

fn print_report(study: &Study, name: &str, r: &AttributionReport) {
    println!("--- {name} ---");
    println!(
        "{} misses / {} fetches ({})",
        r.total_misses,
        r.total_accesses,
        pct(r.total_misses as f64 / r.total_accesses.max(1) as f64)
    );
    for class in AttrClass::ALL {
        println!(
            "  {:<10} {:>10}  {}",
            class.label(),
            r.misses_of(class),
            pct(r.misses_of(class) as f64 / r.total_misses.max(1) as f64)
        );
    }
    println!(
        "  set imbalance (CV): {:.2}; worst 5 sets hold {} of misses",
        r.set_imbalance(),
        pct(r.set_peak_share(5))
    );
    print!("{}", render_set_heatmap(&r.set_misses, 96));
    println!("Block-class census (Figure 13 categories):");
    let mut table = TextTable::new(["class", "refs", "misses", "miss share"]);
    for (label, refs, misses) in r.census() {
        if refs == 0 && misses == 0 {
            continue;
        }
        table.row([
            label.to_owned(),
            refs.to_string(),
            misses.to_string(),
            pct(misses as f64 / r.total_misses.max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    let top = r.top_pairs(8);
    if !top.is_empty() {
        println!("Heaviest evictor -> victim block pairs:");
        for p in top {
            println!(
                "  {:>8}  {}  ->  {}",
                p.count,
                code_label(study, &p.evictor),
                code_label(study, &p.victim)
            );
        }
    }
    println!();
}

fn print_pair_list(study: &Study, title: &str, pairs: &[(CodeRef, CodeRef, u64, u64)]) {
    println!("{title}:");
    if pairs.is_empty() {
        println!("  (none)");
        return;
    }
    for (evictor, victim, base, current) in pairs.iter().take(10) {
        println!(
            "  {:>8} -> {:>6}  {}  ->  {}",
            base,
            current,
            code_label(study, evictor),
            code_label(study, victim)
        );
    }
    if pairs.len() > 10 {
        println!("  ... and {} more", pairs.len() - 10);
    }
}

fn compare_layouts(args: &Args) {
    let (kind_a, kind_b, tok_a, tok_b) = args.compare.as_ref().expect("compare mode");
    banner(
        &format!("diag: {} vs {} conflict diagnosis", tok_a, tok_b),
        &args.config,
    );
    let study = Study::generate_with_threads(&args.config, args.threads);
    let case = study
        .cases()
        .iter()
        .find(|c| c.name().eq_ignore_ascii_case(&args.case))
        .unwrap_or_else(|| {
            let names: Vec<&str> = study.cases().iter().map(|c| c.name()).collect();
            panic!("unknown workload {:?} (one of {names:?})", args.case)
        });
    let cfg = CacheConfig::paper_default();
    println!(
        "workload: {}; cache: {} B / {} B lines / {}-way (paper default)",
        case.name(),
        cfg.size(),
        cfg.line(),
        cfg.ways()
    );
    println!();
    let sim = SimConfig::fast();
    let mut reporter = Reporter::new(&format!("diag_{tok_a}_vs_{tok_b}"));
    let registry = reporter.registry();
    let (_, report_a) = run_case_attributed(
        &study,
        case,
        *kind_a,
        AppSide::Base,
        cfg,
        &sim,
        Some(&registry),
    );
    let (_, report_b) = run_case_attributed(
        &study,
        case,
        *kind_b,
        AppSide::Base,
        cfg,
        &sim,
        Some(&registry),
    );
    print_report(&study, &format!("{tok_a} ({})", kind_a.name()), &report_a);
    print_report(&study, &format!("{tok_b} ({})", kind_b.name()), &report_b);

    let diff = oslay::cache::diff_attribution(&report_a, &report_b);
    println!("=== layout diff: {tok_a} -> {tok_b} ===");
    for class in AttrClass::ALL {
        println!(
            "  {:<10} {:>+10}",
            class.label(),
            diff.class_delta[class.index()]
        );
    }
    println!(
        "  conflict matrix total: {} -> {}",
        diff.matrix_total.0, diff.matrix_total.1
    );
    let as_rows = |pairs: &[oslay::cache::PairDelta]| -> Vec<(CodeRef, CodeRef, u64, u64)> {
        pairs
            .iter()
            .map(|p| (p.evictor, p.victim, p.base, p.current))
            .collect()
    };
    print_pair_list(
        &study,
        &format!("Conflict pairs {tok_b} resolved (base count -> current)"),
        &as_rows(&diff.resolved),
    );
    print_pair_list(
        &study,
        &format!("Conflict pairs {tok_b} introduced (base count -> current)"),
        &as_rows(&diff.introduced),
    );
    println!();

    reporter.add_section(&format!("{tok_a}.attr"), report_a.section_fields());
    reporter.add_section(&format!("{tok_b}.attr"), report_b.section_fields());
    let resolved_misses: u64 = diff.resolved.iter().map(|p| p.base - p.current).sum();
    let introduced_misses: u64 = diff.introduced.iter().map(|p| p.current - p.base).sum();
    reporter.add_section(
        "diff",
        [
            ("conflict_delta".to_owned(), diff.conflict_delta() as f64),
            ("resolved_pairs".to_owned(), diff.resolved.len() as f64),
            ("introduced_pairs".to_owned(), diff.introduced.len() as f64),
            ("resolved_misses".to_owned(), resolved_misses as f64),
            ("introduced_misses".to_owned(), introduced_misses as f64),
        ],
    );
    let path = reporter.finish();
    println!("Run report: {}", path.display());
}

/// Schema sanity check of every `results/*.json`: each must parse as a
/// [`RunReport`] and carry at least one section or metric. Exits nonzero
/// on the first malformed file.
fn check_results() {
    let dir = std::path::Path::new("results");
    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("results/ directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        checked += 1;
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                println!("FAIL {}: unreadable: {e}", path.display());
                failed += 1;
                continue;
            }
        };
        match RunReport::from_json(&text) {
            Ok(report) => {
                let sections = report.section_names().len();
                let metrics = report.metric_count();
                if sections == 0 && metrics == 0 {
                    println!(
                        "FAIL {}: parses but carries no sections or metrics",
                        path.display()
                    );
                    failed += 1;
                } else {
                    println!(
                        "ok   {} ({} sections, {} metrics)",
                        path.display(),
                        sections,
                        metrics
                    );
                }
            }
            Err(e) => {
                println!("FAIL {}: {e}", path.display());
                failed += 1;
            }
        }
    }
    println!();
    println!("{checked} report(s) checked, {failed} failed");
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Entry point shared by the `oslay-bench` binary and the root-package
/// forwarder.
pub fn run() {
    let args = parse_args();
    if args.check_results {
        check_results();
        crate::flush_trace();
        return;
    }
    if args.compare.is_some() {
        compare_layouts(&args);
        crate::flush_trace();
        return;
    }
    eprintln!("usage: diag --compare <base|ch|opts|optl|call> <...> [--case NAME] [--scale S]");
    eprintln!("       diag --check-results");
    std::process::exit(2);
}
