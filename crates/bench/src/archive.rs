//! Recording and replaying archived trace stores.
//!
//! A trace archive is a directory with one `oslay-tracestore` file per
//! workload case, named by [`archive_file_name`]. [`record_archive`]
//! writes one from a live study; [`run_archived_figure12_matrix`] then
//! reproduces the Figure-12 matrix from the files alone — same ladder,
//! same sharding contract, same registry merge order as the live
//! [`crate::run_figure12_matrix`] — so a live run and an archived replay
//! produce byte-identical reports at any worker count.

use std::path::Path;
use std::sync::Arc;

use oslay::cache::{Cache, CacheConfig};
use oslay::{FanoutSink, Replayer, SimConfig, SimResult, Study, WorkloadCase};
use oslay_layout::Layout;
use oslay_observe::{MetricRegistry, Probe};
use oslay_tracestore::{StoreError, StoreSummary, TraceReader, TraceWriter};

use crate::{app_layout_for, figure12_ladder};

/// The archive file name for a workload case: its display name lowered
/// with every non-alphanumeric run collapsed to `_`, plus the `.otr`
/// ("oslay trace") extension — `TRFD+Make` becomes `trfd_make.otr`.
#[must_use]
pub fn archive_file_name(case: &WorkloadCase) -> String {
    let mut name = String::new();
    for c in case.name().chars() {
        if c.is_ascii_alphanumeric() {
            name.push(c.to_ascii_lowercase());
        } else if !name.ends_with('_') {
            name.push('_');
        }
    }
    name.push_str(".otr");
    name
}

/// Records every workload case of `study` into `dir` (created if
/// missing), one store file per case, over up to `threads` workers.
///
/// Returns `(file_name, summary)` per case, in case order. Traces are
/// regenerated from each case's recorded engine seed, so the archived
/// stream is exactly the stream a live replay consumes.
///
/// # Errors
///
/// Returns the first I/O error in case order; earlier cases may still
/// have written their files.
pub fn record_archive(
    study: &Study,
    dir: &Path,
    threads: usize,
) -> std::io::Result<Vec<(String, StoreSummary)>> {
    std::fs::create_dir_all(dir)?;
    let jobs: Vec<usize> = (0..study.cases().len()).collect();
    let results = oslay::exec::parallel_map(threads, jobs, |_, i| {
        let case = &study.cases()[i];
        let file = archive_file_name(case);
        let mut writer = TraceWriter::create(&dir.join(&file))?;
        study.stream_case(case, &mut writer);
        let (_, summary) = writer.finish()?;
        Ok((file, summary))
    });
    results.into_iter().collect()
}

/// The memory layouts one replay runs under: the OS image plus the
/// optional application side.
#[derive(Clone, Copy)]
pub struct LayoutPair<'a> {
    /// The placed OS layout.
    pub os: &'a Layout,
    /// The application layout, `None` for OS-only workloads.
    pub app: Option<&'a Layout>,
}

/// Replays one archived case through a probed cache, mirroring
/// [`crate::run_probed_on`] event for event: same replayer, same probe
/// wiring, same final occupancy snapshot. The only difference is the
/// event source — a [`TraceReader`] instead of a regenerated walk — so
/// the metric registry and result are identical when the archive is
/// faithful.
///
/// # Errors
///
/// Returns a [`StoreError`] if the store cannot be opened or a block
/// fails its CRC or decode (the error names the block).
pub fn replay_archived_probed(
    study: &Study,
    case: &WorkloadCase,
    path: &Path,
    layouts: LayoutPair<'_>,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    registry: &Arc<MetricRegistry>,
) -> Result<SimResult, StoreError> {
    let probe: Arc<dyn Probe + Send + Sync> = Arc::clone(registry) as _;
    let mut cache = Cache::with_probe(cache_cfg, probe);
    let mut reader = TraceReader::open(path)?;
    let result = {
        let mut replayer = study.replayer_for(case, layouts.os, layouts.app, &mut cache, sim);
        reader.replay_into(&mut replayer)?;
        replayer.finish()
    };
    cache.record_occupancy();
    Ok(result)
}

/// Reproduces the Figure-12 matrix from an archive directory, returning
/// `results[case][level]` exactly like [`crate::run_figure12_matrix`].
///
/// Single-pass: each case's store is opened and decoded **once**, and a
/// [`FanoutSink`] feeds the decoded stream to one [`Replayer`] per
/// ladder level side by side — five replays for one decode, instead of
/// re-opening and re-decoding the store per level. Each level records
/// into a private registry shard; shards fold into `registry`
/// case-major, level-minor — the same order the per-level job list used
/// — so against the same study this is byte-identical to the live
/// matrix at any worker count.
///
/// # Errors
///
/// Returns the first [`StoreError`] in case order (a missing file, or a
/// corrupt block named by index).
pub fn run_archived_figure12_matrix(
    study: &Study,
    dir: &Path,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    threads: usize,
    registry: &Arc<MetricRegistry>,
) -> Result<Vec<Vec<SimResult>>, StoreError> {
    let ladder = figure12_ladder();
    let mut kinds: Vec<oslay::OsLayoutKind> = Vec::new();
    for &(_, kind, _) in &ladder {
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    let layouts: Vec<(oslay::OsLayoutKind, oslay::OsLayout)> = kinds
        .into_iter()
        .map(|kind| (kind, study.os_layout(kind, cache_cfg.size())))
        .collect();
    let jobs: Vec<usize> = (0..study.cases().len()).collect();
    let ladder_ref = &ladder;
    let layouts_ref = &layouts;
    // Same timeline contract as the live matrix: one group allocated
    // before the fan-out, one scope per job in job-index order, so an
    // archived replay's telemetry document is byte-identical across
    // worker counts.
    let group = oslay_observe::timeline::group();
    let sharded = oslay::exec::parallel_map(threads, jobs, move |i, c| {
        let case = &study.cases()[c];
        let _t = oslay_observe::timeline::scope(group, i as u64, case.name().to_owned());
        let path = dir.join(archive_file_name(case));

        // One probed cache + registry shard per ladder level. The app
        // layouts live beside them: each replayer borrows its level's.
        let shards: Vec<Arc<MetricRegistry>> = (0..ladder_ref.len())
            .map(|_| Arc::new(MetricRegistry::new()))
            .collect();
        let apps: Vec<Option<Layout>> = ladder_ref
            .iter()
            .map(|&(_, _, side)| app_layout_for(study, case, side, cache_cfg.size()))
            .collect();
        let mut caches: Vec<Cache> = shards
            .iter()
            .map(|shard| {
                let probe: Arc<dyn Probe + Send + Sync> = Arc::clone(shard) as _;
                Cache::with_probe(cache_cfg, probe)
            })
            .collect();
        let mut replayers: Vec<_> = caches
            .iter_mut()
            .zip(ladder_ref.iter().zip(&apps))
            .map(|(cache, (&(_, kind, _), app))| {
                let os = &layouts_ref
                    .iter()
                    .find(|&&(k, _)| k == kind)
                    .expect("every ladder kind is memoized")
                    .1;
                study.replayer_for(case, &os.layout, app.as_ref(), cache, sim)
            })
            .collect();

        // Decode the store once; every block fans out to all levels.
        {
            let mut fan = FanoutSink::new(
                replayers
                    .iter_mut()
                    .map(|r| r as &mut dyn oslay_trace::TraceSink)
                    .collect(),
            );
            let mut reader = TraceReader::open(&path)?;
            reader.replay_into(&mut fan)?;
        }

        let row: Vec<SimResult> = replayers.into_iter().map(Replayer::finish).collect();
        for cache in &mut caches {
            cache.record_occupancy();
        }
        Ok::<_, StoreError>(row.into_iter().zip(shards).collect::<Vec<_>>())
    });
    let mut results: Vec<Vec<SimResult>> = Vec::with_capacity(study.cases().len());
    for levels in sharded {
        let levels = levels?;
        let mut row = Vec::with_capacity(ladder.len());
        for (r, shard) in levels {
            registry.merge_from(&shard);
            row.push(r);
        }
        results.push(row);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay::StudyConfig;

    #[test]
    fn archive_names_match_spec() {
        let study = Study::generate(&StudyConfig::tiny());
        let names: Vec<String> = study.cases().iter().map(archive_file_name).collect();
        assert_eq!(
            names,
            ["trfd_4.otr", "trfd_make.otr", "arc2d_fsck.otr", "shell.otr"]
        );
    }
}
