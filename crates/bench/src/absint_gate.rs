//! Soundness gate for the abstract-interpretation cache analysis.
//!
//! The static classifier (`oslay_verify::absint`) promises, per layout:
//! always-hit points never miss, persistent lines miss at most once per
//! run, always-miss points miss on every execution. This module replays
//! every workload against every layout — word for word, through the
//! attribution engine's cache — and checks each promise against the
//! *measured* per-point miss counts. One surviving violation anywhere
//! fails the gate; the `analyze --gate` binary turns that into exit 1
//! and ci.sh runs it on every push.
//!
//! The replay mirrors `oslay::sim::Replayer` exactly (same fetch-word
//! enumeration, same cache, same trace stream), but records misses per
//! *(block, line-slot)* access point — the unit the classifier speaks —
//! instead of only per block.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use oslay::cache::{AddressMap, AttributedCache, Cache, CacheConfig, InstructionCache};
use oslay::{OsLayout, Study};
use oslay_model::{Domain, WORD_BYTES};
use oslay_trace::{TraceEvent, TraceSink};
use oslay_verify::{
    block_line_addrs, classify_layout, AbsintParams, Classification, LayoutView, LineClass,
};

/// Gate verdict for one workload × layout replay.
#[derive(Clone, PartialEq, Debug)]
pub struct GateRow {
    /// Workload name.
    pub workload: String,
    /// Layout name.
    pub layout: String,
    /// Always-hit points (static).
    pub ah_points: u64,
    /// Measured misses summed over always-hit points — sound iff 0.
    pub ah_misses: u64,
    /// Distinct lines carrying at least one persistent point.
    pub persistent_lines: u64,
    /// Persistent lines measuring more than one miss — sound iff 0.
    pub persistent_excess: u64,
    /// Always-miss points (static).
    pub am_points: u64,
    /// Always-miss points whose measured misses differ from the block's
    /// execution count — sound iff 0.
    pub am_mismatch: u64,
    /// Fraction of this workload's measured OS line accesses that landed
    /// on a classified (non-unclassified) point.
    pub measured_coverage: f64,
}

impl GateRow {
    /// Whether every soundness promise held in this replay.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.ah_misses == 0 && self.persistent_excess == 0 && self.am_mismatch == 0
    }
}

/// The full gate outcome: per-layout classifications plus one
/// [`GateRow`] per workload × layout.
#[derive(Clone, PartialEq, Debug)]
pub struct AbsintGateOutcome {
    /// `(layout name, classification)` in the order given.
    pub classifications: Vec<(String, Classification)>,
    /// Rows in layout-major, workload-minor order.
    pub rows: Vec<GateRow>,
}

impl AbsintGateOutcome {
    /// Whether every row passed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.rows.iter().all(GateRow::ok)
    }
}

/// Line-aligned addresses of every application line the workloads
/// execute (under their replayed app-side Base layouts) — the foreign
/// lines that count against each set's persistence budget.
#[must_use]
pub fn absint_foreign_lines(study: &Study, config: &CacheConfig) -> Vec<u64> {
    let mut lines = Vec::new();
    for case in study.cases() {
        let (Some(layout), Some(profile)) = (study.app_base_layout(case), &case.app_profile) else {
            continue;
        };
        for block in profile.executed_blocks() {
            lines.extend(block_line_addrs(
                layout.addr(block),
                layout.effective_size(block),
                config,
            ));
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// Classifies one OS layout against the study's merged profile, with the
/// study's own foreign lines — the standard way every surface (analyze,
/// lint, all_experiments, the gate) invokes the analysis.
#[must_use]
pub fn classify_study_layout(
    study: &Study,
    view: &LayoutView,
    config: CacheConfig,
) -> Classification {
    let foreign = absint_foreign_lines(study, &config);
    let params = AbsintParams::new(config).with_foreign_lines(foreign);
    classify_layout(
        &study.kernel().program,
        study.averaged_os_profile(),
        view,
        &params,
    )
}

/// Precomputed word-level replay geometry of one layout side: per block,
/// its base address and each fetch word's line-slot index.
struct LayoutWords {
    base: Vec<u64>,
    word_slot: Vec<Vec<u16>>,
}

impl LayoutWords {
    fn new(view: &LayoutView, config: &CacheConfig) -> Self {
        let n = view.num_blocks();
        let mut base = Vec::with_capacity(n);
        let mut word_slot = Vec::with_capacity(n);
        for b in 0..n {
            let addr = view.addr[b];
            let words = oslay_model::fetch_words(view.size[b]);
            let mut slots = Vec::with_capacity(words as usize);
            let mut slot: u16 = 0;
            let mut last_line = None;
            for w in 0..words {
                let line = config.line_addr(addr + u64::from(w) * u64::from(WORD_BYTES));
                match last_line {
                    None => last_line = Some(line),
                    Some(prev) if prev != line => {
                        slot += 1;
                        last_line = Some(line);
                    }
                    Some(_) => {}
                }
                slots.push(slot);
            }
            base.push(addr);
            word_slot.push(slots);
        }
        Self { base, word_slot }
    }

    fn num_slots(&self, block: usize) -> usize {
        self.word_slot[block].last().map_or(0, |&s| s as usize + 1)
    }
}

/// The per-point miss recorder: a [`TraceSink`] replaying the stream
/// through the attribution engine's cache, mirroring the production
/// replayer word for word.
struct MissRecorder<'a> {
    cache: AttributedCache,
    os: &'a LayoutWords,
    app: Option<&'a LayoutWords>,
    point_miss: Vec<Vec<u64>>,
    exec: Vec<u64>,
}

impl TraceSink for MissRecorder<'_> {
    fn event(&mut self, event: TraceEvent) {
        let TraceEvent::Block { id, domain } = event else {
            return;
        };
        let b = id.index();
        match domain {
            Domain::Os => {
                self.exec[b] += 1;
                let base = self.os.base[b];
                for (w, &slot) in self.os.word_slot[b].iter().enumerate() {
                    let addr = base + w as u64 * u64::from(WORD_BYTES);
                    if self.cache.access(addr, Domain::Os).is_miss() {
                        self.point_miss[b][slot as usize] += 1;
                    }
                }
            }
            Domain::App => {
                let app = self.app.expect("app block in a workload without an app");
                let base = app.base[b];
                for w in 0..app.word_slot[b].len() {
                    let addr = base + w as u64 * u64::from(WORD_BYTES);
                    let _ = self.cache.access(addr, Domain::App);
                }
            }
        }
    }
}

/// Replays every workload against every layout and checks the static
/// classes against measured misses.
///
/// `layouts` pairs a display name with the built layout; classifications
/// use the merged profile (sound for each workload separately because
/// the merged arc set is a superset of every individual one).
#[must_use]
pub fn run_absint_gate(
    study: &Study,
    layouts: &[(String, OsLayout)],
    config: CacheConfig,
    threads: usize,
) -> AbsintGateOutcome {
    let program = &study.kernel().program;
    let classifications: Vec<(String, Classification, Arc<LayoutView>)> = layouts
        .iter()
        .map(|(name, os)| {
            let mut view = LayoutView::from_layout(&os.layout);
            view.name.clone_from(name);
            let c = classify_study_layout(study, &view, config);
            (name.clone(), c, Arc::new(view))
        })
        .collect();

    let os_words: Vec<Arc<LayoutWords>> = classifications
        .iter()
        .map(|(_, _, view)| Arc::new(LayoutWords::new(view, &config)))
        .collect();
    let app_views: Vec<Option<Arc<LayoutWords>>> = study
        .cases()
        .iter()
        .map(|case| {
            study
                .app_base_layout(case)
                .map(|l| Arc::new(LayoutWords::new(&LayoutView::from_layout(&l), &config)))
        })
        .collect();

    let jobs: Vec<(usize, usize)> = (0..layouts.len())
        .flat_map(|l| (0..study.cases().len()).map(move |c| (l, c)))
        .collect();
    let rows = oslay::exec::parallel_map(threads, jobs, |_, (l, c)| {
        let case = &study.cases()[c];
        let (name, classification, _) = &classifications[l];
        let os = &layouts[l].1;
        let mut spans =
            oslay_layout::layout_spans(program, &os.layout, Domain::Os, os.classes.as_deref());
        if let (Some(app_layout), Some(app_program)) = (study.app_base_layout(case), &case.app) {
            spans.extend(oslay_layout::layout_spans(
                app_program,
                &app_layout,
                Domain::App,
                None,
            ));
        }
        let words = &os_words[l];
        let mut recorder = MissRecorder {
            cache: AttributedCache::new(Cache::new(config), Arc::new(AddressMap::build(spans))),
            os: words,
            app: app_views[c].as_deref(),
            point_miss: (0..words.base.len())
                .map(|b| vec![0u64; words.num_slots(b)])
                .collect(),
            exec: vec![0u64; words.base.len()],
        };
        study.stream_case(case, &mut recorder);
        check_row(case.name(), name, classification, &recorder)
    });

    AbsintGateOutcome {
        classifications: classifications
            .into_iter()
            .map(|(name, c, _)| (name, c))
            .collect(),
        rows,
    }
}

/// Checks one replay's measured misses against one classification.
fn check_row(
    workload: &str,
    layout: &str,
    classification: &Classification,
    recorder: &MissRecorder<'_>,
) -> GateRow {
    let mut row = GateRow {
        workload: workload.to_owned(),
        layout: layout.to_owned(),
        ah_points: 0,
        ah_misses: 0,
        persistent_lines: 0,
        persistent_excess: 0,
        am_points: 0,
        am_mismatch: 0,
        measured_coverage: 0.0,
    };
    // Per-line miss totals over *all* points (a persistent line's budget
    // is global, whichever block touches it).
    let mut line_miss: HashMap<u64, u64> = HashMap::new();
    for p in &classification.points {
        let misses = recorder.point_miss[p.block as usize][p.slot as usize];
        *line_miss.entry(p.line_addr).or_insert(0) += misses;
    }
    let mut persistent_seen: HashSet<u64> = HashSet::new();
    let mut covered_exec = 0u64;
    let mut total_exec = 0u64;
    for p in &classification.points {
        let block = p.block as usize;
        let misses = recorder.point_miss[block][p.slot as usize];
        let exec = recorder.exec[block];
        total_exec += exec;
        if p.class != LineClass::Unclassified {
            covered_exec += exec;
        }
        match p.class {
            LineClass::AlwaysHit => {
                row.ah_points += 1;
                row.ah_misses += misses;
            }
            LineClass::Persistent => {
                persistent_seen.insert(p.line_addr);
            }
            LineClass::AlwaysMiss => {
                row.am_points += 1;
                if misses != exec {
                    row.am_mismatch += 1;
                }
            }
            LineClass::Unclassified => {}
        }
    }
    for &line in &persistent_seen {
        row.persistent_lines += 1;
        if line_miss.get(&line).copied().unwrap_or(0) > 1 {
            row.persistent_excess += 1;
        }
    }
    row.measured_coverage = if total_exec == 0 {
        1.0
    } else {
        covered_exec as f64 / total_exec as f64
    };
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay::{OsLayoutKind, StudyConfig};

    #[test]
    fn tiny_gate_is_sound_on_base_and_opt_s() {
        let config = StudyConfig::tiny().with_os_blocks(8_000);
        let study = Study::generate(&config);
        let cfg = CacheConfig::paper_default();
        let layouts: Vec<(String, OsLayout)> = [OsLayoutKind::Base, OsLayoutKind::OptS]
            .iter()
            .map(|&k| (k.name().to_owned(), study.os_layout(k, cfg.size())))
            .collect();
        let outcome = run_absint_gate(&study, &layouts, cfg, 2);
        assert_eq!(outcome.rows.len(), 2 * study.cases().len());
        for row in &outcome.rows {
            assert!(
                row.ok(),
                "{}/{}: ah_misses={} persistent_excess={} am_mismatch={}",
                row.layout,
                row.workload,
                row.ah_misses,
                row.persistent_excess,
                row.am_mismatch
            );
        }
        // The analysis must actually claim something.
        for (name, c) in &outcome.classifications {
            assert!(c.coverage() > 0.0, "{name}: zero coverage");
        }
    }
}
