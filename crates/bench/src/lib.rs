//! Shared support for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. They share command-line handling (`--scale tiny|small|paper`,
//! `--blocks N`, `--seed N`) and a couple of evaluation drivers.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p oslay-bench --bin fig12_optimization_levels -- --scale paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint_gate;
pub mod archive;
pub mod diag;
pub mod digest;

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

use oslay::cache::{
    AddressMap, AttributedCache, AttributionReport, Cache, CacheConfig, InstructionCache,
};
use oslay::{
    MultiGroupReplayer, MultiLane, OsLayout, OsLayoutKind, SimConfig, SimResult, Study,
    StudyConfig, WorkloadCase,
};
use oslay_layout::Layout;
use oslay_model::synth::Scale;
use oslay_model::Domain;
use oslay_observe::timeline;
use oslay_observe::{global_recorder, AttributionProbe, MetricRegistry, Probe, RunReport};

/// Every experiment binary counts allocations: the counting allocator is
/// a pair of relaxed atomic adds on top of the system allocator, cheap
/// enough to leave on unconditionally, and it feeds both the `perf.alloc`
/// report sections and the flight recorder's per-worker probe.
#[global_allocator]
static ALLOC: oslay_perf::alloc::CountingAlloc = oslay_perf::alloc::CountingAlloc;

/// Flushes the flight recorder to the `--trace-out` path and the
/// timeline to the `--telemetry-out` path, if either was given.
/// Idempotent and cheap when both are off; every experiment binary calls
/// this once at the end of `main` (the [`Reporter`] path does it in
/// [`Reporter::finish`]). Both notices go to stderr so stdout stays
/// byte-identical with observability on or off.
pub fn flush_trace() {
    match oslay_observe::flight::flush() {
        Ok(Some(path)) => eprintln!("flight trace written: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("flight trace write failed: {e}"),
    }
    match oslay_observe::timeline::flush() {
        Ok(Some(path)) => eprintln!("telemetry written: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }
}

/// The shared usage text for every experiment binary: the one place the
/// common flags are documented, so `--help` and the unknown-argument
/// error cannot drift out of sync with [`parse_run_args`].
#[must_use]
pub fn usage_text() -> String {
    "common experiment flags:\n\
     \x20 --scale tiny|small|paper   study scale (default: binary-specific)\n\
     \x20 --blocks N                 OS blocks per workload\n\
     \x20 --seed N                   workload generator seed\n\
     \x20 --threads N                worker threads (output is identical at any N)\n\
     \x20 --verify                   statically verify every layout before simulating\n\
     \x20 --trace-out FILE           write a Chrome trace-event flight recording\n\
     \x20 --telemetry-out FILE       write windowed simulated-time cache telemetry\n\
     \x20 --help, -h                 print this help and exit\n\
     some binaries accept additional flags; see their headers."
        .to_owned()
}

/// The common experiment arguments: study configuration plus the worker
/// count for sharded execution.
#[derive(Clone, Debug)]
pub struct RunArgs {
    /// The study configuration (`--scale`, `--blocks`, `--seed`).
    pub config: StudyConfig,
    /// Worker threads for independent simulation jobs (`--threads`,
    /// default: available parallelism). Output is byte-identical at any
    /// value; see `oslay::exec::parallel_map`.
    pub threads: usize,
    /// Verify every layout statically before simulating it (`--verify`).
    /// Debug builds always verify; this flag opts release builds in. See
    /// [`oslay::set_layout_verify`].
    pub verify: bool,
    /// Write a Chrome trace-event JSON flight recording here
    /// (`--trace-out FILE`). `None` leaves the flight recorder disabled,
    /// which is the zero-overhead default.
    pub trace_out: Option<PathBuf>,
    /// Write the simulated-time telemetry document here
    /// (`--telemetry-out FILE`). `None` leaves the timeline disabled,
    /// which is the zero-overhead default.
    pub telemetry_out: Option<PathBuf>,
}

/// Parses the common experiment arguments (`--scale tiny|small|paper`,
/// `--blocks N`, `--seed N`, `--threads N`).
///
/// Defaults to `--scale paper`; integration environments pass
/// `--scale small` for speed.
#[must_use]
pub fn run_args() -> RunArgs {
    run_args_with(StudyConfig::paper(), |_, _| false)
}

/// Like [`run_args`], but with a caller-chosen default configuration and
/// an `extra` handler for driver-specific arguments.
///
/// `extra` receives each token the common parser does not recognize plus
/// the remaining argument queue (pop values off the front); returning
/// `false` rejects the token with the standard panic. This is the one
/// place command lines are parsed — `bench_sim`, `diag`, and the `trace`
/// store tool all layer their flags on top of it rather than re-rolling
/// `--scale`/`--threads` handling.
#[must_use]
pub fn run_args_with<F>(default: StudyConfig, extra: F) -> RunArgs
where
    F: FnMut(&str, &mut VecDeque<String>) -> bool,
{
    let args = parse_run_args(std::env::args().skip(1).collect(), default, extra);
    apply_run_args(&args);
    args
}

/// Applies the parsed arguments' process-wide side effects: layout
/// verification (`--verify`) and flight-recorder activation
/// (`--trace-out`). [`run_args_with`] calls this; binaries that parse an
/// explicit queue through [`parse_run_args`] call it themselves.
pub fn apply_run_args(args: &RunArgs) {
    if args.verify {
        oslay::set_layout_verify(true);
    }
    if let Some(path) = &args.trace_out {
        oslay_observe::flight::set_output(path);
        oslay_observe::flight::set_thread_track("main");
        oslay_perf::alloc::install_flight_probe();
    }
    if let Some(path) = &args.telemetry_out {
        oslay_observe::timeline::set_output(path);
    }
}

/// The testable core of [`run_args_with`]: parses an explicit argument
/// queue instead of the process command line.
///
/// # Panics
///
/// Panics on an unknown argument (one `extra` rejects), a flag missing
/// its value, or a malformed value.
#[must_use]
pub fn parse_run_args<F>(mut argv: VecDeque<String>, default: StudyConfig, mut extra: F) -> RunArgs
where
    F: FnMut(&str, &mut VecDeque<String>) -> bool,
{
    let mut out = RunArgs {
        config: default,
        threads: oslay::exec::default_threads(),
        verify: false,
        trace_out: None,
        telemetry_out: None,
    };
    while let Some(arg) = argv.pop_front() {
        match arg.as_str() {
            "--scale" => {
                let v = argv.pop_front().expect("--scale needs a value");
                out.config = match v.as_str() {
                    "tiny" => StudyConfig::tiny(),
                    "small" => StudyConfig::small(),
                    "paper" => StudyConfig::paper(),
                    other => panic!("unknown scale {other:?} (tiny|small|paper)"),
                };
            }
            "--blocks" => {
                let v = argv.pop_front().expect("--blocks needs a value");
                out.config.os_blocks = v.parse().expect("--blocks must be an integer");
            }
            "--seed" => {
                let v = argv.pop_front().expect("--seed needs a value");
                out.config.seed = v.parse().expect("--seed must be an integer");
            }
            "--threads" => {
                let v = argv.pop_front().expect("--threads needs a value");
                out.threads = v.parse().expect("--threads must be an integer");
                assert!(out.threads >= 1, "--threads must be >= 1");
            }
            "--verify" => out.verify = true,
            "--trace-out" => {
                let v = argv.pop_front().expect("--trace-out needs a file path");
                out.trace_out = Some(PathBuf::from(v));
            }
            "--telemetry-out" => {
                let v = argv.pop_front().expect("--telemetry-out needs a file path");
                out.telemetry_out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            other => {
                assert!(
                    extra(other, &mut argv),
                    "unknown argument {other:?}\n{}",
                    usage_text()
                );
            }
        }
    }
    out
}

/// Parses the common experiment arguments into a [`StudyConfig`].
///
/// Compatibility wrapper over [`run_args`] (tolerates and ignores
/// `--threads`).
#[must_use]
pub fn config_from_args() -> StudyConfig {
    run_args().config
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, config: &StudyConfig) {
    println!("== {title} ==");
    println!(
        "   scale: {:?}, OS blocks/workload: {}, seed: {:#x}",
        config.scale, config.os_blocks, config.seed
    );
    println!();
}

/// Scale label for result files.
#[must_use]
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Which application layout to pair with an OS layout.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum AppSide {
    /// Unoptimized application (source order at `APP_BASE`).
    Base,
    /// `OptA`: the application optimized with sequences + loop area.
    Optimized,
    /// Chang–Hwu-optimized application.
    ChangHwu,
}

/// Builds the application layout a ladder level pairs with a case (`None`
/// for app-free workloads like Shell).
#[must_use]
pub fn app_layout_for(
    study: &Study,
    case: &WorkloadCase,
    app_side: AppSide,
    cache_size: u32,
) -> Option<Layout> {
    match app_side {
        AppSide::Base => study.app_base_layout(case),
        AppSide::Optimized => study.app_opt_layout(case, cache_size),
        AppSide::ChangHwu => study.app_ch_layout(case),
    }
}

/// Evaluates one workload under one OS layout kind on a unified cache.
#[must_use]
pub fn run_case(
    study: &Study,
    case: &WorkloadCase,
    os_kind: OsLayoutKind,
    app_side: AppSide,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
) -> SimResult {
    let os = study.os_layout(os_kind, cache_cfg.size());
    let app = app_layout_for(study, case, app_side, cache_cfg.size());
    let mut cache = Cache::new(cache_cfg);
    let _t = timeline::scope(
        timeline::group(),
        0,
        format!("{}/{}", case.name(), os_kind.name()),
    );
    study.simulate(case, &os.layout, app.as_ref(), &mut cache, sim)
}

/// Like [`run_case`], but with precomputed layouts: routes the cache's
/// miss/eviction events into `registry` and records a final set-occupancy
/// snapshot, so the run report carries `cache.*` metrics alongside the
/// aggregate statistics.
///
/// Sharded drivers call this directly with memoized layouts (building an
/// OS layout is far more expensive than replaying a tiny trace through
/// it) and a per-job registry.
#[must_use]
pub fn run_probed_on(
    study: &Study,
    case: &WorkloadCase,
    os_layout: &Layout,
    app_layout: Option<&Layout>,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    registry: &Arc<MetricRegistry>,
) -> SimResult {
    let probe: Arc<dyn Probe + Send + Sync> = Arc::clone(registry) as _;
    let mut cache = Cache::with_probe(cache_cfg, probe);
    let result = study.simulate(case, os_layout, app_layout, &mut cache, sim);
    cache.record_occupancy();
    result
}

/// Like [`run_case`], but routes the cache's miss/eviction events into
/// `registry` and records a final set-occupancy snapshot, so the run
/// report carries `cache.*` metrics alongside the aggregate statistics.
#[must_use]
pub fn run_case_probed(
    study: &Study,
    case: &WorkloadCase,
    os_kind: OsLayoutKind,
    app_side: AppSide,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    registry: &Arc<MetricRegistry>,
) -> SimResult {
    let os = study.os_layout(os_kind, cache_cfg.size());
    let app = app_layout_for(study, case, app_side, cache_cfg.size());
    let _t = timeline::scope(
        timeline::group(),
        0,
        format!("{}/{}", case.name(), os_kind.name()),
    );
    run_probed_on(
        study,
        case,
        &os.layout,
        app.as_ref(),
        cache_cfg,
        sim,
        registry,
    )
}

/// Like [`run_case`], but through the attribution engine: every miss is
/// classified compulsory/capacity/conflict, charged to its cache set,
/// Figure 13 block class, OS entry class, and (for conflicts) its
/// evictor→victim pair. Returns the usual [`SimResult`] plus the
/// [`AttributionReport`].
///
/// When `registry` is given, each classified miss also streams into it as
/// `cache.attr.*` metrics.
#[must_use]
pub fn run_case_attributed(
    study: &Study,
    case: &WorkloadCase,
    os_kind: OsLayoutKind,
    app_side: AppSide,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    registry: Option<&Arc<MetricRegistry>>,
) -> (SimResult, AttributionReport) {
    let os = study.os_layout(os_kind, cache_cfg.size());
    let app = app_layout_for(study, case, app_side, cache_cfg.size());
    let _t = timeline::scope(
        timeline::group(),
        0,
        format!("{}/{}", case.name(), os_kind.name()),
    );
    run_attributed_on(study, case, &os, app.as_ref(), cache_cfg, sim, registry)
}

/// Like [`run_case_attributed`], but with precomputed layouts (the
/// sharded drivers memoize each [`OsLayout`] once and fan the replay jobs
/// out over it).
#[must_use]
pub fn run_attributed_on(
    study: &Study,
    case: &WorkloadCase,
    os: &OsLayout,
    app: Option<&Layout>,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    registry: Option<&Arc<MetricRegistry>>,
) -> (SimResult, AttributionReport) {
    let mut spans = oslay_layout::layout_spans(
        &study.kernel().program,
        &os.layout,
        Domain::Os,
        os.classes.as_deref(),
    );
    if let (Some(app_layout), Some(app_program)) = (app, case.app.as_ref()) {
        // App and OS address spaces are disjoint, so one map holds both.
        spans.extend(oslay_layout::layout_spans(
            app_program,
            app_layout,
            Domain::App,
            None,
        ));
    }
    let map = Arc::new(AddressMap::build(spans));
    let mut cache = match registry {
        Some(reg) => {
            let probe: Arc<dyn AttributionProbe + Send + Sync> = Arc::clone(reg) as _;
            AttributedCache::with_probe(Cache::new(cache_cfg), map, probe)
        }
        None => AttributedCache::new(Cache::new(cache_cfg), map),
    };
    let result = study.simulate(case, &os.layout, app, &mut cache, sim);
    (result, cache.report())
}

/// Runs the whole Figure-12 matrix — every workload × every ladder level
/// — over up to `threads` workers, returning `results[case][level]`.
///
/// The OS layout of each distinct kind is built once, on the caller's
/// thread, and shared read-only by the replay jobs (building a layout
/// costs far more than replaying a small trace through it). Each job
/// records its cache events into a private registry; the shards are
/// folded into `registry` in job-index order — counters and histograms
/// merge commutatively and gauges overwrite in the fixed order — so the
/// final registry state is identical at any worker count, and equal to a
/// sequential run's.
#[must_use]
pub fn run_figure12_matrix(
    study: &Study,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    threads: usize,
    registry: &Arc<MetricRegistry>,
) -> Vec<Vec<SimResult>> {
    let ladder = figure12_ladder();
    let mut kinds: Vec<OsLayoutKind> = Vec::new();
    for &(_, kind, _) in &ladder {
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    let layouts: Vec<(OsLayoutKind, OsLayout)> = kinds
        .into_iter()
        .map(|kind| (kind, study.os_layout(kind, cache_cfg.size())))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..study.cases().len())
        .flat_map(|c| (0..ladder.len()).map(move |l| (c, l)))
        .collect();
    // One merge group for the whole matrix, allocated before the fan-out
    // so timeline runs land in job-index order at any worker count.
    let group = timeline::group();
    let sharded = oslay::exec::parallel_map(threads, jobs, |i, (c, l)| {
        let case = &study.cases()[c];
        let (level, kind, side) = ladder[l];
        let _t = timeline::scope(group, i as u64, format!("{}/{level}", case.name()));
        let os = &layouts
            .iter()
            .find(|&&(k, _)| k == kind)
            .expect("every ladder kind is memoized")
            .1;
        let app = app_layout_for(study, case, side, cache_cfg.size());
        let shard = Arc::new(MetricRegistry::new());
        let r = run_probed_on(
            study,
            case,
            &os.layout,
            app.as_ref(),
            cache_cfg,
            sim,
            &shard,
        );
        (r, shard)
    });
    let mut results: Vec<Vec<SimResult>> = Vec::with_capacity(study.cases().len());
    let mut sharded = sharded.into_iter();
    for _ in 0..study.cases().len() {
        let mut row = Vec::with_capacity(figure12_ladder().len());
        for _ in 0..figure12_ladder().len() {
            let (r, shard) = sharded.next().expect("one result per job");
            registry.merge_from(&shard);
            row.push(r);
        }
        results.push(row);
    }
    results
}

/// One evaluation point of a parameter sweep: a workload replayed under
/// an explicit (possibly custom) OS layout and cache organization.
///
/// The sweep binaries (Figures 15–17) build their full point grids up
/// front — memoizing each distinct layout in an [`Arc`] — and hand them
/// to [`run_sweep`], which shards the replays exactly like
/// [`run_figure12_matrix`].
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Index into [`Study::cases`].
    pub case: usize,
    /// The OS layout to replay under (memoized by the caller; sweeps
    /// share one layout across many points).
    pub os: Arc<Layout>,
    /// Which application layout to pair with it.
    pub app: AppSide,
    /// The cache organization for this point.
    pub cache: CacheConfig,
}

/// Replays every sweep point over up to `threads` workers, returning one
/// [`SimResult`] per point, in point order.
///
/// Same sharding contract as [`run_figure12_matrix`]: every job records
/// into a private registry and the shards fold into `registry` in point
/// order, so the registry state — and therefore the run report — is
/// byte-identical at any worker count.
#[must_use]
pub fn run_sweep(
    study: &Study,
    points: Vec<SweepPoint>,
    sim: &SimConfig,
    threads: usize,
    registry: &Arc<MetricRegistry>,
) -> Vec<SimResult> {
    let apps = memoized_app_layouts(study, &points);
    let jobs: Vec<(SweepPoint, Option<Arc<Layout>>)> = points.into_iter().zip(apps).collect();
    let group = timeline::group();
    let sharded = oslay::exec::parallel_map(threads, jobs, |i, (p, app)| {
        let case = &study.cases()[p.case];
        let _t = timeline::scope(group, i as u64, format!("{}@{}", case.name(), p.cache));
        let shard = Arc::new(MetricRegistry::new());
        let r = run_probed_on(study, case, &p.os, app.as_deref(), p.cache, sim, &shard);
        (r, shard)
    });
    let mut out = Vec::with_capacity(sharded.len());
    for (r, shard) in sharded {
        registry.merge_from(&shard);
        out.push(r);
    }
    out
}

/// Builds each distinct application layout a sweep grid needs exactly
/// once, on the caller's thread, returning one (shared) layout per point
/// in point order.
///
/// The memo key is `(case, app side, size key)`, where the cache size
/// participates only for [`AppSide::Optimized`] — the Base and Chang–Hwu
/// application layouts do not depend on it, so sweeping cache sizes
/// reuses a single build. Points sharing a key share one [`Arc`], which
/// the single-pass driver additionally relies on to group lanes.
fn memoized_app_layouts(study: &Study, points: &[SweepPoint]) -> Vec<Option<Arc<Layout>>> {
    type MemoKey = (usize, AppSide, u32);
    let mut memo: Vec<(MemoKey, Option<Arc<Layout>>)> = Vec::new();
    points
        .iter()
        .map(|p| {
            let size_key = match p.app {
                AppSide::Optimized => p.cache.size(),
                AppSide::Base | AppSide::ChangHwu => 0,
            };
            let key = (p.case, p.app, size_key);
            if let Some((_, hit)) = memo.iter().find(|(k, _)| *k == key) {
                return hit.clone();
            }
            let built =
                app_layout_for(study, &study.cases()[p.case], p.app, p.cache.size()).map(Arc::new);
            memo.push((key, built.clone()));
            built
        })
        .collect()
}

/// Evaluates every sweep point in **one trace pass per workload case**
/// instead of one replay per point, returning exactly what [`run_sweep`]
/// would: the same results and the same final registry state (hence
/// byte-identical run-report metrics) at any worker count.
///
/// Points are partitioned by case in first-appearance order; each case
/// job walks the trace once ([`Study::stream_case`]) and feeds every
/// distinct layout pair's [`MultiLane`], whose
/// [`oslay::cache::MultiSim`] settles all cache organizations of that
/// pair simultaneously — stack inclusion across sizes/associativities
/// sharing a line size, banked tag arrays across line sizes. Each grid
/// point's cache events are then mirrored into a private registry shard
/// and the shards fold into `registry` in global point order, the same
/// merge contract as [`run_sweep`].
///
/// Only aggregate statistics can be collected this way: a [`SimConfig`]
/// requesting miss maps or per-block counts falls back to [`run_sweep`]
/// (no committed sweep grid requests either). The timeline stream
/// differs from per-point mode — one recorded run per case rather than
/// per point — but is itself worker-count-invariant.
#[must_use]
pub fn run_sweep_single_pass(
    study: &Study,
    points: Vec<SweepPoint>,
    sim: &SimConfig,
    threads: usize,
    registry: &Arc<MetricRegistry>,
) -> Vec<SimResult> {
    if sim.os_miss_map || sim.block_misses {
        return run_sweep(study, points, sim, threads, registry);
    }
    let apps = memoized_app_layouts(study, &points);

    /// One distinct layout pair within a case: the cache organizations
    /// to evaluate under it and, per organization, the global grid index
    /// its result belongs to.
    struct LaneSpec {
        os: Arc<Layout>,
        app: Option<Arc<Layout>>,
        configs: Vec<CacheConfig>,
        origin: Vec<usize>,
    }
    struct CaseJob {
        case: usize,
        lanes: Vec<LaneSpec>,
    }
    let mut jobs: Vec<CaseJob> = Vec::new();
    for (gi, (p, app)) in points.iter().zip(&apps).enumerate() {
        let job = match jobs.iter_mut().find(|j| j.case == p.case) {
            Some(j) => j,
            None => {
                jobs.push(CaseJob {
                    case: p.case,
                    lanes: Vec::new(),
                });
                jobs.last_mut().expect("just pushed")
            }
        };
        // Lane identity: same OS layout (pointer fast path, then
        // content) and same memoized app layout (pointer equality is
        // exact: `memoized_app_layouts` shares one Arc per key).
        let same_app = |l: &LaneSpec| match (&l.app, app) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        let lane = match job
            .lanes
            .iter_mut()
            .find(|l| (Arc::ptr_eq(&l.os, &p.os) || l.os == p.os) && same_app(l))
        {
            Some(l) => l,
            None => {
                job.lanes.push(LaneSpec {
                    os: Arc::clone(&p.os),
                    app: app.clone(),
                    configs: Vec::new(),
                    origin: Vec::new(),
                });
                job.lanes.last_mut().expect("just pushed")
            }
        };
        lane.configs.push(p.cache);
        lane.origin.push(gi);
    }

    let group = timeline::group();
    let sharded = oslay::exec::parallel_map(threads, jobs, |i, job| {
        let case = &study.cases()[job.case];
        let _t = timeline::scope(group, i as u64, format!("{}@multi", case.name()));
        let lanes: Vec<MultiLane> = job
            .lanes
            .iter()
            .map(|l| MultiLane::new(Arc::clone(&l.os), l.app.clone(), &l.configs))
            .collect();
        let mut replayer = MultiGroupReplayer::new(lanes);
        {
            // Feed the buffered trace — the same event source the
            // per-point `Study::simulate` path iterates — rather than
            // re-running the engine walk per case.
            use oslay::trace::TraceSink as _;
            let _span = oslay_observe::span("study.sim");
            for event in case.trace.events() {
                replayer.event(*event);
            }
        }
        let lanes = replayer.finish();
        // One (result, registry shard) per grid point of this case,
        // tagged with its global index for the ordered fold below.
        let mut settled = Vec::new();
        for (lane, spec) in lanes.iter().zip(&job.lanes) {
            for (k, &gi) in spec.origin.iter().enumerate() {
                let shard = Arc::new(MetricRegistry::new());
                lane.sim().report_into(k, shard.as_ref());
                settled.push((
                    gi,
                    SimResult {
                        stats: lane.sim().stats(k),
                        os_miss_map: None,
                        os_self_miss_map: None,
                        os_cross_miss_map: None,
                        os_block_misses: None,
                        app_block_misses: None,
                    },
                    shard,
                ));
            }
        }
        settled
    });

    let n = apps.len();
    let mut slots: Vec<Option<(SimResult, Arc<MetricRegistry>)>> = vec![None; n];
    for (gi, r, shard) in sharded.into_iter().flatten() {
        slots[gi] = Some((r, shard));
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        let (r, shard) = slot.expect("every grid point settled by its case job");
        registry.merge_from(&shard);
        out.push(r);
    }
    out
}

/// Handles the sweep-mode flags shared by the fig15/16/17 binaries:
/// `--single-pass` selects [`run_sweep_single_pass`] (their default),
/// `--per-point` selects the legacy [`run_sweep`]. Returns whether the
/// token was consumed, for use inside a [`run_args_with`] `extra`
/// handler.
pub fn sweep_mode_arg(arg: &str, single_pass: &mut bool) -> bool {
    match arg {
        "--single-pass" => {
            *single_pass = true;
            true
        }
        "--per-point" => {
            *single_pass = false;
            true
        }
        _ => false,
    }
}

/// Dispatches a sweep grid to [`run_sweep_single_pass`] or the per-point
/// [`run_sweep`] according to the mode flag parsed by
/// [`sweep_mode_arg`]. Results are identical either way; only wall-clock
/// (and the timeline grouping) differs.
#[must_use]
pub fn run_sweep_mode(
    study: &Study,
    points: Vec<SweepPoint>,
    sim: &SimConfig,
    threads: usize,
    registry: &Arc<MetricRegistry>,
    single_pass: bool,
) -> Vec<SimResult> {
    if single_pass {
        run_sweep_single_pass(study, points, sim, threads, registry)
    } else {
        run_sweep(study, points, sim, threads, registry)
    }
}

/// Runs every workload under every OS layout kind in `kinds` through the
/// attribution engine, over up to `threads` workers, returning
/// `results[case][kind]` (the application always keeps its Base layout,
/// as in Figures 13 and 14).
///
/// Same sharding contract as [`run_figure12_matrix`]: one memoized OS
/// layout per kind, one private registry per job, shards folded into
/// `registry` in job-index order so output is identical at any worker
/// count.
#[must_use]
pub fn run_attributed_matrix(
    study: &Study,
    kinds: &[OsLayoutKind],
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    threads: usize,
    registry: &Arc<MetricRegistry>,
) -> Vec<Vec<(SimResult, AttributionReport)>> {
    let layouts: Vec<OsLayout> = kinds
        .iter()
        .map(|&kind| study.os_layout(kind, cache_cfg.size()))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..study.cases().len())
        .flat_map(|c| (0..kinds.len()).map(move |k| (c, k)))
        .collect();
    let group = timeline::group();
    let sharded = oslay::exec::parallel_map(threads, jobs, |i, (c, k)| {
        let case = &study.cases()[c];
        let _t = timeline::scope(
            group,
            i as u64,
            format!("{}/{}", case.name(), kinds[k].name()),
        );
        let app = app_layout_for(study, case, AppSide::Base, cache_cfg.size());
        let shard = Arc::new(MetricRegistry::new());
        let r = run_attributed_on(
            study,
            case,
            &layouts[k],
            app.as_ref(),
            cache_cfg,
            sim,
            Some(&shard),
        );
        (r, shard)
    });
    let mut results: Vec<Vec<(SimResult, AttributionReport)>> =
        Vec::with_capacity(study.cases().len());
    let mut sharded = sharded.into_iter();
    for _ in 0..study.cases().len() {
        let mut row = Vec::with_capacity(kinds.len());
        for _ in 0..kinds.len() {
            let (r, shard) = sharded.next().expect("one result per job");
            registry.merge_from(&shard);
            row.push(r);
        }
        results.push(row);
    }
    results
}

/// Materializes a searched [`LayoutView`](oslay_verify::LayoutView) back
/// into a placed [`OsLayout`] via `Layout::assemble`.
///
/// The searched layout has no class map or SelfConfFree area — like the
/// Base and Chang–Hwu kinds, it is verified structurally only.
///
/// # Panics
///
/// Panics if the view does not re-assemble (the search's admission gate
/// guarantees it does) or fails structural verification.
#[must_use]
pub fn searched_os_layout(study: &Study, view: &oslay_verify::LayoutView) -> OsLayout {
    let program = &study.kernel().program;
    let layout = Layout::assemble(program, view.name.clone(), &view.addr, &view.size)
        .expect("searched view re-assembles into a layout");
    let report = oslay_verify::verify_structural(program, view);
    assert!(
        report.is_clean(),
        "searched layout lints dirty: {:?}",
        report.diagnostics().first()
    );
    OsLayout {
        layout,
        classes: None,
        scf_bytes: 0,
    }
}

/// How the search winner was chosen among the seed and every restart's
/// best: fast-replay misses per candidate per workload, ranked against
/// the seed (= OptS) baseline.
#[derive(Clone, Debug)]
pub struct SearchSelection {
    /// Total misses, `[candidate][case]` (candidate 0 is the seed).
    pub misses: Vec<Vec<u64>>,
    /// Per candidate: number of workloads with more misses than the seed.
    pub worse_cases: Vec<usize>,
    /// The chosen candidate index.
    pub chosen: usize,
}

/// Replays every candidate view on every workload (app side Base, like
/// the attributed matrices) and picks the winner among the *feasible*
/// candidates — those no worse than the seed on more than half the
/// workloads — by fewest total misses, then fewest worse-than-seed
/// workloads, then lowest objective, then lowest index. Candidate 0
/// must be the seed view; it is always feasible (zero worse
/// workloads), so a chosen candidate always matches or beats the seed
/// on at least half the workloads, and never has more total misses.
///
/// Deterministic at any `threads` (ordered [`oslay::exec::parallel_map`]
/// fan-out, pure integer ranking).
#[must_use]
pub fn select_search_winner(
    study: &Study,
    candidates: &[oslay_verify::LayoutView],
    objectives: &[u64],
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    threads: usize,
) -> SearchSelection {
    assert_eq!(candidates.len(), objectives.len());
    let layouts: Vec<OsLayout> = candidates
        .iter()
        .map(|v| searched_os_layout(study, v))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..candidates.len())
        .flat_map(|k| (0..study.cases().len()).map(move |c| (k, c)))
        .collect();
    let flat = oslay::exec::parallel_map(threads, jobs, |_, (k, c)| {
        let case = &study.cases()[c];
        let app = app_layout_for(study, case, AppSide::Base, cache_cfg.size());
        let mut cache = Cache::new(cache_cfg);
        study
            .simulate(case, &layouts[k].layout, app.as_ref(), &mut cache, sim)
            .stats
            .total_misses()
    });
    let cases = study.cases().len();
    let misses: Vec<Vec<u64>> = flat.chunks(cases).map(<[u64]>::to_vec).collect();
    let worse_cases: Vec<usize> = misses
        .iter()
        .map(|row| row.iter().zip(&misses[0]).filter(|(m, b)| m > b).count())
        .collect();
    let chosen = (0..misses.len())
        .filter(|&k| worse_cases[k] * 2 <= cases)
        .min_by_key(|&k| {
            (
                misses[k].iter().sum::<u64>(),
                worse_cases[k],
                objectives[k],
                k,
            )
        })
        .expect("the seed candidate is always feasible");
    SearchSelection {
        misses,
        worse_cases,
        chosen,
    }
}

/// A completed layout search, validated and materialized: what the
/// `search` binary reports and `fig18_alternatives` folds in as a
/// column.
#[derive(Debug)]
pub struct SearchedLayout {
    /// The raw fan-out result.
    pub outcome: oslay_search::SearchOutcome,
    /// Candidate views in ranking order: seed first, then each restart's
    /// best.
    pub candidates: Vec<oslay_verify::LayoutView>,
    /// How the winner was chosen.
    pub selection: SearchSelection,
    /// The chosen layout, materialized.
    pub os: OsLayout,
}

/// Runs the full search pipeline: fan out restarts from the OptS seed,
/// then pick the winner by fast replay against the seed baseline (see
/// [`select_search_winner`]). Deterministic at any `threads`.
#[must_use]
pub fn run_layout_search(
    study: &Study,
    cache_cfg: CacheConfig,
    params: &oslay_search::SearchParams,
    sim: &SimConfig,
    threads: usize,
) -> SearchedLayout {
    let program = &study.kernel().program;
    let profile = study.averaged_os_profile();
    let seed = oslay_verify::LayoutView::from_layout(
        &study.os_layout(OsLayoutKind::OptS, cache_cfg.size()).layout,
    );
    let outcome = oslay_search::run_search(program, profile, &seed, &cache_cfg, params, threads);
    let mut candidates = vec![oslay_verify::LayoutView {
        name: "Search".to_owned(),
        ..seed
    }];
    let mut objectives = vec![outcome.initial];
    for r in &outcome.restarts {
        candidates.push(r.view.clone());
        objectives.push(r.best);
    }
    let selection = select_search_winner(study, &candidates, &objectives, cache_cfg, sim, threads);
    let os = searched_os_layout(study, &candidates[selection.chosen]);
    SearchedLayout {
        outcome,
        candidates,
        selection,
        os,
    }
}

/// Attributed replay of one explicit OS layout across every workload
/// (app side Base), sharded like [`run_attributed_matrix`] — used to
/// rank a searched layout against the named kinds.
#[must_use]
pub fn run_attributed_row(
    study: &Study,
    os: &OsLayout,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    threads: usize,
    registry: &Arc<MetricRegistry>,
) -> Vec<(SimResult, AttributionReport)> {
    let jobs: Vec<usize> = (0..study.cases().len()).collect();
    let group = timeline::group();
    let sharded = oslay::exec::parallel_map(threads, jobs, |i, c| {
        let case = &study.cases()[c];
        let _t = timeline::scope(group, i as u64, format!("{}/Search", case.name()));
        let app = app_layout_for(study, case, AppSide::Base, cache_cfg.size());
        let shard = Arc::new(MetricRegistry::new());
        let r = run_attributed_on(study, case, os, app.as_ref(), cache_cfg, sim, Some(&shard));
        (r, shard)
    });
    let mut out = Vec::with_capacity(sharded.len());
    for (r, shard) in sharded {
        registry.merge_from(&shard);
        out.push(r);
    }
    out
}

/// JSON run-report plumbing shared by the experiment binaries.
///
/// Owns the [`MetricRegistry`] that probed caches feed
/// ([`run_case_probed`]) and the [`RunReport`] under construction.
/// [`Reporter::finish`] folds in the global phase-span recorder and
/// writes `results/<name>.json` beside the `.txt` capture of stdout.
#[derive(Debug)]
pub struct Reporter {
    registry: Arc<MetricRegistry>,
    report: RunReport,
}

impl Reporter {
    /// Creates a reporter for the named run.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            registry: Arc::new(MetricRegistry::new()),
            report: RunReport::new(name),
        }
    }

    /// The registry probed caches should feed.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricRegistry> {
        Arc::clone(&self.registry)
    }

    /// Appends a section of numeric fields to the report.
    pub fn add_section<S: Into<String>>(
        &mut self,
        name: &str,
        fields: impl IntoIterator<Item = (S, f64)>,
    ) {
        self.report.add_section(name, fields);
    }

    /// Folds the metric registry and the global span recorder into the
    /// report and writes it to `results/<name>.json`, returning the path.
    ///
    /// # Panics
    ///
    /// Panics if the report cannot be written.
    #[must_use]
    pub fn finish(mut self) -> PathBuf {
        self.report.add_spans(global_recorder());
        self.report.add_metrics(&self.registry);
        // Machine-dependent by nature, so the section carries the `perf.`
        // prefix that `to_json_deterministic` strips.
        let alloc = oslay_perf::alloc::snapshot();
        self.report.add_section(
            "perf.alloc",
            [
                ("alloc_calls", alloc.calls as f64),
                ("alloc_bytes", alloc.bytes as f64),
                ("live_bytes", alloc.live_bytes as f64),
                ("peak_bytes", alloc.peak_bytes as f64),
            ],
        );
        let path = PathBuf::from(format!("results/{}.json", self.report.name()));
        self.report.write(&path).expect("write run report");
        flush_trace();
        path
    }
}

/// Minimal `std`-only timing harness backing the `benches/` targets
/// (`harness = false`), so `cargo bench` works on an air-gapped machine.
///
/// Each case runs a warmup pass, then `samples` timed passes, and prints
/// the median wall time (median, not mean: robust to one slow sample from
/// a scheduler hiccup) plus throughput when an element count is given.
pub mod timing {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Times `f` over `samples` runs and returns the median duration.
    pub fn median_time<T>(samples: usize, mut f: impl FnMut() -> T) -> Duration {
        assert!(samples > 0, "need at least one sample");
        black_box(f()); // warmup
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    }

    /// Runs one named case and prints its median time (and element
    /// throughput, when `elements` is given).
    pub fn bench_case<T>(name: &str, samples: usize, elements: Option<u64>, f: impl FnMut() -> T) {
        let median = median_time(samples, f);
        match elements {
            Some(n) => {
                let rate = n as f64 / median.as_secs_f64();
                println!("{name:<40} {median:>12.2?}   {rate:>12.0} elem/s");
            }
            None => println!("{name:<40} {median:>12.2?}"),
        }
    }
}

/// Evaluates one workload with explicit layouts on an arbitrary cache
/// organization (used by the Sep/Resv experiment).
#[must_use]
pub fn run_case_on(
    study: &Study,
    case: &WorkloadCase,
    os_layout: &Layout,
    app_layout: Option<&Layout>,
    cache: &mut dyn InstructionCache,
    sim: &SimConfig,
) -> SimResult {
    study.simulate(case, os_layout, app_layout, cache, sim)
}

/// The layout ladder of Figure 12, with the app side each level uses.
#[must_use]
pub fn figure12_ladder() -> Vec<(&'static str, OsLayoutKind, AppSide)> {
    vec![
        ("Base", OsLayoutKind::Base, AppSide::Base),
        ("C-H", OsLayoutKind::ChangHwu, AppSide::Base),
        ("OptS", OsLayoutKind::OptS, AppSide::Base),
        ("OptL", OsLayoutKind::OptL, AppSide::Base),
        ("OptA", OsLayoutKind::OptS, AppSide::Optimized),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_cache::MissKind;

    #[test]
    fn ladder_matches_figure12() {
        let names: Vec<&str> = figure12_ladder().iter().map(|&(n, _, _)| n).collect();
        assert_eq!(names, ["Base", "C-H", "OptS", "OptL", "OptA"]);
    }

    #[test]
    fn parse_trace_out_flag() {
        let argv: VecDeque<String> = ["--trace-out", "/tmp/t.json", "--threads", "2"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let args = parse_run_args(argv, StudyConfig::tiny(), |_, _| false);
        assert_eq!(
            args.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        assert_eq!(args.threads, 2);
        assert!(
            parse_run_args(VecDeque::new(), StudyConfig::tiny(), |_, _| false)
                .trace_out
                .is_none()
        );
    }

    #[test]
    fn parse_telemetry_out_flag() {
        let argv: VecDeque<String> = ["--telemetry-out", "/tmp/tel.json"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let args = parse_run_args(argv, StudyConfig::tiny(), |_, _| false);
        assert_eq!(
            args.telemetry_out.as_deref(),
            Some(std::path::Path::new("/tmp/tel.json"))
        );
        assert!(
            parse_run_args(VecDeque::new(), StudyConfig::tiny(), |_, _| false)
                .telemetry_out
                .is_none()
        );
    }

    #[test]
    fn usage_lists_every_common_flag() {
        let usage = usage_text();
        for flag in [
            "--scale",
            "--blocks",
            "--seed",
            "--threads",
            "--verify",
            "--trace-out",
            "--telemetry-out",
            "--help",
        ] {
            assert!(usage.contains(flag), "usage must document {flag}");
        }
    }

    #[test]
    fn unknown_flag_fails_with_usage() {
        let argv: VecDeque<String> = ["--no-such-flag"].iter().map(|s| (*s).to_owned()).collect();
        let err =
            std::panic::catch_unwind(|| parse_run_args(argv, StudyConfig::tiny(), |_, _| false))
                .expect_err("unknown flag must be rejected");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("unknown argument \"--no-such-flag\""), "{msg}");
        assert!(
            msg.contains("--telemetry-out"),
            "rejection must print the usage text: {msg}"
        );
    }

    #[test]
    fn parse_verify_flag() {
        let argv: VecDeque<String> = ["--scale", "tiny", "--verify"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let args = parse_run_args(argv, StudyConfig::paper(), |_, _| false);
        assert!(args.verify);
        assert!(!parse_run_args(VecDeque::new(), StudyConfig::tiny(), |_, _| false).verify);
    }

    #[test]
    fn run_case_smoke() {
        let study = Study::generate(&StudyConfig::tiny());
        let case = &study.cases()[3];
        let r = run_case(
            &study,
            case,
            OsLayoutKind::Base,
            AppSide::Base,
            CacheConfig::paper_default(),
            &SimConfig::fast(),
        );
        assert!(r.stats.total_accesses() > 0);
        assert!(r.stats.misses(MissKind::OsSelf) > 0);
    }
}
