//! Shared support for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. They share command-line handling (`--scale tiny|small|paper`,
//! `--blocks N`, `--seed N`) and a couple of evaluation drivers.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p oslay-bench --bin fig12_optimization_levels -- --scale paper
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod digest;

use std::path::PathBuf;
use std::sync::Arc;

use oslay::cache::{
    AddressMap, AttributedCache, AttributionReport, Cache, CacheConfig, InstructionCache,
};
use oslay::{OsLayoutKind, SimConfig, SimResult, Study, StudyConfig, WorkloadCase};
use oslay_layout::Layout;
use oslay_model::synth::Scale;
use oslay_model::Domain;
use oslay_observe::{global_recorder, AttributionProbe, MetricRegistry, Probe, RunReport};

/// Parses the common experiment arguments into a [`StudyConfig`].
///
/// Defaults to `--scale paper`; integration environments pass
/// `--scale small` for speed.
#[must_use]
pub fn config_from_args() -> StudyConfig {
    let mut config = StudyConfig::paper();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                config = match v.as_str() {
                    "tiny" => StudyConfig::tiny(),
                    "small" => StudyConfig::small(),
                    "paper" => StudyConfig::paper(),
                    other => panic!("unknown scale {other:?} (tiny|small|paper)"),
                };
            }
            "--blocks" => {
                let v = args.next().expect("--blocks needs a value");
                config.os_blocks = v.parse().expect("--blocks must be an integer");
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                config.seed = v.parse().expect("--seed must be an integer");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    config
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, config: &StudyConfig) {
    println!("== {title} ==");
    println!(
        "   scale: {:?}, OS blocks/workload: {}, seed: {:#x}",
        config.scale, config.os_blocks, config.seed
    );
    println!();
}

/// Scale label for result files.
#[must_use]
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Which application layout to pair with an OS layout.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum AppSide {
    /// Unoptimized application (source order at `APP_BASE`).
    Base,
    /// `OptA`: the application optimized with sequences + loop area.
    Optimized,
    /// Chang–Hwu-optimized application.
    ChangHwu,
}

/// Evaluates one workload under one OS layout kind on a unified cache.
#[must_use]
pub fn run_case(
    study: &Study,
    case: &WorkloadCase,
    os_kind: OsLayoutKind,
    app_side: AppSide,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
) -> SimResult {
    let os = study.os_layout(os_kind, cache_cfg.size());
    let app = match app_side {
        AppSide::Base => study.app_base_layout(case),
        AppSide::Optimized => study.app_opt_layout(case, cache_cfg.size()),
        AppSide::ChangHwu => study.app_ch_layout(case),
    };
    let mut cache = Cache::new(cache_cfg);
    study.simulate(case, &os.layout, app.as_ref(), &mut cache, sim)
}

/// Like [`run_case`], but routes the cache's miss/eviction events into
/// `registry` and records a final set-occupancy snapshot, so the run
/// report carries `cache.*` metrics alongside the aggregate statistics.
#[must_use]
pub fn run_case_probed(
    study: &Study,
    case: &WorkloadCase,
    os_kind: OsLayoutKind,
    app_side: AppSide,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    registry: &Arc<MetricRegistry>,
) -> SimResult {
    let os = study.os_layout(os_kind, cache_cfg.size());
    let app = match app_side {
        AppSide::Base => study.app_base_layout(case),
        AppSide::Optimized => study.app_opt_layout(case, cache_cfg.size()),
        AppSide::ChangHwu => study.app_ch_layout(case),
    };
    let probe: Arc<dyn Probe + Send + Sync> = Arc::clone(registry) as _;
    let mut cache = Cache::with_probe(cache_cfg, probe);
    let result = study.simulate(case, &os.layout, app.as_ref(), &mut cache, sim);
    cache.record_occupancy();
    result
}

/// Like [`run_case`], but through the attribution engine: every miss is
/// classified compulsory/capacity/conflict, charged to its cache set,
/// Figure 13 block class, OS entry class, and (for conflicts) its
/// evictor→victim pair. Returns the usual [`SimResult`] plus the
/// [`AttributionReport`].
///
/// When `registry` is given, each classified miss also streams into it as
/// `cache.attr.*` metrics.
#[must_use]
pub fn run_case_attributed(
    study: &Study,
    case: &WorkloadCase,
    os_kind: OsLayoutKind,
    app_side: AppSide,
    cache_cfg: CacheConfig,
    sim: &SimConfig,
    registry: Option<&Arc<MetricRegistry>>,
) -> (SimResult, AttributionReport) {
    let os = study.os_layout(os_kind, cache_cfg.size());
    let app = match app_side {
        AppSide::Base => study.app_base_layout(case),
        AppSide::Optimized => study.app_opt_layout(case, cache_cfg.size()),
        AppSide::ChangHwu => study.app_ch_layout(case),
    };
    let mut spans = oslay_layout::layout_spans(
        &study.kernel().program,
        &os.layout,
        Domain::Os,
        os.classes.as_deref(),
    );
    if let (Some(app_layout), Some(app_program)) = (app.as_ref(), case.app.as_ref()) {
        // App and OS address spaces are disjoint, so one map holds both.
        spans.extend(oslay_layout::layout_spans(
            app_program,
            app_layout,
            Domain::App,
            None,
        ));
    }
    let map = Arc::new(AddressMap::build(spans));
    let mut cache = match registry {
        Some(reg) => {
            let probe: Arc<dyn AttributionProbe + Send + Sync> = Arc::clone(reg) as _;
            AttributedCache::with_probe(Cache::new(cache_cfg), map, probe)
        }
        None => AttributedCache::new(Cache::new(cache_cfg), map),
    };
    let result = study.simulate(case, &os.layout, app.as_ref(), &mut cache, sim);
    (result, cache.report())
}

/// JSON run-report plumbing shared by the experiment binaries.
///
/// Owns the [`MetricRegistry`] that probed caches feed
/// ([`run_case_probed`]) and the [`RunReport`] under construction.
/// [`Reporter::finish`] folds in the global phase-span recorder and
/// writes `results/<name>.json` beside the `.txt` capture of stdout.
#[derive(Debug)]
pub struct Reporter {
    registry: Arc<MetricRegistry>,
    report: RunReport,
}

impl Reporter {
    /// Creates a reporter for the named run.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            registry: Arc::new(MetricRegistry::new()),
            report: RunReport::new(name),
        }
    }

    /// The registry probed caches should feed.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricRegistry> {
        Arc::clone(&self.registry)
    }

    /// Appends a section of numeric fields to the report.
    pub fn add_section<S: Into<String>>(
        &mut self,
        name: &str,
        fields: impl IntoIterator<Item = (S, f64)>,
    ) {
        self.report.add_section(name, fields);
    }

    /// Folds the metric registry and the global span recorder into the
    /// report and writes it to `results/<name>.json`, returning the path.
    ///
    /// # Panics
    ///
    /// Panics if the report cannot be written.
    pub fn finish(mut self) -> PathBuf {
        self.report.add_spans(global_recorder());
        self.report.add_metrics(&self.registry);
        let path = PathBuf::from(format!("results/{}.json", self.report.name()));
        self.report.write(&path).expect("write run report");
        path
    }
}

/// Minimal `std`-only timing harness backing the `benches/` targets
/// (`harness = false`), so `cargo bench` works on an air-gapped machine.
///
/// Each case runs a warmup pass, then `samples` timed passes, and prints
/// the median wall time (median, not mean: robust to one slow sample from
/// a scheduler hiccup) plus throughput when an element count is given.
pub mod timing {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Times `f` over `samples` runs and returns the median duration.
    pub fn median_time<T>(samples: usize, mut f: impl FnMut() -> T) -> Duration {
        assert!(samples > 0, "need at least one sample");
        black_box(f()); // warmup
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    }

    /// Runs one named case and prints its median time (and element
    /// throughput, when `elements` is given).
    pub fn bench_case<T>(name: &str, samples: usize, elements: Option<u64>, f: impl FnMut() -> T) {
        let median = median_time(samples, f);
        match elements {
            Some(n) => {
                let rate = n as f64 / median.as_secs_f64();
                println!("{name:<40} {median:>12.2?}   {rate:>12.0} elem/s");
            }
            None => println!("{name:<40} {median:>12.2?}"),
        }
    }
}

/// Evaluates one workload with explicit layouts on an arbitrary cache
/// organization (used by the Sep/Resv experiment).
#[must_use]
pub fn run_case_on(
    study: &Study,
    case: &WorkloadCase,
    os_layout: &Layout,
    app_layout: Option<&Layout>,
    cache: &mut dyn InstructionCache,
    sim: &SimConfig,
) -> SimResult {
    study.simulate(case, os_layout, app_layout, cache, sim)
}

/// The layout ladder of Figure 12, with the app side each level uses.
#[must_use]
pub fn figure12_ladder() -> Vec<(&'static str, OsLayoutKind, AppSide)> {
    vec![
        ("Base", OsLayoutKind::Base, AppSide::Base),
        ("C-H", OsLayoutKind::ChangHwu, AppSide::Base),
        ("OptS", OsLayoutKind::OptS, AppSide::Base),
        ("OptL", OsLayoutKind::OptL, AppSide::Base),
        ("OptA", OsLayoutKind::OptS, AppSide::Optimized),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oslay_cache::MissKind;

    #[test]
    fn ladder_matches_figure12() {
        let names: Vec<&str> = figure12_ladder().iter().map(|&(n, _, _)| n).collect();
        assert_eq!(names, ["Base", "C-H", "OptS", "OptL", "OptA"]);
    }

    #[test]
    fn run_case_smoke() {
        let study = Study::generate(&StudyConfig::tiny());
        let case = &study.cases()[3];
        let r = run_case(
            &study,
            case,
            OsLayoutKind::Base,
            AppSide::Base,
            CacheConfig::paper_default(),
            &SimConfig::fast(),
        );
        assert!(r.stats.total_accesses() > 0);
        assert!(r.stats.misses(MissKind::OsSelf) > 0);
    }
}
