//! Criterion benches for the trace engine and the profiler: block-event
//! generation rate and profile-collection rate, plus an end-to-end replay
//! (trace → addresses → cache) — the inner loop of every experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oslay::cache::{Cache, CacheConfig};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_model::synth::{generate_kernel, KernelParams, Scale};
use oslay_profile::Profile;
use oslay_trace::{standard_workloads, Engine, EngineConfig};

fn bench_engine(c: &mut Criterion) {
    let kernel = generate_kernel(&KernelParams::at_scale(Scale::Small, 7));
    let specs = standard_workloads(&kernel.tables);
    let blocks = 100_000u64;
    let mut group = c.benchmark_group("trace/engine");
    group.throughput(Throughput::Elements(blocks));
    group.bench_function("shell_100k_blocks", |b| {
        b.iter(|| {
            Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(3)).run(blocks)
        });
    });
    group.finish();
}

fn bench_profile_collect(c: &mut Criterion) {
    let kernel = generate_kernel(&KernelParams::at_scale(Scale::Small, 7));
    let specs = standard_workloads(&kernel.tables);
    let trace = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(3)).run(100_000);
    let mut group = c.benchmark_group("profile/collect");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("100k_events", |b| {
        b.iter(|| Profile::collect(&kernel.program, &trace));
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let study = Study::generate(&StudyConfig::small().with_os_blocks(100_000));
    let case = &study.cases()[3];
    let base = study.os_layout(OsLayoutKind::Base, 8192);
    let opts = study.os_layout(OsLayoutKind::OptS, 8192);
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(case.trace.os_blocks()));
    group.bench_function("base_8kb", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::paper_default());
            study.simulate(case, &base.layout, None, &mut cache, &SimConfig::fast())
        });
    });
    group.bench_function("opts_8kb", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::paper_default());
            study.simulate(case, &opts.layout, None, &mut cache, &SimConfig::fast())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine, bench_profile_collect, bench_replay
}
criterion_main!(benches);
