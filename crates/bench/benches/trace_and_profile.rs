//! Timing benches for the trace engine and the profiler: block-event
//! generation rate and profile-collection rate, plus an end-to-end replay
//! (trace → addresses → cache) — the inner loop of every experiment.
//!
//! Plain `std::time::Instant` harness (`harness = false`) — no external
//! bench framework, so `cargo bench` works offline.

use oslay::cache::{Cache, CacheConfig};
use oslay::{OsLayoutKind, SimConfig, Study, StudyConfig};
use oslay_bench::timing::bench_case;
use oslay_model::synth::{generate_kernel, KernelParams, Scale};
use oslay_profile::Profile;
use oslay_trace::{standard_workloads, Engine, EngineConfig};

fn main() {
    let kernel = generate_kernel(&KernelParams::at_scale(Scale::Small, 7));
    let specs = standard_workloads(&kernel.tables);
    let blocks = 100_000u64;

    println!("trace/engine:");
    bench_case("  shell_100k_blocks", 10, Some(blocks), || {
        Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(3)).run(blocks)
    });

    let trace = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(3)).run(100_000);
    println!("profile/collect:");
    bench_case("  100k_events", 10, Some(trace.len() as u64), || {
        Profile::collect(&kernel.program, &trace)
    });

    let study = Study::generate(&StudyConfig::small().with_os_blocks(100_000));
    let case = &study.cases()[3];
    let base = study.os_layout(OsLayoutKind::Base, 8192);
    let opts = study.os_layout(OsLayoutKind::OptS, 8192);
    println!("replay:");
    bench_case("  base_8kb", 10, Some(case.trace.os_blocks()), || {
        let mut cache = Cache::new(CacheConfig::paper_default());
        study.simulate(case, &base.layout, None, &mut cache, &SimConfig::fast())
    });
    bench_case("  opts_8kb", 10, Some(case.trace.os_blocks()), || {
        let mut cache = Cache::new(CacheConfig::paper_default());
        study.simulate(case, &opts.layout, None, &mut cache, &SimConfig::fast())
    });
}
