//! Criterion benches for the placement algorithms themselves: how long
//! does it take to lay out a (small-scale) kernel under each scheme?

use criterion::{criterion_group, criterion_main, Criterion};
use oslay_layout::{
    base_layout, build_sequences, call_opt_layout, chang_hwu_layout, optimize_os, CallOptParams,
    OptParams, ThresholdSchedule,
};
use oslay_model::synth::{generate_kernel, KernelParams, Scale};
use oslay_profile::{LoopAnalysis, Profile};
use oslay_trace::{standard_workloads, Engine, EngineConfig};

fn setup() -> (oslay_model::Program, Profile, LoopAnalysis) {
    let kernel = generate_kernel(&KernelParams::at_scale(Scale::Small, 7));
    let specs = standard_workloads(&kernel.tables);
    let trace = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(1)).run(150_000);
    let profile = Profile::collect(&kernel.program, &trace);
    let loops = LoopAnalysis::analyze(&kernel.program, &profile);
    (kernel.program, profile, loops)
}

fn bench_layouts(c: &mut Criterion) {
    let (program, profile, loops) = setup();
    let mut group = c.benchmark_group("layout");
    group.sample_size(10);
    group.bench_function("base", |b| b.iter(|| base_layout(&program, 0)));
    group.bench_function("chang_hwu", |b| {
        b.iter(|| chang_hwu_layout(&program, &profile, 0))
    });
    group.bench_function("sequences_only", |b| {
        b.iter(|| build_sequences(&program, &profile, &ThresholdSchedule::paper()))
    });
    group.bench_function("opt_s", |b| {
        b.iter(|| optimize_os(&program, &profile, &loops, &OptParams::opt_s(8192)))
    });
    group.bench_function("opt_l", |b| {
        b.iter(|| optimize_os(&program, &profile, &loops, &OptParams::opt_l(8192)))
    });
    group.bench_function("call_opt", |b| {
        b.iter(|| call_opt_layout(&program, &profile, &loops, &CallOptParams::new(8192)))
    });
    group.finish();
}

fn bench_loop_analysis(c: &mut Criterion) {
    let (program, profile, _) = setup();
    c.bench_function("profile/loop_analysis", |b| {
        b.iter(|| LoopAnalysis::analyze(&program, &profile))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_layouts, bench_loop_analysis
}
criterion_main!(benches);
