//! Timing benches for the placement algorithms themselves: how long does
//! it take to lay out a (small-scale) kernel under each scheme?
//!
//! Plain `std::time::Instant` harness (`harness = false`) — no external
//! bench framework, so `cargo bench` works offline.

use oslay_bench::timing::bench_case;
use oslay_layout::{
    base_layout, build_sequences, call_opt_layout, chang_hwu_layout, optimize_os, CallOptParams,
    OptParams, ThresholdSchedule,
};
use oslay_model::synth::{generate_kernel, KernelParams, Scale};
use oslay_profile::{LoopAnalysis, Profile};
use oslay_trace::{standard_workloads, Engine, EngineConfig};

fn setup() -> (oslay_model::Program, Profile, LoopAnalysis) {
    let kernel = generate_kernel(&KernelParams::at_scale(Scale::Small, 7));
    let specs = standard_workloads(&kernel.tables);
    let trace = Engine::new(&kernel.program, None, &specs[3], EngineConfig::new(1)).run(150_000);
    let profile = Profile::collect(&kernel.program, &trace);
    let loops = LoopAnalysis::analyze(&kernel.program, &profile);
    (kernel.program, profile, loops)
}

fn main() {
    let (program, profile, loops) = setup();

    println!("layout:");
    bench_case("  base", 10, None, || base_layout(&program, 0));
    bench_case("  chang_hwu", 10, None, || {
        chang_hwu_layout(&program, &profile, 0)
    });
    bench_case("  sequences_only", 10, None, || {
        build_sequences(&program, &profile, &ThresholdSchedule::paper())
    });
    bench_case("  opt_s", 10, None, || {
        optimize_os(&program, &profile, &loops, &OptParams::opt_s(8192))
    });
    bench_case("  opt_l", 10, None, || {
        optimize_os(&program, &profile, &loops, &OptParams::opt_l(8192))
    });
    bench_case("  call_opt", 10, None, || {
        call_opt_layout(&program, &profile, &loops, &CallOptParams::new(8192))
    });

    bench_case("profile/loop_analysis", 10, None, || {
        LoopAnalysis::analyze(&program, &profile)
    });
}
