//! Timing benches for the cache simulator: fetch throughput for the
//! unified, split, and reserved organizations, across geometries, plus
//! the cost of a no-op observability probe (which must be nil).
//!
//! Plain `std::time::Instant` harness (`harness = false`), printing the
//! median wall time per case — no external bench framework, so
//! `cargo bench` works offline.

use std::sync::Arc;

use oslay_bench::timing::bench_case;
use oslay_cache::{Cache, CacheConfig, InstructionCache, ReservedCache, SplitCache};
use oslay_model::Domain;
use oslay_observe::NoopProbe;

/// A deterministic pseudo-random-ish address stream with OS/app phases,
/// loops and strides — enough structure to exercise hits, misses and
/// evictions without depending on the full pipeline.
fn address_stream(n: usize) -> Vec<(u64, Domain)> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut pc = 0u64;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let domain = if (i / 256) % 3 == 0 {
            Domain::App
        } else {
            Domain::Os
        };
        if x.is_multiple_of(16) {
            pc = x % (256 * 1024); // jump
        } else {
            pc += 4; // sequential fetch
        }
        let base = if domain == Domain::App {
            0x4000_0000
        } else {
            0
        };
        out.push((base + pc, domain));
    }
    out
}

fn run(cache: &mut dyn InstructionCache, stream: &[(u64, Domain)]) -> u64 {
    let mut misses = 0;
    for &(addr, domain) in stream {
        if cache.access(addr, domain).is_miss() {
            misses += 1;
        }
    }
    misses
}

fn main() {
    let stream = address_stream(100_000);
    let n = Some(stream.len() as u64);

    println!("cache/unified:");
    for cfg in [
        CacheConfig::new(8 * 1024, 32, 1),
        CacheConfig::new(8 * 1024, 32, 4),
        CacheConfig::new(32 * 1024, 64, 2),
    ] {
        bench_case(&format!("  {cfg}"), 20, n, || {
            run(&mut Cache::new(cfg), &stream)
        });
    }

    println!("cache/organizations:");
    let cfg = CacheConfig::paper_default();
    bench_case("  unified", 20, n, || run(&mut Cache::new(cfg), &stream));
    bench_case("  unified+noop-probe", 20, n, || {
        run(&mut Cache::with_probe(cfg, Arc::new(NoopProbe)), &stream)
    });
    bench_case("  split", 20, n, || {
        run(&mut SplitCache::halves_of(cfg), &stream)
    });
    bench_case("  reserved", 20, n, || {
        run(&mut ReservedCache::paired_with(cfg, 0..1024), &stream)
    });
}
