//! Criterion benches for the cache simulator: fetch throughput for the
//! unified, split, and reserved organizations, across geometries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oslay_cache::{Cache, CacheConfig, InstructionCache, ReservedCache, SplitCache};
use oslay_model::Domain;

/// A deterministic pseudo-random-ish address stream with OS/app phases,
/// loops and strides — enough structure to exercise hits, misses and
/// evictions without depending on the full pipeline.
fn address_stream(n: usize) -> Vec<(u64, Domain)> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut pc = 0u64;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let domain = if (i / 256) % 3 == 0 {
            Domain::App
        } else {
            Domain::Os
        };
        if x.is_multiple_of(16) {
            pc = x % (256 * 1024); // jump
        } else {
            pc += 4; // sequential fetch
        }
        let base = if domain == Domain::App { 0x4000_0000 } else { 0 };
        out.push((base + pc, domain));
    }
    out
}

fn run(cache: &mut dyn InstructionCache, stream: &[(u64, Domain)]) -> u64 {
    let mut misses = 0;
    for &(addr, domain) in stream {
        if cache.access(addr, domain).is_miss() {
            misses += 1;
        }
    }
    misses
}

fn bench_unified(c: &mut Criterion) {
    let stream = address_stream(100_000);
    let mut group = c.benchmark_group("cache/unified");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for cfg in [
        CacheConfig::new(8 * 1024, 32, 1),
        CacheConfig::new(8 * 1024, 32, 4),
        CacheConfig::new(32 * 1024, 64, 2),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(cfg), &cfg, |b, &cfg| {
            b.iter(|| run(&mut Cache::new(cfg), &stream));
        });
    }
    group.finish();
}

fn bench_organizations(c: &mut Criterion) {
    let stream = address_stream(100_000);
    let cfg = CacheConfig::paper_default();
    let mut group = c.benchmark_group("cache/organizations");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("unified", |b| {
        b.iter(|| run(&mut Cache::new(cfg), &stream));
    });
    group.bench_function("split", |b| {
        b.iter(|| run(&mut SplitCache::halves_of(cfg), &stream));
    });
    group.bench_function("reserved", |b| {
        b.iter(|| run(&mut ReservedCache::paired_with(cfg, 0..1024), &stream));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_unified, bench_organizations
}
criterion_main!(benches);
