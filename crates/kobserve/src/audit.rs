//! Layout audit trail: per-block placement provenance.
//!
//! The paper justifies its layouts with measurement (miss maps, reference
//! skew); the audit trail closes the loop in the other direction — for
//! every placed block it records *why* the layout pass put it where it
//! did: the placement area (SelfConfFree, main sequence, loop area, cold
//! window, ...), the seed and threshold rung that adopted it, and the
//! sequence it joined. Figure 10/13-style cache maps can then be
//! cross-checked against placement reasons.
//!
//! The types here are deliberately generic — blocks are plain `usize`
//! indices and seeds/areas are strings — so the crate stays free of
//! workspace dependencies; `oslay-layout` constructs the records.

use crate::json::JsonValue;

/// Provenance of one placed block.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementRecord {
    /// Block index within the program.
    pub block: usize,
    /// Assigned address.
    pub addr: u64,
    /// Placement area, e.g. `self_conf_free`, `main_seq`, `other_seq`,
    /// `loop_area`, `cold_window`, `cold_tail`, `source_order`.
    pub area: String,
    /// Seed whose sequence adopted the block (`SysCall`, ...), if any.
    pub seed: Option<String>,
    /// Index of the threshold-schedule pass (rung) that captured it.
    pub pass: Option<usize>,
    /// Index of the sequence within the pass's sequence set.
    pub sequence: Option<usize>,
    /// `ExecThresh` of the capturing rung.
    pub exec_thresh: Option<f64>,
    /// `BranchThresh` of the capturing rung for this seed.
    pub branch_thresh: Option<f64>,
}

impl PlacementRecord {
    /// A record carrying only block, address, and area.
    #[must_use]
    pub fn area_only(block: usize, addr: u64, area: &str) -> Self {
        Self {
            block,
            addr,
            area: area.to_owned(),
            seed: None,
            pass: None,
            sequence: None,
            exec_thresh: None,
            branch_thresh: None,
        }
    }

    fn to_json(&self) -> JsonValue {
        let mut members = vec![
            ("block".to_owned(), JsonValue::Num(self.block as f64)),
            ("addr".to_owned(), JsonValue::Num(self.addr as f64)),
            ("area".to_owned(), JsonValue::Str(self.area.clone())),
        ];
        if let Some(seed) = &self.seed {
            members.push(("seed".to_owned(), JsonValue::Str(seed.clone())));
        }
        if let Some(pass) = self.pass {
            members.push(("pass".to_owned(), JsonValue::Num(pass as f64)));
        }
        if let Some(sequence) = self.sequence {
            members.push(("sequence".to_owned(), JsonValue::Num(sequence as f64)));
        }
        if let Some(et) = self.exec_thresh {
            members.push(("exec_thresh".to_owned(), JsonValue::Num(et)));
        }
        if let Some(bt) = self.branch_thresh {
            members.push(("branch_thresh".to_owned(), JsonValue::Num(bt)));
        }
        JsonValue::Object(members)
    }
}

/// The audit trail of one layout pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlacementAudit {
    pass_name: String,
    records: Vec<PlacementRecord>,
}

impl PlacementAudit {
    /// Creates an empty audit for the named layout pass (`OptS`, `C-H`,
    /// ...).
    #[must_use]
    pub fn new(pass_name: &str) -> Self {
        Self {
            pass_name: pass_name.to_owned(),
            records: Vec::new(),
        }
    }

    /// Name of the layout pass this audit belongs to.
    #[must_use]
    pub fn pass_name(&self) -> &str {
        &self.pass_name
    }

    /// Appends one placement record.
    pub fn record(&mut self, record: PlacementRecord) {
        self.records.push(record);
    }

    /// All records in placement order.
    #[must_use]
    pub fn records(&self) -> &[PlacementRecord] {
        &self.records
    }

    /// Number of recorded placements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up the provenance of a block.
    #[must_use]
    pub fn lookup(&self, block: usize) -> Option<&PlacementRecord> {
        self.records.iter().find(|r| r.block == block)
    }

    /// Number of blocks placed in the given area.
    #[must_use]
    pub fn area_count(&self, area: &str) -> usize {
        self.records.iter().filter(|r| r.area == area).count()
    }

    /// Distinct areas in first-seen order with their block counts.
    #[must_use]
    pub fn area_summary(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = Vec::new();
        for r in &self.records {
            if let Some(entry) = out.iter_mut().find(|(a, _)| *a == r.area) {
                entry.1 += 1;
            } else {
                out.push((r.area.clone(), 1));
            }
        }
        out
    }

    /// Dumps the audit as JSON: pass name, per-area counts, and the full
    /// record list.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("pass".to_owned(), JsonValue::Str(self.pass_name.clone())),
            (
                "areas".to_owned(),
                JsonValue::Object(
                    self.area_summary()
                        .into_iter()
                        .map(|(a, n)| (a, JsonValue::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "placements".to_owned(),
                JsonValue::Array(self.records.iter().map(PlacementRecord::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlacementAudit {
        let mut a = PlacementAudit::new("OptS");
        a.record(PlacementRecord::area_only(4, 0x0, "self_conf_free"));
        a.record(PlacementRecord {
            block: 9,
            addr: 0x500,
            area: "main_seq".into(),
            seed: Some("SysCall".into()),
            pass: Some(0),
            sequence: Some(2),
            exec_thresh: Some(0.9),
            branch_thresh: Some(0.4),
        });
        a.record(PlacementRecord::area_only(12, 0x900, "cold_tail"));
        a.record(PlacementRecord::area_only(13, 0x940, "cold_tail"));
        a
    }

    #[test]
    fn lookup_returns_provenance() {
        let a = sample();
        let r = a.lookup(9).expect("block 9 recorded");
        assert_eq!(r.seed.as_deref(), Some("SysCall"));
        assert_eq!(r.pass, Some(0));
        assert_eq!(r.exec_thresh, Some(0.9));
        assert!(a.lookup(999).is_none());
    }

    #[test]
    fn area_counts_and_summary() {
        let a = sample();
        assert_eq!(a.len(), 4);
        assert_eq!(a.area_count("cold_tail"), 2);
        assert_eq!(a.area_count("main_seq"), 1);
        assert_eq!(
            a.area_summary(),
            vec![
                ("self_conf_free".to_owned(), 1),
                ("main_seq".to_owned(), 1),
                ("cold_tail".to_owned(), 2),
            ]
        );
    }

    #[test]
    fn json_dump_round_trips_structurally() {
        let a = sample();
        let parsed = crate::json::parse(&a.to_json().to_json()).unwrap();
        assert_eq!(parsed.get("pass").and_then(JsonValue::as_str), Some("OptS"));
        let placements = parsed
            .get("placements")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(placements.len(), 4);
        assert_eq!(
            placements[1].get("seed").and_then(JsonValue::as_str),
            Some("SysCall")
        );
        assert_eq!(
            parsed
                .get("areas")
                .and_then(|v| v.get("cold_tail"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
    }
}
