//! Simulated-time cache telemetry: the timeline recorder.
//!
//! The flight recorder ([`crate::flight`]) attributes *wall-clock* time;
//! this module attributes *simulated* time. While a replay runs, a
//! [`WindowRecorder`] samples the cache every `2^k` simulated events into
//! a bounded ring of [`TelemetryFrame`]s — miss rate split
//! compulsory/capacity/conflict, per-set occupancy quantiles, an
//! eviction-age histogram, and the OS-vs-user mix — then change-point
//! segmentation turns the frame stream into stable [`Phase`]s with
//! per-phase summary statistics.
//!
//! Design rules, mirrored from the flight recorder:
//!
//! * **Zero-cost when disabled.** [`recorder`] is one relaxed atomic load
//!   when the timeline is off; the hot path then carries a `None` it never
//!   touches again.
//! * **Allocation-free steady state.** A recorder holds a bounded frame
//!   vector; when it fills, adjacent frames are pair-merged and the window
//!   doubles, so arbitrarily long replays fit in constant memory.
//! * **Simulated quantities only.** Frames contain event counts and cache
//!   state — never wall-clock time — so the stream is byte-identical
//!   across machines and worker counts.
//! * **Deterministic merge.** Sharded drivers allocate a [`group`] before
//!   fanning out and open a [`scope`] per job; [`flush`] sorts completed
//!   runs by `(group, job index)`, so the output file is byte-identical at
//!   any worker count.
//!
//! The serialized document (`--telemetry-out FILE`) is the
//! `oslay.telemetry.v1` schema; [`validate_telemetry`] is the strict
//! checker behind `dash --check`.

use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::{self, JsonValue};

/// Schema identifier written into every telemetry document.
pub const SCHEMA: &str = "oslay.telemetry.v1";

/// Initial sampling window: one frame per `2^8 = 256` simulated events.
pub const INITIAL_WINDOW_LOG2: u32 = 8;

/// Frame-ring capacity. When a run reaches this many frames, adjacent
/// pairs merge and the window doubles (capacity must stay even for the
/// pair-merge to preserve the `events % window == 0` boundary invariant).
pub const MAX_FRAMES: usize = 512;

/// Eviction-age histogram buckets: bucket `b` counts evictions whose
/// victim line was last touched `[2^b, 2^{b+1})` accesses ago.
pub const AGE_BUCKETS: usize = 64;

/// Point-in-time cache-state sample supplied by the cache itself (the
/// part of a [`CacheSnapshot`] that needs tag-array visibility).
///
/// `oslay-cache` implements this behind
/// `InstructionCache::telemetry_snapshot`; organizations without the
/// hooks return `None` and their frames carry zeros for these fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheProbeSnapshot {
    /// Median valid ways per set.
    pub occ_p50: u32,
    /// 95th-percentile valid ways per set.
    pub occ_p95: u32,
    /// Overall fill fraction in parts per million (`0..=1_000_000`).
    pub fill_ppm: u32,
    /// Cumulative eviction-age histogram (log2 buckets).
    pub evict_ages: [u64; AGE_BUCKETS],
    /// Cumulative compulsory/capacity/conflict miss counts, when the
    /// cache runs the attribution shadow store.
    pub attr: Option<[u64; 3]>,
}

/// Cumulative cache state at one sampling boundary. The replayer builds
/// one from `MissStats` plus the cache's [`CacheProbeSnapshot`]; the
/// recorder differences consecutive snapshots into frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Total instruction fetches so far.
    pub accesses: u64,
    /// Fetches issued by the operating system.
    pub os_accesses: u64,
    /// Total misses so far.
    pub misses: u64,
    /// Cold (first-reference) misses so far — the compulsory component
    /// when no attribution shadow store is running.
    pub cold_misses: u64,
    /// The cache's own state sample, if the organization provides one.
    pub probe: Option<CacheProbeSnapshot>,
}

/// One sampling window of a run: event-windowed deltas plus
/// point-in-time occupancy. All quantities are simulated-time integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryFrame {
    /// Cumulative simulated events at the end of this frame.
    pub events: u64,
    /// Fetches in this window.
    pub accesses: u64,
    /// OS fetches in this window (the OS-vs-user mix).
    pub os_accesses: u64,
    /// Misses in this window.
    pub misses: u64,
    /// Compulsory misses in this window.
    pub compulsory: u64,
    /// Capacity misses in this window (zero without the attribution
    /// shadow store — unattributed runs fold capacity into `conflict`).
    pub capacity: u64,
    /// Conflict misses in this window.
    pub conflict: u64,
    /// Median valid ways per set at the frame boundary.
    pub occ_p50: u64,
    /// 95th-percentile valid ways per set at the frame boundary.
    pub occ_p95: u64,
    /// Fill fraction at the frame boundary, parts per million.
    pub fill_ppm: u64,
    /// Sparse eviction-age deltas for this window: `(log2 bucket, count)`.
    pub ages: Vec<(u32, u64)>,
}

impl TelemetryFrame {
    /// Integer quantile of the window's eviction-age distribution:
    /// the representative age `2^b` of the first bucket where the
    /// cumulative count crosses `num/den` of the total (0 when the
    /// window evicted nothing).
    #[must_use]
    pub fn age_quantile(&self, num: u64, den: u64) -> u64 {
        let total: u64 = self.ages.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0;
        }
        let target = (total * num).div_ceil(den);
        let mut cum = 0u64;
        for &(bucket, count) in &self.ages {
            cum += count;
            if cum >= target {
                // Cap so the serialized value stays in the integer-exact
                // JSON range (ages beyond 2^49 never occur in practice).
                return 1u64 << bucket.min(49);
            }
        }
        1u64 << self.ages.last().map_or(0, |&(b, _)| b.min(49))
    }

    /// The 12-integer serialized row of this frame, in schema order.
    #[must_use]
    pub fn row(&self) -> [u64; 12] {
        [
            self.events,
            self.accesses,
            self.os_accesses,
            self.misses,
            self.compulsory,
            self.capacity,
            self.conflict,
            self.occ_p50,
            self.occ_p95,
            self.fill_ppm,
            self.age_quantile(1, 2),
            self.age_quantile(19, 20),
        ]
    }

    fn merge_with(&self, next: &TelemetryFrame) -> TelemetryFrame {
        let mut ages = self.ages.clone();
        for &(bucket, count) in &next.ages {
            match ages.binary_search_by_key(&bucket, |&(b, _)| b) {
                Ok(i) => ages[i].1 += count,
                Err(i) => ages.insert(i, (bucket, count)),
            }
        }
        TelemetryFrame {
            events: next.events,
            accesses: self.accesses + next.accesses,
            os_accesses: self.os_accesses + next.os_accesses,
            misses: self.misses + next.misses,
            compulsory: self.compulsory + next.compulsory,
            capacity: self.capacity + next.capacity,
            conflict: self.conflict + next.conflict,
            // Occupancy is point-in-time; the merged frame keeps the
            // later boundary's sample.
            occ_p50: next.occ_p50,
            occ_p95: next.occ_p95,
            fill_ppm: next.fill_ppm,
            ages,
        }
    }
}

/// One segment of a run's frame stream with homogeneous miss behavior.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Sequential phase id (stable: segmentation is deterministic over a
    /// deterministic frame stream).
    pub id: u32,
    /// First frame of the phase.
    pub start_frame: usize,
    /// One past the last frame of the phase.
    pub end_frame: usize,
    /// Cumulative events at the phase start (end of the prior phase).
    pub events_start: u64,
    /// Cumulative events at the phase end.
    pub events_end: u64,
    /// Fetches within the phase.
    pub accesses: u64,
    /// Misses within the phase.
    pub misses: u64,
    /// Compulsory misses within the phase.
    pub compulsory: u64,
    /// Capacity misses within the phase.
    pub capacity: u64,
    /// Conflict misses within the phase.
    pub conflict: u64,
    /// Phase miss rate in parts per million.
    pub miss_rate_ppm: u64,
}

/// Change-point segmentation of a frame stream by per-frame miss rate.
///
/// Greedy binary segmentation: repeatedly split the segment whose best
/// split most reduces the sum of squared errors, while the reduction
/// exceeds a penalty proportional to the whole-series SSE. Minimum
/// segment length 4 frames, at most 12 phases. Purely a function of the
/// frame stream, so phase ids are stable across runs and worker counts.
#[must_use]
pub fn segment_phases(frames: &[TelemetryFrame]) -> Vec<Phase> {
    const MIN_SEG: usize = 4;
    const MAX_PHASES: usize = 12;
    let n = frames.len();
    if n == 0 {
        return Vec::new();
    }
    let rates: Vec<f64> = frames
        .iter()
        .map(|f| {
            if f.accesses == 0 {
                0.0
            } else {
                f.misses as f64 / f.accesses as f64
            }
        })
        .collect();
    // Prefix sums of x and x^2 make any segment's SSE O(1).
    let mut s = vec![0.0f64; n + 1];
    let mut s2 = vec![0.0f64; n + 1];
    for (i, &r) in rates.iter().enumerate() {
        s[i + 1] = s[i] + r;
        s2[i + 1] = s2[i] + r * r;
    }
    let sse = |a: usize, b: usize| -> f64 {
        let len = (b - a) as f64;
        let sum = s[b] - s[a];
        ((s2[b] - s2[a]) - sum * sum / len).max(0.0)
    };
    let penalty = (sse(0, n) * 0.05).max(1e-12);
    let mut bounds = vec![0usize, n];
    while bounds.len() - 1 < MAX_PHASES {
        let mut best: Option<(f64, usize)> = None;
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b - a < 2 * MIN_SEG {
                continue;
            }
            for k in a + MIN_SEG..=b - MIN_SEG {
                let gain = sse(a, b) - sse(a, k) - sse(k, b);
                // Strict comparison: ties keep the earliest split, so the
                // choice is deterministic.
                if best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, k));
                }
            }
        }
        match best {
            Some((gain, k)) if gain > penalty => {
                let at = bounds.partition_point(|&b| b < k);
                bounds.insert(at, k);
            }
            _ => break,
        }
    }
    bounds
        .windows(2)
        .enumerate()
        .map(|(id, w)| {
            let (a, b) = (w[0], w[1]);
            let slice = &frames[a..b];
            let accesses: u64 = slice.iter().map(|f| f.accesses).sum();
            let misses: u64 = slice.iter().map(|f| f.misses).sum();
            Phase {
                id: u32::try_from(id).expect("phase count fits u32"),
                start_frame: a,
                end_frame: b,
                events_start: if a == 0 { 0 } else { frames[a - 1].events },
                events_end: frames[b - 1].events,
                accesses,
                misses,
                compulsory: slice.iter().map(|f| f.compulsory).sum(),
                capacity: slice.iter().map(|f| f.capacity).sum(),
                conflict: slice.iter().map(|f| f.conflict).sum(),
                miss_rate_ppm: (misses * 1_000_000).checked_div(accesses).unwrap_or(0),
            }
        })
        .collect()
}

/// Cumulative counters at the last frame boundary, used to difference
/// the next snapshot into a frame.
#[derive(Clone, Debug)]
struct Baseline {
    accesses: u64,
    os_accesses: u64,
    misses: u64,
    cold_misses: u64,
    attr: Option<[u64; 3]>,
    ages: [u64; AGE_BUCKETS],
}

impl Default for Baseline {
    fn default() -> Self {
        Self {
            accesses: 0,
            os_accesses: 0,
            misses: 0,
            cold_misses: 0,
            attr: None,
            ages: [0; AGE_BUCKETS],
        }
    }
}

impl Baseline {
    fn from_snapshot(snap: &CacheSnapshot) -> Self {
        Self {
            accesses: snap.accesses,
            os_accesses: snap.os_accesses,
            misses: snap.misses,
            cold_misses: snap.cold_misses,
            attr: snap.probe.as_ref().and_then(|p| p.attr),
            ages: snap
                .probe
                .as_ref()
                .map_or([0; AGE_BUCKETS], |p| p.evict_ages),
        }
    }
}

/// The per-run windowed recorder the replayer drives: [`tick`] per
/// simulated event, [`WindowRecorder::sample`] at window boundaries,
/// [`WindowRecorder::finish`] at end of stream (which also runs phase
/// segmentation and hands the completed run to the global collector).
///
/// [`tick`]: WindowRecorder::tick
#[derive(Debug)]
pub struct WindowRecorder {
    group: u64,
    index: u64,
    label: String,
    window_log2: u32,
    seen: u64,
    last_sampled: u64,
    frames: Vec<TelemetryFrame>,
    last: Baseline,
}

impl WindowRecorder {
    fn new(group: u64, index: u64, label: String) -> Self {
        Self {
            group,
            index,
            label,
            window_log2: INITIAL_WINDOW_LOG2,
            seen: 0,
            last_sampled: 0,
            frames: Vec::new(),
            last: Baseline::default(),
        }
    }

    /// Counts one simulated event; true when the stream just crossed a
    /// window boundary and the caller should [`WindowRecorder::sample`].
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.seen += 1;
        self.seen & ((1u64 << self.window_log2) - 1) == 0
    }

    /// Simulated events seen so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.seen
    }

    /// Current window size in events (`2^k`; grows as frames coarsen).
    #[must_use]
    pub fn window(&self) -> u64 {
        1u64 << self.window_log2
    }

    /// Closes the current window against a fresh cumulative snapshot.
    pub fn sample(&mut self, snap: &CacheSnapshot) {
        let attr_now = snap.probe.as_ref().and_then(|p| p.attr);
        let (compulsory, capacity, conflict) = match (self.last.attr, attr_now) {
            (last, Some(now)) => {
                let last = last.unwrap_or([0; 3]);
                (
                    now[0].saturating_sub(last[0]),
                    now[1].saturating_sub(last[1]),
                    now[2].saturating_sub(last[2]),
                )
            }
            // Without the attribution shadow store, cold misses are the
            // compulsory component and the capacity/conflict split is
            // unknowable: everything non-cold reports as conflict.
            _ => {
                let misses = snap.misses - self.last.misses;
                let cold = snap.cold_misses - self.last.cold_misses;
                (cold, 0, misses.saturating_sub(cold))
            }
        };
        let ages_now = snap
            .probe
            .as_ref()
            .map_or([0; AGE_BUCKETS], |p| p.evict_ages);
        let mut ages = Vec::new();
        for (b, (&now, &then)) in ages_now.iter().zip(&self.last.ages).enumerate() {
            let delta = now - then;
            if delta > 0 {
                ages.push((u32::try_from(b).expect("bucket fits u32"), delta));
            }
        }
        self.frames.push(TelemetryFrame {
            events: self.seen,
            accesses: snap.accesses - self.last.accesses,
            os_accesses: snap.os_accesses - self.last.os_accesses,
            misses: snap.misses - self.last.misses,
            compulsory,
            capacity,
            conflict,
            occ_p50: snap.probe.as_ref().map_or(0, |p| u64::from(p.occ_p50)),
            occ_p95: snap.probe.as_ref().map_or(0, |p| u64::from(p.occ_p95)),
            fill_ppm: snap.probe.as_ref().map_or(0, |p| u64::from(p.fill_ppm)),
            ages,
        });
        self.last = Baseline::from_snapshot(snap);
        self.last_sampled = self.seen;
        if self.frames.len() >= MAX_FRAMES {
            self.coarsen();
        }
    }

    /// Halves the frame count by pair-merging and doubles the window.
    fn coarsen(&mut self) {
        let merged: Vec<TelemetryFrame> = self
            .frames
            .chunks(2)
            .map(|pair| match pair {
                [a, b] => a.merge_with(b),
                [a] => a.clone(),
                _ => unreachable!("chunks(2)"),
            })
            .collect();
        self.frames = merged;
        self.window_log2 += 1;
    }

    /// Closes the final (possibly partial) window, segments the frame
    /// stream into phases, and records the completed run with the global
    /// collector for [`flush`].
    pub fn finish(mut self, snap: &CacheSnapshot) {
        if self.seen > self.last_sampled {
            self.sample(snap);
        }
        let phases = segment_phases(&self.frames);
        let run = CompletedRun {
            group: self.group,
            index: self.index,
            label: self.label,
            window_log2: self.window_log2,
            frames: self.frames,
            phases,
        };
        let mut g = inner().lock().expect("timeline poisoned");
        g.runs.push(run);
    }
}

/// A finished run held by the global collector until [`flush`].
#[derive(Clone, Debug)]
struct CompletedRun {
    group: u64,
    index: u64,
    label: String,
    window_log2: u32,
    frames: Vec<TelemetryFrame>,
    phases: Vec<Phase>,
}

#[derive(Default)]
struct Inner {
    out: Option<PathBuf>,
    runs: Vec<CompletedRun>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_GROUP: AtomicU64 = AtomicU64::new(1);

fn inner() -> &'static Mutex<Inner> {
    static INNER: OnceLock<Mutex<Inner>> = OnceLock::new();
    INNER.get_or_init(|| Mutex::new(Inner::default()))
}

thread_local! {
    // Scope stack: (group, job index, label) of the runs open on this
    // thread, outermost first.
    static SCOPE: RefCell<Vec<(u64, u64, String)>> = const { RefCell::new(Vec::new()) };
}

/// Turns the timeline on. Until [`disable`], replayers created inside a
/// [`scope`] record telemetry.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the timeline off.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the timeline is currently capturing.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops all recorded runs, this thread's scope stack, and any pending
/// output path (tests use this to isolate captures).
pub fn reset() {
    let mut g = inner().lock().expect("timeline poisoned");
    g.runs.clear();
    g.out = None;
    SCOPE.with(|s| s.borrow_mut().clear());
}

/// Enables the timeline and remembers where [`flush`] should write the
/// telemetry document (`--telemetry-out` plumbs through here).
pub fn set_output(path: &Path) {
    enable();
    inner().lock().expect("timeline poisoned").out = Some(path.to_owned());
}

/// Number of completed runs currently held (test hook).
#[must_use]
pub fn runs_recorded() -> usize {
    inner().lock().expect("timeline poisoned").runs.len()
}

/// Allocates a merge group. Sharded drivers call this once on the
/// calling thread *before* fanning out, so group order follows driver
/// call order regardless of worker scheduling.
#[must_use]
pub fn group() -> u64 {
    NEXT_GROUP.fetch_add(1, Ordering::Relaxed)
}

/// Opens a recording scope on this thread: replayers constructed while
/// the guard lives record a run filed under `(group, index, label)`.
/// Inert (and free) while the timeline is disabled.
#[must_use]
pub fn scope(group: u64, index: u64, label: impl Into<String>) -> ScopeGuard {
    if !is_enabled() {
        return ScopeGuard { active: false };
    }
    SCOPE.with(|s| s.borrow_mut().push((group, index, label.into())));
    ScopeGuard { active: true }
}

/// Guard returned by [`scope`]; closes the scope on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Hands the hot path its recorder: `Some` only when the timeline is
/// enabled *and* this thread has an open [`scope`] (one relaxed atomic
/// load otherwise — the zero-cost-when-disabled contract).
#[must_use]
pub fn recorder() -> Option<WindowRecorder> {
    if !is_enabled() {
        return None;
    }
    SCOPE.with(|s| {
        s.borrow()
            .last()
            .map(|(group, index, label)| WindowRecorder::new(*group, *index, label.clone()))
    })
}

fn run_to_json(run: &CompletedRun) -> JsonValue {
    JsonValue::object([
        ("label".to_owned(), JsonValue::Str(run.label.clone())),
        (
            "window_log2".to_owned(),
            JsonValue::Num(f64::from(run.window_log2)),
        ),
        (
            "frames".to_owned(),
            JsonValue::Array(
                run.frames
                    .iter()
                    .map(|f| {
                        JsonValue::Array(
                            f.row().iter().map(|&v| JsonValue::Num(v as f64)).collect(),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "phases".to_owned(),
            JsonValue::Array(
                run.phases
                    .iter()
                    .map(|p| {
                        JsonValue::object([
                            ("id".to_owned(), JsonValue::Num(f64::from(p.id))),
                            (
                                "start_frame".to_owned(),
                                JsonValue::Num(p.start_frame as f64),
                            ),
                            ("end_frame".to_owned(), JsonValue::Num(p.end_frame as f64)),
                            (
                                "events_start".to_owned(),
                                JsonValue::Num(p.events_start as f64),
                            ),
                            ("events_end".to_owned(), JsonValue::Num(p.events_end as f64)),
                            ("accesses".to_owned(), JsonValue::Num(p.accesses as f64)),
                            ("misses".to_owned(), JsonValue::Num(p.misses as f64)),
                            ("compulsory".to_owned(), JsonValue::Num(p.compulsory as f64)),
                            ("capacity".to_owned(), JsonValue::Num(p.capacity as f64)),
                            ("conflict".to_owned(), JsonValue::Num(p.conflict as f64)),
                            (
                                "miss_rate_ppm".to_owned(),
                                JsonValue::Num(p.miss_rate_ppm as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serializes every recorded run, sorted by `(group, job index)` — the
/// deterministic merge that makes the document byte-identical at any
/// worker count.
#[must_use]
pub fn document() -> JsonValue {
    let g = inner().lock().expect("timeline poisoned");
    let mut order: Vec<usize> = (0..g.runs.len()).collect();
    order.sort_by_key(|&i| (g.runs[i].group, g.runs[i].index));
    JsonValue::object([
        ("schema".to_owned(), JsonValue::Str(SCHEMA.to_owned())),
        (
            "runs".to_owned(),
            JsonValue::Array(order.iter().map(|&i| run_to_json(&g.runs[i])).collect()),
        ),
    ])
}

/// Writes the telemetry document to the path given to [`set_output`] and
/// returns it, or `Ok(None)` when no output is pending. Idempotent: the
/// pending path is consumed, so a second flush is a no-op.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn flush() -> io::Result<Option<PathBuf>> {
    let path = inner().lock().expect("timeline poisoned").out.take();
    let Some(path) = path else { return Ok(None) };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&path, document().to_json_pretty())?;
    Ok(Some(path))
}

/// Summary statistics returned by a successful [`validate_telemetry`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryStats {
    /// Runs in the document.
    pub runs: usize,
    /// Frames across all runs.
    pub frames: usize,
    /// Phases across all runs.
    pub phases: usize,
    /// Simulated events across all runs (sum of final frame counts).
    pub events: u64,
}

/// One parsed run of a telemetry document (the `dash` viewer's model).
#[derive(Clone, Debug)]
pub struct TelemetryRun {
    /// The run's scope label (e.g. `Null/OptS`).
    pub label: String,
    /// log2 of the final sampling window.
    pub window_log2: u32,
    /// The frame rows, each in [`TelemetryFrame::row`] order.
    pub rows: Vec<[u64; 12]>,
    /// The segmented phases.
    pub phases: Vec<Phase>,
}

impl TelemetryRun {
    /// Per-frame miss rate (misses / accesses), for rendering.
    #[must_use]
    pub fn miss_rates(&self) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| {
                if r[1] == 0 {
                    0.0
                } else {
                    r[3] as f64 / r[1] as f64
                }
            })
            .collect()
    }
}

/// A parsed, validated telemetry document.
#[derive(Clone, Debug, Default)]
pub struct TelemetryDoc {
    /// The runs, in merge order.
    pub runs: Vec<TelemetryRun>,
}

impl TelemetryDoc {
    /// Parses and validates a telemetry document.
    ///
    /// # Errors
    ///
    /// Returns the first schema or monotonicity violation, as
    /// [`validate_telemetry`] would.
    pub fn parse(text: &str) -> Result<Self, String> {
        validate_telemetry(text)?;
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let mut runs = Vec::new();
        for run in v.get("runs").and_then(JsonValue::as_array).unwrap_or(&[]) {
            let rows: Vec<[u64; 12]> = run
                .get("frames")
                .and_then(JsonValue::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|row| {
                    let mut out = [0u64; 12];
                    for (slot, cell) in out.iter_mut().zip(row.as_array().unwrap_or(&[])) {
                        *slot = cell.as_u64().unwrap_or(0);
                    }
                    out
                })
                .collect();
            let phases = run
                .get("phases")
                .and_then(JsonValue::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|p| {
                    let f = |key: &str| p.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
                    Phase {
                        id: f("id") as u32,
                        start_frame: f("start_frame") as usize,
                        end_frame: f("end_frame") as usize,
                        events_start: f("events_start"),
                        events_end: f("events_end"),
                        accesses: f("accesses"),
                        misses: f("misses"),
                        compulsory: f("compulsory"),
                        capacity: f("capacity"),
                        conflict: f("conflict"),
                        miss_rate_ppm: f("miss_rate_ppm"),
                    }
                })
                .collect();
            runs.push(TelemetryRun {
                label: run
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_owned(),
                window_log2: run
                    .get("window_log2")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0) as u32,
                rows,
                phases,
            });
        }
        Ok(Self { runs })
    }
}

/// Strictly validates a serialized telemetry document: schema tag, frame
/// row shape and non-negativity, strictly increasing event counts,
/// miss-split and OS-mix consistency, and phase coverage/summation.
/// Powers `dash --check` (exit 0 on `Ok`, 1 on `Err`).
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_telemetry(text: &str) -> Result<TelemetryStats, String> {
    let v = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if v.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("missing or wrong schema tag (want {SCHEMA:?})"));
    }
    let runs = v
        .get("runs")
        .and_then(JsonValue::as_array)
        .ok_or("missing runs array")?;
    let mut stats = TelemetryStats {
        runs: runs.len(),
        ..TelemetryStats::default()
    };
    for (ri, run) in runs.iter().enumerate() {
        let label = run
            .get("label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("run {ri}: missing label"))?;
        if label.is_empty() {
            return Err(format!("run {ri}: empty label"));
        }
        let window = run
            .get("window_log2")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("run {label:?}: missing window_log2"))?;
        if window > 63 {
            return Err(format!("run {label:?}: window_log2 {window} out of range"));
        }
        let frames = run
            .get("frames")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("run {label:?}: missing frames"))?;
        let mut prev_events = 0u64;
        let mut frame_sums = (0u64, 0u64); // (accesses, misses)
        for (fi, row) in frames.iter().enumerate() {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("run {label:?} frame {fi}: not an array"))?;
            if cells.len() != 12 {
                return Err(format!(
                    "run {label:?} frame {fi}: {} cells, want 12",
                    cells.len()
                ));
            }
            let mut r = [0u64; 12];
            for (i, cell) in cells.iter().enumerate() {
                r[i] = cell.as_u64().ok_or_else(|| {
                    format!("run {label:?} frame {fi} cell {i}: not a non-negative integer")
                })?;
            }
            let [events, accesses, os_accesses, misses, compulsory, capacity, conflict, occ_p50, occ_p95, fill_ppm, _, _] =
                r;
            if events <= prev_events {
                return Err(format!(
                    "run {label:?} frame {fi}: events {events} not strictly increasing (prev {prev_events})"
                ));
            }
            prev_events = events;
            if misses > accesses {
                return Err(format!(
                    "run {label:?} frame {fi}: misses {misses} exceed accesses {accesses}"
                ));
            }
            if os_accesses > accesses {
                return Err(format!(
                    "run {label:?} frame {fi}: os_accesses {os_accesses} exceed accesses {accesses}"
                ));
            }
            if compulsory + capacity + conflict != misses {
                return Err(format!(
                    "run {label:?} frame {fi}: miss split {compulsory}+{capacity}+{conflict} != {misses}"
                ));
            }
            if occ_p50 > occ_p95 {
                return Err(format!(
                    "run {label:?} frame {fi}: occ_p50 {occ_p50} exceeds occ_p95 {occ_p95}"
                ));
            }
            if fill_ppm > 1_000_000 {
                return Err(format!(
                    "run {label:?} frame {fi}: fill_ppm {fill_ppm} exceeds 1e6"
                ));
            }
            frame_sums.0 += accesses;
            frame_sums.1 += misses;
        }
        stats.frames += frames.len();
        stats.events += prev_events;
        let phases = run
            .get("phases")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("run {label:?}: missing phases"))?;
        if frames.is_empty() && !phases.is_empty() {
            return Err(format!("run {label:?}: phases without frames"));
        }
        let mut next_start = 0usize;
        let mut phase_sums = (0u64, 0u64);
        for (pi, phase) in phases.iter().enumerate() {
            let f = |key: &str| {
                phase
                    .get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("run {label:?} phase {pi}: missing {key}"))
            };
            if f("id")? != pi as u64 {
                return Err(format!("run {label:?} phase {pi}: non-sequential id"));
            }
            let start = f("start_frame")? as usize;
            let end = f("end_frame")? as usize;
            if start != next_start || end <= start || end > frames.len() {
                return Err(format!(
                    "run {label:?} phase {pi}: range {start}..{end} breaks contiguous coverage"
                ));
            }
            next_start = end;
            let (accesses, misses) = (f("accesses")?, f("misses")?);
            if f("compulsory")? + f("capacity")? + f("conflict")? != misses {
                return Err(format!("run {label:?} phase {pi}: miss split mismatch"));
            }
            let want_rate = (misses * 1_000_000).checked_div(accesses).unwrap_or(0);
            if f("miss_rate_ppm")? != want_rate {
                return Err(format!("run {label:?} phase {pi}: miss_rate_ppm mismatch"));
            }
            phase_sums.0 += accesses;
            phase_sums.1 += misses;
        }
        if !frames.is_empty() && next_start != frames.len() {
            return Err(format!(
                "run {label:?}: phases cover {next_start} of {} frames",
                frames.len()
            ));
        }
        if !frames.is_empty() && phase_sums != frame_sums {
            return Err(format!(
                "run {label:?}: phase sums {phase_sums:?} disagree with frame sums {frame_sums:?}"
            ));
        }
        stats.phases += phases.len();
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;
    use std::sync::MutexGuard;

    // The timeline is process-global; serialize tests that touch it.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: StdMutex<()> = StdMutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn snap(accesses: u64, misses: u64, cold: u64) -> CacheSnapshot {
        CacheSnapshot {
            accesses,
            os_accesses: accesses / 2,
            misses,
            cold_misses: cold,
            probe: None,
        }
    }

    #[test]
    fn recorder_windows_and_deltas() {
        let _g = lock();
        reset();
        enable();
        let _s = scope(group(), 0, "t");
        let mut rec = recorder().expect("enabled + scoped");
        let win = rec.window();
        assert_eq!(win, 1 << INITIAL_WINDOW_LOG2);
        for i in 1..=2 * win {
            let boundary = rec.tick();
            assert_eq!(boundary, i % win == 0, "event {i}");
            if boundary {
                rec.sample(&snap(10 * i, i, i / 2));
            }
        }
        rec.finish(&snap(20 * win, 2 * win, win));
        disable();
        let doc = document();
        let runs = doc.get("runs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(runs.len(), 1);
        let frames = runs[0].get("frames").and_then(JsonValue::as_array).unwrap();
        assert_eq!(frames.len(), 2, "two full windows, no partial tail");
        // Second frame's deltas: accesses 10*2w - 10*w, misses w.
        let row: Vec<u64> = frames[1]
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.as_u64().unwrap())
            .collect();
        assert_eq!(row[0], 2 * win);
        assert_eq!(row[1], 10 * win);
        assert_eq!(row[3], win);
        reset();
    }

    #[test]
    fn recorder_coarsens_at_capacity() {
        let _g = lock();
        reset();
        enable();
        let _s = scope(group(), 0, "coarsen");
        let mut rec = recorder().unwrap();
        let win = rec.window();
        // Drive exactly MAX_FRAMES windows: the ring must coarsen once.
        let mut acc = 0u64;
        for f in 1..=(MAX_FRAMES as u64) {
            for _ in 0..win {
                if rec.tick() {
                    acc = f * 100;
                    rec.sample(&snap(acc, f, 0));
                }
            }
        }
        assert_eq!(rec.window(), 2 * win, "window doubled after coarsening");
        assert_eq!(rec.frames.len(), MAX_FRAMES / 2);
        // Merged deltas are sums; cumulative events keep the later edge.
        assert_eq!(rec.frames[0].events, 2 * win);
        assert_eq!(rec.frames[0].accesses, 200);
        rec.finish(&snap(acc, MAX_FRAMES as u64, 0));
        disable();
        reset();
    }

    #[test]
    fn partial_tail_window_is_sampled() {
        let _g = lock();
        reset();
        enable();
        let _s = scope(group(), 0, "tail");
        let mut rec = recorder().unwrap();
        for _ in 0..10 {
            assert!(!rec.tick());
        }
        rec.finish(&snap(100, 7, 7));
        disable();
        let doc = document().to_json_pretty();
        let stats = validate_telemetry(&doc).expect("valid");
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.events, 10);
        reset();
    }

    #[test]
    fn recorder_requires_enable_and_scope() {
        let _g = lock();
        reset();
        assert!(recorder().is_none(), "disabled");
        enable();
        assert!(recorder().is_none(), "enabled but unscoped");
        {
            let _s = scope(1, 0, "x");
            assert!(recorder().is_some());
        }
        assert!(recorder().is_none(), "scope closed");
        disable();
        reset();
    }

    #[test]
    fn runs_merge_in_group_index_order() {
        let _g = lock();
        reset();
        enable();
        let g1 = group();
        let g2 = group();
        // Record out of order: group 2 first, then group 1 jobs reversed.
        for (grp, idx, label) in [(g2, 0, "late"), (g1, 1, "b"), (g1, 0, "a")] {
            let _s = scope(grp, idx, label);
            let mut rec = recorder().unwrap();
            rec.tick();
            rec.finish(&snap(4, 1, 1));
        }
        disable();
        let doc = document();
        let labels: Vec<&str> = doc
            .get("runs")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .map(|r| r.get("label").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(labels, ["a", "b", "late"]);
        reset();
    }

    #[test]
    fn segmentation_finds_a_step_change() {
        let frames: Vec<TelemetryFrame> = (0..32)
            .map(|i| TelemetryFrame {
                events: (i + 1) * 256,
                accesses: 1000,
                os_accesses: 500,
                misses: if i < 16 { 10 } else { 400 },
                compulsory: 0,
                capacity: 0,
                conflict: if i < 16 { 10 } else { 400 },
                occ_p50: 1,
                occ_p95: 1,
                fill_ppm: 500_000,
                ages: Vec::new(),
            })
            .collect();
        let phases = segment_phases(&frames);
        assert_eq!(phases.len(), 2, "{phases:?}");
        assert_eq!(phases[0].end_frame, 16);
        assert_eq!(phases[1].start_frame, 16);
        assert!(phases[1].miss_rate_ppm > 10 * phases[0].miss_rate_ppm);
        // Contiguous ids and full coverage.
        assert_eq!(phases[0].id, 0);
        assert_eq!(phases[1].id, 1);
        assert_eq!(phases[1].end_frame, 32);
    }

    #[test]
    fn segmentation_keeps_flat_series_whole() {
        let frames: Vec<TelemetryFrame> = (0..64)
            .map(|i| TelemetryFrame {
                events: (i + 1) * 256,
                accesses: 1000,
                os_accesses: 400,
                misses: 50,
                compulsory: 5,
                capacity: 0,
                conflict: 45,
                occ_p50: 2,
                occ_p95: 4,
                fill_ppm: 900_000,
                ages: vec![(3, 7)],
            })
            .collect();
        let phases = segment_phases(&frames);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].accesses, 64_000);
        assert_eq!(phases[0].miss_rate_ppm, 50_000);
        assert!(segment_phases(&[]).is_empty());
    }

    #[test]
    fn age_quantiles_from_sparse_buckets() {
        let f = TelemetryFrame {
            events: 256,
            accesses: 10,
            os_accesses: 5,
            misses: 0,
            compulsory: 0,
            capacity: 0,
            conflict: 0,
            occ_p50: 0,
            occ_p95: 0,
            fill_ppm: 0,
            ages: vec![(2, 10), (8, 9), (20, 1)],
        };
        assert_eq!(f.age_quantile(1, 2), 1 << 2, "median in the low bucket");
        assert_eq!(f.age_quantile(19, 20), 1 << 8);
        let empty = TelemetryFrame {
            ages: Vec::new(),
            ..f
        };
        assert_eq!(empty.age_quantile(1, 2), 0);
    }

    #[test]
    fn validator_accepts_fresh_document_and_rejects_corruption() {
        let _g = lock();
        reset();
        enable();
        {
            let _s = scope(group(), 0, "v");
            let mut rec = recorder().unwrap();
            let win = rec.window();
            for i in 1..=3 * win {
                if rec.tick() {
                    rec.sample(&snap(4 * i, i / 8, i / 16));
                }
            }
            rec.finish(&snap(12 * win, 3 * win / 8, 3 * win / 16));
        }
        disable();
        let text = document().to_json_pretty();
        reset();
        let stats = validate_telemetry(&text).expect("fresh document validates");
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.frames, 3);
        // Truncation must fail.
        let truncated = &text[..text.len() / 2];
        assert!(validate_telemetry(truncated).is_err());
        // A tampered cell (misses > accesses) must fail.
        let tampered = text.replacen("\"schema\"", "\"schema_x\"", 1);
        assert!(validate_telemetry(&tampered).is_err());
        // Round-trip through the viewer model.
        let doc = TelemetryDoc::parse(&text).expect("parse back");
        assert_eq!(doc.runs.len(), 1);
        assert_eq!(doc.runs[0].rows.len(), 3);
        assert_eq!(doc.runs[0].miss_rates().len(), 3);
    }

    #[test]
    fn validator_checks_phase_coverage() {
        let bad = format!(
            "{{\"schema\": {SCHEMA:?}, \"runs\": [{{\"label\": \"x\", \"window_log2\": 8, \
             \"frames\": [[256,10,5,2,1,0,1,0,0,0,0,0]], \"phases\": []}}]}}"
        );
        let err = validate_telemetry(&bad).expect_err("uncovered frames");
        assert!(err.contains("cover"), "{err}");
        let empty = format!("{{\"schema\": {SCHEMA:?}, \"runs\": []}}");
        assert_eq!(validate_telemetry(&empty).unwrap().runs, 0);
    }
}
